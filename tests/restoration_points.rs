//! Restoration points & branches (Ch. 9.3.2): a branch is a deep copy of
//! the full simulation state. Two branches fed identical inputs produce
//! bit-identical futures; branches fed different what-if inputs diverge
//! from a *common* past — the mechanism operators use to compare
//! counterfactuals from the same starting state.

use gdisim_core::scenarios::validation::{self, EXPERIMENTS};
use gdisim_infra::LoadBalancing;
use gdisim_types::{SimTime, TierKind};

#[test]
fn branches_without_divergent_inputs_are_identical() {
    let mut sim = validation::build(EXPERIMENTS[0], 17);
    sim.run_until(SimTime::from_secs(120));
    let mut branch = sim.branch();

    sim.run_until(SimTime::from_secs(300));
    branch.run_until(SimTime::from_secs(300));

    let a = sim.report();
    let b = branch.report();
    assert_eq!(
        a.cpu("NA", TierKind::App).unwrap().values(),
        b.cpu("NA", TierKind::App).unwrap().values(),
        "identical inputs must give identical futures"
    );
    assert_eq!(a.concurrent_clients.values(), b.concurrent_clients.values());
    let keys_a: Vec<_> = a.responses.history_keys().collect();
    for k in keys_a {
        assert_eq!(a.responses.history(k), b.responses.history(k));
    }
}

#[test]
fn branches_share_the_past_and_diverge_after_the_fork() {
    let fork_at = SimTime::from_secs(120);
    let mut sim = validation::build(EXPERIMENTS[1], 17);
    sim.run_until(fork_at);
    let mut what_if = sim.branch();

    // The branch switches load-balancing policy; the original does not.
    what_if.set_load_balancing(LoadBalancing::LeastOutstanding);

    sim.run_until(SimTime::from_secs(360));
    what_if.run_until(SimTime::from_secs(360));

    let a = sim.report().cpu("NA", TierKind::App).unwrap().clone();
    let b = what_if.report().cpu("NA", TierKind::App).unwrap().clone();

    // Pre-fork samples are common history.
    let pre_a = a.window(SimTime::ZERO, fork_at);
    let pre_b = b.window(SimTime::ZERO, fork_at);
    assert_eq!(
        pre_a, pre_b,
        "history before the restoration point is shared"
    );
    assert!(!pre_a.is_empty());
    // Post-fork traces exist for both (policies may or may not visibly
    // diverge at this load; what matters is both futures are complete).
    assert_eq!(a.len(), b.len());
}

#[test]
fn branch_of_a_branch_works() {
    let mut sim = validation::build(EXPERIMENTS[0], 3);
    sim.run_until(SimTime::from_secs(60));
    let mut b1 = sim.branch();
    b1.run_until(SimTime::from_secs(90));
    let mut b2 = b1.branch();
    b2.run_until(SimTime::from_secs(120));
    assert_eq!(sim.now(), SimTime::from_secs(60));
    assert_eq!(b1.now(), SimTime::from_secs(90));
    assert_eq!(b2.now(), SimTime::from_secs(120));
    // The original can continue independently.
    sim.run_until(SimTime::from_secs(90));
    assert!(sim.active_operations() > 0);
}
