//! Timer-wheel equivalence: the event-indexed phase-1 loop (the
//! default) must be bit-for-bit identical to the polling loop it
//! replaced, for every scenario family, executor and seed — including
//! runs with an *active* fault plan exercising the fault, retry and
//! timeout gates. Three modes are compared pairwise:
//!
//! * **wheel** — the default: phase-1 drains gated by the timer wheel,
//!   phase 2 over the active set;
//! * **poll** — `set_always_poll(true)`: every phase-1 source polled
//!   every step (the pre-wheel loop);
//! * **poll + tick** — additionally `set_always_tick(true)`: every agent
//!   ticked every step (the original dense loop).
//!
//! Identity across all three pins the whole fast-path stack at once.

use gdisim_core::scenarios::{consolidated, faulted, validation};
use gdisim_core::{FaultAction, FaultEvent, FaultPlan, FaultTarget, Simulation};
use gdisim_ports::Executor;
use gdisim_types::SimTime;
use proptest::prelude::*;

fn executor_for(choice: usize) -> Executor {
    match choice {
        0 => Executor::serial(),
        1 => Executor::scatter_gather(4),
        _ => Executor::hdispatch(4, 16),
    }
}

/// The staged WAN outage of the `faulted` scenario, compressed so that
/// failover, partition, retries and recovery all land inside a short
/// proptest horizon.
fn compressed_fault_plan() -> FaultPlan {
    let link = |label: &str| FaultTarget::WanLink {
        label: label.into(),
    };
    let event = |at_secs: f64, target, action| FaultEvent {
        at_secs,
        target,
        action,
    };
    use FaultAction::{Fail, Recover};
    FaultPlan {
        events: vec![
            event(20.0, link(faulted::PRIMARY_LINK), Fail),
            event(40.0, link(faulted::BACKUP_LINK), Fail),
            event(60.0, link(faulted::PRIMARY_LINK), Recover),
            event(60.0, link(faulted::BACKUP_LINK), Recover),
        ],
        in_flight: gdisim_core::InFlightPolicy::Bounce,
        retry: Some(faulted::demo_retry_policy()),
    }
}

/// Fast fail/recover cycles of the primary link with a short-timeout
/// retry policy under `InFlightPolicy::Drop`: operations time out for
/// real, retry, and complete in waves — a cancellation-heavy load that
/// bumps the wheel's generation counters thousands of times per run.
fn churn_fault_plan() -> FaultPlan {
    let link = || FaultTarget::WanLink {
        label: faulted::PRIMARY_LINK.into(),
    };
    let mut events = Vec::new();
    for cycle in 0..6u32 {
        let base = 10.0 + 13.0 * f64::from(cycle);
        events.push(FaultEvent {
            at_secs: base,
            target: link(),
            action: FaultAction::Fail,
        });
        events.push(FaultEvent {
            at_secs: base + 6.0,
            target: link(),
            action: FaultAction::Recover,
        });
    }
    FaultPlan {
        events,
        in_flight: gdisim_core::InFlightPolicy::Drop,
        retry: Some(gdisim_workload::RetryPolicy {
            timeout_secs: 8.0,
            max_retries: 3,
            backoff_base_secs: 1.0,
            backoff_factor: 2.0,
            backoff_cap_secs: 10.0,
        }),
    }
}

fn build_scenario(scenario: usize, seed: u64) -> Simulation {
    match scenario {
        // Active fault plan: fault, retry, timeout and health gates.
        0 => {
            let mut sim = faulted::build(seed);
            sim.set_fault_plan(compressed_fault_plan())
                .expect("compressed plan matches the faulted topology");
            sim
        }
        // Periodic series sources: the series gate.
        1 => validation::build(validation::EXPERIMENTS[0], seed),
        // Cancellation churn: short timeouts + Drop policy + repeated
        // link flaps, so timeout gates are armed, cancelled and re-armed
        // continuously (the generation-counter protocol under load).
        2 => {
            let mut sim = faulted::build(seed);
            sim.set_fault_plan(churn_fault_plan())
                .expect("churn plan matches the faulted topology");
            sim
        }
        // Diurnal + session populations + background daemons: the
        // session-wake and background gates plus the ungated samplers.
        _ => consolidated::build(seed),
    }
}

/// Everything a run observes, extracted for exact comparison. Response
/// histories are keyed by their debug rendering so the signature stays
/// independent of the metrics registry's key type.
type Signature = (
    Vec<(String, Vec<(SimTime, f64)>)>,
    Vec<(String, Vec<f64>)>,
    Vec<f64>,
    (u64, u64, u64, u64, u64),
);

fn run(scenario: usize, seed: u64, executor: usize, horizon_secs: u64, mode: usize) -> Signature {
    let mut sim = build_scenario(scenario, seed);
    sim.set_executor(executor_for(executor));
    match mode {
        0 => {} // wheel-gated default
        1 => sim.set_always_poll(true),
        _ => {
            sim.set_always_poll(true);
            sim.set_always_tick(true);
        }
    }
    sim.run_until(SimTime::from_secs(horizon_secs));
    let report = sim.report();
    let responses: Vec<_> = report
        .responses
        .history_keys()
        .map(|k| (format!("{k:?}"), report.responses.history(k).to_vec()))
        .collect();
    let mut series: Vec<(String, Vec<f64>)> = Vec::new();
    for ((dc, tier), s) in &report.tier_cpu {
        series.push((format!("cpu {dc}/{tier}"), s.values().to_vec()));
    }
    for ((dc, tier), s) in &report.tier_disk {
        series.push((format!("disk {dc}/{tier}"), s.values().to_vec()));
    }
    for (label, s) in &report.wan_util {
        series.push((format!("wan {label}"), s.values().to_vec()));
    }
    let f = &report.faults;
    (
        responses,
        series,
        report.concurrent_clients.values().to_vec(),
        (
            f.failed_operations,
            f.retried_operations,
            f.abandoned_operations,
            f.dropped_messages,
            f.skipped_events,
        ),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For random seeds, horizons, executors and scenario families, a
    /// wheel-gated run, a polling run and a polling always-tick run all
    /// produce identical response histories, utilization series, client
    /// series and fault counters.
    #[test]
    fn wheel_polling_and_dense_runs_are_bit_identical(
        seed in 0u64..1_000,
        horizon_secs in 90u64..150,
        executor in 0usize..3,
        scenario in 0usize..4,
    ) {
        let wheel = run(scenario, seed, executor, horizon_secs, 0);
        let poll = run(scenario, seed, executor, horizon_secs, 1);
        prop_assert_eq!(&wheel.0, &poll.0, "responses diverged wheel vs poll");
        prop_assert_eq!(&wheel.1, &poll.1, "utilization diverged wheel vs poll");
        prop_assert_eq!(&wheel.2, &poll.2, "clients diverged wheel vs poll");
        prop_assert_eq!(wheel.3, poll.3, "fault counters diverged wheel vs poll");

        let dense = run(scenario, seed, executor, horizon_secs, 2);
        prop_assert_eq!(&poll.0, &dense.0, "responses diverged poll vs dense");
        prop_assert_eq!(&poll.1, &dense.1, "utilization diverged poll vs dense");
        prop_assert_eq!(&poll.2, &dense.2, "clients diverged poll vs dense");
        prop_assert_eq!(poll.3, dense.3, "fault counters diverged poll vs dense");
    }
}

/// The fault path actually fires in the proptest's scenario 0: a
/// deterministic smoke check that the compressed plan produces failures
/// and retries under the wheel, so the equivalence above is not
/// vacuously comparing idle runs.
#[test]
fn compressed_fault_scenario_exercises_the_fault_gates() {
    let sig = run(0, 42, 0, 120, 0);
    let (failed, retried, ..) = (sig.3 .0, sig.3 .1);
    assert!(failed > 0, "no operations failed — plan never fired");
    assert!(retried > 0, "no retries — retry gate never exercised");
}
