//! Gate-cancellation equivalence: the cancellation analogue of
//! `wheel_equivalence.rs`. Generation-counter cancellation retires
//! timer-wheel gates at the exact engine sites that used to strand them
//! — a timeout whose attempt completed or failed, a retry batch fully
//! launched, a fault plan exhausted, a health queue emptied — and every
//! retirement must be invisible to the simulation: a cancelled gate's
//! drain would have been a no-op, and the re-arm at the canonical
//! container's surviving head keeps every *live* event's gate firing
//! early-or-on-time, never late.
//!
//! The scenario here is deliberately cancellation-heavy: a short
//! per-attempt timeout with `InFlightPolicy::Drop` on a link that fails
//! and recovers in quick cycles, so operations constantly complete
//! before their (armed) timeouts, time out for real, retry and complete
//! again — thousands of bumps and re-arms per run. Wheel-gated runs are
//! compared bit-for-bit against `set_always_poll(true)` runs across all
//! three executors, down to the message-level hop trace.

use gdisim_core::scenarios::faulted;
use gdisim_core::{FaultAction, FaultEvent, FaultPlan, FaultTarget, Simulation};
use gdisim_ports::Executor;
use gdisim_types::SimTime;
use gdisim_workload::RetryPolicy;
use proptest::prelude::*;

fn executor_for(choice: usize) -> Executor {
    match choice {
        0 => Executor::serial(),
        1 => Executor::scatter_gather(4),
        _ => Executor::hdispatch(4, 16),
    }
}

/// A retry policy whose per-attempt timeout is short enough to actually
/// expire inside the proptest horizon (the demo policy's 300 s timeout
/// never fires there), with fast backoff so retries land quickly.
fn churn_retry_policy() -> RetryPolicy {
    RetryPolicy {
        timeout_secs: 8.0,
        max_retries: 3,
        backoff_base_secs: 1.0,
        backoff_factor: 2.0,
        backoff_cap_secs: 10.0,
    }
}

/// Repeated fail/recover cycles of the primary WAN link under
/// `InFlightPolicy::Drop`: in-flight operations caught by a failure hang
/// silently until their short timeout reaps them, exercising the real
/// timeout path (not just completion-side cancellation) every cycle.
fn churn_fault_plan() -> FaultPlan {
    let link = || FaultTarget::WanLink {
        label: faulted::PRIMARY_LINK.into(),
    };
    let mut events = Vec::new();
    for cycle in 0..6u32 {
        let base = 10.0 + 13.0 * f64::from(cycle);
        events.push(FaultEvent {
            at_secs: base,
            target: link(),
            action: FaultAction::Fail,
        });
        events.push(FaultEvent {
            at_secs: base + 6.0,
            target: link(),
            action: FaultAction::Recover,
        });
    }
    FaultPlan {
        events,
        in_flight: gdisim_core::InFlightPolicy::Drop,
        retry: Some(churn_retry_policy()),
    }
}

fn build(seed: u64) -> Simulation {
    let mut sim = faulted::build(seed);
    sim.set_fault_plan(churn_fault_plan())
        .expect("churn plan matches the faulted topology");
    sim
}

/// Everything a run observes — response histories, utilization series,
/// client series, fault counters, and the rendered message-level trace
/// (hops, launches, completions, failures, fault applications) with its
/// drop counters.
type Signature = (
    Vec<(String, Vec<(SimTime, f64)>)>,
    Vec<(String, Vec<f64>)>,
    Vec<f64>,
    (u64, u64, u64, u64, u64),
    Vec<String>,
    u64,
);

fn run(seed: u64, executor: usize, horizon_secs: u64, poll: bool) -> Signature {
    let mut sim = build(seed);
    sim.set_executor(executor_for(executor));
    sim.enable_trace(20_000);
    if poll {
        sim.set_always_poll(true);
    }
    sim.run_until(SimTime::from_secs(horizon_secs));
    let report = sim.report();
    let responses: Vec<_> = report
        .responses
        .history_keys()
        .map(|k| (format!("{k:?}"), report.responses.history(k).to_vec()))
        .collect();
    let mut series: Vec<(String, Vec<f64>)> = Vec::new();
    for ((dc, tier), s) in &report.tier_cpu {
        series.push((format!("cpu {dc}/{tier}"), s.values().to_vec()));
    }
    for ((dc, tier), s) in &report.tier_disk {
        series.push((format!("disk {dc}/{tier}"), s.values().to_vec()));
    }
    for (label, s) in &report.wan_util {
        series.push((format!("wan {label}"), s.values().to_vec()));
    }
    let trace = sim.trace().expect("trace enabled");
    let hops: Vec<String> = trace
        .events()
        .iter()
        .map(|(t, e)| format!("{t:?} {e:?}"))
        .collect();
    let dropped = trace.dropped();
    let f = &report.faults;
    (
        responses,
        series,
        report.concurrent_clients.values().to_vec(),
        (
            f.failed_operations,
            f.retried_operations,
            f.abandoned_operations,
            f.dropped_messages,
            f.skipped_events,
        ),
        hops,
        dropped,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For random seeds, horizons and executors, a cancellation-enabled
    /// wheel-gated run of the churn scenario is bit-identical to a
    /// polled run — responses, utilization, client counts, fault
    /// counters and the full message-level hop trace.
    #[test]
    fn cancellation_enabled_runs_match_polled_runs(
        seed in 0u64..1_000,
        horizon_secs in 90u64..150,
        executor in 0usize..3,
    ) {
        let wheel = run(seed, executor, horizon_secs, false);
        let poll = run(seed, executor, horizon_secs, true);
        prop_assert_eq!(&wheel.0, &poll.0, "responses diverged");
        prop_assert_eq!(&wheel.1, &poll.1, "utilization diverged");
        prop_assert_eq!(&wheel.2, &poll.2, "clients diverged");
        prop_assert_eq!(wheel.3, poll.3, "fault counters diverged");
        prop_assert_eq!(&wheel.4, &poll.4, "hop traces diverged");
        prop_assert_eq!(wheel.5, poll.5, "trace drop counts diverged");
    }
}

/// The equivalence above is not vacuous: a deterministic churn run under
/// the wheel actually times out, retries, completes — and cancels gates.
#[test]
fn churn_scenario_actually_cancels_gates() {
    let mut sim = build(42);
    sim.enable_profiler(0);
    sim.run_until(SimTime::from_secs(120));
    let f = &sim.report().faults;
    assert!(f.failed_operations > 0, "no operations failed");
    assert!(f.retried_operations > 0, "no retries launched");
    assert!(f.dropped_messages > 0, "no in-flight messages dropped");
    let p = sim.profiler().expect("profiler enabled");
    let cancelled: u64 = (0..gdisim_obs::NUM_CLASSES)
        .map(|c| p.drain_stats(c).cancelled)
        .sum();
    assert!(
        cancelled > 0,
        "churn run cancelled no gates — the protocol never engaged"
    );
    // Cancellation must pay for itself where it matters: the timeout
    // class, where every completion retires the completed attempt's
    // gate.
    let timeouts = p
        .drain_stats(gdisim_core::EventClass::Timeouts.index())
        .cancelled;
    assert!(timeouts > 0, "no timeout gates were cancelled");
}
