//! The full consolidation pipeline on a compressed horizon: workloads,
//! background daemons, WAN routing and reporting all working together.

use gdisim_background::BackgroundKind;
use gdisim_core::scenarios::consolidated;
use gdisim_types::{SimDuration, SimTime, TierKind};

/// Two hours of the simulated day — enough for 8 SYNCHREP launches and
/// several INDEXBUILDs, without test-runtime pain.
const HORIZON: SimTime = SimTime::from_hours(2);

fn run() -> &'static gdisim_core::Report {
    static REPORT: std::sync::OnceLock<gdisim_core::Report> = std::sync::OnceLock::new();
    REPORT.get_or_init(|| {
        let mut sim = consolidated::build(11);
        sim.run_until(HORIZON);
        sim.into_report()
    })
}

#[test]
fn background_processes_run_and_complete() {
    let report = run();
    let srs = report.background_of(BackgroundKind::SyncRep);
    // ΔT_SR = 15 min: 8 launches in 2 h; at least the early ones finish.
    assert!(srs.len() >= 5, "only {} SYNCHREPs completed", srs.len());
    for sr in &srs {
        assert!(sr.volume_bytes > 0.0, "SR with no volume");
        assert!(sr.response_secs() > 1.0, "implausibly fast SR");
        assert!(sr.response_secs() < 3600.0, "SR never converged");
    }
    let ibs = report.background_of(BackgroundKind::IndexBuild);
    assert!(!ibs.is_empty(), "no INDEXBUILD completed");
    // Night-time volumes are small; builds finish well under the gap+run
    // cadence and strictly serialize (one at a time per master).
    for w in ibs.windows(2) {
        assert!(
            w[1].launched_at >= w[0].finished_at,
            "INDEXBUILDs overlapped: {:?} then {:?}",
            w[0],
            w[1]
        );
    }
}

#[test]
fn master_serves_remote_metadata_and_slaves_serve_files() {
    let report = run();
    // The master has all four tiers active.
    for tier in TierKind::ALL {
        let s = report.cpu("NA", tier).expect("NA tier series");
        assert!(
            gdisim_metrics::mean(s.values()) > 0.0,
            "tier {tier} at the master never worked"
        );
    }
    // Slaves have only Tfs, and during 00:00-02:00 GMT the AS/AUS
    // populations are in business hours, so their file tiers are active.
    for slave in ["AS", "AUS"] {
        let fs = report.cpu(slave, TierKind::Fs).expect("slave Tfs series");
        assert!(
            gdisim_metrics::mean(fs.values()) > 0.0,
            "{slave} file tier idle"
        );
        assert!(
            report.cpu(slave, TierKind::App).is_none(),
            "{slave} must not have Tapp"
        );
    }
}

#[test]
fn wan_links_carry_traffic_within_capacity() {
    let report = run();
    assert_eq!(report.wan_util.len(), 8, "eight WAN links reported");
    let mut any_active = false;
    for (label, series) in &report.wan_util {
        for v in series.values() {
            assert!(
                (0.0..=1.0).contains(v),
                "{label} utilization {v} out of range"
            );
        }
        let mean = gdisim_metrics::mean(series.values());
        if mean > 0.01 {
            any_active = true;
        }
        // Backup links carry nothing.
        if label.contains("EU->AFR") || label.contains("EU->AS1") {
            assert!(mean < 1e-6, "backup link {label} carried traffic: {mean}");
        }
    }
    assert!(any_active, "no WAN link ever carried traffic");
}

#[test]
fn remote_clients_pay_latency_on_chatty_operations() {
    // Run a bit longer so AUS (deep business hours at 00:00 GMT) piles up
    // completions of the chatty ops.
    let mut sim = consolidated::build(11);
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(5400));
    let report = sim.into_report();

    let na = gdisim_types::DcId(0);
    let aus = gdisim_types::DcId(5);
    let cad = gdisim_types::AppId(0);
    // EXPLORE = op 3 (13 master round trips), OPEN = op 6 (1 round trip).
    let key = |op: u32, dc| gdisim_metrics::ResponseKey {
        app: cad,
        op: gdisim_types::OpTypeId(op),
        dc,
    };
    let explore_na = report.responses.history_mean(key(3, na));
    let explore_aus = report.responses.history_mean(key(3, aus));
    let open_na = report.responses.history_mean(key(6, na));
    let open_aus = report.responses.history_mean(key(6, aus));
    if let (Some(ena), Some(eaus)) = (explore_na, explore_aus) {
        assert!(
            eaus > ena * 1.2,
            "EXPLORE from AUS should pay many WAN round trips: NA {ena:.2}s vs AUS {eaus:.2}s"
        );
    }
    if let (Some(ona), Some(oaus)) = (open_na, open_aus) {
        let rel = (oaus - ona).abs() / ona;
        assert!(
            rel < 0.15,
            "OPEN is served locally; relative gap {rel:.2} too large"
        );
    }
}
