//! Observability must be a pure observer: enabling the step-loop
//! profiler, the trace log and histogram-mode response aggregation
//! must not perturb the simulation by a single bit, for every scenario
//! family and executor. Alongside the equivalence proptest, golden
//! checks pin the three export formats (profile JSON, Perfetto trace,
//! trace JSONL) at the integration level.

use gdisim_core::scenarios::{consolidated, faulted, validation};
use gdisim_core::{FaultAction, FaultEvent, FaultPlan, FaultTarget, Simulation};
use gdisim_metrics::LogHistogram;
use gdisim_obs::{NUM_CLASSES, PHASE_NAMES};
use gdisim_ports::Executor;
use gdisim_types::{SimDuration, SimTime};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn executor_for(choice: usize) -> Executor {
    match choice {
        0 => Executor::serial(),
        1 => Executor::scatter_gather(4),
        _ => Executor::hdispatch(4, 16),
    }
}

/// The staged WAN outage of the `faulted` scenario, compressed so the
/// fault, retry and timeout machinery all fire inside a short horizon.
fn compressed_fault_plan() -> FaultPlan {
    let link = |label: &str| FaultTarget::WanLink {
        label: label.into(),
    };
    use FaultAction::{Fail, Recover};
    FaultPlan {
        events: vec![
            FaultEvent {
                at_secs: 20.0,
                target: link(faulted::PRIMARY_LINK),
                action: Fail,
            },
            FaultEvent {
                at_secs: 40.0,
                target: link(faulted::BACKUP_LINK),
                action: Fail,
            },
            FaultEvent {
                at_secs: 60.0,
                target: link(faulted::PRIMARY_LINK),
                action: Recover,
            },
            FaultEvent {
                at_secs: 60.0,
                target: link(faulted::BACKUP_LINK),
                action: Recover,
            },
        ],
        in_flight: gdisim_core::InFlightPolicy::Bounce,
        retry: Some(faulted::demo_retry_policy()),
    }
}

fn build_scenario(scenario: usize, seed: u64) -> Simulation {
    match scenario {
        0 => {
            let mut sim = faulted::build(seed);
            sim.set_fault_plan(compressed_fault_plan())
                .expect("compressed plan matches the faulted topology");
            sim
        }
        1 => validation::build(validation::EXPERIMENTS[0], seed),
        _ => consolidated::build(seed),
    }
}

/// Everything a run observes besides response times: utilization
/// series, the concurrent-client series and the fault counters.
type CoreSignature = (Vec<(String, Vec<f64>)>, Vec<f64>, (u64, u64, u64, u64, u64));

fn core_signature(sim: &Simulation) -> CoreSignature {
    let report = sim.report();
    let mut series: Vec<(String, Vec<f64>)> = Vec::new();
    for ((dc, tier), s) in &report.tier_cpu {
        series.push((format!("cpu {dc}/{tier}"), s.values().to_vec()));
    }
    for ((dc, tier), s) in &report.tier_disk {
        series.push((format!("disk {dc}/{tier}"), s.values().to_vec()));
    }
    for (label, s) in &report.wan_util {
        series.push((format!("wan {label}"), s.values().to_vec()));
    }
    let f = &report.faults;
    (
        series,
        report.concurrent_clients.values().to_vec(),
        (
            f.failed_operations,
            f.retried_operations,
            f.abandoned_operations,
            f.dropped_messages,
            f.skipped_events,
        ),
    )
}

/// Runs with every observability feature off (the exact-history
/// default) and returns the signature plus per-key response
/// histograms rebuilt from the exact history — the reference the
/// histogram-mode run must reproduce.
fn run_baseline(
    scenario: usize,
    seed: u64,
    executor: usize,
    horizon_secs: u64,
) -> (CoreSignature, BTreeMap<String, LogHistogram>) {
    let mut sim = build_scenario(scenario, seed);
    sim.set_executor(executor_for(executor));
    sim.run_until(SimTime::from_secs(horizon_secs));
    let mut rebuilt = BTreeMap::new();
    let report = sim.report();
    for key in report.responses.history_keys() {
        let h: &mut LogHistogram = rebuilt.entry(format!("{key:?}")).or_default();
        for &(_, secs) in report.responses.history(key) {
            // `record` fed the histogram `duration.as_micros()`; the
            // history stored `as_secs_f64()` of the same duration, so
            // the round-trip is exact for any realistic response time.
            h.record(SimDuration::from_secs_f64(secs).as_micros());
        }
    }
    (core_signature(&sim), rebuilt)
}

/// Runs with every observability feature ON: profiler with span
/// recording, trace log and histogram-mode responses.
fn run_observed(
    scenario: usize,
    seed: u64,
    executor: usize,
    horizon_secs: u64,
) -> (CoreSignature, BTreeMap<String, LogHistogram>) {
    let mut sim = build_scenario(scenario, seed);
    sim.set_executor(executor_for(executor));
    sim.enable_profiler(50_000);
    sim.enable_trace(50_000);
    sim.enable_response_histograms();
    sim.run_until(SimTime::from_secs(horizon_secs));
    let report = sim.report();
    let hists = report
        .responses
        .histogram_keys()
        .map(|k| {
            let h = report
                .responses
                .histogram(k)
                .expect("key came from histogram_keys")
                .clone();
            (format!("{k:?}"), h)
        })
        .collect();
    (core_signature(&sim), hists)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// For random seeds, horizons, executors and scenario families, a
    /// fully-instrumented run (profiler + trace + response histograms)
    /// observes exactly what an uninstrumented run observes.
    #[test]
    fn observed_and_bare_runs_are_bit_identical(
        seed in 0u64..1_000,
        horizon_secs in 90u64..150,
        executor in 0usize..3,
        scenario in 0usize..3,
    ) {
        let (bare, rebuilt) = run_baseline(scenario, seed, executor, horizon_secs);
        let (observed, hists) = run_observed(scenario, seed, executor, horizon_secs);
        prop_assert_eq!(&bare.0, &observed.0, "utilization diverged under observation");
        prop_assert_eq!(&bare.1, &observed.1, "clients diverged under observation");
        prop_assert_eq!(bare.2, observed.2, "fault counters diverged under observation");
        prop_assert_eq!(&rebuilt, &hists, "response histograms diverged under observation");
    }
}

/// One fully-instrumented faulted run shared by the export checks.
fn observed_faulted_run() -> Simulation {
    let mut sim = faulted::build(42);
    sim.set_fault_plan(compressed_fault_plan())
        .expect("compressed plan matches the faulted topology");
    sim.enable_profiler(100_000);
    sim.enable_trace(100_000);
    sim.run_until(SimTime::from_secs(120));
    sim
}

#[test]
fn profile_export_parses_with_required_keys_and_exact_phase_sum() {
    let sim = observed_faulted_run();
    let profile = sim.step_profile().expect("profiler enabled");
    let json = gdisim_obs::export::profile_json(&profile, Some(&sim.metrics_snapshot()));
    let v = serde_json::parse_value(&json).expect("profile JSON parses");
    assert_eq!(
        v.get("schema").and_then(|s| s.as_str()),
        Some("gdisim.profile.v1")
    );
    for key in [
        "steps",
        "wall_ns",
        "phases",
        "step_ns",
        "drains",
        "active_set",
        "registry",
    ] {
        assert!(v.get(key).is_some(), "profile JSON lacks '{key}'");
    }
    // The acceptance bar is "phase totals within 10% of step wall
    // time"; the span protocol makes the sum exact by construction, so
    // assert both the bar and the stronger identity.
    let wall = v.get("wall_ns").and_then(|w| w.as_u64()).expect("wall_ns");
    let phases = v.get("phases").and_then(|p| p.as_object()).expect("phases");
    let phase_sum: u64 = phases
        .iter()
        .map(|(_, p)| {
            p.get("wall_ns")
                .and_then(|w| w.as_u64())
                .expect("phase wall_ns")
        })
        .sum();
    assert_eq!(
        phase_sum, wall,
        "phase wall totals must sum to step wall time"
    );
    assert!((phase_sum as f64 - wall as f64).abs() <= 0.10 * wall as f64);
    // Every drain class is reported, and the wheel actually gated some
    // drains while skipping most — the run is not vacuously idle.
    let drains = v.get("drains").and_then(|d| d.as_object()).expect("drains");
    assert_eq!(drains.len(), NUM_CLASSES);
    let total = |field: &str| -> u64 {
        drains
            .iter()
            .map(|(_, d)| d.get(field).and_then(|x| x.as_u64()).unwrap_or(0))
            .sum()
    };
    assert!(total("gated") > 0, "no drain was ever wheel-gated");
    assert!(total("skipped") > 0, "no drain was ever skipped");
    assert!(total("events") > 0, "no drain ever processed an event");
}

#[test]
fn perfetto_export_is_wellformed_chrome_trace_json() {
    let sim = observed_faulted_run();
    let spans = sim.profiler().expect("profiler enabled").spans();
    assert!(!spans.is_empty(), "no spans recorded");
    let json = gdisim_obs::perfetto::render_trace(spans);
    let v = serde_json::parse_value(&json).expect("perfetto JSON parses");
    let events = v
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    assert_eq!(events.len(), spans.len());
    let first = &events[0];
    assert!(PHASE_NAMES.contains(&first.get("name").and_then(|n| n.as_str()).expect("name")));
    assert_eq!(first.get("ph").and_then(|p| p.as_str()), Some("X"));
    assert_eq!(first.get("pid").and_then(|p| p.as_u64()), Some(1));
    assert!(first.get("ts").is_some() && first.get("dur").is_some());
    assert_eq!(
        v.get("displayTimeUnit").and_then(|d| d.as_str()),
        Some("ms")
    );
}

#[test]
fn jsonl_export_parses_line_by_line_with_drop_trailer() {
    let sim = observed_faulted_run();
    let trace = sim.trace().expect("trace enabled");
    let mut buf = Vec::new();
    trace.write_jsonl(&mut buf).expect("in-memory write");
    let text = String::from_utf8(buf).expect("JSONL is UTF-8");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(
        lines.len(),
        trace.events().len() + 1,
        "one line per event + trailer"
    );
    for (i, line) in lines.iter().enumerate().take(lines.len() - 1) {
        let v = serde_json::parse_value(line)
            .unwrap_or_else(|e| panic!("line {i} is not valid JSON: {e}"));
        assert!(v.get("t_us").is_some(), "line {i} lacks t_us");
        assert!(v.get("event").is_some(), "line {i} lacks event");
    }
    let trailer =
        serde_json::parse_value(lines.last().expect("trailer line")).expect("trailer parses");
    let by_kind = trailer
        .get("dropped_by_kind")
        .and_then(|d| d.as_object())
        .expect("dropped_by_kind object");
    assert_eq!(by_kind.len(), 7, "all seven event kinds reported");
    for (kind, entry) in by_kind {
        assert!(
            entry.get("count").is_some(),
            "trailer entry '{kind}' lacks count"
        );
    }
}

/// A trace that overflows its capacity records when each kind first
/// dropped, and the trailer surfaces it.
#[test]
fn jsonl_trailer_reports_first_drop_time_when_capacity_overflows() {
    let mut sim = faulted::build(7);
    sim.enable_trace(16); // tiny capacity: drops guaranteed
    sim.run_until(SimTime::from_secs(120));
    let trace = sim.trace().expect("trace enabled");
    assert!(trace.dropped_by_kind().total() > 0, "run never overflowed");
    let mut buf = Vec::new();
    trace.write_jsonl(&mut buf).expect("in-memory write");
    let text = String::from_utf8(buf).expect("JSONL is UTF-8");
    let trailer = serde_json::parse_value(text.lines().last().expect("trailer")).expect("parses");
    let by_kind = trailer
        .get("dropped_by_kind")
        .and_then(|d| d.as_object())
        .expect("dropped_by_kind object");
    let overflowed = by_kind.iter().any(|(_, entry)| {
        entry.get("count").and_then(|c| c.as_u64()).unwrap_or(0) > 0
            && entry.get("first_dropped_us").is_some()
    });
    assert!(
        overflowed,
        "no kind reported a first_dropped_us despite drops"
    );
}
