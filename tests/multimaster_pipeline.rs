//! The multiple-master pipeline (Ch. 7) on a compressed horizon: every
//! site acts as a master, ownership follows Table 7.2, and each master
//! runs its own SR/IB pair.

use gdisim_background::BackgroundKind;
use gdisim_core::scenarios::multimaster;
use gdisim_types::{SimTime, TierKind};

const HORIZON: SimTime = SimTime::from_hours(2);

fn run() -> &'static gdisim_core::Report {
    static REPORT: std::sync::OnceLock<gdisim_core::Report> = std::sync::OnceLock::new();
    REPORT.get_or_init(|| {
        let mut sim = multimaster::build(13);
        sim.run_until(HORIZON);
        sim.into_report()
    })
}

#[test]
fn every_master_runs_its_own_synchrep() {
    let report = run();
    let mut masters_seen: Vec<usize> = report
        .background_of(BackgroundKind::SyncRep)
        .iter()
        .map(|r| r.master_site)
        .collect();
    masters_seen.sort_unstable();
    masters_seen.dedup();
    assert!(
        masters_seen.len() >= 5,
        "expected SYNCHREPs from nearly all six masters, saw sites {masters_seen:?}"
    );
}

#[test]
fn per_master_volumes_are_smaller_than_single_master() {
    // Ownership partitions the data: each master's per-run volume must
    // be below the global per-run volume a single master would move.
    let report = run();
    let mut per_master_max = vec![0.0f64; multimaster::SITES.len()];
    let mut total_per_window = 0.0;
    for sr in report.background_of(BackgroundKind::SyncRep) {
        per_master_max[sr.master_site] = per_master_max[sr.master_site].max(sr.volume_bytes);
        total_per_window += sr.volume_bytes;
    }
    let n_windows = report
        .background_of(BackgroundKind::SyncRep)
        .iter()
        .map(|r| r.launched_at)
        .collect::<std::collections::BTreeSet<_>>()
        .len()
        .max(1);
    let global_avg = total_per_window / n_windows as f64;
    for (site, max) in multimaster::SITES.iter().zip(&per_master_max) {
        assert!(
            *max < global_avg,
            "{site}'s worst SR volume {max} should undercut the global per-window volume {global_avg}"
        );
    }
}

#[test]
fn all_sites_have_full_management_stacks() {
    let report = run();
    for site in multimaster::SITES {
        for tier in TierKind::ALL {
            assert!(
                report.cpu(site, tier).is_some(),
                "{site} lacks a {tier} series — masters must hold the full stack"
            );
        }
    }
    // During 00:00-02:00 GMT, AS and AUS are in business hours and their
    // *own* app tiers now do management work (ownership is local-heavy).
    for site in ["AS", "AUS"] {
        let app = report.cpu(site, TierKind::App).unwrap();
        assert!(
            gdisim_metrics::mean(app.values()) > 0.0,
            "{site} app tier idle despite local ownership"
        );
    }
}

#[test]
fn indexbuilds_serialize_per_master_but_overlap_across_masters() {
    let report = run();
    let ibs = report.background_of(BackgroundKind::IndexBuild);
    assert!(!ibs.is_empty(), "no INDEXBUILD completed in two hours");
    // Per master: strictly serialized.
    for site in 0..multimaster::SITES.len() {
        let mine: Vec<_> = ibs.iter().filter(|r| r.master_site == site).collect();
        for w in mine.windows(2) {
            assert!(
                w[1].launched_at >= w[0].finished_at,
                "master {site} overlapped its own INDEXBUILDs"
            );
        }
    }
}
