//! End-to-end validation pipeline: the downscaled infrastructure under
//! the Ch. 5 series schedule, checked for physical plausibility and
//! clean drainage.

use gdisim_core::scenarios::validation::{self, APP_SERIES, EXPERIMENTS};
use gdisim_metrics::ResponseKey;
use gdisim_types::{DcId, OpTypeId, SimTime, TierKind};

#[test]
fn operations_complete_with_canonical_scale_durations() {
    let mut sim = validation::build(EXPERIMENTS[0], 7);
    sim.run_until(SimTime::from_secs(10 * 60));
    let report = sim.report();

    // The light series launches every 15 s; LOGIN (canonical 1.94 s) must
    // have completed many times with a plausible mean.
    let login = ResponseKey {
        app: APP_SERIES[0],
        op: OpTypeId(0),
        dc: DcId(0),
    };
    let history = report.responses.history(login);
    assert!(
        history.len() > 20,
        "only {} LOGINs in 10 minutes",
        history.len()
    );
    let mean = report.responses.history_mean(login).unwrap();
    assert!(
        (1.0..5.0).contains(&mean),
        "LOGIN mean {mean}s is out of band"
    );

    // OPEN of the heavy series is the long pole (canonical 96.5 s).
    let open = ResponseKey {
        app: APP_SERIES[2],
        op: OpTypeId(6),
        dc: DcId(0),
    };
    if let Some(mean) = report.responses.history_mean(open) {
        assert!((80.0..140.0).contains(&mean), "heavy OPEN mean {mean}s");
    }
}

#[test]
fn utilization_is_physical_and_ordered_by_pressure() {
    let horizon = SimTime::from_secs(12 * 60);
    let window_start = SimTime::from_secs(4 * 60);
    let mut means = Vec::new();
    for exp in EXPERIMENTS {
        let mut sim = validation::build(exp, 7);
        sim.run_until(horizon);
        let report = sim.report();
        let mut tier_means = Vec::new();
        for tier in TierKind::ALL {
            let s = report.cpu("NA", tier).expect("tier series");
            for v in s.values() {
                assert!((0.0..=1.0).contains(v), "utilization out of range: {v}");
            }
            tier_means.push(s.window_mean(window_start, horizon));
        }
        means.push(tier_means);
    }
    // Shorter launch periods load every tier harder (Table 5.2's trend).
    for t in 0..4 {
        assert!(
            means[0][t] < means[1][t] && means[1][t] < means[2][t],
            "tier {t} not monotone: {:?}",
            means.iter().map(|m| m[t]).collect::<Vec<_>>()
        );
        assert!(
            means[2][t] > 0.05,
            "tier {t} suspiciously idle under the heaviest schedule"
        );
    }
    // Tapp is the busiest tier throughout, as in the paper.
    for m in &means {
        assert!(m[0] >= m[1] && m[0] >= m[3], "Tapp should dominate: {m:?}");
    }
}

#[test]
fn system_drains_after_launch_window() {
    // Custom short-lived source: stop launching after two minutes, then
    // verify every cascade drains — no leaked in-flight work.
    let mut sim = validation::build(EXPERIMENTS[0], 7);
    sim.run_until(SimTime::from_secs(120));
    assert!(sim.active_operations() > 0, "series should be in flight");
    // Nothing new launches after LAUNCH_WINDOW; run far beyond the
    // longest series duration (~244 s) past the stop.
    sim.run_until(
        SimTime::ZERO + validation::LAUNCH_WINDOW + gdisim_types::SimDuration::from_secs(400),
    );
    assert_eq!(sim.active_operations(), 0, "operations leaked after drain");
}

#[test]
fn trace_drills_down_to_individual_agents() {
    let mut sim = validation::build(EXPERIMENTS[0], 7);
    sim.enable_trace(200_000);
    sim.run_until(SimTime::from_secs(120));
    let trace = sim.trace().expect("tracing enabled");
    let events = trace.events();
    assert!(!events.is_empty());
    // Every completed operation has a matching launch, and its events
    // are time-ordered.
    let mut launches = std::collections::HashSet::new();
    let mut completions = 0;
    for (_, e) in events {
        match e {
            gdisim_core::TraceEvent::Launch { instance, .. } => {
                launches.insert(*instance);
            }
            gdisim_core::TraceEvent::OperationDone {
                instance,
                response_secs,
            } => {
                assert!(launches.contains(instance), "completion without launch");
                assert!(*response_secs > 0.0);
                completions += 1;
            }
            _ => {}
        }
    }
    assert!(
        completions > 5,
        "operations completed under trace: {completions}"
    );
    // Per-element drill-down: some agent (a CPU) served hops.
    let total_hops: usize = (0..40)
        .map(|i| trace.hops_at(gdisim_types::AgentId(i)))
        .sum();
    assert!(total_hops > 100, "hop events recorded: {total_hops}");
    // Timestamps are monotone.
    assert!(events.windows(2).all(|w| w[0].0 <= w[1].0));
}

#[test]
fn concurrent_clients_match_littles_law_scale() {
    let mut sim = validation::build(EXPERIMENTS[0], 7);
    sim.run_until(SimTime::from_secs(15 * 60));
    let report = sim.report();
    // Little's law with canonical series durations predicts ~16 clients
    // for the 15-36-60 schedule; queueing inflation can only raise it.
    let steady = report
        .concurrent_clients
        .window_mean(SimTime::from_secs(6 * 60), SimTime::from_secs(15 * 60));
    assert!(
        (10.0..30.0).contains(&steady),
        "steady concurrent clients {steady}"
    );
}
