//! Scenario inputs are plain serde data: every topology, catalog and
//! workload must survive a JSON round trip unchanged (operators edit
//! these files), and a deserialized spec must build the same
//! infrastructure.

use gdisim_core::scenarios::{consolidated, multimaster, rates, validation};
use gdisim_infra::{Infrastructure, TopologySpec};
use gdisim_workload::{AccessPatternMatrix, Catalog};

fn roundtrip_topology(spec: &TopologySpec) {
    let json = serde_json::to_string_pretty(spec).expect("serialize");
    let back: TopologySpec = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(*spec, back, "topology changed across JSON round trip");
    let a = Infrastructure::build(spec, 5).expect("build original");
    let mut b = Infrastructure::build(&back, 5).expect("build deserialized");
    assert_eq!(a.agent_count(), b.agent_count());
    assert_eq!(a.data_centers().len(), b.data_centers().len());
    assert_eq!(b.total_in_flight(), 0);
}

#[test]
fn all_three_scenario_topologies_roundtrip() {
    roundtrip_topology(&validation::downscaled_topology());
    roundtrip_topology(&consolidated::topology());
    roundtrip_topology(&multimaster::topology());
}

#[test]
fn calibrated_catalog_roundtrips() {
    let catalog = Catalog::standard(&rates::lab_rate_card());
    let json = serde_json::to_string(&catalog).expect("serialize catalog");
    let back: Catalog = serde_json::from_str(&json).expect("deserialize catalog");
    assert_eq!(catalog, back);
    // Spot-check an R vector survived with full precision.
    let open = catalog.app("CAD").unwrap().op("OPEN").unwrap().1;
    let open_back = back.app("CAD").unwrap().op("OPEN").unwrap().1;
    assert_eq!(open.total_r(), open_back.total_r());
}

#[test]
fn workloads_and_growth_roundtrip() {
    for wl in consolidated::workloads() {
        let json = serde_json::to_string(&wl).expect("serialize workload");
        let back: gdisim_workload::AppWorkload = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(wl, back);
    }
    let growth = consolidated::data_growth();
    let json = serde_json::to_string(&growth).expect("serialize growth");
    let back: gdisim_background::DataGrowth = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(growth, back);
}

#[test]
fn access_pattern_matrix_roundtrips() {
    let apm = AccessPatternMatrix::multimaster_table_7_2();
    let json = serde_json::to_string(&apm).expect("serialize APM");
    let back: AccessPatternMatrix = serde_json::from_str(&json).expect("deserialize APM");
    assert_eq!(apm, back);
}

#[test]
fn legacy_cascades_without_stage_markers_deserialize() {
    // `concurrent_with_prev` has a serde default: templates written
    // before the field existed must still load (and be fully sequential).
    let json = r#"{
        "name": "PING",
        "steps": [{
            "from": {"holon": "Client", "site": "Client"},
            "to": {"holon": {"Tier": "App"}, "site": "Master"},
            "r": {"cycles": 1.0, "net_bytes": 0.0, "mem_bytes": 0.0, "disk_bytes": 0.0}
        }]
    }"#;
    let t: gdisim_workload::OperationTemplate = serde_json::from_str(json).expect("parse legacy");
    assert_eq!(t.stages().len(), 1);
    assert!(!t.steps[0].concurrent_with_prev);
}
