//! Property-based invariants across the queueing, workload and
//! background crates: conservation laws that must hold for *any* input,
//! not just the scenario configurations.

use gdisim_background::{DataGrowth, GrowthCurve};
use gdisim_queueing::{FcfsMulti, JobToken, PsQueue, Station};
use gdisim_types::TierKind;
use gdisim_types::{SimDuration, SimTime};
use gdisim_workload::{DiurnalCurve, Endpoint, OperationShape, RateCard, Site, StepShape};
use proptest::prelude::*;

const DT: SimDuration = SimDuration::from_millis(10);

fn drain(q: &mut dyn Station, max_ticks: u64) -> Vec<JobToken> {
    let mut done = Vec::new();
    let mut now = SimTime::ZERO;
    for _ in 0..max_ticks {
        q.tick(now, DT, &mut done);
        now += DT;
        if q.in_system() == 0 {
            break;
        }
    }
    done
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FCFS never loses or duplicates a job, and completes in FIFO order
    /// on a single server.
    #[test]
    fn fcfs_conserves_jobs_in_order(
        demands in proptest::collection::vec(0.0f64..50.0, 1..40),
        rate in 10.0f64..1000.0,
    ) {
        let mut q = FcfsMulti::new(1, rate);
        for (i, d) in demands.iter().enumerate() {
            q.enqueue(JobToken(i as u64), *d, SimTime::ZERO);
        }
        let done = drain(&mut q, 1_000_000);
        prop_assert_eq!(done.len(), demands.len(), "every job completes exactly once");
        let ids: Vec<u64> = done.iter().map(|t| t.0).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        prop_assert_eq!(&ids, &sorted, "single-server FCFS preserves order");
        prop_assert_eq!(q.in_system(), 0);
    }

    /// Multi-server FCFS still conserves jobs (order may interleave).
    #[test]
    fn fcfs_multi_server_conserves_jobs(
        demands in proptest::collection::vec(0.0f64..50.0, 1..60),
        servers in 1u32..8,
    ) {
        let mut q = FcfsMulti::new(servers, 100.0);
        for (i, d) in demands.iter().enumerate() {
            q.enqueue(JobToken(i as u64), *d, SimTime::ZERO);
        }
        let done = drain(&mut q, 1_000_000);
        let mut ids: Vec<u64> = done.iter().map(|t| t.0).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), demands.len());
    }

    /// PS conserves jobs and its per-tick service never exceeds capacity.
    #[test]
    fn ps_conserves_jobs_and_capacity(
        demands in proptest::collection::vec(0.1f64..20.0, 1..50),
        k in 1u32..16,
        rate in 50.0f64..500.0,
    ) {
        let mut q = PsQueue::new(rate, k);
        let total_demand: f64 = demands.iter().sum();
        for (i, d) in demands.iter().enumerate() {
            q.enqueue(JobToken(i as u64), *d, SimTime::ZERO);
        }
        // Minimum ticks needed if the queue ran at full capacity; the
        // queue must not beat it (work conservation upper bound).
        let min_ticks = (total_demand / (rate * DT.as_secs_f64())).floor() as u64;
        let mut done = Vec::new();
        let mut now = SimTime::ZERO;
        let mut ticks = 0u64;
        while q.in_system() > 0 && ticks < 1_000_000 {
            q.tick(now, DT, &mut done);
            now += DT;
            ticks += 1;
        }
        prop_assert_eq!(done.len(), demands.len());
        prop_assert!(ticks >= min_ticks, "finished faster than capacity allows: {} < {}", ticks, min_ticks);
    }

    /// Calibration inverts the forward timing model for arbitrary shapes.
    #[test]
    fn calibration_roundtrips_for_random_shapes(
        raw in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0), 1..10),
        target_secs in 1.0f64..200.0,
    ) {
        // Normalize the random shares to sum to 1.
        let total: f64 = raw.iter().map(|(a, b, c)| a + b + c).sum();
        prop_assume!(total > 1e-6);
        let c_ep = Endpoint::client();
        let app = Endpoint::tier(TierKind::App, Site::Master);
        let steps: Vec<StepShape> = raw
            .iter()
            .map(|(cpu, net, disk)| {
                StepShape::new(c_ep, app, cpu / total, net / total, disk / total)
            })
            .collect();
        let shape = OperationShape::new("PROP", steps);
        let rates = RateCard {
            client_clock_hz: 2e9,
            server_clock_hz: 2.5e9,
            net_secs_per_byte: 2.48e-8,
            disk_bytes_per_sec: 1.9e8,
            per_message_overhead: SimDuration::from_millis(1),
        };
        let target = SimDuration::from_secs_f64(target_secs);
        let template = shape.calibrate(target, &rates);
        let forward = OperationShape::unloaded_duration(&template, &rates);
        let err = (forward.as_secs_f64() - target.as_secs_f64()).abs();
        prop_assert!(err < 1e-5, "forward {} vs target {}", forward, target);
        for s in &template.steps {
            prop_assert!(s.r.is_valid());
        }
    }

    /// Growth integration is additive over adjacent windows.
    #[test]
    fn growth_integration_is_additive(
        peak in 100.0f64..10000.0,
        split_min in 1u64..119,
    ) {
        let growth = DataGrowth {
            sites: vec![GrowthCurve {
                site: "X".into(),
                curve: DiurnalCurve::business_day(0.0, peak * 0.1, peak).into(),
            }],
            avg_file_bytes: 50e6,
        };
        let a = SimTime::from_hours(8); // spans the ramp-up
        let m = SimTime::from_secs(8 * 3600 + split_min * 60);
        let b = SimTime::from_hours(10);
        let whole = growth.generated_bytes(0, a, b);
        let parts = growth.generated_bytes(0, a, m) + growth.generated_bytes(0, m, b);
        prop_assert!((whole - parts).abs() <= 1e-6 * whole.max(1.0),
            "additivity violated: {} vs {}", whole, parts);
    }

    /// Diurnal populations never leave the [base, peak] envelope.
    #[test]
    fn diurnal_population_stays_in_envelope(
        tz in -12.0f64..12.0,
        base in 0.0f64..100.0,
        extra in 0.0f64..2000.0,
        hour in 0.0f64..24.0,
    ) {
        let peak = base + extra;
        let c = DiurnalCurve::business_day(tz, base, peak);
        let p = c.population_at_local_hour(hour);
        prop_assert!(p >= base - 1e-9 && p <= peak + 1e-9, "population {} outside [{}, {}]", p, base, peak);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The active-set fast path and the always-tick loop are the same
    /// simulation: for random scenarios, seeds and horizons, response
    /// histories and every utilization series must match bit for bit.
    #[test]
    fn active_set_matches_always_tick_for_random_scenarios(
        experiment in 0usize..3,
        seed in 0u64..1_000,
        horizon_secs in 30u64..120,
    ) {
        use gdisim_core::scenarios::validation::{self, EXPERIMENTS};

        let run = |always_tick: bool| {
            let mut sim = validation::build(EXPERIMENTS[experiment], seed);
            sim.set_always_tick(always_tick);
            sim.run_until(SimTime::from_secs(horizon_secs));
            let report = sim.report();
            let responses: Vec<_> = report
                .responses
                .history_keys()
                .map(|k| (k, report.responses.history(k).to_vec()))
                .collect();
            let mut series: Vec<(String, Vec<f64>)> = Vec::new();
            for ((dc, tier), s) in &report.tier_cpu {
                series.push((format!("cpu {dc}/{tier}"), s.values().to_vec()));
            }
            for ((dc, tier), s) in &report.tier_disk {
                series.push((format!("disk {dc}/{tier}"), s.values().to_vec()));
            }
            for (label, s) in &report.wan_util {
                series.push((format!("wan {label}"), s.values().to_vec()));
            }
            (responses, series, report.concurrent_clients.values().to_vec())
        };

        let fast = run(false);
        let full = run(true);
        prop_assert_eq!(fast.0, full.0, "response histories diverged");
        prop_assert_eq!(fast.1, full.1, "utilization series diverged");
        prop_assert_eq!(fast.2, full.2, "client series diverged");
    }
}

/// `run_until` must stop exactly on the last step boundary not past
/// `until` — never overshoot, even when `until` is not a multiple of dt.
#[test]
fn run_until_never_overshoots() {
    use gdisim_core::scenarios::validation::{self, EXPERIMENTS};

    // 10 ms steps: a multiple lands exactly...
    let mut sim = validation::build(EXPERIMENTS[0], 7);
    sim.run_until(SimTime::from_secs(5));
    assert_eq!(sim.now(), SimTime::from_secs(5));

    // ...a non-multiple stops at the boundary below it (time is integer
    // microseconds)...
    let mut sim = validation::build(EXPERIMENTS[0], 7);
    sim.run_until(SimTime(5_004_999));
    assert_eq!(sim.now(), SimTime::from_millis(5_000));

    // ...and a second call with the same target is a no-op.
    sim.run_until(SimTime(5_004_999));
    assert_eq!(sim.now(), SimTime::from_millis(5_000));
}

/// Deterministic conservation check at the whole-engine level: launch a
/// short burst, drain, and verify the infrastructure is empty.
#[test]
fn engine_conserves_operations_end_to_end() {
    use gdisim_core::scenarios::validation::{self, EXPERIMENTS};
    let mut sim = validation::build(EXPERIMENTS[2], 21);
    sim.run_until(SimTime::from_secs(90));
    let in_flight = sim.active_operations();
    assert!(in_flight > 0);
    // Count completions + live instances: every launch is accounted for.
    let report = sim.report();
    let completed: usize = report
        .responses
        .history_keys()
        .map(|k| report.responses.history(k).len())
        .sum();
    // Launches: series every 10/24/40 s from t=0, ops per series chain
    // counted as individual operations as they start sequentially. We
    // can't observe raw launches directly, but conservation demands
    // completed + in-flight >= number of chains started (10 light + 4
    // average + 3 heavy = 17 at t=90).
    assert!(
        completed + in_flight >= 17,
        "completed {completed} + live {in_flight}"
    );
}
