//! Churn-engine and resilience-layer equivalence tests.
//!
//! The churn engine draws every incident from its own counter-based RNG
//! stream keyed by `(component, incident)` over a dedicated churn seed,
//! so churn can never perturb the traffic streams. These tests pin the
//! two guarantees that design buys:
//!
//! * **no-op installs are invisible** — a run with an *empty* churn
//!   model and an *all-disabled* resilience bundle installed is
//!   bit-identical to a run with neither, across all three executors,
//!   down to the message-level hop trace;
//! * **active churn is deterministic** — two runs with the same seeds
//!   produce byte-identical reports and hop traces, and serial /
//!   scatter-gather / hierarchical-dispatch executors all agree.
//!
//! A final set of activity tests keeps the suite honest (churn actually
//! fails components; hedges, breakers and shedding actually engage).

use gdisim_core::scenarios::churned;
use gdisim_core::{ChurnModel, ChurnProcess};
use gdisim_ports::Executor;
use gdisim_types::SimTime;
use gdisim_workload::{BreakerPolicy, HedgePolicy, ResiliencePolicies, RetryPolicy, ShedPolicy};
use proptest::prelude::*;

fn executor_for(choice: usize) -> Executor {
    match choice {
        0 => Executor::serial(),
        1 => Executor::scatter_gather(4),
        _ => Executor::hdispatch(4, 16),
    }
}

/// A "hot" churn model scaled so a few simulated minutes see many
/// incidents: every server fails about every two minutes and repairs in
/// ~20 s, links a bit slower. `Drop` strands in-flight work until the
/// 30 s timeout reaps it.
fn hot_churn_model() -> ChurnModel {
    ChurnModel {
        seed: 11,
        servers: Some(ChurnProcess {
            mtbf_secs: 120.0,
            mttr_secs: 20.0,
            fail_shape: Some(1.5),
            repair_shape: None,
        }),
        wan_links: Some(ChurnProcess {
            mtbf_secs: 240.0,
            mttr_secs: 15.0,
            fail_shape: None,
            repair_shape: None,
        }),
        domains: vec![],
        in_flight: Some(gdisim_core::InFlightPolicy::Drop),
        retry: Some(RetryPolicy {
            timeout_secs: 30.0,
            max_retries: 3,
            backoff_base_secs: 1.0,
            backoff_factor: 2.0,
            backoff_cap_secs: 10.0,
        }),
        slo_target: Some(0.99),
    }
}

/// The full resilience bundle, tuned to actually engage under
/// [`hot_churn_model`] within a short horizon.
fn hot_resilience() -> ResiliencePolicies {
    ResiliencePolicies {
        hedge: Some(HedgePolicy { delay_secs: 10.0 }),
        breaker: Some(BreakerPolicy {
            failure_threshold: 2,
            open_secs: 20.0,
            probe_ops: 1,
        }),
        shed: Some(ShedPolicy { queue_depth: 4 }),
    }
}

/// Everything a run observes — response histories, utilization series,
/// client series, fault + resilience + churn counters, and the rendered
/// message-level trace with its drop counter.
type Signature = (
    Vec<(String, Vec<(SimTime, f64)>)>,
    Vec<(String, Vec<f64>)>,
    Vec<f64>,
    Vec<u64>,
    Vec<String>,
    u64,
);

/// What to install on top of the bare `churned` scenario build.
#[derive(Clone, Copy)]
enum Install {
    /// Neither a churn model nor resilience policies.
    Nothing,
    /// An empty model and an all-disabled bundle — must be a no-op.
    EmptyNoOps,
    /// The hot model and full bundle — active churn.
    Hot,
}

fn run(seed: u64, executor: usize, horizon_secs: u64, install: Install) -> Signature {
    let mut sim = churned::build(seed);
    sim.set_executor(executor_for(executor));
    sim.enable_trace(20_000);
    match install {
        Install::Nothing => {}
        Install::EmptyNoOps => {
            sim.set_churn_model(ChurnModel::default())
                .expect("empty model always installs");
            sim.set_resilience(ResiliencePolicies::default())
                .expect("all-disabled bundle always installs");
        }
        Install::Hot => {
            sim.set_churn_model(hot_churn_model())
                .expect("hot model matches the churned topology");
            sim.set_resilience(hot_resilience())
                .expect("hot bundle is valid");
        }
    }
    sim.run_until(SimTime::from_secs(horizon_secs));
    let report = sim.report();
    let responses: Vec<_> = report
        .responses
        .history_keys()
        .map(|k| (format!("{k:?}"), report.responses.history(k).to_vec()))
        .collect();
    let mut series: Vec<(String, Vec<f64>)> = Vec::new();
    for ((dc, tier), s) in &report.tier_cpu {
        series.push((format!("cpu {dc}/{tier}"), s.values().to_vec()));
    }
    for ((dc, tier), s) in &report.tier_disk {
        series.push((format!("disk {dc}/{tier}"), s.values().to_vec()));
    }
    for (label, s) in &report.wan_util {
        series.push((format!("wan {label}"), s.values().to_vec()));
    }
    let trace = sim.trace().expect("trace enabled");
    let hops: Vec<String> = trace
        .events()
        .iter()
        .map(|(t, e)| format!("{t:?} {e:?}"))
        .collect();
    let dropped = trace.dropped();
    let f = &report.faults;
    let r = &report.resilience;
    let c = &report.churn;
    let counters = vec![
        f.failed_operations,
        f.retried_operations,
        f.abandoned_operations,
        f.dropped_messages,
        f.skipped_events,
        r.hedges_launched,
        r.hedge_wins,
        r.hedges_cancelled,
        r.hedge_cancelled_messages,
        r.breaker_trips,
        r.breaker_rejections,
        r.shed_operations,
        c.incidents,
        c.repairs,
        c.refused_incidents,
        c.components.len() as u64,
    ];
    (
        responses,
        series,
        report.concurrent_clients.values().to_vec(),
        counters,
        hops,
        dropped,
    )
}

fn assert_signatures_match(a: &Signature, b: &Signature) {
    assert_eq!(a.0, b.0, "responses diverged");
    assert_eq!(a.1, b.1, "utilization diverged");
    assert_eq!(a.2, b.2, "clients diverged");
    assert_eq!(a.3, b.3, "counters diverged");
    assert_eq!(a.4, b.4, "hop traces diverged");
    assert_eq!(a.5, b.5, "trace drop counts diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Installing an empty churn model *and* an all-disabled resilience
    /// bundle must be a pure no-op: for random seeds, horizons and
    /// executors the run is bit-identical to one with neither installed,
    /// down to the hop trace.
    #[test]
    fn empty_model_and_disabled_policies_are_bit_identical(
        seed in 0u64..1_000,
        horizon_secs in 60u64..120,
        executor in 0usize..3,
    ) {
        let plain = run(seed, executor, horizon_secs, Install::Nothing);
        let noop = run(seed, executor, horizon_secs, Install::EmptyNoOps);
        prop_assert_eq!(&plain.0, &noop.0, "responses diverged");
        prop_assert_eq!(&plain.1, &noop.1, "utilization diverged");
        prop_assert_eq!(&plain.2, &noop.2, "clients diverged");
        prop_assert_eq!(&plain.3, &noop.3, "counters diverged");
        prop_assert_eq!(&plain.4, &noop.4, "hop traces diverged");
        prop_assert_eq!(plain.5, noop.5, "trace drop counts diverged");
    }

    /// Active churn with the full resilience bundle is deterministic:
    /// two runs with identical seeds produce byte-identical signatures,
    /// for random seeds and executors.
    #[test]
    fn active_churn_same_seed_runs_are_byte_identical(
        seed in 0u64..1_000,
        executor in 0usize..3,
    ) {
        let first = run(seed, executor, 150, Install::Hot);
        let second = run(seed, executor, 150, Install::Hot);
        prop_assert_eq!(&first.0, &second.0, "responses diverged");
        prop_assert_eq!(&first.1, &second.1, "utilization diverged");
        prop_assert_eq!(&first.2, &second.2, "clients diverged");
        prop_assert_eq!(&first.3, &second.3, "counters diverged");
        prop_assert_eq!(&first.4, &second.4, "hop traces diverged");
        prop_assert_eq!(first.5, second.5, "trace drop counts diverged");
    }
}

/// Active churn agrees across executors: serial, scatter-gather and
/// hierarchical dispatch produce the same signature for the same seeds.
#[test]
fn active_churn_agrees_across_executors() {
    let serial = run(42, 0, 240, Install::Hot);
    let sg = run(42, 1, 240, Install::Hot);
    let hd = run(42, 2, 240, Install::Hot);
    assert_signatures_match(&serial, &sg);
    assert_signatures_match(&serial, &hd);
}

/// The determinism tests are not vacuous: the hot model actually churns
/// within the test horizon.
#[test]
fn hot_model_actually_churns() {
    let sig = run(42, 0, 240, Install::Hot);
    let incidents = sig.3[12];
    let repairs = sig.3[13];
    assert!(incidents > 0, "no churn incidents within the horizon");
    assert!(repairs > 0, "no churn repairs within the horizon");
}

/// Hedged requests actually engage under the hot model: twins are
/// launched, losers are quietly cancelled, and at least one stranded
/// primary is rescued by its twin.
#[test]
fn hedges_engage_under_hot_churn() {
    let mut sim = churned::build(42);
    sim.set_churn_model(hot_churn_model())
        .expect("hot model installs");
    sim.set_resilience(ResiliencePolicies {
        hedge: Some(HedgePolicy { delay_secs: 10.0 }),
        breaker: None,
        shed: None,
    })
    .expect("hedge-only bundle installs");
    sim.run_until(SimTime::from_secs(600));
    let r = &sim.report().resilience;
    assert!(r.hedges_launched > 0, "no hedge twins launched");
    assert!(r.hedges_cancelled > 0, "no hedge losers cancelled");
    assert!(
        r.hedge_wins > 0,
        "no twin ever rescued a stranded primary: {r:?}"
    );
}

/// Circuit breakers actually engage: with a threshold of 1 every churn
/// failure trips its route open, and launches during the open window
/// are rejected fast.
#[test]
fn breakers_engage_under_hot_churn() {
    let mut sim = churned::build(42);
    sim.set_churn_model(hot_churn_model())
        .expect("hot model installs");
    sim.set_resilience(ResiliencePolicies {
        hedge: None,
        breaker: Some(BreakerPolicy {
            failure_threshold: 1,
            open_secs: 30.0,
            probe_ops: 1,
        }),
        shed: None,
    })
    .expect("breaker-only bundle installs");
    sim.run_until(SimTime::from_secs(600));
    let r = &sim.report().resilience;
    assert!(r.breaker_trips > 0, "no breaker ever tripped: {r:?}");
    assert!(
        r.breaker_rejections > 0,
        "no launch was ever fast-rejected: {r:?}"
    );
}

/// Load shedding actually engages: with a queue depth of 1 the first
/// busy server bounces new work, counted separately from faults.
#[test]
fn shedding_engages_at_tiny_queue_depth() {
    let mut sim = churned::build(42);
    sim.set_resilience(ResiliencePolicies {
        hedge: None,
        breaker: None,
        shed: Some(ShedPolicy { queue_depth: 1 }),
    })
    .expect("shed-only bundle installs");
    sim.run_until(SimTime::from_secs(600));
    let r = &sim.report().resilience;
    assert!(r.shed_operations > 0, "no operation was ever shed: {r:?}");
}
