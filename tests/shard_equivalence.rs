//! Sharded-engine equivalence and determinism tests.
//!
//! The sharded engine (one shard per data center, conservative WAN
//! lookahead, deterministic window mailboxes — see DESIGN.md §4.6)
//! makes two promises these tests pin:
//!
//! * **one shard is the serial engine** — a `--shards 1` run executes
//!   the full window machinery (barriers, empty mailboxes) and is
//!   bit-identical to plain [`Simulation::run_until`] across the
//!   validation, consolidated, faulted and churned scenarios, down to
//!   the message-level hop trace;
//! * **multi-shard runs are byte-deterministic** — for a fixed seed
//!   and shard count the merged report and every per-shard hop trace
//!   are byte-identical run-to-run *regardless of worker count*,
//!   because mailboxes are drained in canonical `(src, seq)` order at
//!   every window barrier.
//!
//! Activity tests keep the suite honest: multi-shard consolidated runs
//! actually migrate flights through the mailboxes, and no run ever
//! observes a sequence gap.

use gdisim_core::scenarios::validation::{ExperimentPeriods, EXPERIMENTS};
use gdisim_core::scenarios::{churned, consolidated, faulted, validation};
use gdisim_core::{
    ChurnModel, ChurnProcess, Report, ShardConfigError, ShardedSimulation, Simulation,
};
use gdisim_types::SimTime;
use gdisim_workload::RetryPolicy;
use proptest::prelude::*;

/// Which scenario (plus installs) a case runs.
#[derive(Clone, Copy, Debug)]
enum Scenario {
    Validation,
    Consolidated,
    Faulted,
    Churned,
}

const ALL_SCENARIOS: [Scenario; 4] = [
    Scenario::Validation,
    Scenario::Consolidated,
    Scenario::Faulted,
    Scenario::Churned,
];

/// A hot churn model (mirrors the churn-equivalence suite) so sharded
/// runs see evictions, retries and repairs within a short horizon.
fn hot_churn_model() -> ChurnModel {
    ChurnModel {
        seed: 11,
        servers: Some(ChurnProcess {
            mtbf_secs: 120.0,
            mttr_secs: 20.0,
            fail_shape: Some(1.5),
            repair_shape: None,
        }),
        wan_links: Some(ChurnProcess {
            mtbf_secs: 240.0,
            mttr_secs: 15.0,
            fail_shape: None,
            repair_shape: None,
        }),
        domains: vec![],
        in_flight: Some(gdisim_core::InFlightPolicy::Drop),
        retry: Some(RetryPolicy {
            timeout_secs: 30.0,
            max_retries: 3,
            backoff_base_secs: 1.0,
            backoff_factor: 2.0,
            backoff_cap_secs: 10.0,
        }),
        slo_target: Some(0.99),
    }
}

fn build(scenario: Scenario, seed: u64) -> Simulation {
    match scenario {
        Scenario::Validation => {
            let periods = ExperimentPeriods {
                light: 15,
                average: 36,
                heavy: 60,
            };
            validation::build(periods, seed)
        }
        Scenario::Consolidated => consolidated::build(seed),
        Scenario::Faulted => {
            let mut sim = faulted::build(seed);
            sim.set_fault_plan(faulted::demo_fault_plan())
                .expect("demo plan matches the faulted topology");
            sim
        }
        Scenario::Churned => {
            let mut sim = churned::build(seed);
            sim.set_churn_model(hot_churn_model())
                .expect("hot model matches the churned topology");
            sim
        }
    }
}

/// Everything a run observes — response histories, utilization series,
/// client series, availability, counters, and the rendered hop traces
/// with their drop counters.
type Signature = (
    Vec<(String, Vec<(SimTime, f64)>)>,
    Vec<(String, Vec<f64>)>,
    Vec<f64>,
    Vec<(SimTime, u64, u64)>,
    Vec<u64>,
    Vec<Vec<String>>,
    Vec<u64>,
);

/// [`Signature`] minus the trace/drop tail, which the runners append.
type ReportSignature = (
    Vec<(String, Vec<(SimTime, f64)>)>,
    Vec<(String, Vec<f64>)>,
    Vec<f64>,
    Vec<(SimTime, u64, u64)>,
    Vec<u64>,
);

fn report_signature(report: &Report) -> ReportSignature {
    let responses: Vec<_> = report
        .responses
        .history_keys()
        .map(|k| (format!("{k:?}"), report.responses.history(k).to_vec()))
        .collect();
    let mut series: Vec<(String, Vec<f64>)> = Vec::new();
    for ((dc, tier), s) in &report.tier_cpu {
        series.push((format!("cpu {dc}/{tier}"), s.values().to_vec()));
    }
    for ((dc, tier), s) in &report.tier_disk {
        series.push((format!("disk {dc}/{tier}"), s.values().to_vec()));
    }
    for ((dc, tier), s) in &report.tier_memory {
        series.push((format!("mem {dc}/{tier}"), s.values().to_vec()));
    }
    for (label, s) in &report.wan_util {
        series.push((format!("wan {label}"), s.values().to_vec()));
    }
    for (dc, s) in &report.client_link_util {
        series.push((format!("client {dc}"), s.values().to_vec()));
    }
    let f = &report.faults;
    let r = &report.resilience;
    let c = &report.churn;
    let counters = vec![
        f.failed_operations,
        f.retried_operations,
        f.abandoned_operations,
        f.dropped_messages,
        f.skipped_events,
        r.hedges_launched,
        r.hedge_wins,
        r.hedges_cancelled,
        r.breaker_trips,
        r.breaker_rejections,
        r.shed_operations,
        c.incidents,
        c.repairs,
        c.refused_incidents,
        report.responses.total_recorded(),
    ];
    (
        responses,
        series,
        report.concurrent_clients.values().to_vec(),
        report.availability_counts.clone(),
        counters,
    )
}

fn render_trace(trace: &gdisim_core::TraceLog) -> Vec<String> {
    trace
        .events()
        .iter()
        .map(|(t, e)| format!("{t:?} {e:?}"))
        .collect()
}

fn run_serial(scenario: Scenario, seed: u64, horizon_secs: u64) -> Signature {
    let mut sim = build(scenario, seed);
    sim.enable_trace(50_000);
    sim.run_until(SimTime::from_secs(horizon_secs));
    let (responses, series, clients, avail, counters) = report_signature(sim.report());
    let trace = sim.trace().expect("trace enabled");
    (
        responses,
        series,
        clients,
        avail,
        counters,
        vec![render_trace(trace)],
        vec![trace.dropped()],
    )
}

fn run_sharded(
    scenario: Scenario,
    seed: u64,
    horizon_secs: u64,
    shards: usize,
    workers: usize,
) -> Signature {
    let base = build(scenario, seed);
    let mut sim = ShardedSimulation::new(base, shards, None, Some(workers))
        .expect("valid shard configuration");
    sim.enable_trace(50_000);
    sim.run_until(SimTime::from_secs(horizon_secs));
    assert_eq!(sim.ordering_violations(), 0, "mailbox sequence gap");
    let report = sim.report();
    let (responses, series, clients, avail, counters) = report_signature(&report);
    let traces: Vec<Vec<String>> = sim
        .traces()
        .into_iter()
        .map(|t| render_trace(t.expect("trace enabled")))
        .collect();
    let dropped: Vec<u64> = sim
        .traces()
        .into_iter()
        .map(|t| t.expect("trace enabled").dropped())
        .collect();
    (responses, series, clients, avail, counters, traces, dropped)
}

fn assert_signatures_match(a: &Signature, b: &Signature) {
    assert_eq!(a.0, b.0, "responses diverged");
    assert_eq!(a.1, b.1, "utilization diverged");
    assert_eq!(a.2, b.2, "clients diverged");
    assert_eq!(a.3, b.3, "availability counts diverged");
    assert_eq!(a.4, b.4, "counters diverged");
    assert_eq!(a.5, b.5, "hop traces diverged");
    assert_eq!(a.6, b.6, "trace drop counts diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// A one-shard sharded run — full window machinery, empty
    /// mailboxes — is bit-identical to the serial engine, for random
    /// seeds and horizons, across all four scenarios, down to the hop
    /// trace.
    #[test]
    fn one_shard_is_bit_identical_to_serial(
        seed in 0u64..1_000,
        horizon_secs in 60u64..120,
        scenario in 0usize..4,
    ) {
        let scenario = ALL_SCENARIOS[scenario];
        let serial = run_serial(scenario, seed, horizon_secs);
        let sharded = run_sharded(scenario, seed, horizon_secs, 1, 1);
        prop_assert_eq!(&serial.0, &sharded.0, "responses diverged");
        prop_assert_eq!(&serial.1, &sharded.1, "utilization diverged");
        prop_assert_eq!(&serial.2, &sharded.2, "clients diverged");
        prop_assert_eq!(&serial.3, &sharded.3, "availability diverged");
        prop_assert_eq!(&serial.4, &sharded.4, "counters diverged");
        prop_assert_eq!(&serial.5, &sharded.5, "hop traces diverged");
        prop_assert_eq!(&serial.6, &sharded.6, "trace drops diverged");
    }

    /// Multi-shard runs are byte-deterministic for a fixed seed and
    /// shard count: worker counts 1, 2 and 4 all produce identical
    /// merged reports and per-shard hop traces.
    #[test]
    fn multi_shard_runs_are_worker_count_invariant(
        seed in 0u64..1_000,
        scenario in 1usize..4,
    ) {
        let scenario = ALL_SCENARIOS[scenario];
        let w1 = run_sharded(scenario, seed, 90, 2, 1);
        let w2 = run_sharded(scenario, seed, 90, 2, 2);
        prop_assert_eq!(&w1.0, &w2.0, "responses diverged");
        prop_assert_eq!(&w1.1, &w2.1, "utilization diverged");
        prop_assert_eq!(&w1.2, &w2.2, "clients diverged");
        prop_assert_eq!(&w1.3, &w2.3, "availability diverged");
        prop_assert_eq!(&w1.4, &w2.4, "counters diverged");
        prop_assert_eq!(&w1.5, &w2.5, "hop traces diverged");
        prop_assert_eq!(&w1.6, &w2.6, "trace drops diverged");
    }
}

/// Same-seed multi-shard runs are byte-identical across repeats and
/// worker counts on the six-DC consolidated scenario at four shards.
#[test]
fn consolidated_four_shards_byte_deterministic() {
    let a = run_sharded(Scenario::Consolidated, 42, 120, 4, 2);
    let b = run_sharded(Scenario::Consolidated, 42, 120, 4, 2);
    let c = run_sharded(Scenario::Consolidated, 42, 120, 4, 4);
    assert_signatures_match(&a, &b);
    assert_signatures_match(&a, &c);
}

/// The determinism tests are not vacuous: multi-shard consolidated
/// runs actually migrate flights through the window mailboxes.
#[test]
fn multi_shard_runs_actually_exchange_mail() {
    let base = build(Scenario::Consolidated, 42);
    let mut sim = ShardedSimulation::new(base, 4, None, Some(2)).expect("valid config");
    sim.run_until(SimTime::from_secs(120));
    let stats = sim.stats();
    let sent: u64 = stats.iter().map(|s| s.mail_sent).sum();
    let received: u64 = stats.iter().map(|s| s.mail_received).sum();
    assert!(sent > 0, "no cross-shard flight was ever exported");
    assert_eq!(
        stats.iter().map(|s| s.ordering_violations).sum::<u64>(),
        0,
        "mailbox sequence gap"
    );
    // All mail that was sent before the final window got delivered.
    assert!(received > 0, "mail sent but never delivered");
    assert!(stats.iter().all(|s| s.windows > 0), "a shard never stepped");
}

/// The lookahead window is derived from the topology's minimum WAN
/// latency: consolidated has a 30 ms minimum at dt = 10 ms, so three
/// ticks; the single-DC validation topology defaults to one tick.
#[test]
fn lookahead_window_derived_from_min_wan_latency() {
    let sim = ShardedSimulation::new(build(Scenario::Consolidated, 1), 4, None, None)
        .expect("valid config");
    assert_eq!(sim.window_ticks(), 3);
    assert_eq!(sim.shards(), 4);
    let sim = ShardedSimulation::new(
        build(Scenario::Validation, 1),
        8, // clamped to the single DC
        None,
        None,
    )
    .expect("valid config");
    assert_eq!(sim.window_ticks(), 1);
    assert_eq!(sim.shards(), 1);
}

/// Invalid shard configurations surface as typed errors, not panics.
#[test]
fn invalid_configurations_are_typed_errors() {
    assert_eq!(
        ShardedSimulation::new(build(Scenario::Validation, 1), 0, None, None).err(),
        Some(ShardConfigError::ZeroShards)
    );
    assert_eq!(
        ShardedSimulation::new(build(Scenario::Validation, 1), 1, Some(0), None).err(),
        Some(ShardConfigError::ZeroLookahead)
    );
    assert_eq!(
        ShardedSimulation::new(build(Scenario::Validation, 1), 1, None, Some(0)).err(),
        Some(ShardConfigError::ZeroWorkers)
    );
}

/// Keep the pinned experiment table in scope: the first validation
/// experiment is the 15-36-60 configuration the one-shard identity
/// test exercises.
#[test]
fn validation_experiment_table_unchanged() {
    assert_eq!(EXPERIMENTS[0].light, 15);
    assert_eq!(EXPERIMENTS[0].average, 36);
    assert_eq!(EXPERIMENTS[0].heavy, 60);
}
