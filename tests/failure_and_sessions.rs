//! The two extension features layered on the paper's inputs: WAN link
//! failure with backup activation ("secondary links in case of failure",
//! §3.2.1; Fig. 1-1's attack-protection application) and closed-loop
//! session clients (Ch. 9.2.1).

use gdisim_core::scenarios::rates;
use gdisim_core::{MasterPolicy, Simulation, SimulationConfig};
use gdisim_infra::{
    ClientAccessSpec, DataCenterSpec, Infrastructure, TierSpec, TierStorageSpec, TopologySpec,
    WanLinkSpec,
};
use gdisim_metrics::ResponseKey;
use gdisim_queueing::SwitchSpec;
use gdisim_types::units::gbps;
use gdisim_types::{AppId, DcId, OpTypeId, SimTime, TierKind};
use gdisim_workload::{AppWorkload, Catalog, DiurnalCurve, SiteLoad};

fn two_dc_topology(with_backup: bool) -> TopologySpec {
    let tier = |kind, servers| TierSpec {
        kind,
        servers,
        cpu: rates::cpu(2, 4),
        memory: rates::memory(32.0, 0.0),
        nic: rates::nic(),
        lan: rates::lan(),
        storage: TierStorageSpec::PerServerRaid(rates::raid(0.0)),
    };
    let dc = |name: &str| DataCenterSpec {
        name: name.into(),
        switch: SwitchSpec::new(gbps(10.0)),
        tiers: vec![
            tier(TierKind::App, 2),
            tier(TierKind::Db, 1),
            tier(TierKind::Fs, 1),
            tier(TierKind::Idx, 1),
        ],
        clients: ClientAccessSpec {
            link: rates::client_access(),
            client_clock_hz: rates::CLIENT_CLOCK_HZ,
        },
    };
    let mut links = vec![WanLinkSpec {
        from: "NA".into(),
        to: "EU".into(),
        link: rates::wan(155.0, 40),
        backup: false,
    }];
    if with_backup {
        links.push(WanLinkSpec {
            from: "NA".into(),
            to: "EU".into(),
            link: rates::wan(45.0, 120),
            backup: true,
        });
    }
    TopologySpec {
        data_centers: vec![dc("NA"), dc("EU")],
        relay_sites: vec![],
        wan_links: links,
    }
}

fn sim_with(topology: &TopologySpec, seed: u64) -> Simulation {
    let infra = Infrastructure::build(topology, seed).expect("topology");
    let mut config = SimulationConfig::case_study();
    config.seed = seed;
    let mut sim = Simulation::new(infra, vec!["NA".into(), "EU".into()], config);
    sim.set_master_policy(MasterPolicy::Fixed(0));
    let catalog = Catalog::standard(&rates::lab_rate_card());
    sim.add_application(catalog.app("CAD").expect("CAD").clone());
    sim
}

#[test]
fn link_failure_shifts_traffic_to_backup() {
    let topology = two_dc_topology(true);
    let mut sim = sim_with(&topology, 3);
    sim.add_diurnal(AppWorkload {
        app: "CAD".into(),
        sites: vec![SiteLoad {
            site: "EU".into(),
            curve: DiurnalCurve::business_day(0.0, 120.0, 120.0).into(),
        }],
        ops_per_client_per_hour: 12.0,
    });
    // Fail the primary at t = 10 min, restore at t = 20 min.
    sim.schedule_link_failure("L NA->EU", SimTime::from_secs(600));
    sim.schedule_link_restore("L NA->EU", SimTime::from_secs(1200));
    sim.run_until(SimTime::from_secs(1800));
    let report = sim.into_report();

    assert_eq!(
        report.wan_util.len(),
        2,
        "primary + backup reported: {:?}",
        report.wan_util.keys()
    );
    let backup = &report.wan_util["L NA->EU (backup)"];
    // Before the failure the backup is dark; during the failure it
    // carries the metadata traffic.
    let before = backup.window_mean(SimTime::ZERO, SimTime::from_secs(600));
    let during = backup.window_mean(SimTime::from_secs(700), SimTime::from_secs(1200));
    assert!(
        before < 1e-9,
        "backup must be idle before the failure, got {before}"
    );
    assert!(
        during > before,
        "backup must light up during the failure, got {during}"
    );
    // And the system keeps serving: operations complete throughout.
    let eu = DcId(1);
    let login = ResponseKey {
        app: AppId(0),
        op: OpTypeId(0),
        dc: eu,
    };
    let history = report.responses.history(login);
    let during_failure = history
        .iter()
        .filter(|(t, _)| *t > SimTime::from_secs(660) && *t < SimTime::from_secs(1200))
        .count();
    assert!(
        during_failure > 5,
        "operations must keep completing over the backup link"
    );
}

#[test]
fn failure_without_backup_strands_cross_dc_work() {
    let topology = two_dc_topology(true);
    let infra = Infrastructure::build(&topology, 3).expect("topology");
    // Direct infra-level check: with the backup, routes survive failure.
    let mut infra = infra;
    let na = infra.dc_by_name("NA").unwrap();
    let eu = infra.dc_by_name("EU").unwrap();
    infra.fail_wan_link("L NA->EU").expect("primary exists");
    assert!(
        infra.route(na, eu).is_some(),
        "backup keeps the DCs connected"
    );

    // Without any backup, failing the only link partitions the graph.
    let topology = two_dc_topology(false);
    let mut infra = Infrastructure::build(&topology, 3).expect("topology");
    infra.fail_wan_link("L NA->EU").expect("primary exists");
    assert!(infra.route(na, eu).is_none(), "no path remains");
}

#[test]
fn server_failure_concentrates_load_then_recovers() {
    let topology = two_dc_topology(false);
    let mut sim = sim_with(&topology, 9);
    sim.add_diurnal(AppWorkload {
        app: "CAD".into(),
        sites: vec![SiteLoad {
            site: "NA".into(),
            curve: DiurnalCurve::business_day(0.0, 200.0, 200.0).into(),
        }],
        ops_per_client_per_hour: 12.0,
    });
    // Half the app tier dies at 10 min and returns at 20 min.
    sim.schedule_server_failure("NA", TierKind::App, 0, SimTime::from_secs(600));
    sim.schedule_server_restore("NA", TierKind::App, 0, SimTime::from_secs(1200));
    sim.run_until(SimTime::from_secs(1800));
    let report = sim.into_report();
    let tapp = report.cpu("NA", TierKind::App).expect("Tapp");
    let before = tapp.window_mean(SimTime::from_secs(120), SimTime::from_secs(600));
    let during = tapp.window_mean(SimTime::from_secs(660), SimTime::from_secs(1200));
    // Tier-average utilization: one dead (idle) + one double-loaded
    // server averages out, so the tier mean stays in the same band while
    // service continues.
    assert!(during > 0.0 && during < 1.0);
    assert!(before > 0.0);
    // Work keeps completing through the failure window.
    let login = ResponseKey {
        app: AppId(0),
        op: OpTypeId(0),
        dc: DcId(0),
    };
    let completions_during = report
        .responses
        .history(login)
        .iter()
        .filter(|(t, _)| *t > SimTime::from_secs(660) && *t < SimTime::from_secs(1200))
        .count();
    assert!(
        completions_during > 10,
        "service must survive a single-server failure"
    );
}

#[test]
fn sessions_track_the_population_curve() {
    let topology = two_dc_topology(false);
    let mut sim = sim_with(&topology, 5);
    // 200 logged-in sessions all day in NA, 5-minute mean think time.
    sim.add_sessions(
        AppWorkload {
            app: "CAD".into(),
            sites: vec![SiteLoad {
                site: "NA".into(),
                curve: DiurnalCurve::business_day(0.0, 200.0, 200.0).into(),
            }],
            ops_per_client_per_hour: 0.0, // unused by the session model
        },
        300.0,
    );
    sim.run_until(SimTime::from_secs(1200));
    assert_eq!(
        sim.logged_in_sessions(),
        200,
        "flat curve: all sessions stay logged in"
    );
    let report = sim.report();
    // Logged-in is reported and far exceeds in-flight operations (most
    // sessions are thinking at any instant).
    let logged = report
        .logged_in_clients
        .last()
        .map(|(_, v)| v)
        .unwrap_or(0.0);
    assert_eq!(logged, 200.0);
    let active = report
        .concurrent_clients
        .window_mean(SimTime::from_secs(600), SimTime::from_secs(1200));
    assert!(
        active > 1.0,
        "sessions must be launching work, active={active}"
    );
    assert!(
        active < 100.0,
        "think time keeps most sessions idle, active={active}"
    );
    // Operations actually completed with plausible durations.
    let login = ResponseKey {
        app: AppId(0),
        op: OpTypeId(0),
        dc: DcId(0),
    };
    assert!(report.responses.history(login).len() > 3);
}

#[test]
fn session_population_shrinks_on_ramp_down() {
    let topology = two_dc_topology(false);
    let mut sim = sim_with(&topology, 5);
    // Population drops to zero after hour 1 (local = GMT here).
    sim.add_sessions(
        AppWorkload {
            app: "CAD".into(),
            sites: vec![SiteLoad {
                site: "NA".into(),
                curve: DiurnalCurve {
                    tz_offset_hours: 0.0,
                    base: 0.0,
                    peak: 100.0,
                    ramp_up_start: 0.0,
                    ramp_up_end: 0.0,
                    ramp_down_start: 1.0,
                    ramp_down_end: 1.2,
                }
                .into(),
            }],
            ops_per_client_per_hour: 0.0,
        },
        120.0,
    );
    sim.run_until(SimTime::from_secs(30 * 60));
    assert!(sim.logged_in_sessions() > 50, "plateau fills up");
    // Well past ramp-down (sessions retire at their next wake, so give
    // several think times of slack).
    sim.run_until(SimTime::from_secs(110 * 60));
    assert_eq!(
        sim.logged_in_sessions(),
        0,
        "everyone logged out after ramp-down"
    );
}
