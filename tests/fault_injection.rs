//! Fault-injection subsystem tests: the staged WAN outage of the
//! `faulted` scenario end to end (failover, partition, retry, recovery),
//! plan validation against the built infrastructure, and the no-op
//! guarantee — installing an *empty* fault plan must leave every run
//! bit-identical under all three executors.

use gdisim_core::scenarios::faulted::{self, OUTAGE_END, OUTAGE_START, PARTITION_START};
use gdisim_core::{FaultAction, FaultEvent, FaultPlan, FaultPlanError, FaultTarget};
use gdisim_ports::Executor;
use gdisim_types::SimTime;
use proptest::prelude::*;

/// The demo arc: primary link fails (failover to backup), backup fails
/// (partition), both recover. Clients must notice (failures, retries),
/// availability must dip during the partition and not before, the
/// degraded window must open and close on the outage boundaries, and
/// completions must keep flowing after recovery.
#[test]
fn staged_wan_outage_degrades_then_recovers() {
    let mut sim = faulted::build(42);
    sim.set_fault_plan(faulted::demo_fault_plan())
        .expect("demo plan matches the faulted topology");
    sim.run_until(SimTime::ZERO + faulted::HORIZON);
    let report = sim.report();

    // Clients noticed the partition: operations failed, most re-issued.
    assert!(report.faults.failed_operations > 0, "no failures recorded");
    assert!(report.faults.retried_operations > 0, "no retries recorded");
    assert!(
        report.faults.retried_operations + report.faults.abandoned_operations
            == report.faults.failed_operations,
        "every failure either retries or abandons: {:?}",
        report.faults
    );
    assert_eq!(report.faults.skipped_events, 0, "all plan events applied");

    // Availability: perfect before the outage, below 1.0 at the worst of
    // the partition.
    let avail = &report.availability;
    assert!(!avail.values().is_empty(), "availability series collected");
    let worst = avail.values().iter().copied().fold(1.0f64, f64::min);
    assert!(worst < 1.0, "availability never dipped: worst {worst}");
    for (t, v) in avail.times().iter().zip(avail.values()) {
        if *t <= OUTAGE_START {
            assert_eq!(*v, 1.0, "unavailable before the outage at {t}");
        }
    }

    // The degraded window spans exactly the staged outage and is closed
    // by the end of the run.
    assert_eq!(report.degraded_windows, vec![(OUTAGE_START, OUTAGE_END)]);
    assert_eq!(report.degraded_since, None, "window left open");
    assert!(report.is_degraded_at(PARTITION_START));
    assert!(!report.is_degraded_at(OUTAGE_END));

    // Degradation then recovery, on the pooled response history: work
    // completes inside the degraded window (slower on average than in
    // healthy time) and keeps completing after recovery.
    let mut healthy = Vec::new();
    let mut degraded = Vec::new();
    for key in report.responses.history_keys() {
        let (h, d) = report.response_split(key);
        healthy.extend(h.times().iter().zip(h.values()).map(|(t, v)| (*t, *v)));
        degraded.extend(d.times().iter().zip(d.values()).map(|(t, v)| (*t, *v)));
    }
    assert!(!degraded.is_empty(), "no completions during the outage");
    assert!(!healthy.is_empty(), "no completions in healthy time");
    let mean = |xs: &[(SimTime, f64)]| xs.iter().map(|(_, v)| v).sum::<f64>() / xs.len() as f64;
    assert!(
        mean(&degraded) > mean(&healthy),
        "degraded mean {:.2}s not above healthy mean {:.2}s",
        mean(&degraded),
        mean(&healthy)
    );
    assert!(
        healthy.iter().any(|(t, _)| *t > OUTAGE_END),
        "no completions after recovery"
    );
}

/// A plan naming a link the topology doesn't have is rejected up front
/// with a readable error, before the run starts.
#[test]
fn unknown_targets_are_rejected_at_install_time() {
    let plan = FaultPlan {
        events: vec![FaultEvent {
            at_secs: 1.0,
            target: FaultTarget::WanLink {
                label: "L NA->MARS".into(),
            },
            action: FaultAction::Fail,
        }],
        ..FaultPlan::default()
    };
    let mut sim = faulted::build(7);
    match sim.set_fault_plan(plan) {
        Err(FaultPlanError::UnknownTarget { event, reason }) => {
            assert_eq!(event, 0);
            assert!(reason.contains("L NA->MARS"), "reason: {reason}");
        }
        other => panic!("expected UnknownTarget, got {other:?}"),
    }
}

/// Redundant events that survive validation — failing a component twice
/// — are counted as skipped, never applied and never panicked on.
/// (Recovering a never-failed target no longer reaches the runtime: it
/// is rejected up front as [`FaultPlanError::BadOrdering`].)
#[test]
fn redundant_events_are_skipped_not_applied() {
    let link = || FaultTarget::WanLink {
        label: faulted::PRIMARY_LINK.into(),
    };
    let event = |at_secs: f64, action| FaultEvent {
        at_secs,
        target: link(),
        action,
    };
    let plan = FaultPlan {
        events: vec![
            event(2.0, FaultAction::Fail),
            event(3.0, FaultAction::Fail), // double fail
            event(4.0, FaultAction::Recover),
        ],
        ..FaultPlan::default()
    };
    let mut sim = faulted::build(7);
    sim.set_fault_plan(plan).expect("targets are valid");
    sim.run_until(SimTime::from_secs(6));
    let report = sim.report();
    assert_eq!(report.faults.skipped_events, 1);
    assert_eq!(
        report.degraded_windows,
        vec![(SimTime::from_secs(2), SimTime::from_secs(4))]
    );
}

fn executor_for(choice: usize) -> Executor {
    match choice {
        0 => Executor::serial(),
        1 => Executor::scatter_gather(4),
        _ => Executor::hdispatch(4, 16),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Installing an empty fault plan must be a pure no-op: for random
    /// seeds, horizons and executors, every response history, every
    /// utilization series and the client series match a plan-less run
    /// bit for bit.
    #[test]
    fn empty_fault_plan_runs_are_bit_identical(
        seed in 0u64..1_000,
        horizon_secs in 60u64..180,
        executor in 0usize..3,
    ) {
        let run = |install_empty_plan: bool| {
            let mut sim = faulted::build(seed);
            sim.set_executor(executor_for(executor));
            if install_empty_plan {
                sim.set_fault_plan(FaultPlan::default())
                    .expect("empty plan always installs");
            }
            sim.run_until(SimTime::from_secs(horizon_secs));
            let report = sim.report();
            let responses: Vec<_> = report
                .responses
                .history_keys()
                .map(|k| (k, report.responses.history(k).to_vec()))
                .collect();
            let mut series: Vec<(String, Vec<f64>)> = Vec::new();
            for ((dc, tier), s) in &report.tier_cpu {
                series.push((format!("cpu {dc}/{tier}"), s.values().to_vec()));
            }
            for ((dc, tier), s) in &report.tier_disk {
                series.push((format!("disk {dc}/{tier}"), s.values().to_vec()));
            }
            for (label, s) in &report.wan_util {
                series.push((format!("wan {label}"), s.values().to_vec()));
            }
            (responses, series, report.concurrent_clients.values().to_vec())
        };

        let with_plan = run(true);
        let without = run(false);
        prop_assert_eq!(with_plan.0, without.0, "response histories diverged");
        prop_assert_eq!(with_plan.1, without.1, "utilization series diverged");
        prop_assert_eq!(with_plan.2, without.2, "client series diverged");
    }
}
