//! Causal operation tracing must be a pure observer: enabling
//! `--trace-ops` at *any* sampling rate must not perturb the simulation
//! by a single bit, on every executor family and on the sharded engine.
//! Alongside the equivalence proptest, well-formedness checks pin the
//! span model itself: every span is parented (halves under attempts,
//! attempts under operations), no span runs backwards in time, the
//! deterministic sampler admits exactly the exported roots, and the
//! latency attribution of every completed operation sums *exactly* to
//! its end-to-end response time.

use gdisim_core::scenarios::{churned, faulted};
use gdisim_core::{FaultAction, FaultEvent, FaultPlan, FaultTarget, Report, Simulation};
use gdisim_core::{OpTraceRecorder, ShardedSimulation};
use gdisim_obs::{attribute, sample, HalfSpan, OpRecord, OpStatus};
use gdisim_ports::Executor;
use gdisim_types::SimTime;
use proptest::prelude::*;

fn executor_for(choice: usize) -> Executor {
    match choice {
        0 => Executor::serial(),
        1 => Executor::scatter_gather(4),
        _ => Executor::hdispatch(4, 16),
    }
}

/// The tracing rates the equivalence suite sweeps: off, sparse, full.
const RATES: [f64; 3] = [0.0, 0.37, 1.0];

/// The staged WAN outage of the `faulted` scenario, compressed so the
/// fault, retry and timeout machinery all fire inside a short horizon.
fn compressed_fault_plan() -> FaultPlan {
    let link = |label: &str| FaultTarget::WanLink {
        label: label.into(),
    };
    use FaultAction::{Fail, Recover};
    FaultPlan {
        events: vec![
            FaultEvent {
                at_secs: 20.0,
                target: link(faulted::PRIMARY_LINK),
                action: Fail,
            },
            FaultEvent {
                at_secs: 40.0,
                target: link(faulted::BACKUP_LINK),
                action: Fail,
            },
            FaultEvent {
                at_secs: 60.0,
                target: link(faulted::PRIMARY_LINK),
                action: Recover,
            },
            FaultEvent {
                at_secs: 60.0,
                target: link(faulted::BACKUP_LINK),
                action: Recover,
            },
        ],
        in_flight: gdisim_core::InFlightPolicy::Bounce,
        retry: Some(faulted::demo_retry_policy()),
    }
}

/// Scenario 0: the compressed faulted run (retries, timeouts,
/// evictions). Scenario 1: churned under the demo churn model and
/// resilience bundle (hedges, breakers, shedding).
fn build_scenario(scenario: usize, seed: u64) -> Simulation {
    if scenario == 0 {
        let mut sim = faulted::build(seed);
        sim.set_fault_plan(compressed_fault_plan())
            .expect("compressed plan matches the faulted topology");
        sim
    } else {
        let mut sim = churned::build(seed);
        sim.set_churn_model(churned::demo_churn_model())
            .expect("demo model matches the churned topology");
        sim.set_resilience(churned::demo_resilience())
            .expect("demo policies match the churned topology");
        sim
    }
}

/// Everything a run observes: response histories, utilization series,
/// the client series, and the fault/resilience/churn counters.
type Signature = (
    Vec<(String, Vec<(SimTime, f64)>)>,
    Vec<(String, Vec<f64>)>,
    Vec<f64>,
    Vec<u64>,
);

fn signature(report: &Report) -> Signature {
    let responses: Vec<_> = report
        .responses
        .history_keys()
        .map(|k| (format!("{k:?}"), report.responses.history(k).to_vec()))
        .collect();
    let mut series: Vec<(String, Vec<f64>)> = Vec::new();
    for ((dc, tier), s) in &report.tier_cpu {
        series.push((format!("cpu {dc}/{tier}"), s.values().to_vec()));
    }
    for ((dc, tier), s) in &report.tier_memory {
        series.push((format!("mem {dc}/{tier}"), s.values().to_vec()));
    }
    for (label, s) in &report.wan_util {
        series.push((format!("wan {label}"), s.values().to_vec()));
    }
    let f = &report.faults;
    let r = &report.resilience;
    let c = &report.churn;
    let counters = vec![
        f.failed_operations,
        f.retried_operations,
        f.abandoned_operations,
        f.dropped_messages,
        r.hedges_launched,
        r.hedge_wins,
        r.hedges_cancelled,
        r.breaker_trips,
        r.breaker_rejections,
        r.shed_operations,
        c.incidents,
        c.repairs,
        report.responses.total_recorded(),
    ];
    (
        responses,
        series,
        report.concurrent_clients.values().to_vec(),
        counters,
    )
}

fn run_serial(
    scenario: usize,
    seed: u64,
    executor: usize,
    horizon_secs: u64,
    rate: Option<f64>,
) -> Signature {
    let mut sim = build_scenario(scenario, seed);
    sim.set_executor(executor_for(executor));
    if let Some(rate) = rate {
        sim.enable_optrace(rate);
    }
    sim.run_until(SimTime::from_secs(horizon_secs));
    signature(sim.report())
}

fn run_sharded(scenario: usize, seed: u64, horizon_secs: u64, rate: Option<f64>) -> Signature {
    let base = build_scenario(scenario, seed);
    let mut sim =
        ShardedSimulation::new(base, 4, None, Some(2)).expect("valid shard configuration");
    if let Some(rate) = rate {
        sim.enable_optrace(rate);
    }
    sim.run_until(SimTime::from_secs(horizon_secs));
    assert_eq!(sim.ordering_violations(), 0, "mailbox sequence gap");
    signature(&sim.report())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// For random seeds, horizons and executors, a run with operation
    /// tracing on — at any rate — observes exactly what an untraced run
    /// observes, on both scenario families.
    #[test]
    fn traced_and_untraced_runs_are_bit_identical(
        seed in 0u64..1_000,
        horizon_secs in 90u64..150,
        executor in 0usize..3,
        scenario in 0usize..2,
        rate_idx in 0usize..3,
    ) {
        let bare = run_serial(scenario, seed, executor, horizon_secs, None);
        let traced = run_serial(scenario, seed, executor, horizon_secs, Some(RATES[rate_idx]));
        prop_assert_eq!(&bare.0, &traced.0, "responses diverged under tracing");
        prop_assert_eq!(&bare.1, &traced.1, "utilization diverged under tracing");
        prop_assert_eq!(&bare.2, &traced.2, "clients diverged under tracing");
        prop_assert_eq!(&bare.3, &traced.3, "counters diverged under tracing");
    }
}

/// The sharded engine makes the same promise: tracing on a 4-shard run
/// (span context migrating through the window mailboxes) changes
/// nothing observable, at every rate.
#[test]
fn sharded_traced_runs_are_bit_identical_to_untraced() {
    for scenario in 0..2 {
        let bare = run_sharded(scenario, 42, 120, None);
        for rate in RATES {
            let traced = run_sharded(scenario, 42, 120, Some(rate));
            assert_eq!(bare, traced, "scenario {scenario} diverged at rate {rate}");
        }
    }
}

/// Structural checks over one half's spans: parented under its attempt
/// (launched no earlier), monotone in time, hop segments covered by
/// their message envelope and never exceeding measured residence.
fn assert_half_wellformed(root: u64, half: &HalfSpan) {
    if let Some(ended) = half.ended_us {
        assert!(
            ended >= half.launched_us,
            "op {root}: half {} ended before launch",
            half.instance
        );
    }
    for msg in &half.msgs {
        assert!(
            msg.enq_us >= half.launched_us,
            "op {root}: message enqueued before its half launched"
        );
        if let Some(done) = msg.done_us {
            assert!(done >= msg.enq_us, "op {root}: message ran backwards");
        }
        for seg in &msg.segs {
            assert!(seg.done_us >= seg.enq_us, "op {root}: hop ran backwards");
            assert!(
                seg.service_us + seg.wan_us <= seg.total_us(),
                "op {root}: nominal segments exceed measured residence"
            );
            assert!(
                seg.enq_us >= msg.enq_us,
                "op {root}: hop enqueued before its message"
            );
        }
    }
}

/// Every exported record is a well-formed span tree and every completed
/// record's attribution components sum exactly to its response time.
fn assert_records_wellformed(recorder: &OpTraceRecorder, records: &[&OpRecord]) {
    for rec in records {
        assert!(
            sample(recorder.seed(), rec.root, recorder.rate()),
            "op {}: exported but not admitted by the sampler",
            rec.root
        );
        assert!(!rec.attempts.is_empty(), "op {}: no attempts", rec.root);
        for (i, att) in rec.attempts.iter().enumerate() {
            assert_eq!(
                att.attempt as usize, i,
                "op {}: attempt numbering is not dense",
                rec.root
            );
            assert!(
                ["closed", "open", "half-open"].contains(&att.breaker),
                "op {}: unknown breaker label {:?}",
                rec.root,
                att.breaker
            );
            assert!(
                att.primary.launched_us >= rec.started_us,
                "op {}: attempt launched before the operation",
                rec.root
            );
            assert_half_wellformed(rec.root, &att.primary);
            if let Some(twin) = &att.twin {
                assert_eq!(twin.role, "twin");
                assert!(
                    twin.launched_us >= att.primary.launched_us,
                    "op {}: twin launched before its primary",
                    rec.root
                );
                assert_half_wellformed(rec.root, twin);
            }
        }
        if rec.status == OpStatus::Completed {
            let settled = rec.settled_us.expect("completed records settle");
            assert!(
                settled >= rec.started_us,
                "op {}: negative response",
                rec.root
            );
            let comps = attribute(rec).expect("completed records attribute");
            assert_eq!(
                comps.component_sum_us(),
                comps.response_us,
                "op {}: queue+service+wan+backoff+hedge != response",
                rec.root
            );
            assert_eq!(comps.response_us, settled - rec.started_us);
        }
    }
}

/// Full-rate tracing of the compressed faulted run: well-formed span
/// trees, exact attribution, and non-vacuously retry-annotated.
#[test]
fn faulted_span_trees_are_wellformed_with_exact_attribution() {
    let mut sim = build_scenario(0, 42);
    sim.enable_optrace(1.0);
    sim.run_until(SimTime::from_secs(150));
    let recorder = sim.optrace().expect("tracing enabled");
    let records = recorder.export_records();
    assert!(!records.is_empty(), "no operations sampled");
    assert_records_wellformed(recorder, &records);
    assert!(
        records.iter().any(|r| r.attempts.len() > 1),
        "no retry-annotated operation despite the staged outage"
    );
    let causes: Vec<_> = records
        .iter()
        .flat_map(|r| &r.attempts)
        .filter_map(|a| a.primary.cause)
        .collect();
    assert!(
        !causes.is_empty(),
        "no failure cause annotated despite the staged outage"
    );
}

/// Full-rate tracing of the churned run under the demo resilience
/// bundle: well-formed, exact, and non-vacuously hedge-annotated.
#[test]
fn churned_span_trees_are_wellformed_and_hedge_annotated() {
    let mut sim = build_scenario(1, 42);
    sim.enable_optrace(1.0);
    sim.run_until(SimTime::from_secs(240));
    let recorder = sim.optrace().expect("tracing enabled");
    let records = recorder.export_records();
    assert!(!records.is_empty(), "no operations sampled");
    assert_records_wellformed(recorder, &records);
    assert!(
        records
            .iter()
            .any(|r| r.attempts.iter().any(|a| a.twin.is_some())),
        "no hedge-annotated operation despite the demo hedge policy"
    );
}

/// Sparse sampling admits exactly the roots the counter-based sampler
/// says it should — the exported set at rate 0.37 is the sampler-
/// filtered subset of the full-rate export.
#[test]
fn sparse_sampling_is_the_deterministic_subset_of_full_rate() {
    let collect = |rate: f64| -> (u64, Vec<u64>) {
        let mut sim = build_scenario(0, 42);
        sim.enable_optrace(rate);
        sim.run_until(SimTime::from_secs(120));
        let rec = sim.optrace().expect("tracing enabled");
        let mut roots: Vec<u64> = rec.export_records().iter().map(|r| r.root).collect();
        roots.sort_unstable();
        (rec.seed(), roots)
    };
    let (seed, full) = collect(1.0);
    let (_, sparse) = collect(0.37);
    let expected: Vec<u64> = full
        .iter()
        .copied()
        .filter(|&root| sample(seed, root, 0.37))
        .collect();
    assert_eq!(sparse, expected, "sparse export is not the sampler subset");
    assert!(!sparse.is_empty(), "rate 0.37 sampled nothing");
    assert!(sparse.len() < full.len(), "rate 0.37 sampled everything");
}

/// On the sharded engine every cross-shard operation stitches into one
/// record at its home shard: hop segments from foreign shards arrive
/// with the completion mail, and the merged export attributes exactly.
#[test]
fn sharded_export_stitches_cross_shard_spans() {
    let base = build_scenario(0, 42);
    let mut sim =
        ShardedSimulation::new(base, 4, None, Some(2)).expect("valid shard configuration");
    sim.enable_optrace(1.0);
    sim.run_until(SimTime::from_secs(120));
    let recorders: Vec<&OpTraceRecorder> = sim.optraces().into_iter().flatten().collect();
    assert!(recorders.len() > 1, "expected a multi-shard run");
    let mut total = 0usize;
    let mut remote = 0usize;
    for rec in &recorders {
        let records = rec.export_records();
        assert_records_wellformed(rec, &records);
        total += records.len();
        remote += records
            .iter()
            .filter(|r| {
                r.attempts
                    .iter()
                    .flat_map(|a| a.twin.iter().chain(std::iter::once(&a.primary)))
                    .any(|h| h.msgs.iter().any(|m| m.remote))
            })
            .count();
    }
    assert!(total > 0, "no operations sampled across shards");
    assert!(
        remote > 0,
        "no operation ever crossed a shard boundary — stitching untested"
    );
}
