//! Execution-strategy equivalence: serial, classic Scatter-Gather and
//! H-Dispatch must produce *identical* simulations (§4.3.5 changes how
//! work is distributed, never what is computed). Every random draw
//! happens in the serial phases, and outboxes are drained in agent-index
//! order, so the traces must match bit for bit.

use gdisim_core::scenarios::validation::{self, EXPERIMENTS};
use gdisim_metrics::ResponseKey;
use gdisim_ports::Executor;
use gdisim_types::SimTime;

fn trace_with(executor: Executor) -> (Vec<(ResponseKey, usize)>, Vec<f64>, f64) {
    let mut sim = validation::build(EXPERIMENTS[1], 99);
    sim.set_executor(executor);
    sim.run_until(SimTime::from_secs(300));
    let report = sim.report();
    let responses: Vec<(ResponseKey, usize)> = report
        .responses
        .history_keys()
        .map(|k| (k, report.responses.history(k).len()))
        .collect();
    let tapp = report
        .cpu("NA", gdisim_types::TierKind::App)
        .unwrap()
        .values()
        .to_vec();
    let clients = gdisim_metrics::mean(report.concurrent_clients.values());
    (responses, tapp, clients)
}

#[test]
fn serial_scatter_gather_and_hdispatch_agree_exactly() {
    let serial = trace_with(Executor::serial());
    let sg = trace_with(Executor::scatter_gather(4));
    let hd = trace_with(Executor::hdispatch(4, 16));

    assert_eq!(serial.0, sg.0, "scatter-gather changed completion counts");
    assert_eq!(serial.0, hd.0, "h-dispatch changed completion counts");
    assert_eq!(
        serial.1, sg.1,
        "scatter-gather changed the Tapp utilization trace"
    );
    assert_eq!(
        serial.1, hd.1,
        "h-dispatch changed the Tapp utilization trace"
    );
    assert_eq!(serial.2, sg.2);
    assert_eq!(serial.2, hd.2);
}

/// Full-fidelity run signature: per-key response histories (exact
/// durations, not just counts), the complete hop-level trace, every
/// labeled utilization/occupancy series in the report, and the
/// concurrent-client series.
type RunSignature = (
    Vec<(ResponseKey, Vec<(SimTime, f64)>)>,
    Vec<(SimTime, gdisim_core::TraceEvent)>,
    Vec<(String, Vec<f64>)>,
    Vec<f64>,
);

fn full_signature(executor: Executor, always_tick: bool) -> RunSignature {
    let mut sim = validation::build(EXPERIMENTS[1], 99);
    sim.set_executor(executor);
    sim.set_always_tick(always_tick);
    sim.enable_trace(200_000);
    sim.run_until(SimTime::from_secs(300));
    let trace = sim.trace().expect("trace enabled").events().to_vec();
    let report = sim.report();
    let responses = report
        .responses
        .history_keys()
        .map(|k| (k, report.responses.history(k).to_vec()))
        .collect();
    let mut series: Vec<(String, Vec<f64>)> = Vec::new();
    for ((dc, tier), s) in &report.tier_cpu {
        series.push((format!("cpu {dc}/{tier}"), s.values().to_vec()));
    }
    for ((dc, tier), s) in &report.tier_disk {
        series.push((format!("disk {dc}/{tier}"), s.values().to_vec()));
    }
    for ((dc, tier), s) in &report.tier_memory {
        series.push((format!("mem {dc}/{tier}"), s.values().to_vec()));
    }
    for (label, s) in &report.wan_util {
        series.push((format!("wan {label}"), s.values().to_vec()));
    }
    for (dc, s) in &report.client_link_util {
        series.push((format!("client-link {dc}"), s.values().to_vec()));
    }
    let clients = report.concurrent_clients.values().to_vec();
    (responses, trace, series, clients)
}

#[test]
fn active_set_is_bit_identical_to_always_tick_under_every_executor() {
    // The active-agent fast path skips idle agents in the time-increment
    // phase and credits their meters lazily; the always-tick loop ticks
    // everyone. Both must produce the same simulation bit for bit — the
    // hop trace in particular pins the phase-3 drain order.
    for make in [
        || Executor::serial(),
        || Executor::scatter_gather(4),
        || Executor::hdispatch(4, 16),
    ] {
        let active = full_signature(make(), false);
        let full = full_signature(make(), true);
        let name = make().name();
        assert_eq!(active.0, full.0, "{name}: response histories diverged");
        assert_eq!(active.1, full.1, "{name}: hop traces diverged");
        assert_eq!(
            active.2, full.2,
            "{name}: utilization/occupancy series diverged"
        );
        assert_eq!(
            active.3, full.3,
            "{name}: concurrent-client series diverged"
        );
    }
}

#[test]
fn reruns_with_same_seed_are_reproducible() {
    let a = trace_with(Executor::serial());
    let b = trace_with(Executor::serial());
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
}

#[test]
fn load_balancing_policies_both_serve_the_workload() {
    // Join-the-shortest-queue must not lose work or distort totals; it
    // may shift which server runs what, so only aggregate equality is
    // asserted.
    let run = |policy| {
        let mut sim = validation::build(EXPERIMENTS[1], 99);
        sim.set_load_balancing(policy);
        sim.run_until(SimTime::from_secs(300));
        let report = sim.report();
        let completions: usize = report
            .responses
            .history_keys()
            .map(|k| report.responses.history(k).len())
            .sum();
        let tapp = gdisim_metrics::mean(
            report
                .cpu("NA", gdisim_types::TierKind::App)
                .unwrap()
                .values(),
        );
        (completions, tapp)
    };
    let (rr_done, rr_util) = run(gdisim_infra::LoadBalancing::RoundRobin);
    let (jsq_done, jsq_util) = run(gdisim_infra::LoadBalancing::LeastOutstanding);
    assert!(rr_done > 50);
    let done_gap = (rr_done as f64 - jsq_done as f64).abs() / rr_done as f64;
    assert!(
        done_gap < 0.05,
        "policies should complete similar totals: {rr_done} vs {jsq_done}"
    );
    let util_gap = (rr_util - jsq_util).abs();
    assert!(
        util_gap < 0.05,
        "aggregate utilization should match: {rr_util} vs {jsq_util}"
    );
}

#[test]
fn different_seeds_differ() {
    let mut sim_a = validation::build(EXPERIMENTS[1], 1);
    let mut sim_b = validation::build(EXPERIMENTS[1], 2);
    sim_a.run_until(SimTime::from_secs(240));
    sim_b.run_until(SimTime::from_secs(240));
    // The schedule is deterministic, but RAID cache seeds and the
    // service composition differ — some utilization sample must differ.
    let a = sim_a
        .report()
        .cpu("NA", gdisim_types::TierKind::App)
        .unwrap()
        .values()
        .to_vec();
    let b = sim_b
        .report()
        .cpu("NA", gdisim_types::TierKind::App)
        .unwrap()
        .values()
        .to_vec();
    // Note: with cold caches (hit rate 0) the validation scenario is
    // almost seed-free; equality here is acceptable, so only check the
    // traces are well-formed rather than forcing divergence.
    assert_eq!(a.len(), b.len());
}
