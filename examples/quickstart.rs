//! Quickstart: build a tiny two-data-center infrastructure, run a
//! five-minute simulation of a CAD workload, and print what the
//! simulator measured.
//!
//! ```sh
//! cargo run --release -p gdisim-core --example quickstart
//! ```

use gdisim_core::scenarios::rates;
use gdisim_core::{MasterPolicy, Simulation, SimulationConfig};
use gdisim_infra::{
    ClientAccessSpec, DataCenterSpec, Infrastructure, TierSpec, TierStorageSpec, TopologySpec,
    WanLinkSpec,
};
use gdisim_queueing::SwitchSpec;
use gdisim_types::units::gbps;
use gdisim_types::{SimTime, TierKind};
use gdisim_workload::{AppWorkload, Catalog, DiurnalCurve, SiteLoad};

fn main() {
    // 1. Describe the hardware the way an operator would: tiers of
    //    servers with datasheet specs, joined by a switch, linked by WAN.
    let tier = |kind, servers| TierSpec {
        kind,
        servers,
        cpu: rates::cpu(2, 4),
        memory: rates::memory(32.0, 0.2),
        nic: rates::nic(),
        lan: rates::lan(),
        storage: TierStorageSpec::PerServerRaid(rates::raid(0.2)),
    };
    let dc = |name: &str| DataCenterSpec {
        name: name.into(),
        switch: SwitchSpec::new(gbps(10.0)),
        tiers: vec![
            tier(TierKind::App, 2),
            tier(TierKind::Db, 1),
            tier(TierKind::Fs, 1),
            tier(TierKind::Idx, 1),
        ],
        clients: ClientAccessSpec {
            link: rates::client_access(),
            client_clock_hz: rates::CLIENT_CLOCK_HZ,
        },
    };
    let topology = TopologySpec {
        data_centers: vec![dc("NA"), dc("EU")],
        relay_sites: vec![],
        wan_links: vec![WanLinkSpec {
            from: "NA".into(),
            to: "EU".into(),
            link: rates::wan(155.0, 40),
            backup: false,
        }],
    };

    // 2. Build the runtime infrastructure and the simulator.
    let infra = Infrastructure::build(&topology, 42).expect("valid topology");
    println!(
        "built {} hardware agents across 2 data centers",
        infra.agent_count()
    );
    let mut sim = Simulation::new(infra, vec!["NA".into(), "EU".into()], {
        let mut c = SimulationConfig::case_study();
        c.dt = gdisim_types::SimDuration::from_millis(10);
        c
    });
    sim.set_master_policy(MasterPolicy::Fixed(0)); // NA manages all files

    // 3. Load the calibrated CAD application and a flat busy workload:
    //    300 active clients in each region all day.
    let catalog = Catalog::standard(&rates::lab_rate_card());
    sim.add_application(catalog.app("CAD").expect("CAD in catalog").clone());
    sim.add_diurnal(AppWorkload {
        app: "CAD".into(),
        sites: vec![
            SiteLoad {
                site: "NA".into(),
                curve: DiurnalCurve::business_day(-5.0, 300.0, 300.0).into(),
            },
            SiteLoad {
                site: "EU".into(),
                curve: DiurnalCurve::business_day(1.0, 300.0, 300.0).into(),
            },
        ],
        ops_per_client_per_hour: 12.0,
    });

    // 4. Run five simulated minutes.
    let horizon = SimTime::from_secs(300);
    let wall = std::time::Instant::now();
    sim.run_until(horizon);
    println!("simulated {horizon} in {:?}", wall.elapsed());

    // 5. Read the outputs: utilization, response times, link occupancy.
    let report = sim.report();
    for dc in ["NA", "EU"] {
        for tier in TierKind::ALL {
            if let Some(series) = report.cpu(dc, tier) {
                let mean = gdisim_metrics::mean(series.values());
                println!("  {tier}@{dc}: mean CPU {:.1}%", mean * 100.0);
            }
        }
    }
    for (label, series) in &report.wan_util {
        println!(
            "  {label}: mean utilization {:.1}%",
            gdisim_metrics::mean(series.values()) * 100.0
        );
    }
    println!("  operations completed, by key:");
    for key in report.responses.history_keys() {
        let n = report.responses.history(key).len();
        let mean = report.responses.history_mean(key).unwrap_or(0.0);
        println!(
            "    app{} op{} from dc{}: {n} completions, mean {mean:.2}s",
            key.app.0, key.op.0, key.dc.0
        );
    }
}
