//! Restoration points & branches (Ch. 9.3.2): run the consolidated
//! platform into the morning, take a restoration point, and explore two
//! futures from the *same* state — one where the NA↔EU trunk fails at
//! noon, one where it doesn't. Because the branch is a deep copy,
//! differences between the futures are attributable purely to the
//! what-if input.
//!
//! ```sh
//! cargo run --release -p gdisim-core --example branching
//! ```

use gdisim_core::scenarios::consolidated;
use gdisim_metrics::ResponseKey;
use gdisim_types::{AppId, DcId, OpTypeId, SimDuration, SimTime};

fn main() {
    println!("branching what-if on the consolidated platform\n");
    let mut baseline = consolidated::build(42);

    // Common history: midnight to 11:00 GMT.
    let fork_at = SimTime::from_hours(11);
    let wall = std::time::Instant::now();
    baseline.run_until(fork_at);
    println!("built common history to {fork_at} in {:?}", wall.elapsed());

    // Restoration point. The branch loses its NA<->EU trunk at noon;
    // there is no backup on that pair, so EU metadata traffic must be
    // impossible — but wait: EU routes to the master *only* via that
    // link, so we restore it an hour later and watch the backlog clear.
    let mut outage = baseline.branch();
    outage.schedule_link_failure("L NA->EU", SimTime::from_hours(12));
    outage.schedule_link_restore("L NA->EU", SimTime::from_hours(13));

    let until = SimTime::from_hours(15);
    baseline.run_until(until);
    println!("baseline branch reached {until} in {:?}", wall.elapsed());
    outage.run_until(until);
    println!("outage branch reached {until} in {:?}\n", wall.elapsed());

    // Compare EU clients' CAD EXPLORE (chatty, master-bound) across the
    // two futures, hour by hour.
    let eu = DcId(consolidated::SITES.iter().position(|s| *s == "EU").unwrap() as u32);
    let key = ResponseKey {
        app: AppId(0),
        op: OpTypeId(3),
        dc: eu,
    };
    let hour = SimDuration::from_secs(3600);
    let base_series = baseline.report().response_series(key, hour);
    let out_series = outage.report().response_series(key, hour);
    println!("CAD EXPLORE from EU, hourly mean response (s):");
    println!("  {:>5}  {:>9}  {:>9}", "hour", "baseline", "outage");
    for (i, (t, b)) in base_series.iter().enumerate() {
        let o = out_series.values().get(i).copied().unwrap_or(f64::NAN);
        let marker = if (12..13).contains(&(t.hour_of_day() as u32)) {
            "  <- trunk down"
        } else {
            ""
        };
        println!(
            "  {:>5}  {b:>9.2}  {o:>9.2}{marker}",
            format!("{:02}:00", t.hour_of_day() as u32)
        );
    }

    // The pre-fork hours must be identical (shared history).
    let pre: Vec<f64> = base_series
        .iter()
        .take_while(|(t, _)| *t < fork_at)
        .map(|(_, v)| v)
        .collect();
    let pre_out: Vec<f64> = out_series
        .iter()
        .take_while(|(t, _)| *t < fork_at)
        .map(|(_, v)| v)
        .collect();
    assert_eq!(pre, pre_out, "branches must share their pre-fork history");
    println!("\npre-fork history identical across branches ✓");
    println!(
        "during the outage EU metadata operations stall behind the dead trunk;\n\
         after restoration the backlog drains and the branches reconverge."
    );
}
