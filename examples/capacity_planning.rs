//! Capacity planning (Fig. 1-1's second application): sweep the
//! application-server count of a data center under a fixed peak
//! workload and find the smallest tier that keeps response times at
//! their unloaded baseline — the SLA-driven sizing loop the simulator
//! was built to answer.
//!
//! ```sh
//! cargo run --release -p gdisim-core --example capacity_planning
//! ```

use gdisim_core::scenarios::rates;
use gdisim_core::{MasterPolicy, Simulation, SimulationConfig};
use gdisim_infra::{
    ClientAccessSpec, DataCenterSpec, Infrastructure, TierSpec, TierStorageSpec, TopologySpec,
};
use gdisim_metrics::ResponseKey;
use gdisim_queueing::SwitchSpec;
use gdisim_types::units::gbps;
use gdisim_types::{DcId, OpTypeId, SimTime, TierKind};
use gdisim_workload::{AppWorkload, Catalog, DiurnalCurve, SiteLoad};

const CLIENTS: f64 = 400.0;
const SLA_FACTOR: f64 = 1.25; // allow 25 % over the unloaded baseline

fn topology(app_servers: u32) -> TopologySpec {
    let tier = |kind, servers, sockets, cores| TierSpec {
        kind,
        servers,
        cpu: rates::cpu(sockets, cores),
        memory: rates::memory(32.0, 0.2),
        nic: rates::nic(),
        lan: rates::lan(),
        storage: TierStorageSpec::PerServerRaid(rates::raid(0.2)),
    };
    TopologySpec {
        data_centers: vec![DataCenterSpec {
            name: "NA".into(),
            switch: SwitchSpec::new(gbps(10.0)),
            tiers: vec![
                tier(TierKind::App, app_servers, 1, 2),
                tier(TierKind::Db, 1, 2, 4),
                tier(TierKind::Fs, 1, 2, 2),
                tier(TierKind::Idx, 1, 2, 4),
            ],
            clients: ClientAccessSpec {
                link: rates::client_access(),
                client_clock_hz: rates::CLIENT_CLOCK_HZ,
            },
        }],
        relay_sites: vec![],
        wan_links: vec![],
    }
}

fn trial(app_servers: u32) -> (f64, f64) {
    let infra = Infrastructure::build(&topology(app_servers), 42).expect("topology");
    let mut sim = Simulation::new(infra, vec!["NA".into()], {
        let mut c = SimulationConfig::case_study();
        // Chatty metadata cascades need a fine step (§4.3.1's "order of
        // magnitude below the canonical costs" applies per message).
        c.dt = gdisim_types::SimDuration::from_millis(10);
        c
    });
    sim.set_master_policy(MasterPolicy::Local);
    let catalog = Catalog::standard(&rates::lab_rate_card());
    sim.add_application(catalog.app("CAD").expect("CAD").clone());
    sim.add_diurnal(AppWorkload {
        app: "CAD".into(),
        sites: vec![SiteLoad {
            site: "NA".into(),
            curve: DiurnalCurve::business_day(0.0, CLIENTS, CLIENTS).into(), // flat peak
        }],
        ops_per_client_per_hour: 12.0,
    });
    sim.run_until(SimTime::from_secs(900));
    let report = sim.report();
    let app_util = report
        .cpu("NA", TierKind::App)
        .map(|s| gdisim_metrics::mean(s.values()))
        .unwrap_or(0.0);
    // SLA metric: EXPLORE (op index 3) — a chatty metadata operation that
    // inflates first under app-tier contention.
    let explore = report
        .responses
        .history_mean(ResponseKey {
            app: gdisim_types::AppId(0),
            op: OpTypeId(3),
            dc: DcId(0),
        })
        .unwrap_or(f64::INFINITY);
    (app_util, explore)
}

fn main() {
    println!(
        "capacity planning: {CLIENTS:.0} peak CAD clients, EXPLORE SLA = baseline x{SLA_FACTOR}"
    );
    let baseline = 6.43; // canonical EXPLORE duration (Table 5.1, Average)
    let sla = baseline * SLA_FACTOR;
    println!("  EXPLORE baseline {baseline:.2}s -> SLA {sla:.2}s\n");
    println!(
        "  {:>11}  {:>9}  {:>12}  verdict",
        "app servers", "Tapp CPU", "EXPLORE mean"
    );
    let mut chosen = None;
    for app_servers in [1u32, 2, 3, 4, 6, 8] {
        let (util, explore) = trial(app_servers);
        let ok = explore <= sla;
        println!(
            "  {app_servers:>11}  {:>8.1}%  {explore:>11.2}s  {}",
            util * 100.0,
            if ok { "meets SLA" } else { "violates SLA" }
        );
        if ok && chosen.is_none() {
            chosen = Some(app_servers);
        }
    }
    match chosen {
        Some(n) => println!("\n  smallest compliant tier: {n} application servers"),
        None => println!("\n  no tested size meets the SLA — grow beyond 8 servers"),
    }
}
