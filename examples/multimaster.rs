//! Multiple-master what-if: the Ch. 7 question — "does distributing
//! data ownership shrink the background-process windows without
//! overloading the upgraded slaves?"
//!
//! Runs the multimaster scenario through the peak window and compares
//! the staleness/searchability windows (`R^max_SR`, `R^max_IB`) of the
//! NA master against the consolidated baseline's published values.
//!
//! ```sh
//! cargo run --release -p gdisim-core --example multimaster
//! ```

use gdisim_background::BackgroundKind;
use gdisim_core::scenarios::multimaster;
use gdisim_types::{SimTime, TierKind};
use gdisim_workload::AccessPatternMatrix;

fn main() {
    println!("multiple-master what-if (Ch. 7), peak window only\n");

    let apm = AccessPatternMatrix::multimaster_table_7_2();
    println!(
        "ownership input: mean locality {:.1}% (single-master baseline: 16.7%)",
        apm.mean_locality() * 100.0
    );

    let mut sim = multimaster::build(42);
    let start = SimTime::from_hours(10);
    let end = SimTime::from_hours(17);
    let wall = std::time::Instant::now();
    sim.run_until(end);
    println!("simulated 00:00-17:00 GMT in {:?}\n", wall.elapsed());
    let _ = start;

    let report = sim.report();
    let (w0, w1) = (SimTime::from_hours(12), SimTime::from_hours(16));

    println!("per-master peak-window CPU (every site now holds the full stack):");
    for site in multimaster::SITES {
        let app = report
            .cpu(site, TierKind::App)
            .map(|s| s.window_mean(w0, w1))
            .unwrap_or(0.0);
        let db = report
            .cpu(site, TierKind::Db)
            .map(|s| s.window_mean(w0, w1))
            .unwrap_or(0.0);
        println!(
            "  {site:>4}: Tapp {:5.1}%  Tdb {:5.1}%",
            app * 100.0,
            db * 100.0
        );
    }

    println!("\nbackground windows per master (worst response so far):");
    for (pos, site) in multimaster::SITES.iter().enumerate() {
        for kind in [BackgroundKind::SyncRep, BackgroundKind::IndexBuild] {
            let worst = report
                .background_of(kind)
                .into_iter()
                .filter(|r| r.master_site == pos)
                .map(|r| r.response_secs())
                .fold(0.0f64, f64::max);
            if worst > 0.0 {
                print!("  {site:>4} {kind:?}: {:.1} min", worst / 60.0);
                if *site == "NA" {
                    let paper_consolidated = match kind {
                        BackgroundKind::SyncRep => 31.0,
                        BackgroundKind::IndexBuild => 63.0,
                    };
                    print!("  (consolidated baseline ≈{paper_consolidated:.0} min)");
                }
                println!();
            }
        }
    }

    println!(
        "\nverdict: each master synchronizes and indexes only the subset it owns,\n\
         so staleness and searchability windows shrink while the per-site\n\
         hardware stays modest — the paper's Ch. 7 conclusion."
    );
}
