//! Consolidation what-if: the Ch. 6 question — "can six data centers
//! absorb the workload of eleven?" — answered on a compressed horizon.
//!
//! Runs the consolidated scenario through the global peak window
//! (12:00–16:00 GMT, when NA, SA and EU business hours overlap) and
//! reports the master data center's headroom, the WAN links at risk and
//! the client experience, i.e. the decision inputs §6.6 derives.
//!
//! ```sh
//! cargo run --release -p gdisim-core --example consolidation
//! ```

use gdisim_background::BackgroundKind;
use gdisim_core::scenarios::consolidated;
use gdisim_types::{SimTime, TierKind};

fn main() {
    println!("consolidation what-if (Ch. 6), peak window only\n");
    let mut sim = consolidated::build(42);

    // Simulate 10:00 -> 17:00 GMT: ramp into and out of the overlap.
    let start = SimTime::from_hours(10);
    let end = SimTime::from_hours(17);
    let wall = std::time::Instant::now();
    sim.run_until(start);
    println!("(warm-up to {start} done in {:?})", wall.elapsed());
    sim.run_until(end);
    println!(
        "simulated through the peak window in {:?} total\n",
        wall.elapsed()
    );

    let report = sim.report();
    let (w0, w1) = (SimTime::from_hours(12), SimTime::from_hours(16));

    println!("master data center (NA) peak-window CPU:");
    for tier in TierKind::ALL {
        if let Some(s) = report.cpu("NA", tier) {
            let mean = s.window_mean(w0, w1);
            let verdict = if mean > 0.85 {
                "SATURATION RISK"
            } else if mean > 0.6 {
                "watch closely"
            } else {
                "headroom"
            };
            println!("  {tier}: {:5.1}%  [{verdict}]", mean * 100.0);
        }
    }

    println!("\nWAN links, utilization of allocated capacity 12:00-16:00 GMT:");
    let mut links: Vec<_> = report
        .wan_util
        .iter()
        .map(|(label, s)| (label.clone(), s.window_mean(w0, w1)))
        .collect();
    links.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (label, u) in links {
        println!("  {label}: {:5.1}%", u * 100.0);
    }

    println!("\nbackground processes completed so far:");
    for kind in [BackgroundKind::SyncRep, BackgroundKind::IndexBuild] {
        let recs = report.background_of(kind);
        if let Some((at, secs)) = report.max_background_response(kind) {
            println!(
                "  {kind:?}: {} runs, worst response {:.1} min (launched {at})",
                recs.len(),
                secs / 60.0
            );
        }
    }

    println!("\nclient population served:");
    if let Some((t, peak)) = report.concurrent_clients.max() {
        println!("  peak {peak:.0} concurrent operations at {t}");
    }
}
