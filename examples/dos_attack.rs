//! Internet attack protection (Fig. 1-1's seventh application): "allows
//! the evaluation of the effects of denial-of-service attacks and
//! facilitates the design of counter measures".
//!
//! A hostile client population floods the master's application tier with
//! LOGIN storms while the legitimate workload runs. The simulator shows
//! (a) how far legitimate response times degrade during the attack,
//! (b) that bulk file traffic — served locally — is barely affected, and
//! (c) that the countermeasure the paper's framing suggests (shedding the
//! hostile population, e.g. by upstream filtering) restores service.
//!
//! ```sh
//! cargo run --release -p gdisim-core --example dos_attack
//! ```

use gdisim_core::scenarios::rates;
use gdisim_core::{MasterPolicy, Simulation, SimulationConfig};
use gdisim_infra::{
    ClientAccessSpec, DataCenterSpec, Infrastructure, TierSpec, TierStorageSpec, TopologySpec,
    WanLinkSpec,
};
use gdisim_metrics::ResponseKey;
use gdisim_queueing::SwitchSpec;
use gdisim_types::units::gbps;
use gdisim_types::{AppId, DcId, OpTypeId, SimDuration, SimTime, TierKind};
use gdisim_workload::{AppWorkload, Catalog, DiurnalCurve, SiteLoad};

const LEGIT_CLIENTS: f64 = 150.0;
const ATTACK_CLIENTS: f64 = 350.0;

fn topology() -> TopologySpec {
    let tier = |kind, servers| TierSpec {
        kind,
        servers,
        cpu: rates::cpu(1, 4),
        memory: rates::memory(32.0, 0.2),
        nic: rates::nic(),
        lan: rates::lan(),
        storage: TierStorageSpec::PerServerRaid(rates::raid(0.2)),
    };
    let dc = |name: &str| DataCenterSpec {
        name: name.into(),
        switch: SwitchSpec::new(gbps(10.0)),
        tiers: vec![
            tier(TierKind::App, 2),
            tier(TierKind::Db, 1),
            tier(TierKind::Fs, 1),
            tier(TierKind::Idx, 1),
        ],
        clients: ClientAccessSpec {
            link: rates::client_access(),
            client_clock_hz: rates::CLIENT_CLOCK_HZ,
        },
    };
    TopologySpec {
        data_centers: vec![dc("NA"), dc("EU")],
        relay_sites: vec![],
        wan_links: vec![WanLinkSpec {
            from: "NA".into(),
            to: "EU".into(),
            link: rates::wan(155.0, 40),
            backup: false,
        }],
    }
}

/// An attack wave: a rectangular population burst between two GMT hours,
/// modeled as a diurnal curve with instant ramps.
fn attack_curve(start_h: f64, end_h: f64, peak: f64) -> DiurnalCurve {
    DiurnalCurve {
        tz_offset_hours: 0.0,
        base: 0.0,
        peak,
        ramp_up_start: start_h,
        ramp_up_end: start_h + 0.01,
        ramp_down_start: end_h,
        ramp_down_end: end_h + 0.01,
    }
}

fn main() {
    println!(
        "DoS what-if: {LEGIT_CLIENTS:.0} legitimate CAD clients vs a \
         {ATTACK_CLIENTS:.0}-bot LOGIN storm at hour 1\n"
    );
    let infra = Infrastructure::build(&topology(), 42).expect("topology");
    let mut sim = Simulation::new(
        infra,
        vec!["NA".into(), "EU".into()],
        SimulationConfig::case_study(),
    );
    sim.set_master_policy(MasterPolicy::Fixed(0));

    let catalog = Catalog::standard(&rates::lab_rate_card());
    let cad = catalog.app("CAD").expect("CAD").clone();
    sim.add_application(cad);

    // The hostile application: LOGIN-only (a credential-stuffing storm),
    // built by reusing the CAD LOGIN template under its own app id.
    let mut hostile = catalog.app("CAD").expect("CAD").clone();
    hostile.id = AppId(66);
    hostile.name = "HOSTILE".into();
    hostile.ops.truncate(1); // LOGIN only
    hostile.mix = vec![1.0];
    sim.add_application(hostile);

    // Legitimate load all day from both regions.
    sim.add_diurnal(AppWorkload {
        app: "CAD".into(),
        sites: vec![
            SiteLoad {
                site: "NA".into(),
                curve: DiurnalCurve::business_day(0.0, LEGIT_CLIENTS, LEGIT_CLIENTS).into(),
            },
            SiteLoad {
                site: "EU".into(),
                curve: DiurnalCurve::business_day(0.0, LEGIT_CLIENTS, LEGIT_CLIENTS).into(),
            },
        ],
        ops_per_client_per_hour: 12.0,
    });
    // The attack wave: hour 1 to hour 2 from the EU side. The
    // "countermeasure" at hour 2 is the curve dropping to zero —
    // upstream filtering shedding the bot population.
    sim.add_diurnal(AppWorkload {
        app: "HOSTILE".into(),
        sites: vec![SiteLoad {
            site: "EU".into(),
            curve: attack_curve(1.0, 2.0, ATTACK_CLIENTS).into(),
        }],
        ops_per_client_per_hour: 60.0, // bots hammer
    });

    let wall = std::time::Instant::now();
    sim.run_until(SimTime::from_hours(3));
    println!("simulated 3 h in {:?}\n", wall.elapsed());
    let report = sim.report();

    let hour = SimDuration::from_secs(3600);
    let na = DcId(0);
    println!(
        "legitimate CAD from NA, hourly mean response times (h0=before, h1=attack, h2=after):"
    );
    for (oi, name) in [
        "LOGIN",
        "TEXT-SEARCH",
        "FILTER",
        "EXPLORE",
        "SPATIAL-SEARCH",
        "SELECT",
        "OPEN",
        "SAVE",
    ]
    .iter()
    .enumerate()
    {
        let key = ResponseKey {
            app: AppId(0),
            op: OpTypeId::from_index(oi),
            dc: na,
        };
        let series = report.response_series(key, hour);
        let v = series.values();
        if v.len() >= 3 {
            let degradation = (v[1] - v[0]) / v[0] * 100.0;
            let recovered = (v[2] - v[0]) / v[0] * 100.0;
            println!(
                "  {name:>15}: {:6.1}s -> {:6.1}s -> {:6.1}s  (attack {degradation:+.0}%, after {recovered:+.0}%)",
                v[0], v[1], v[2]
            );
        }
    }

    let tapp = report.cpu("NA", TierKind::App).expect("Tapp series");
    println!("\nTapp@NA hourly utilization:");
    for (h, u) in tapp.resample(hour).values().iter().enumerate() {
        println!("  hour {h}: {:5.1}%", u * 100.0);
    }
    println!(
        "\nverdict: the LOGIN storm saturates the master's application tier and\n\
         degrades every metadata operation for legitimate users; bulk OPEN/SAVE\n\
         traffic (served by the local file tiers) degrades least. Shedding the\n\
         hostile population restores baseline service within the hour."
    );
}
