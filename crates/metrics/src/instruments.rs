//! Observability primitives: counters, gauges and log-bucketed
//! histograms, plus a named registry snapshot.
//!
//! MonALISA-style monitoring (Legrand et al., PAPERS.md) decouples the
//! measurement plane from the system under measurement: cheap in-process
//! instruments accumulate, and a snapshot is exported on demand. The
//! engine's step-loop profiler and the CLI's `--profile-json` export are
//! built on these primitives.
//!
//! [`LogHistogram`] is the workhorse: an HDR-style log-linear histogram
//! over `u64` values (durations in nanoseconds or microseconds) with a
//! fixed 15 KiB footprint, constant-time recording and no allocation
//! after construction — a day-scale run records hundreds of millions of
//! values into it without growing, where a raw `Vec<f64>` would grow
//! without bound.

use serde::Value;
use std::collections::BTreeMap;

/// Sub-bucket bits per octave: each power-of-two range is split into
/// `2^SUB_BITS` equal sub-buckets, bounding the relative quantile error
/// at `2^-SUB_BITS` (≈ 3%).
const SUB_BITS: u32 = 5;
/// Sub-buckets per octave.
const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count: a linear region `[0, SUB)` plus `SUB` sub-buckets
/// for every octave up to `2^63`.
const BUCKETS: usize = (SUB + (64 - SUB_BITS as u64) * SUB) as usize;

/// A monotonically increasing `u64` counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// A last-value-wins `f64` gauge.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Gauge(f64);

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Gauge(0.0)
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&mut self, v: f64) {
        self.0 = v;
    }

    /// Adds to the gauge.
    #[inline]
    pub fn add(&mut self, v: f64) {
        self.0 += v;
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        self.0
    }
}

/// HDR-style log-linear histogram over `u64` values.
///
/// Values below [`SUB`] land in exact one-unit buckets; above that, each
/// octave `[2^e, 2^{e+1})` is split into [`SUB`] equal sub-buckets, so
/// the quantile error is bounded by `2^-SUB_BITS` of the value while the
/// whole structure stays a fixed array. `count`, `sum`, `min` and `max`
/// are tracked exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram. The bucket array is allocated here, once;
    /// recording never allocates.
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index for a value (public so boundary tests can pin the
    /// layout).
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        if v < SUB {
            v as usize
        } else {
            let exp = 63 - v.leading_zeros() as u64; // >= SUB_BITS
            let sub = (v >> (exp - SUB_BITS as u64)) - SUB;
            (SUB + (exp - SUB_BITS as u64) * SUB + sub) as usize
        }
    }

    /// Inclusive lower bound of a bucket.
    pub fn bucket_lower(index: usize) -> u64 {
        let index = index as u64;
        if index < SUB {
            index
        } else {
            let i = index - SUB;
            let exp = i / SUB + SUB_BITS as u64;
            let sub = i % SUB;
            (SUB + sub) << (exp - SUB_BITS as u64)
        }
    }

    /// Exclusive upper bound of a bucket (the next bucket's lower bound).
    pub fn bucket_upper(index: usize) -> u64 {
        if index + 1 >= BUCKETS {
            u64::MAX
        } else {
            Self::bucket_lower(index + 1)
        }
    }

    /// Records one value. Constant time, no allocation.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds another histogram into this one: bucket counts add
    /// element-wise and the exact `count` / `sum` / `min` / `max`
    /// bookkeeping combines losslessly — merging is equivalent to
    /// having recorded both value streams into one histogram.
    pub fn merge_from(&mut self, other: &LogHistogram) {
        for (dst, src) in self.counts.iter_mut().zip(&other.counts) {
            *dst += src;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact maximum recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Exact minimum recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0..=1.0`) as the upper bound of the bucket
    /// holding the rank-`ceil(q·count)` value, clamped to the exact
    /// recorded maximum. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Self::bucket_upper(i).saturating_sub(1).min(self.max);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(lower, upper_exclusive, count)` triples, in
    /// ascending value order — the export form.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_lower(i), Self::bucket_upper(i), c))
    }

    /// Summary snapshot (count, sum, min/max, p50/p95/p99).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }

    /// Snapshot plus non-empty buckets as a JSON value.
    pub fn to_value(&self) -> Value {
        let snap = self.snapshot();
        let buckets: Vec<Value> = self
            .nonzero_buckets()
            .map(|(lo, hi, c)| Value::Array(vec![Value::U64(lo), Value::U64(hi), Value::U64(c)]))
            .collect();
        Value::Object(vec![
            ("count".into(), Value::U64(snap.count)),
            ("sum".into(), Value::U64(snap.sum)),
            ("min".into(), Value::U64(snap.min)),
            ("max".into(), Value::U64(snap.max)),
            ("p50".into(), Value::U64(snap.p50)),
            ("p95".into(), Value::U64(snap.p95)),
            ("p99".into(), Value::U64(snap.p99)),
            ("buckets".into(), Value::Array(buckets)),
        ])
    }
}

/// Point-in-time summary of a [`LogHistogram`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Recorded values.
    pub count: u64,
    /// Exact sum.
    pub sum: u64,
    /// Exact minimum (0 when empty).
    pub min: u64,
    /// Exact maximum (0 when empty).
    pub max: u64,
    /// Median (bucket-resolved).
    pub p50: u64,
    /// 95th percentile (bucket-resolved).
    pub p95: u64,
    /// 99th percentile (bucket-resolved).
    pub p99: u64,
}

/// A named snapshot of counters, gauges and histograms — what
/// `--profile-json` embeds under `"registry"`.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, LogHistogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets a counter value.
    pub fn set_counter(&mut self, name: &str, v: u64) {
        self.counters.insert(name.to_string(), v);
    }

    /// Sets a gauge value.
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Inserts a histogram (cloned snapshot of the live instrument).
    pub fn insert_histogram(&mut self, name: &str, h: LogHistogram) {
        self.histograms.insert(name.to_string(), h);
    }

    /// A counter's value, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// A gauge's value, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// A histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<&LogHistogram> {
        self.histograms.get(name)
    }

    /// Renders the registry as a JSON value with `counters`, `gauges`
    /// and `histograms` sections. Keys within each section emit in
    /// sorted (`BTreeMap`) order regardless of insertion order, so two
    /// registries holding the same values render byte-identically —
    /// CI jobs and tests diff exports directly.
    pub fn to_value(&self) -> Value {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), Value::U64(v)))
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|(k, &v)| (k.clone(), Value::F64(v)))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| (k.clone(), h.to_value()))
            .collect();
        Value::Object(vec![
            ("counters".into(), Value::Object(counters)),
            ("gauges".into(), Value::Object(gauges)),
            ("histograms".into(), Value::Object(histograms)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Registry exports must be byte-stable: keys emit in sorted order
    /// no matter the order instruments were registered in.
    #[test]
    fn registry_keys_emit_in_sorted_order_regardless_of_insertion() {
        let mut a = MetricsRegistry::new();
        a.set_counter("zeta.last", 1);
        a.set_counter("alpha.first", 2);
        a.set_gauge("mid.gauge", 0.5);
        a.set_gauge("aaa.gauge", 1.5);
        let mut b = MetricsRegistry::new();
        b.set_gauge("aaa.gauge", 1.5);
        b.set_counter("alpha.first", 2);
        b.set_gauge("mid.gauge", 0.5);
        b.set_counter("zeta.last", 1);
        let (va, vb) = (a.to_value(), b.to_value());
        assert_eq!(format!("{va:?}"), format!("{vb:?}"));
        let keys = |v: &Value, section: &str| -> Vec<String> {
            match v {
                Value::Object(fields) => fields
                    .iter()
                    .find(|(k, _)| k == section)
                    .map(|(_, s)| match s {
                        Value::Object(inner) => inner.iter().map(|(k, _)| k.clone()).collect(),
                        _ => panic!("section is not an object"),
                    })
                    .expect("section present"),
                _ => panic!("registry value is not an object"),
            }
        };
        let counters = keys(&va, "counters");
        let mut sorted = counters.clone();
        sorted.sort();
        assert_eq!(counters, sorted, "counter keys not sorted");
        let gauges = keys(&va, "gauges");
        let mut sorted = gauges.clone();
        sorted.sort();
        assert_eq!(gauges, sorted, "gauge keys not sorted");
    }

    #[test]
    fn counter_and_gauge_basics() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let mut g = Gauge::new();
        g.set(2.5);
        g.add(0.5);
        assert!((g.get() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn linear_region_buckets_are_exact() {
        // Values below SUB each get their own bucket.
        for v in 0..SUB {
            assert_eq!(LogHistogram::bucket_index(v), v as usize);
            assert_eq!(LogHistogram::bucket_lower(v as usize), v);
            assert_eq!(LogHistogram::bucket_upper(v as usize), v + 1);
        }
    }

    #[test]
    fn log_region_bucket_boundaries() {
        // SUB itself opens the first log octave.
        assert_eq!(LogHistogram::bucket_index(SUB), SUB as usize);
        assert_eq!(LogHistogram::bucket_lower(SUB as usize), SUB);
        // Octave [64, 128) splits into SUB sub-buckets of width 2.
        let i64_ = LogHistogram::bucket_index(64);
        assert_eq!(LogHistogram::bucket_lower(i64_), 64);
        assert_eq!(LogHistogram::bucket_upper(i64_), 66);
        assert_eq!(LogHistogram::bucket_index(65), i64_, "same 2-wide bucket");
        assert_ne!(LogHistogram::bucket_index(66), i64_);
        // Every power of two starts its own bucket.
        for e in SUB_BITS..63 {
            let v = 1u64 << e;
            let i = LogHistogram::bucket_index(v);
            assert_eq!(LogHistogram::bucket_lower(i), v, "2^{e}");
        }
        // Round-trip: every value lands in a bucket that contains it.
        for v in [0, 1, 31, 32, 33, 1000, 123_456_789, u64::MAX / 3] {
            let i = LogHistogram::bucket_index(v);
            assert!(LogHistogram::bucket_lower(i) <= v);
            assert!(v < LogHistogram::bucket_upper(i));
        }
    }

    #[test]
    fn merged_histogram_matches_single_stream() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut whole = LogHistogram::new();
        for v in [3u64, 1000] {
            a.record(v);
            whole.record(v);
        }
        for v in [7u64, 1 << 40] {
            b.record(v);
            whole.record(v);
        }
        a.merge_from(&b);
        assert_eq!(a, whole);
        // Merging an empty histogram is a no-op (min sentinel included).
        let before = a.clone();
        a.merge_from(&LogHistogram::new());
        assert_eq!(a, before);
    }

    #[test]
    fn relative_error_is_bounded() {
        // Bucket width / lower bound <= 2^-SUB_BITS in the log region.
        for v in [100u64, 10_000, 1 << 20, (1 << 40) + 12345] {
            let i = LogHistogram::bucket_index(v);
            let width = LogHistogram::bucket_upper(i) - LogHistogram::bucket_lower(i);
            assert!(
                (width as f64) / (LogHistogram::bucket_lower(i) as f64) <= 1.0 / SUB as f64 + 1e-12,
                "width {width} at {v}"
            );
        }
    }

    #[test]
    fn quantiles_on_known_distribution() {
        let mut h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        // Bucket resolution bounds the error at ~3%.
        let p50 = h.quantile(0.50) as f64;
        assert!((p50 - 500.0).abs() / 500.0 < 0.05, "p50 = {p50}");
        let p95 = h.quantile(0.95) as f64;
        assert!((p95 - 950.0).abs() / 950.0 < 0.05, "p95 = {p95}");
        let p99 = h.quantile(0.99) as f64;
        assert!((p99 - 990.0).abs() / 990.0 < 0.05, "p99 = {p99}");
        // Extremes are exact.
        assert_eq!(h.quantile(0.0), h.quantile(1.0 / 1000.0));
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn quantile_never_exceeds_exact_max() {
        let mut h = LogHistogram::new();
        h.record(1000);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 1000);
        }
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.nonzero_buckets().count(), 0);
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
    }

    #[test]
    fn snapshot_and_value_roundtrip() {
        let mut h = LogHistogram::new();
        for v in [3u64, 3, 100, 5000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 4);
        assert_eq!(snap.max, 5000);
        let v = h.to_value();
        assert_eq!(v.get("count").and_then(Value::as_u64), Some(4));
        let buckets = v.get("buckets").unwrap().as_array().unwrap();
        assert_eq!(buckets.len(), 3, "two 3s share one exact bucket");
    }

    #[test]
    fn registry_snapshot_shape() {
        let mut r = MetricsRegistry::new();
        r.set_counter("ops.completed", 42);
        r.set_gauge("sim.time_secs", 1.5);
        let mut h = LogHistogram::new();
        h.record(7);
        r.insert_histogram("step_ns", h);
        assert_eq!(r.counter("ops.completed"), Some(42));
        assert_eq!(r.gauge("sim.time_secs"), Some(1.5));
        assert_eq!(r.histogram("step_ns").unwrap().count(), 1);
        let v = r.to_value();
        assert!(v.get("counters").unwrap().get("ops.completed").is_some());
        assert!(v.get("gauges").unwrap().get("sim.time_secs").is_some());
        assert!(v.get("histograms").unwrap().get("step_ns").is_some());
    }
}

// Checkpoint support.
gdisim_snap::snap_struct!(LogHistogram {
    counts,
    count,
    sum,
    min,
    max,
});
