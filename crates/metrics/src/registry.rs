//! Response-time bookkeeping.
//!
//! The platform "registers the duration of the operations finalized during
//! the measurement interval … and averages the samples to provide a
//! snapshot of the response times by operation and data center" (§4.3.1).
//! [`ResponseTimeRegistry`] implements exactly that: completions are
//! recorded under an `(application, operation, data center)` key and
//! drained into per-key statistics at each collection.

use gdisim_types::{AppId, DcId, OpTypeId, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Key identifying one reported response-time stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ResponseKey {
    /// Application the operation belongs to.
    pub app: AppId,
    /// Operation type.
    pub op: OpTypeId,
    /// Data center the client launched from.
    pub dc: DcId,
}

/// Aggregated completions for one key over one measurement interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResponseStats {
    /// Number of operations completed in the interval.
    pub completed: u64,
    /// Mean response time in seconds.
    pub mean_secs: f64,
    /// Maximum response time in seconds.
    pub max_secs: f64,
}

#[derive(Debug, Clone, Default)]
struct Accum {
    count: u64,
    total_secs: f64,
    max_secs: f64,
}

/// Records operation completions and drains them into interval snapshots.
#[derive(Debug, Clone, Default)]
pub struct ResponseTimeRegistry {
    current: BTreeMap<ResponseKey, Accum>,
    /// Full-run history: every completion, kept for RMSE comparisons in
    /// the validation experiments.
    history: BTreeMap<ResponseKey, Vec<(SimTime, f64)>>,
    keep_history: bool,
}

impl ResponseTimeRegistry {
    /// Creates a registry that only keeps interval aggregates.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a registry that additionally retains every completion for
    /// post-hoc accuracy analysis (validation experiments).
    pub fn with_history() -> Self {
        ResponseTimeRegistry {
            keep_history: true,
            ..Self::default()
        }
    }

    /// Records one completed operation.
    pub fn record(&mut self, key: ResponseKey, finished_at: SimTime, duration: SimDuration) {
        let secs = duration.as_secs_f64();
        let acc = self.current.entry(key).or_default();
        acc.count += 1;
        acc.total_secs += secs;
        acc.max_secs = acc.max_secs.max(secs);
        if self.keep_history {
            self.history
                .entry(key)
                .or_default()
                .push((finished_at, secs));
        }
    }

    /// Drains the current interval into per-key statistics.
    pub fn collect(&mut self) -> BTreeMap<ResponseKey, ResponseStats> {
        let drained = std::mem::take(&mut self.current);
        drained
            .into_iter()
            .map(|(k, a)| {
                (
                    k,
                    ResponseStats {
                        completed: a.count,
                        mean_secs: a.total_secs / a.count as f64,
                        max_secs: a.max_secs,
                    },
                )
            })
            .collect()
    }

    /// Completions recorded for `key` over the whole run (history mode).
    pub fn history(&self, key: ResponseKey) -> &[(SimTime, f64)] {
        self.history.get(&key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All keys seen in history mode.
    pub fn history_keys(&self) -> impl Iterator<Item = ResponseKey> + '_ {
        self.history.keys().copied()
    }

    /// Mean response time across the whole retained history for `key`.
    pub fn history_mean(&self, key: ResponseKey) -> Option<f64> {
        let h = self.history.get(&key)?;
        if h.is_empty() {
            return None;
        }
        Some(h.iter().map(|(_, s)| s).sum::<f64>() / h.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(op: u32) -> ResponseKey {
        ResponseKey {
            app: AppId(0),
            op: OpTypeId(op),
            dc: DcId(0),
        }
    }

    #[test]
    fn collect_aggregates_and_resets() {
        let mut r = ResponseTimeRegistry::new();
        r.record(key(0), SimTime::from_secs(1), SimDuration::from_secs(2));
        r.record(key(0), SimTime::from_secs(2), SimDuration::from_secs(4));
        r.record(key(1), SimTime::from_secs(2), SimDuration::from_secs(1));

        let snap = r.collect();
        assert_eq!(snap.len(), 2);
        let s0 = snap[&key(0)];
        assert_eq!(s0.completed, 2);
        assert!((s0.mean_secs - 3.0).abs() < 1e-12);
        assert!((s0.max_secs - 4.0).abs() < 1e-12);

        // Second collection is empty.
        assert!(r.collect().is_empty());
    }

    #[test]
    fn history_mode_retains_everything() {
        let mut r = ResponseTimeRegistry::with_history();
        r.record(key(0), SimTime::from_secs(1), SimDuration::from_secs(2));
        r.collect();
        r.record(key(0), SimTime::from_secs(9), SimDuration::from_secs(6));
        assert_eq!(r.history(key(0)).len(), 2);
        assert_eq!(r.history_mean(key(0)), Some(4.0));
        assert_eq!(r.history(key(7)), &[]);
        assert_eq!(r.history_mean(key(7)), None);
    }

    #[test]
    fn plain_mode_keeps_no_history() {
        let mut r = ResponseTimeRegistry::new();
        r.record(key(0), SimTime::ZERO, SimDuration::from_secs(1));
        assert!(r.history(key(0)).is_empty());
    }
}
