//! Response-time bookkeeping.
//!
//! The platform "registers the duration of the operations finalized during
//! the measurement interval … and averages the samples to provide a
//! snapshot of the response times by operation and data center" (§4.3.1).
//! [`ResponseTimeRegistry`] implements exactly that: completions are
//! recorded under an `(application, operation, data center)` key and
//! drained into per-key statistics at each collection.

use crate::instruments::LogHistogram;
use gdisim_types::{AppId, DcId, OpTypeId, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Key identifying one reported response-time stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ResponseKey {
    /// Application the operation belongs to.
    pub app: AppId,
    /// Operation type.
    pub op: OpTypeId,
    /// Data center the client launched from.
    pub dc: DcId,
}

/// Aggregated completions for one key over one measurement interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResponseStats {
    /// Number of operations completed in the interval.
    pub completed: u64,
    /// Mean response time in seconds.
    pub mean_secs: f64,
    /// Maximum response time in seconds.
    pub max_secs: f64,
}

#[derive(Debug, Clone, Default)]
struct Accum {
    count: u64,
    total_secs: f64,
    max_secs: f64,
}

/// Records operation completions and drains them into interval snapshots.
#[derive(Debug, Clone, Default)]
pub struct ResponseTimeRegistry {
    current: BTreeMap<ResponseKey, Accum>,
    /// Full-run history: every completion, kept for RMSE comparisons in
    /// the validation experiments.
    history: BTreeMap<ResponseKey, Vec<(SimTime, f64)>>,
    keep_history: bool,
    /// Full-run retention as log-bucketed histograms of duration micros:
    /// fixed footprint for day-scale runs, ~3% quantile error.
    hist: BTreeMap<ResponseKey, LogHistogram>,
    use_histograms: bool,
    /// Completions ever recorded (both modes; survives `collect`).
    total_recorded: u64,
}

impl ResponseTimeRegistry {
    /// Creates a registry that only keeps interval aggregates.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a registry that additionally retains every completion for
    /// post-hoc accuracy analysis (validation experiments).
    pub fn with_history() -> Self {
        ResponseTimeRegistry {
            keep_history: true,
            ..Self::default()
        }
    }

    /// Switches full-run retention from exact per-completion vectors to
    /// log-bucketed [`LogHistogram`]s of duration microseconds. The
    /// interval aggregates drained by [`Self::collect`] are computed from
    /// the exact durations either way, so collected snapshots — and
    /// everything downstream of them — are bit-identical across modes.
    pub fn enable_histograms(&mut self) {
        self.keep_history = false;
        self.use_histograms = true;
    }

    /// Whether histogram retention is active.
    pub fn histograms_enabled(&self) -> bool {
        self.use_histograms
    }

    /// Records one completed operation.
    pub fn record(&mut self, key: ResponseKey, finished_at: SimTime, duration: SimDuration) {
        let secs = duration.as_secs_f64();
        let acc = self.current.entry(key).or_default();
        acc.count += 1;
        acc.total_secs += secs;
        acc.max_secs = acc.max_secs.max(secs);
        self.total_recorded += 1;
        if self.keep_history {
            self.history
                .entry(key)
                .or_default()
                .push((finished_at, secs));
        }
        if self.use_histograms {
            self.hist
                .entry(key)
                .or_default()
                .record(duration.as_micros());
        }
    }

    /// Drains the current interval into per-key statistics.
    pub fn collect(&mut self) -> BTreeMap<ResponseKey, ResponseStats> {
        let drained = std::mem::take(&mut self.current);
        drained
            .into_iter()
            .map(|(k, a)| {
                (
                    k,
                    ResponseStats {
                        completed: a.count,
                        mean_secs: a.total_secs / a.count as f64,
                        max_secs: a.max_secs,
                    },
                )
            })
            .collect()
    }

    /// Completions recorded for `key` over the whole run (history mode).
    pub fn history(&self, key: ResponseKey) -> &[(SimTime, f64)] {
        self.history.get(&key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All keys seen in history mode.
    pub fn history_keys(&self) -> impl Iterator<Item = ResponseKey> + '_ {
        self.history.keys().copied()
    }

    /// Mean response time across the whole retained history for `key`.
    pub fn history_mean(&self, key: ResponseKey) -> Option<f64> {
        let h = self.history.get(&key)?;
        if h.is_empty() {
            return None;
        }
        Some(h.iter().map(|(_, s)| s).sum::<f64>() / h.len() as f64)
    }

    /// The duration histogram for `key` (histogram mode only).
    pub fn histogram(&self, key: ResponseKey) -> Option<&LogHistogram> {
        self.hist.get(&key)
    }

    /// All keys with a histogram (histogram mode only).
    pub fn histogram_keys(&self) -> impl Iterator<Item = ResponseKey> + '_ {
        self.hist.keys().copied()
    }

    /// Completions ever recorded, across all keys and intervals.
    pub fn total_recorded(&self) -> u64 {
        self.total_recorded
    }

    /// Folds another registry into this one: undrained interval
    /// accumulators merge per key, histories concatenate (each key's
    /// completions stay time-ordered when the sources cover disjoint
    /// key sets or interleaved times are re-sorted by the caller), and
    /// histograms add bucket-wise. The sharded engine uses this to
    /// stitch per-shard registries back into one report; shard key
    /// sets are disjoint there (a key carries the client DC), so the
    /// merge is a plain union.
    pub fn merge_from(&mut self, other: &ResponseTimeRegistry) {
        for (k, a) in &other.current {
            let acc = self.current.entry(*k).or_default();
            acc.count += a.count;
            acc.total_secs += a.total_secs;
            acc.max_secs = acc.max_secs.max(a.max_secs);
        }
        for (k, h) in &other.history {
            let dst = self.history.entry(*k).or_default();
            dst.extend_from_slice(h);
            dst.sort_by_key(|e| e.0);
        }
        for (k, h) in &other.hist {
            self.hist.entry(*k).or_default().merge_from(h);
        }
        self.total_recorded += other.total_recorded;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(op: u32) -> ResponseKey {
        ResponseKey {
            app: AppId(0),
            op: OpTypeId(op),
            dc: DcId(0),
        }
    }

    #[test]
    fn collect_aggregates_and_resets() {
        let mut r = ResponseTimeRegistry::new();
        r.record(key(0), SimTime::from_secs(1), SimDuration::from_secs(2));
        r.record(key(0), SimTime::from_secs(2), SimDuration::from_secs(4));
        r.record(key(1), SimTime::from_secs(2), SimDuration::from_secs(1));

        let snap = r.collect();
        assert_eq!(snap.len(), 2);
        let s0 = snap[&key(0)];
        assert_eq!(s0.completed, 2);
        assert!((s0.mean_secs - 3.0).abs() < 1e-12);
        assert!((s0.max_secs - 4.0).abs() < 1e-12);

        // Second collection is empty.
        assert!(r.collect().is_empty());
    }

    #[test]
    fn history_mode_retains_everything() {
        let mut r = ResponseTimeRegistry::with_history();
        r.record(key(0), SimTime::from_secs(1), SimDuration::from_secs(2));
        r.collect();
        r.record(key(0), SimTime::from_secs(9), SimDuration::from_secs(6));
        assert_eq!(r.history(key(0)).len(), 2);
        assert_eq!(r.history_mean(key(0)), Some(4.0));
        assert_eq!(r.history(key(7)), &[]);
        assert_eq!(r.history_mean(key(7)), None);
    }

    #[test]
    fn plain_mode_keeps_no_history() {
        let mut r = ResponseTimeRegistry::new();
        r.record(key(0), SimTime::ZERO, SimDuration::from_secs(1));
        assert!(r.history(key(0)).is_empty());
    }

    #[test]
    fn merge_from_is_equivalent_to_recording_into_one() {
        let mut a = ResponseTimeRegistry::with_history();
        let mut b = ResponseTimeRegistry::with_history();
        let mut whole = ResponseTimeRegistry::with_history();
        for (op, t, secs) in [(0u32, 1u64, 2u64), (1, 3, 4)] {
            a.record(key(op), SimTime::from_secs(t), SimDuration::from_secs(secs));
            whole.record(key(op), SimTime::from_secs(t), SimDuration::from_secs(secs));
        }
        for (op, t, secs) in [(2u32, 2u64, 6u64), (2, 5, 1)] {
            b.record(key(op), SimTime::from_secs(t), SimDuration::from_secs(secs));
            whole.record(key(op), SimTime::from_secs(t), SimDuration::from_secs(secs));
        }
        a.merge_from(&b);
        assert_eq!(a.total_recorded(), whole.total_recorded());
        for k in [key(0), key(1), key(2)] {
            assert_eq!(a.history(k), whole.history(k), "history for {k:?}");
        }
        assert_eq!(a.collect(), whole.collect());
    }

    #[test]
    fn histogram_mode_replaces_history_but_not_intervals() {
        let mut r = ResponseTimeRegistry::with_history();
        r.enable_histograms();
        assert!(r.histograms_enabled());
        r.record(key(0), SimTime::from_secs(1), SimDuration::from_secs(2));
        r.record(key(0), SimTime::from_secs(2), SimDuration::from_secs(4));
        // No exact vectors grow...
        assert!(r.history(key(0)).is_empty());
        // ...but the histogram saw both durations (in micros)...
        let h = r.histogram(key(0)).expect("histogram for key");
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 4_000_000);
        assert_eq!(r.histogram_keys().collect::<Vec<_>>(), vec![key(0)]);
        // ...and the interval snapshot is exact, same as vector mode.
        let snap = r.collect();
        let s0 = snap[&key(0)];
        assert_eq!(s0.completed, 2);
        assert!((s0.mean_secs - 3.0).abs() < 1e-12);
        assert_eq!(r.total_recorded(), 2);
    }
}

// Checkpoint support.
gdisim_snap::snap_struct!(ResponseKey { app, op, dc });
gdisim_snap::snap_struct!(Accum {
    count,
    total_secs,
    max_secs,
});
gdisim_snap::snap_struct!(ResponseTimeRegistry {
    current,
    history,
    keep_history,
    hist,
    use_histograms,
    total_recorded,
});
