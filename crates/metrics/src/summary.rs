//! Summary statistics: steady-state means, deviations and RMSE.
//!
//! Equations 5.1–5.5 of the thesis define the statistics used to assess
//! simulator accuracy. They are reproduced here verbatim: population
//! standard deviation (the paper divides by `N`, not `N−1`) and the root
//! mean square error between a physical and a simulated trace.

use serde::{Deserialize, Serialize};

/// Mean of a sample set; `0.0` for an empty set.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Mean and population standard deviation (Eqs. 5.1–5.4).
pub fn mean_stddev(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let mu = mean(values);
    let var = values.iter().map(|v| (v - mu).powi(2)).sum::<f64>() / values.len() as f64;
    (mu, var.sqrt())
}

/// Root Mean Square Error between two aligned traces (Eq. 5.5).
///
/// # Panics
/// Panics if the traces have different lengths — comparing misaligned
/// sample sets is always a harness bug, never a recoverable condition.
pub fn rmse(physical: &[f64], simulated: &[f64]) -> f64 {
    assert_eq!(
        physical.len(),
        simulated.len(),
        "RMSE requires aligned traces ({} vs {} samples)",
        physical.len(),
        simulated.len()
    );
    if physical.is_empty() {
        return 0.0;
    }
    let sum_sq: f64 = physical
        .iter()
        .zip(simulated)
        .map(|(p, s)| (p - s).powi(2))
        .sum();
    (sum_sq / physical.len() as f64).sqrt()
}

/// RMSE between traces that may differ in length by trimming both to the
/// shorter one. Useful when the physical and simulated runs end a sample
/// apart due to rounding of the experiment horizon.
pub fn rmse_between(physical: &[f64], simulated: &[f64]) -> f64 {
    let n = physical.len().min(simulated.len());
    rmse(&physical[..n], &simulated[..n])
}

/// A compact distribution summary used in experiment reports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample set. Empty input yields the zero summary.
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                stddev: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let (mean, stddev) = mean_stddev(values);
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &v in values {
            min = min.min(v);
            max = max.max(v);
        }
        Summary {
            count: values.len(),
            mean,
            stddev,
            min,
            max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_stddev_known_values() {
        let (mu, sigma) = mean_stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((mu - 5.0).abs() < 1e-12);
        assert!((sigma - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean_stddev(&[]), (0.0, 0.0));
        assert_eq!(rmse(&[], &[]), 0.0);
        assert_eq!(Summary::of(&[]).count, 0);
    }

    #[test]
    fn rmse_identical_traces_is_zero() {
        let t = [0.1, 0.5, 0.9];
        assert_eq!(rmse(&t, &t), 0.0);
    }

    #[test]
    fn rmse_constant_offset() {
        let p = [1.0, 2.0, 3.0];
        let s = [1.5, 2.5, 3.5];
        assert!((rmse(&p, &s) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "aligned traces")]
    fn rmse_misaligned_panics() {
        rmse(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn rmse_between_trims() {
        assert!((rmse_between(&[1.0, 2.0, 99.0], &[1.0, 2.0]) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn summary_extremes() {
        let s = Summary::of(&[3.0, -1.0, 7.0]);
        assert_eq!(s.min, -1.0);
        assert_eq!(s.max, 7.0);
        assert_eq!(s.count, 3);
    }

    proptest! {
        #[test]
        fn stddev_is_nonnegative(v in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let (_, sigma) = mean_stddev(&v);
            prop_assert!(sigma >= 0.0);
        }

        #[test]
        fn rmse_symmetric(v in proptest::collection::vec(0.0f64..1e3, 1..100)) {
            let shifted: Vec<f64> = v.iter().map(|x| x + 1.0).collect();
            let a = rmse(&v, &shifted);
            let b = rmse(&shifted, &v);
            prop_assert!((a - b).abs() < 1e-9);
            prop_assert!((a - 1.0).abs() < 1e-9);
        }

        #[test]
        fn mean_bounded_by_extremes(v in proptest::collection::vec(-1e3f64..1e3, 1..100)) {
            let s = Summary::of(&v);
            prop_assert!(s.mean >= s.min - 1e-9 && s.mean <= s.max + 1e-9);
        }
    }
}
