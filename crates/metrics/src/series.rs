//! Timestamped sample series.
//!
//! Every reported quantity in Chapters 5–7 is a trace: a value sampled at
//! a fixed cadence (every 6 s in validation, every minute in the case
//! studies). `TimeSeries` stores those `(time, value)` pairs and provides
//! the window operations the experiment harnesses need: steady-state
//! extraction, windowed averages and alignment for RMSE comparison.

use gdisim_types::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A series of `(time, value)` samples, ordered by insertion time.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    times: Vec<SimTime>,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty series with capacity for `n` samples.
    pub fn with_capacity(n: usize) -> Self {
        TimeSeries {
            times: Vec::with_capacity(n),
            values: Vec::with_capacity(n),
        }
    }

    /// Appends a sample. Samples must be pushed in non-decreasing time
    /// order; the collector always satisfies this.
    pub fn push(&mut self, t: SimTime, v: f64) {
        debug_assert!(
            self.times.last().is_none_or(|last| *last <= t),
            "samples must be pushed in time order"
        );
        self.times.push(t);
        self.values.push(v);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The raw values, in time order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The raw timestamps, in time order.
    pub fn times(&self) -> &[SimTime] {
        &self.times
    }

    /// Iterates over `(time, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.times.iter().copied().zip(self.values.iter().copied())
    }

    /// The last sample, if any.
    pub fn last(&self) -> Option<(SimTime, f64)> {
        Some((*self.times.last()?, *self.values.last()?))
    }

    /// Values of the samples with `start <= t < end` — e.g. the paper's
    /// 12:00–16:00 GMT network-utilization window (Table 6.1) or the
    /// 31-minute steady-state phase of the validation runs.
    pub fn window(&self, start: SimTime, end: SimTime) -> Vec<f64> {
        self.iter()
            .filter(|(t, _)| *t >= start && *t < end)
            .map(|(_, v)| v)
            .collect()
    }

    /// Mean over a time window; `0.0` if the window holds no samples.
    pub fn window_mean(&self, start: SimTime, end: SimTime) -> f64 {
        crate::summary::mean(&self.window(start, end))
    }

    /// Maximum over the whole series, if non-empty.
    pub fn max(&self) -> Option<(SimTime, f64)> {
        self.iter()
            .fold(None, |best: Option<(SimTime, f64)>, (t, v)| match best {
                Some((_, bv)) if bv >= v => best,
                _ => Some((t, v)),
            })
    }

    /// Downsamples to one averaged value per `bucket` of time, returning a
    /// new series stamped at each bucket's start. This is the snapshot
    /// operation of §4.3.1 (average a window of samples, discard the rest).
    pub fn resample(&self, bucket: SimDuration) -> TimeSeries {
        assert!(!bucket.is_zero(), "bucket must be positive");
        let mut out = TimeSeries::new();
        if self.is_empty() {
            return out;
        }
        let mut bucket_start = SimTime(self.times[0].0 / bucket.0 * bucket.0);
        let mut acc = 0.0;
        let mut n = 0u64;
        for (t, v) in self.iter() {
            let this_bucket = SimTime(t.0 / bucket.0 * bucket.0);
            if this_bucket != bucket_start && n > 0 {
                out.push(bucket_start, acc / n as f64);
                acc = 0.0;
                n = 0;
                bucket_start = this_bucket;
            }
            acc += v;
            n += 1;
        }
        if n > 0 {
            out.push(bucket_start, acc / n as f64);
        }
        out
    }
}

impl FromIterator<(SimTime, f64)> for TimeSeries {
    fn from_iter<I: IntoIterator<Item = (SimTime, f64)>>(iter: I) -> Self {
        let mut s = TimeSeries::new();
        for (t, v) in iter {
            s.push(t, v);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(pairs: &[(u64, f64)]) -> TimeSeries {
        pairs
            .iter()
            .map(|(s, v)| (SimTime::from_secs(*s), *v))
            .collect()
    }

    #[test]
    fn push_and_iterate() {
        let s = series(&[(0, 1.0), (6, 2.0), (12, 3.0)]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.values(), &[1.0, 2.0, 3.0]);
        assert_eq!(s.last(), Some((SimTime::from_secs(12), 3.0)));
    }

    #[test]
    fn window_is_half_open() {
        let s = series(&[(0, 1.0), (6, 2.0), (12, 3.0), (18, 4.0)]);
        let w = s.window(SimTime::from_secs(6), SimTime::from_secs(18));
        assert_eq!(w, vec![2.0, 3.0]);
        assert_eq!(
            s.window_mean(SimTime::from_secs(6), SimTime::from_secs(18)),
            2.5
        );
        assert_eq!(
            s.window_mean(SimTime::from_secs(100), SimTime::from_secs(200)),
            0.0
        );
    }

    #[test]
    fn max_finds_first_peak() {
        let s = series(&[(0, 1.0), (6, 5.0), (12, 5.0), (18, 2.0)]);
        assert_eq!(s.max(), Some((SimTime::from_secs(6), 5.0)));
        assert_eq!(TimeSeries::new().max(), None);
    }

    #[test]
    fn resample_averages_buckets() {
        let s = series(&[(0, 1.0), (1, 3.0), (10, 5.0), (11, 7.0)]);
        let r = s.resample(SimDuration::from_secs(10));
        assert_eq!(r.len(), 2);
        assert_eq!(r.values(), &[2.0, 6.0]);
        assert_eq!(r.times()[0], SimTime::ZERO);
        assert_eq!(r.times()[1], SimTime::from_secs(10));
    }

    #[test]
    fn resample_empty() {
        assert!(TimeSeries::new()
            .resample(SimDuration::from_secs(1))
            .is_empty());
    }
}

// Checkpoint support: a series roundtrips exactly (times and raw f64
// bits), so resumed reports match uninterrupted ones byte-for-byte.
gdisim_snap::snap_struct!(TimeSeries { times, values });
