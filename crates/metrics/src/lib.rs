//! Measurement, sampling and accuracy statistics for GDISim.
//!
//! The paper's collector component (§4.3.1) periodically samples the state
//! of every agent, averages a window of samples into a *snapshot*, and
//! reports response times by operation type and location. Chapter 5 then
//! compares physical and simulated traces using steady-state mean/standard
//! deviation (Table 5.2) and Root Mean Square Error (Table 5.3, Eq. 5.5).
//!
//! This crate provides those building blocks: busy-time utilization meters,
//! interval samplers, time series, response-time registries and the
//! accuracy statistics used by the validation experiments.

#![warn(missing_docs)]

pub mod attribution;
pub mod instruments;
pub mod registry;
pub mod sampler;
pub mod series;
pub mod summary;

pub use attribution::{AttributionAggregator, OpComponents};
pub use instruments::{Counter, Gauge, HistogramSnapshot, LogHistogram, MetricsRegistry};
pub use registry::{ResponseKey, ResponseStats, ResponseTimeRegistry};
pub use sampler::{GaugeMeter, UtilizationMeter};
pub use series::TimeSeries;
pub use summary::{mean, mean_stddev, rmse, rmse_between, Summary};
