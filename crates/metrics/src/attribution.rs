//! Critical-path latency attribution (ISSUE 10).
//!
//! The optrace layer decomposes every sampled operation's end-to-end
//! response time into five additive components — queue wait, service,
//! WAN transit, retry backoff and hedge wait — by walking the dominant
//! message path of each attempt. This module holds the component record
//! and the streaming aggregator that turns per-operation decompositions
//! into per-`(app, op, client DC)` percentile summaries.
//!
//! All component fields are integer **microseconds** so the invariant
//! `queue + service + wan + backoff + hedge_wait == response` holds
//! exactly (no float drift); the optrace well-formedness tests assert
//! it per sampled operation.

use crate::instruments::LogHistogram;
use crate::registry::ResponseKey;
use serde::Value;
use std::collections::BTreeMap;

/// One operation's response-time decomposition, in microseconds.
///
/// The five components are additive and exhaustive: they sum to
/// `response_us` exactly (residual time that no dominant-path segment
/// explains is folded into `queue_us`, or `wan_us` for cross-shard
/// migration gaps, so nothing is lost).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpComponents {
    /// Time spent waiting in component queues on the dominant path.
    pub queue_us: u64,
    /// Nominal service time on the dominant path.
    pub service_us: u64,
    /// WAN propagation plus cross-shard migration gaps.
    pub wan_us: u64,
    /// Time between a failed attempt and the launch of its retry.
    pub backoff_us: u64,
    /// Time the winning hedge twin spent waiting to be launched.
    pub hedge_wait_us: u64,
    /// End-to-end response time (first launch to settle).
    pub response_us: u64,
}

impl OpComponents {
    /// Sum of the five attribution components.
    pub fn component_sum_us(&self) -> u64 {
        self.queue_us + self.service_us + self.wan_us + self.backoff_us + self.hedge_wait_us
    }

    /// Whether the components add up to the end-to-end response exactly.
    pub fn is_exact(&self) -> bool {
        self.component_sum_us() == self.response_us
    }
}

/// Per-key component histograms (microsecond log-histograms).
#[derive(Debug, Clone, Default)]
struct ComponentHists {
    n: u64,
    queue: LogHistogram,
    service: LogHistogram,
    wan: LogHistogram,
    backoff: LogHistogram,
    hedge_wait: LogHistogram,
    response: LogHistogram,
}

impl ComponentHists {
    fn record(&mut self, c: &OpComponents) {
        self.n += 1;
        self.queue.record(c.queue_us);
        self.service.record(c.service_us);
        self.wan.record(c.wan_us);
        self.backoff.record(c.backoff_us);
        self.hedge_wait.record(c.hedge_wait_us);
        self.response.record(c.response_us);
    }

    fn merge_from(&mut self, other: &ComponentHists) {
        self.n += other.n;
        self.queue.merge_from(&other.queue);
        self.service.merge_from(&other.service);
        self.wan.merge_from(&other.wan);
        self.hedge_wait.merge_from(&other.hedge_wait);
        self.backoff.merge_from(&other.backoff);
        self.response.merge_from(&other.response);
    }
}

/// Renders one component histogram as `{p50, p95, p99, mean_us, sum_us}`.
fn hist_value(h: &LogHistogram) -> Value {
    Value::Object(vec![
        ("p50_us".to_string(), Value::U64(h.quantile(0.50))),
        ("p95_us".to_string(), Value::U64(h.quantile(0.95))),
        ("p99_us".to_string(), Value::U64(h.quantile(0.99))),
        ("mean_us".to_string(), Value::F64(h.mean())),
        ("sum_us".to_string(), Value::U64(h.sum())),
    ])
}

/// Streaming per-`(app, op, client DC)` attribution aggregator.
///
/// `record` is called once per settled sampled operation; the aggregator
/// keeps only log-histograms, so its footprint is bounded regardless of
/// how many operations are sampled. Keys iterate in `ResponseKey` order
/// (the map is a `BTreeMap`), keeping every export byte-stable.
#[derive(Debug, Clone, Default)]
pub struct AttributionAggregator {
    per_key: BTreeMap<ResponseKey, ComponentHists>,
}

impl AttributionAggregator {
    /// Creates an empty aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one settled operation's decomposition into its key.
    pub fn record(&mut self, key: ResponseKey, comps: &OpComponents) {
        self.per_key.entry(key).or_default().record(comps);
    }

    /// Total operations recorded across all keys.
    pub fn total_recorded(&self) -> u64 {
        self.per_key.values().map(|h| h.n).sum()
    }

    /// Number of distinct `(app, op, client DC)` keys seen.
    pub fn key_count(&self) -> usize {
        self.per_key.len()
    }

    /// Merges another aggregator (shard merge at export time).
    pub fn merge_from(&mut self, other: &AttributionAggregator) {
        for (key, hists) in &other.per_key {
            self.per_key.entry(*key).or_default().merge_from(hists);
        }
    }

    /// Renders the aggregator as an array of per-key summaries, using
    /// `labels` to resolve each key to `(app, op, dc)` display names.
    /// Entries appear in `ResponseKey` order.
    pub fn to_value(&self, labels: impl Fn(&ResponseKey) -> (String, String, String)) -> Value {
        let rows: Vec<Value> = self
            .per_key
            .iter()
            .map(|(key, h)| {
                let (app, op, dc) = labels(key);
                Value::Object(vec![
                    ("app".to_string(), Value::Str(app)),
                    ("op".to_string(), Value::Str(op)),
                    ("client_dc".to_string(), Value::Str(dc)),
                    ("n".to_string(), Value::U64(h.n)),
                    ("queue".to_string(), hist_value(&h.queue)),
                    ("service".to_string(), hist_value(&h.service)),
                    ("wan".to_string(), hist_value(&h.wan)),
                    ("backoff".to_string(), hist_value(&h.backoff)),
                    ("hedge_wait".to_string(), hist_value(&h.hedge_wait)),
                    ("response".to_string(), hist_value(&h.response)),
                ])
            })
            .collect();
        Value::Array(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdisim_types::{AppId, DcId, OpTypeId};

    fn key(app: u32, dc: u32) -> ResponseKey {
        ResponseKey {
            app: AppId(app),
            op: OpTypeId(0),
            dc: DcId::from_index(dc as usize),
        }
    }

    fn comps(queue: u64, service: u64, wan: u64) -> OpComponents {
        OpComponents {
            queue_us: queue,
            service_us: service,
            wan_us: wan,
            backoff_us: 0,
            hedge_wait_us: 0,
            response_us: queue + service + wan,
        }
    }

    #[test]
    fn components_sum_exactly() {
        let c = comps(10, 20, 30);
        assert!(c.is_exact());
        assert_eq!(c.component_sum_us(), 60);
    }

    #[test]
    fn aggregator_records_and_merges() {
        let mut a = AttributionAggregator::new();
        a.record(key(0, 0), &comps(100, 200, 0));
        a.record(key(0, 0), &comps(300, 400, 0));
        let mut b = AttributionAggregator::new();
        b.record(key(1, 1), &comps(1, 2, 3));
        a.merge_from(&b);
        assert_eq!(a.total_recorded(), 3);
        assert_eq!(a.key_count(), 2);
    }

    #[test]
    fn to_value_orders_keys_and_names_components() {
        let mut a = AttributionAggregator::new();
        a.record(key(1, 0), &comps(5, 5, 0));
        a.record(key(0, 0), &comps(5, 5, 0));
        let v = a.to_value(|k| {
            (
                format!("app{}", k.app.0),
                "op".to_string(),
                "dc".to_string(),
            )
        });
        let Value::Array(rows) = v else {
            panic!("expected array")
        };
        assert_eq!(rows.len(), 2);
        let Value::Object(first) = &rows[0] else {
            panic!("expected object")
        };
        assert_eq!(first[0].1, Value::Str("app0".to_string()));
        let names: Vec<&str> = first.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            names,
            [
                "app",
                "op",
                "client_dc",
                "n",
                "queue",
                "service",
                "wan",
                "backoff",
                "hedge_wait",
                "response"
            ]
        );
    }
}
