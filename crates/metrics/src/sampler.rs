//! Per-agent measurement instruments.
//!
//! Agents expose two kinds of state to the collector (§4.3.2):
//!
//! * **Utilization** — the fraction of the measurement interval a queue's
//!   servers were busy. [`UtilizationMeter`] accumulates busy capacity-time
//!   between collections and converts it to a `[0, 1]` fraction.
//! * **Gauges** — instantaneous levels (queue depth, allocated memory,
//!   concurrent connections). [`GaugeMeter`] tracks the current level and a
//!   time-weighted average since the last collection.

use gdisim_types::SimDuration;
use serde::{Deserialize, Serialize};

/// Accumulates busy time for a multi-server resource and reports average
/// utilization per measurement interval.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct UtilizationMeter {
    /// Busy capacity-time accumulated since the last collection, in
    /// server-microseconds (e.g. 2 servers busy for 5 µs = 10).
    busy: f64,
    /// Elapsed capacity-time since the last collection.
    elapsed: f64,
}

impl UtilizationMeter {
    /// Creates an idle meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one tick: `busy_servers` of `total_servers` were busy for
    /// `dt`. Fractional busy servers are allowed — fluid queue models use
    /// the exact capacity consumed during the tick.
    pub fn record(&mut self, busy_servers: f64, total_servers: f64, dt: SimDuration) {
        debug_assert!(busy_servers >= -1e-9 && busy_servers <= total_servers + 1e-9);
        let dt = dt.as_micros() as f64;
        self.busy += busy_servers.max(0.0) * dt;
        self.elapsed += total_servers * dt;
    }

    /// Records `ticks` consecutive fully-idle ticks in one addition.
    ///
    /// Bit-for-bit equivalent to calling `record(0.0, total_servers, dt)`
    /// `ticks` times: with integer server counts and integer-microsecond
    /// ticks every product below 2^53 is exact in f64, so one bulk
    /// addition accumulates the same value as the per-tick loop. This is
    /// what keeps the engine's active-agent fast path (which skips empty
    /// agents and credits their idle time lazily) identical to the
    /// always-tick loop.
    pub fn record_idle(&mut self, total_servers: f64, dt: SimDuration, ticks: u64) {
        self.elapsed += total_servers * dt.as_micros() as f64 * ticks as f64;
    }

    /// Returns the utilization in `[0, 1]` since the last collection and
    /// resets the meter. An interval with no recorded time reports `0`.
    pub fn collect(&mut self) -> f64 {
        let u = if self.elapsed > 0.0 {
            (self.busy / self.elapsed).clamp(0.0, 1.0)
        } else {
            0.0
        };
        self.busy = 0.0;
        self.elapsed = 0.0;
        u
    }

    /// Peeks at the utilization without resetting.
    pub fn peek(&self) -> f64 {
        if self.elapsed > 0.0 {
            (self.busy / self.elapsed).clamp(0.0, 1.0)
        } else {
            0.0
        }
    }
}

/// Tracks an instantaneous level and its time-weighted average.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GaugeMeter {
    level: f64,
    weighted: f64,
    elapsed: f64,
}

impl GaugeMeter {
    /// Creates a gauge at level zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current level.
    pub fn level(&self) -> f64 {
        self.level
    }

    /// Sets the current level (absolute).
    pub fn set(&mut self, level: f64) {
        self.level = level;
    }

    /// Adjusts the current level by `delta` (may be negative).
    pub fn add(&mut self, delta: f64) {
        self.level += delta;
    }

    /// Advances time: the current level held for `dt`.
    pub fn advance(&mut self, dt: SimDuration) {
        let dt = dt.as_micros() as f64;
        self.weighted += self.level * dt;
        self.elapsed += dt;
    }

    /// Advances `ticks` ticks in one addition — bit-for-bit equivalent to
    /// `ticks` calls of [`advance`](Self::advance) when the level is an
    /// integer (job counts always are) and ticks are whole microseconds,
    /// since every product stays exactly representable.
    pub fn advance_by(&mut self, dt: SimDuration, ticks: u64) {
        let span = dt.as_micros() as f64 * ticks as f64;
        self.weighted += self.level * span;
        self.elapsed += span;
    }

    /// Returns the time-weighted average level since the last collection
    /// and resets the accumulator (the level itself persists).
    pub fn collect(&mut self) -> f64 {
        let avg = if self.elapsed > 0.0 {
            self.weighted / self.elapsed
        } else {
            self.level
        };
        self.weighted = 0.0;
        self.elapsed = 0.0;
        avg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: SimDuration = SimDuration::from_millis(1);

    #[test]
    fn utilization_half_busy() {
        let mut m = UtilizationMeter::new();
        m.record(1.0, 2.0, MS);
        m.record(1.0, 2.0, MS);
        assert!((m.peek() - 0.5).abs() < 1e-12);
        assert!((m.collect() - 0.5).abs() < 1e-12);
        // Reset after collection.
        assert_eq!(m.collect(), 0.0);
    }

    #[test]
    fn utilization_clamps() {
        let mut m = UtilizationMeter::new();
        // Floating point slop above capacity must not report > 1.
        m.record(2.0 + 1e-10, 2.0, MS);
        assert!(m.collect() <= 1.0);
    }

    #[test]
    fn utilization_varying_load() {
        let mut m = UtilizationMeter::new();
        m.record(0.0, 4.0, MS);
        m.record(4.0, 4.0, MS);
        m.record(2.0, 4.0, MS * 2);
        // (0 + 4 + 2*2) / (4 * 4) = 8/16
        assert!((m.collect() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn gauge_time_weighted_average() {
        let mut g = GaugeMeter::new();
        g.set(10.0);
        g.advance(MS);
        g.set(20.0);
        g.advance(MS * 3);
        // (10*1 + 20*3) / 4 = 17.5
        assert!((g.collect() - 17.5).abs() < 1e-12);
        // Level persists across collection.
        assert_eq!(g.level(), 20.0);
        // Collection with no elapsed time reports the instantaneous level.
        assert_eq!(g.collect(), 20.0);
    }

    #[test]
    fn gauge_add_is_relative() {
        let mut g = GaugeMeter::new();
        g.add(5.0);
        g.add(-2.0);
        assert_eq!(g.level(), 3.0);
    }

    #[test]
    fn bulk_idle_matches_per_tick_exactly() {
        let dt = SimDuration::from_millis(10);
        let mut per_tick = UtilizationMeter::new();
        let mut bulk = UtilizationMeter::new();
        for _ in 0..12_345 {
            per_tick.record(0.0, 3.0, dt);
        }
        bulk.record_idle(3.0, dt, 12_345);
        // Same accumulator state -> identical bits after mixed traffic.
        per_tick.record(1.5, 3.0, dt);
        bulk.record(1.5, 3.0, dt);
        assert_eq!(per_tick.collect().to_bits(), bulk.collect().to_bits());
    }

    #[test]
    fn gauge_bulk_advance_matches_per_tick_exactly() {
        let dt = SimDuration::from_millis(10);
        let mut per_tick = GaugeMeter::new();
        let mut bulk = GaugeMeter::new();
        for _ in 0..9_999 {
            per_tick.advance(dt);
        }
        bulk.advance_by(dt, 9_999);
        per_tick.set(4.0);
        bulk.set(4.0);
        per_tick.advance(dt);
        bulk.advance(dt);
        assert_eq!(per_tick.collect().to_bits(), bulk.collect().to_bits());
    }
}

// Checkpoint support: mid-interval meter accumulators must survive a
// restore or the first post-resume collection would under-report.
gdisim_snap::snap_struct!(UtilizationMeter { busy, elapsed });
gdisim_snap::snap_struct!(GaugeMeter {
    level,
    weighted,
    elapsed,
});
