//! Comparison baselines from the related work of Ch. 2.
//!
//! * [`mdcsim`] — an MDCSim-style model (Lim et al., §2.4.1): every
//!   server component (NIC, CPU, I/O) is an `M/M/1 – FCFS` queue, tiers
//!   are arrays of such servers, and a request visits the tiers in
//!   order. It predicts latency and throughput but, as the paper notes
//!   in §2.5.1, has no utilization/capacity-planning outputs beyond `ρ`.
//! * [`analytic_tandem`] — an Urgaonkar-style analytic multi-tier model
//!   (§2.2.3, Fig. 2-6): each tier is one `M/M/1` queue and a request
//!   proceeds tier-to-tier with configurable forward probabilities,
//!   giving closed-form mean response times.
//!
//! The `baseline_compare` bench pits both against the GDISim engine on
//! the same three-tier workload.

#![warn(missing_docs)]

pub mod analytic_tandem;
pub mod mdcsim;
pub mod mdcsim_des;

pub use analytic_tandem::TandemModel;
pub use mdcsim::{MdcSimModel, MdcTier};
pub use mdcsim_des::{MdcSimResult, MdcSimulator};
