//! MDCSim-style multi-tier data center model.
//!
//! "MDCSim models all the components of a server as `M/M/1 – FCFS`
//! queues. Even though it can produce satisfactory estimations of the
//! overall latency and throughput of a data center, MDCSim does not
//! include models to predict CPU or bandwidth utilization" (§2.5.1).
//!
//! A request flows NIC → CPU → I/O inside each server of each tier it
//! visits; arrivals are balanced evenly over a tier's servers. Mean
//! response time is the sum of the per-component `M/M/1` sojourns.

use gdisim_queueing::analytic::{mm1_response_time, utilization};
use serde::{Deserialize, Serialize};

/// One tier of the MDCSim model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MdcTier {
    /// Identical servers in the tier.
    pub servers: u32,
    /// NIC service rate, requests/second.
    pub nic_mu: f64,
    /// CPU service rate, requests/second.
    pub cpu_mu: f64,
    /// I/O (disk) service rate, requests/second. `f64::INFINITY` skips
    /// the component (diskless tier).
    pub io_mu: f64,
    /// Mean visits a request makes to this tier.
    pub visits: f64,
}

impl MdcTier {
    fn per_server_lambda(&self, lambda: f64) -> f64 {
        lambda * self.visits / self.servers as f64
    }

    fn response(&self, lambda: f64) -> f64 {
        let l = self.per_server_lambda(lambda);
        let mut r = mm1_response_time(l, self.nic_mu) + mm1_response_time(l, self.cpu_mu);
        if self.io_mu.is_finite() {
            r += mm1_response_time(l, self.io_mu);
        }
        self.visits * r
    }

    /// The saturation arrival rate of this tier (the slowest component
    /// caps it).
    fn saturation(&self) -> f64 {
        let min_mu = self.nic_mu.min(self.cpu_mu).min(self.io_mu);
        min_mu * self.servers as f64 / self.visits
    }
}

/// The full MDCSim-style model: tiers visited in order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MdcSimModel {
    /// Web/app/db tiers, in visit order.
    pub tiers: Vec<MdcTier>,
}

impl MdcSimModel {
    /// Creates the model.
    ///
    /// # Panics
    /// Panics on an empty tier list or non-positive rates.
    pub fn new(tiers: Vec<MdcTier>) -> Self {
        assert!(!tiers.is_empty(), "MDCSim model needs at least one tier");
        for t in &tiers {
            assert!(t.servers > 0 && t.nic_mu > 0.0 && t.cpu_mu > 0.0 && t.io_mu > 0.0);
            assert!(t.visits > 0.0);
        }
        MdcSimModel { tiers }
    }

    /// Mean end-to-end response time at arrival rate `lambda`
    /// (requests/second); infinite at or beyond saturation.
    pub fn predict_response(&self, lambda: f64) -> f64 {
        self.tiers.iter().map(|t| t.response(lambda)).sum()
    }

    /// The highest sustainable arrival rate.
    pub fn capacity(&self) -> f64 {
        self.tiers
            .iter()
            .map(MdcTier::saturation)
            .fold(f64::INFINITY, f64::min)
    }

    /// Per-tier CPU `ρ` — the only utilization statement an M/M/1 chain
    /// can make (contrast with GDISim's per-core busy accounting).
    pub fn cpu_rho(&self, lambda: f64) -> Vec<f64> {
        self.tiers
            .iter()
            .map(|t| utilization(t.per_server_lambda(lambda), t.cpu_mu, 1))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_tier() -> MdcSimModel {
        MdcSimModel::new(vec![
            MdcTier {
                servers: 4,
                nic_mu: 2000.0,
                cpu_mu: 400.0,
                io_mu: 800.0,
                visits: 1.0,
            },
            MdcTier {
                servers: 8,
                nic_mu: 2000.0,
                cpu_mu: 150.0,
                io_mu: 600.0,
                visits: 1.5,
            },
            MdcTier {
                servers: 2,
                nic_mu: 2000.0,
                cpu_mu: 250.0,
                io_mu: 120.0,
                visits: 0.8,
            },
        ])
    }

    #[test]
    fn response_grows_with_load() {
        let m = three_tier();
        let light = m.predict_response(50.0);
        let heavy = m.predict_response(200.0);
        assert!(light > 0.0);
        assert!(heavy > light, "more load, more latency: {light} vs {heavy}");
    }

    #[test]
    fn saturation_is_infinite_latency() {
        let m = three_tier();
        let cap = m.capacity();
        assert!(m.predict_response(cap * 1.01).is_infinite());
        assert!(m.predict_response(cap * 0.9).is_finite());
    }

    #[test]
    fn capacity_is_limited_by_bottleneck() {
        let m = three_tier();
        // Tier 3 disk: 120/s × 2 servers / 0.8 visits = 300/s.
        assert!((m.capacity() - 300.0).abs() < 1e-9, "got {}", m.capacity());
    }

    #[test]
    fn rho_scales_linearly() {
        let m = three_tier();
        let r1 = m.cpu_rho(100.0);
        let r2 = m.cpu_rho(200.0);
        for (a, b) in r1.iter().zip(&r2) {
            assert!((b / a - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "at least one tier")]
    fn empty_model_panics() {
        MdcSimModel::new(vec![]);
    }
}
