//! Urgaonkar-style analytic multi-tier model (Fig. 2-6).
//!
//! Each tier is a single `M/M/1` queue; a request entering tier `i`
//! proceeds to tier `i+1` with probability `q_i` (caching and early
//! returns make `q_i < 1`) and otherwise turns around. Expected visits
//! follow by chain multiplication and the mean response time is the
//! visit-weighted sum of per-tier `M/M/1` sojourns — a closed form, with
//! the rigidity the paper contrasts against simulation (§2.5.2).

use gdisim_queueing::analytic::mm1_response_time;
use serde::{Deserialize, Serialize};

/// The analytic tandem model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TandemModel {
    /// Service rate of each tier's queue (requests/second).
    pub mu: Vec<f64>,
    /// `q[i]`: probability a request at tier `i` continues to `i+1`
    /// (length `mu.len() - 1`).
    pub forward: Vec<f64>,
}

impl TandemModel {
    /// Creates the model.
    ///
    /// # Panics
    /// Panics on dimension mismatch, non-positive rates, or
    /// probabilities outside `[0, 1]`.
    pub fn new(mu: Vec<f64>, forward: Vec<f64>) -> Self {
        assert!(!mu.is_empty(), "tandem needs at least one tier");
        assert_eq!(
            forward.len(),
            mu.len() - 1,
            "one forward probability per hop"
        );
        assert!(
            mu.iter().all(|m| *m > 0.0),
            "service rates must be positive"
        );
        assert!(
            forward.iter().all(|q| (0.0..=1.0).contains(q)),
            "probabilities in [0,1]"
        );
        TandemModel { mu, forward }
    }

    /// Expected visits per tier for one request.
    pub fn visits(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(self.mu.len());
        let mut cur = 1.0;
        v.push(cur);
        for q in &self.forward {
            cur *= q;
            v.push(cur);
        }
        v
    }

    /// Mean response time at arrival rate `lambda`; infinite past any
    /// tier's saturation.
    pub fn predict_response(&self, lambda: f64) -> f64 {
        self.visits()
            .iter()
            .zip(&self.mu)
            .map(|(v, mu)| v * mm1_response_time(lambda * v, *mu))
            .sum()
    }

    /// Highest sustainable arrival rate.
    pub fn capacity(&self) -> f64 {
        self.visits()
            .iter()
            .zip(&self.mu)
            .map(|(v, mu)| mu / v)
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> TandemModel {
        // Web -> app -> db with caching between tiers.
        TandemModel::new(vec![500.0, 300.0, 200.0], vec![0.8, 0.5])
    }

    #[test]
    fn visits_decay_with_forward_probability() {
        let v = model().visits();
        assert_eq!(v.len(), 3);
        assert!((v[0] - 1.0).abs() < 1e-12);
        assert!((v[1] - 0.8).abs() < 1e-12);
        assert!((v[2] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn single_tier_reduces_to_mm1() {
        let m = TandemModel::new(vec![10.0], vec![]);
        assert!((m.predict_response(8.0) - 0.5).abs() < 1e-12);
        assert!((m.capacity() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn caching_raises_capacity() {
        let hot = TandemModel::new(vec![500.0, 300.0, 200.0], vec![0.8, 0.5]);
        let cold = TandemModel::new(vec![500.0, 300.0, 200.0], vec![1.0, 1.0]);
        assert!(
            hot.capacity() > cold.capacity(),
            "cache hits offload the database"
        );
    }

    #[test]
    fn response_monotone_in_load() {
        let m = model();
        let mut prev = 0.0;
        for l in [10.0, 100.0, 200.0, 300.0] {
            let r = m.predict_response(l);
            assert!(r > prev);
            prev = r;
        }
        assert!(m.predict_response(m.capacity() + 1.0).is_infinite());
    }

    #[test]
    #[should_panic(expected = "one forward probability per hop")]
    fn dimension_mismatch_panics() {
        TandemModel::new(vec![1.0, 2.0], vec![]);
    }
}
