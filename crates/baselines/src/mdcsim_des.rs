//! An event-driven MDCSim: the discrete-event counterpart of the
//! analytic chain in [`crate::mdcsim`].
//!
//! MDCSim (Lim et al., §2.4.1) *simulates* a multi-tier data center with
//! every server component — NIC, CPU, I/O — as its own `M/M/1 – FCFS`
//! queue. This module reproduces that design as a small DES: Poisson
//! request arrivals, requests assigned uniformly at random over a tier's
//! servers (so each component sees a split Poisson stream, matching the
//! per-component `M/M/1` assumption exactly), exponential service at
//! each component, tiers visited in order with fractional mean visits
//! realized by Bernoulli extra trips.
//!
//! Because the simulator and the analytic model share assumptions, their
//! predictions must agree below saturation — one of this crate's tests —
//! while the simulator additionally produces throughput and transient
//! behavior the formulas cannot.

use crate::mdcsim::MdcSimModel;
use gdisim_queueing::SplitMix64;
use gdisim_testbed::{EventQueue, MachinePool};
use gdisim_types::{SimDuration, SimTime};
use std::collections::HashMap;

/// Result of one simulated run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MdcSimResult {
    /// Mean end-to-end response time of completed requests, seconds.
    pub mean_response: f64,
    /// Completed requests per second over the measured window.
    pub throughput: f64,
    /// Requests completed inside the horizon.
    pub completed: u64,
}

/// Components inside one server, visited in order.
const COMPONENTS_PER_SERVER: usize = 3; // NIC, CPU, IO

struct Job {
    arrived: SimTime,
    tier: usize,
    /// Remaining visits of the current tier (including the current one).
    visits_left: u32,
    component: usize,
    server: usize,
}

enum Ev {
    Arrive,
    Done { pool: usize, job: u64 },
}

/// The event-driven MDCSim baseline.
#[derive(Debug, Clone)]
pub struct MdcSimulator {
    model: MdcSimModel,
    seed: u64,
}

impl MdcSimulator {
    /// Wraps an MDCSim parameterization for simulation.
    pub fn new(model: MdcSimModel, seed: u64) -> Self {
        MdcSimulator { model, seed }
    }

    fn pool_index(&self, tier: usize, server: usize, component: usize) -> usize {
        let mut base = 0;
        for t in self.model.tiers.iter().take(tier) {
            base += t.servers as usize * COMPONENTS_PER_SERVER;
        }
        base + server * COMPONENTS_PER_SERVER + component
    }

    fn component_mu(&self, tier: usize, component: usize) -> f64 {
        let t = &self.model.tiers[tier];
        match component {
            0 => t.nic_mu,
            1 => t.cpu_mu,
            _ => t.io_mu,
        }
    }

    /// Samples visit counts: `E[visits] = v` realized as `⌊v⌋` plus a
    /// Bernoulli extra trip with probability `frac(v)`.
    fn sample_visits(&self, rng: &mut SplitMix64, tier: usize) -> u32 {
        let v = self.model.tiers[tier].visits;
        let base = v.floor() as u32;
        base + u32::from(rng.bernoulli(v.fract()))
    }

    /// Runs the DES for `horizon_secs` at arrival rate `lambda`
    /// (requests/second). The first 20 % warms up and is excluded from
    /// statistics.
    pub fn simulate(&self, lambda: f64, horizon_secs: f64) -> MdcSimResult {
        assert!(lambda > 0.0 && horizon_secs > 0.0);
        let mut rng = SplitMix64::new(self.seed);
        let n_pools: usize = self
            .model
            .tiers
            .iter()
            .map(|t| t.servers as usize * COMPONENTS_PER_SERVER)
            .sum();
        // Every component is its own M/M/1 queue: one-server pools.
        let mut pools: Vec<MachinePool> = (0..n_pools).map(|_| MachinePool::new(1)).collect();
        let mut q: EventQueue<Ev> = EventQueue::new();
        let mut jobs: HashMap<u64, Job> = HashMap::new();
        let mut next_job = 0u64;
        let horizon = SimTime::from_secs_f64_total(horizon_secs);
        let warmup = SimTime::from_secs_f64_total(horizon_secs * 0.2);

        let mut completed = 0u64;
        let mut response_sum = 0.0f64;

        q.schedule(
            SimTime::ZERO + SimDuration::from_secs_f64(rng.exponential(lambda)),
            Ev::Arrive,
        );
        while let Some(ev) = q.pop() {
            let now = ev.at;
            if now > horizon {
                break;
            }
            match ev.payload {
                Ev::Arrive => {
                    // Admit the request to tier 0 and schedule the next
                    // arrival.
                    let id = next_job;
                    next_job += 1;
                    let visits = self.sample_visits(&mut rng, 0).max(1);
                    let server = rng.below(self.model.tiers[0].servers as u64) as usize;
                    jobs.insert(
                        id,
                        Job {
                            arrived: now,
                            tier: 0,
                            visits_left: visits,
                            component: 0,
                            server,
                        },
                    );
                    self.enter_component(&mut pools, &mut q, &mut rng, &jobs, id, now);
                    q.schedule(
                        now + SimDuration::from_secs_f64(rng.exponential(lambda)),
                        Ev::Arrive,
                    );
                }
                Ev::Done { pool, job } => {
                    if let Some((next_j, finish)) = pools[pool].complete(now) {
                        q.schedule(finish, Ev::Done { pool, job: next_j });
                    }
                    let (advance_tier, finished) = {
                        let j = jobs.get_mut(&job).expect("job live");
                        j.component += 1;
                        if j.component < COMPONENTS_PER_SERVER {
                            (false, false)
                        } else {
                            j.component = 0;
                            j.visits_left -= 1;
                            if j.visits_left > 0 {
                                (false, false) // revisit the same tier
                            } else if j.tier + 1 < self.model.tiers.len() {
                                (true, false)
                            } else {
                                (false, true)
                            }
                        }
                    };
                    if finished {
                        let j = jobs.remove(&job).expect("job live");
                        if j.arrived >= warmup {
                            completed += 1;
                            response_sum += (now - j.arrived).as_secs_f64();
                        }
                        continue;
                    }
                    if advance_tier {
                        let j = jobs.get_mut(&job).expect("job live");
                        j.tier += 1;
                        let visits = self.sample_visits(&mut rng, j.tier);
                        if visits == 0 {
                            // Tier skipped entirely; finish or continue.
                            // Simplification: a zero-visit draw completes
                            // the request (downstream tiers see fewer
                            // visits on average, matching E[v] < 1).
                            let j = jobs.remove(&job).expect("job live");
                            if j.arrived >= warmup {
                                completed += 1;
                                response_sum += (now - j.arrived).as_secs_f64();
                            }
                            continue;
                        }
                        j.visits_left = visits;
                        let servers = self.model.tiers[j.tier].servers as u64;
                        j.server = rng.below(servers) as usize;
                    }
                    self.enter_component(&mut pools, &mut q, &mut rng, &jobs, job, now);
                }
            }
        }

        let measured_secs = horizon_secs * 0.8;
        MdcSimResult {
            mean_response: if completed > 0 {
                response_sum / completed as f64
            } else {
                0.0
            },
            throughput: completed as f64 / measured_secs,
            completed,
        }
    }

    fn enter_component(
        &self,
        pools: &mut [MachinePool],
        q: &mut EventQueue<Ev>,
        rng: &mut SplitMix64,
        jobs: &HashMap<u64, Job>,
        job: u64,
        now: SimTime,
    ) {
        let j = &jobs[&job];
        let pool = self.pool_index(j.tier, j.server, j.component);
        let mu = self.component_mu(j.tier, j.component);
        let service = SimDuration::from_secs_f64(rng.exponential(mu));
        if let Some((jj, finish)) = pools[pool].offer(now, job, service) {
            q.schedule(finish, Ev::Done { pool, job: jj });
        }
    }
}

trait FromSecsTotal {
    fn from_secs_f64_total(s: f64) -> SimTime;
}
impl FromSecsTotal for SimTime {
    fn from_secs_f64_total(s: f64) -> SimTime {
        SimTime((s * 1e6) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mdcsim::MdcTier;

    fn model() -> MdcSimModel {
        MdcSimModel::new(vec![
            MdcTier {
                servers: 2,
                nic_mu: 2000.0,
                cpu_mu: 60.0,
                io_mu: 400.0,
                visits: 1.0,
            },
            MdcTier {
                servers: 2,
                nic_mu: 2000.0,
                cpu_mu: 80.0,
                io_mu: 300.0,
                visits: 1.0,
            },
        ])
    }

    #[test]
    fn simulator_agrees_with_analytic_chain_below_saturation() {
        // Same assumptions, so the DES must land on the formula.
        let m = model();
        let sim = MdcSimulator::new(m.clone(), 11);
        let lambda = 40.0; // per-server CPU rho = 40/2/60 = 0.33
        let result = sim.simulate(lambda, 2000.0);
        let analytic = m.predict_response(lambda);
        let rel = (result.mean_response - analytic).abs() / analytic;
        assert!(
            rel < 0.12,
            "DES {:.4}s vs analytic {analytic:.4}s ({rel:.2})",
            result.mean_response
        );
        // Throughput matches the offered load below saturation.
        assert!(
            (result.throughput - lambda).abs() / lambda < 0.1,
            "{}",
            result.throughput
        );
    }

    #[test]
    fn response_time_grows_with_load() {
        let sim = MdcSimulator::new(model(), 7);
        let light = sim.simulate(20.0, 800.0);
        let heavy = sim.simulate(90.0, 800.0);
        assert!(heavy.mean_response > light.mean_response);
    }

    #[test]
    fn overload_caps_throughput() {
        let m = model();
        let sim = MdcSimulator::new(m.clone(), 7);
        let capacity = m.capacity(); // 2 servers * 60/s = 120/s at tier-0 CPU
        let result = sim.simulate(capacity * 2.0, 400.0);
        assert!(
            result.throughput < capacity * 1.1,
            "throughput {} cannot exceed capacity {capacity}",
            result.throughput
        );
    }

    #[test]
    fn fractional_visits_shorten_the_path() {
        // visits = 0.5 on tier 2: about half the requests skip it.
        let partial = MdcSimModel::new(vec![
            MdcTier {
                servers: 2,
                nic_mu: 2000.0,
                cpu_mu: 100.0,
                io_mu: 400.0,
                visits: 1.0,
            },
            MdcTier {
                servers: 2,
                nic_mu: 2000.0,
                cpu_mu: 100.0,
                io_mu: 400.0,
                visits: 0.5,
            },
        ]);
        let full = MdcSimModel::new(vec![
            MdcTier {
                servers: 2,
                nic_mu: 2000.0,
                cpu_mu: 100.0,
                io_mu: 400.0,
                visits: 1.0,
            },
            MdcTier {
                servers: 2,
                nic_mu: 2000.0,
                cpu_mu: 100.0,
                io_mu: 400.0,
                visits: 1.0,
            },
        ]);
        let p = MdcSimulator::new(partial, 3).simulate(30.0, 800.0);
        let f = MdcSimulator::new(full, 3).simulate(30.0, 800.0);
        assert!(
            p.mean_response < f.mean_response,
            "{} vs {}",
            p.mean_response,
            f.mean_response
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = MdcSimulator::new(model(), 5).simulate(30.0, 300.0);
        let b = MdcSimulator::new(model(), 5).simulate(30.0, 300.0);
        assert_eq!(a, b);
    }
}
