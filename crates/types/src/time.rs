//! Simulation time.
//!
//! GDISim is a discrete-time simulator (§4.3.1): a centralized timer
//! advances all agents by a fixed step. Time is stored as integer
//! microseconds so that tick arithmetic is exact — the validation
//! experiments sample every 6 s over 38 min and the case studies run a
//! full 24 h day, both of which fit comfortably in a `u64`.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// Absolute simulation time, in microseconds since the start of the run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(pub u64);

/// A span of simulation time, in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Time zero — the start of every simulation run.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Builds a time from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Builds a time from whole hours (used by the diurnal workloads).
    pub const fn from_hours(h: u64) -> Self {
        SimTime(h * 3_600 * 1_000_000)
    }

    /// Microseconds since the start of the run.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the start of the run, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Hour-of-day in `[0, 24)`, wrapping for multi-day runs.
    pub fn hour_of_day(self) -> f64 {
        (self.as_secs_f64() / 3600.0) % 24.0
    }

    /// The duration elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Builds a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a duration from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60 * 1_000_000)
    }

    /// Builds a duration from fractional seconds, rounding to the nearest
    /// microsecond. Negative and non-finite inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1e6).round() as u64)
    }

    /// Microseconds in this duration.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds in this duration, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Whether this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Integer number of steps of size `step` that fit in this duration,
    /// rounding up so that the final partial step is still simulated.
    pub fn steps(self, step: SimDuration) -> u64 {
        assert!(!step.is_zero(), "time step must be positive");
        self.0.div_ceil(step.0)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Rem<SimDuration> for SimTime {
    type Output = SimDuration;
    fn rem(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 % rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total_secs = self.0 / 1_000_000;
        let (h, m, s) = (total_secs / 3600, (total_secs / 60) % 60, total_secs % 60);
        write!(f, "{h:02}:{m:02}:{s:02}")
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2000));
        assert_eq!(SimTime::from_hours(1), SimTime::from_secs(3600));
        assert_eq!(SimDuration::from_mins(2), SimDuration::from_secs(120));
    }

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::from_secs(10) + SimDuration::from_millis(500);
        assert_eq!(t.as_micros(), 10_500_000);
        assert_eq!(t - SimTime::from_secs(10), SimDuration::from_millis(500));
        assert_eq!(t.since(SimTime::from_secs(20)), SimDuration::ZERO);
    }

    #[test]
    fn hour_of_day_wraps() {
        let t = SimTime::from_hours(25);
        assert!((t.hour_of_day() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn from_secs_f64_clamps() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(0.5),
            SimDuration::from_millis(500)
        );
    }

    #[test]
    fn steps_rounds_up() {
        let total = SimDuration::from_millis(95);
        assert_eq!(total.steps(SimDuration::from_millis(10)), 10);
        assert_eq!(total.steps(SimDuration::from_millis(95)), 1);
    }

    #[test]
    #[should_panic(expected = "time step must be positive")]
    fn zero_step_panics() {
        SimDuration::from_secs(1).steps(SimDuration::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_secs(3725).to_string(), "01:02:05");
        assert_eq!(SimDuration::from_millis(1500).to_string(), "1.500s");
    }
}
