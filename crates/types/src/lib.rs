//! Shared primitive types for the GDISim workspace.
//!
//! Everything in this crate is deliberately small and dependency-free so
//! that every other crate (queueing models, the port runtime, the engine,
//! the testbed, the baselines) can agree on time, resource and identifier
//! representations without pulling each other in.
//!
//! The resource vector [`RVec`] follows the paper's `R` parameter array
//! (§3.3.2): computational cost `Rp` in CPU cycles, network cost `Rt` in
//! bytes, memory cost `Rm` in bytes and disk cost `Rd` in bytes.

#![warn(missing_docs)]

pub mod ids;
pub mod kendall;
pub mod resources;
pub mod time;
pub mod units;

pub use ids::{AgentId, AppId, DcId, LinkId, OpTypeId, ServerId, TierId, TierKind};
pub use kendall::{Arrival, Discipline, Kendall, Service};
pub use resources::{RVec, ResourceKind};
pub use time::{SimDuration, SimTime};
