//! Kendall's notation (Appendix A of the thesis).
//!
//! Queueing models are classified by `A/B/c/K – D`: arrival process,
//! service process, number of servers, system capacity and discipline.
//! The simulator's component models each declare their Kendall descriptor
//! so documentation, logging and the analytic cross-checks in
//! `gdisim-queueing::analytic` agree on what is being modeled.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Arrival process (`A` factor).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Arrival {
    /// Markovian (Poisson) arrivals — `M`.
    Markov,
    /// General independent arrivals — `GI`.
    GeneralIndependent,
    /// General arrivals — `G`.
    General,
    /// Deterministic arrivals — `D`.
    Deterministic,
}

/// Service process (`B` factor).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Service {
    /// Exponential service times — `M`.
    Markov,
    /// General service times — `G`.
    General,
    /// Deterministic service times — `D`.
    Deterministic,
}

/// Queueing discipline (`D` factor).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Discipline {
    /// First come, first served.
    Fcfs,
    /// Processor sharing over at most `k` simultaneous jobs; `None` means
    /// unbounded sharing (classic PS).
    ProcessorSharing,
    /// Last come, first served.
    Lcfs,
}

/// A full Kendall descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Kendall {
    /// Arrival process.
    pub arrival: Arrival,
    /// Service process.
    pub service: Service,
    /// Number of servers `c`.
    pub servers: u32,
    /// System capacity `K` (`None` = infinite).
    pub capacity: Option<u32>,
    /// Discipline.
    pub discipline: Discipline,
}

impl Kendall {
    /// `M/M/1 – FCFS`, the NIC/switch model of Fig. 3-6.
    pub const fn mm1_fcfs() -> Self {
        Kendall {
            arrival: Arrival::Markov,
            service: Service::Markov,
            servers: 1,
            capacity: None,
            discipline: Discipline::Fcfs,
        }
    }

    /// `M/M/c – FCFS`, the per-socket CPU model of Fig. 3-4.
    pub const fn mmc_fcfs(c: u32) -> Self {
        Kendall {
            arrival: Arrival::Markov,
            service: Service::Markov,
            servers: c,
            capacity: None,
            discipline: Discipline::Fcfs,
        }
    }

    /// `M/M/1/k – PS`, the network-link model of Fig. 3-6 (right).
    pub const fn mm1k_ps(k: u32) -> Self {
        Kendall {
            arrival: Arrival::Markov,
            service: Service::Markov,
            servers: 1,
            capacity: Some(k),
            discipline: Discipline::ProcessorSharing,
        }
    }
}

impl fmt::Display for Kendall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let a = match self.arrival {
            Arrival::Markov => "M",
            Arrival::GeneralIndependent => "GI",
            Arrival::General => "G",
            Arrival::Deterministic => "D",
        };
        let b = match self.service {
            Service::Markov => "M",
            Service::General => "G",
            Service::Deterministic => "D",
        };
        write!(f, "{a}/{b}/{}", self.servers)?;
        if let Some(k) = self.capacity {
            write!(f, "/{k}")?;
        }
        let d = match self.discipline {
            Discipline::Fcfs => "FCFS",
            Discipline::ProcessorSharing => "PS",
            Discipline::Lcfs => "LCFS",
        };
        write!(f, " - {d}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Kendall::mm1_fcfs().to_string(), "M/M/1 - FCFS");
        assert_eq!(Kendall::mmc_fcfs(4).to_string(), "M/M/4 - FCFS");
        assert_eq!(Kendall::mm1k_ps(128).to_string(), "M/M/1/128 - PS");
    }
}
