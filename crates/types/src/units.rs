//! Unit helpers for hardware specifications.
//!
//! The paper specifies CPUs in GHz, links in Mbps/Gbps, disks in MB/s and
//! rpm, and memory in GB. These helpers convert everything to the
//! simulator's base units: cycles/second, bytes/second and bytes.

/// Cycles per second for a clock frequency in GHz.
pub const fn ghz(f: f64) -> f64 {
    f * 1e9
}

/// Bytes per second for a line rate in megabits per second.
pub const fn mbps(r: f64) -> f64 {
    r * 1e6 / 8.0
}

/// Bytes per second for a line rate in gigabits per second.
pub const fn gbps(r: f64) -> f64 {
    r * 1e9 / 8.0
}

/// Bytes per second for a disk throughput in MB/s.
pub const fn mb_per_s(r: f64) -> f64 {
    r * 1e6
}

/// Bytes for a size in kilobytes.
pub const fn kb(s: f64) -> f64 {
    s * 1e3
}

/// Bytes for a size in megabytes.
pub const fn mb(s: f64) -> f64 {
    s * 1e6
}

/// Bytes for a size in gigabytes.
pub const fn gb(s: f64) -> f64 {
    s * 1e9
}

/// Approximate sustained transfer rate (bytes/second) of a disk drive from
/// its rotational speed, following the rule of thumb the paper's RAID model
/// uses: a 15 K rpm enterprise drive sustains roughly 120 MB/s, scaling
/// linearly with rpm.
pub fn disk_rate_from_rpm(rpm: f64) -> f64 {
    mb_per_s(120.0 * rpm / 15_000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(ghz(2.5), 2.5e9);
        assert_eq!(mbps(8.0), 1e6);
        assert_eq!(gbps(1.0), 1.25e8);
        assert_eq!(kb(2.0), 2000.0);
        assert_eq!(mb(1.5), 1.5e6);
        assert_eq!(gb(0.5), 5e8);
    }

    #[test]
    fn disk_rate_scales_with_rpm() {
        assert_eq!(disk_rate_from_rpm(15_000.0), mb_per_s(120.0));
        assert_eq!(disk_rate_from_rpm(7_500.0), mb_per_s(60.0));
    }
}
