//! Identifiers for the holarchy.
//!
//! The holonic decomposition of §3.3.2 maps naturally onto typed indices:
//! a *data center* holon contains *tier* holons, which contain *server*
//! holons, which contain hardware *agents*. WAN links interconnect data
//! centers (and, in the paper's case studies, relay hub sites such as the
//! Asian AS1/AS2 switches).
//!
//! All ids are small dense integers assigned by the infrastructure builder;
//! they index flat vectors inside the engine, which keeps the hot
//! tick/interaction loops allocation-free.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! dense_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
        #[serde(transparent)]
        pub struct $name(pub u32);

        impl $name {
            /// The raw dense index.
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a dense index.
            pub const fn from_index(i: usize) -> Self {
                $name(i as u32)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

dense_id!(
    /// A data center (or relay hub site) in the global topology.
    DcId, "dc"
);
dense_id!(
    /// A tier holon inside a data center.
    TierId, "tier"
);
dense_id!(
    /// A server holon inside a tier.
    ServerId, "srv"
);
dense_id!(
    /// A hardware component agent (CPU, NIC, RAID, link, switch, …).
    AgentId, "agent"
);
dense_id!(
    /// A WAN or LAN link in the topology.
    LinkId, "link"
);
dense_id!(
    /// A software application (CAD, VIS, PDM, …).
    AppId, "app"
);
dense_id!(
    /// An operation type within an application (LOGIN, OPEN, …).
    OpTypeId, "op"
);

/// The functional role of a tier, mirroring the paper's `Tapp`, `Tdb`,
/// `Tfs` and `Tidx` notation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TierKind {
    /// Application server tier (`Tapp`): authentication, authorization,
    /// query brokering.
    App,
    /// Database server tier (`Tdb`): metadata and versioning.
    Db,
    /// File server tier (`Tfs`): bulk file serving.
    Fs,
    /// Index server tier (`Tidx`): text and spatial index builds/queries.
    Idx,
}

impl TierKind {
    /// All tier kinds in the paper's reporting order.
    pub const ALL: [TierKind; 4] = [TierKind::App, TierKind::Db, TierKind::Fs, TierKind::Idx];

    /// The paper's subscript label.
    pub const fn label(self) -> &'static str {
        match self {
            TierKind::App => "Tapp",
            TierKind::Db => "Tdb",
            TierKind::Fs => "Tfs",
            TierKind::Idx => "Tidx",
        }
    }
}

impl fmt::Display for TierKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_roundtrip() {
        let id = DcId::from_index(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "dc7");
        assert_eq!(ServerId::from_index(3).to_string(), "srv3");
    }

    #[test]
    fn tier_labels() {
        assert_eq!(TierKind::App.label(), "Tapp");
        assert_eq!(TierKind::Idx.to_string(), "Tidx");
        assert_eq!(TierKind::ALL.len(), 4);
    }
}
