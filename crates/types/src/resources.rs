//! The `R` parameter array of §3.3.2.
//!
//! Every message in a cascade carries a hardware-agnostic resource vector
//! `R = (Rp, Rt, Rm, Rd)` describing the cost it imposes on the agents of
//! the destination holon: CPU cycles, network bytes, memory bytes and disk
//! bytes. Agents consume one or more of these components to reproduce the
//! interaction (Eqs. 3.3–3.5).

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Mul};

/// Which scalar of the resource vector a component consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceKind {
    /// `Rp`: CPU cycles consumed by the destination CPU queue.
    Cycles,
    /// `Rt`: bytes moved through NICs, switches and links.
    NetBytes,
    /// `Rm`: bytes of memory held for the duration of the processing.
    MemBytes,
    /// `Rd`: bytes read/written by the RAID or SAN.
    DiskBytes,
}

/// The resource parameter array `R` attached to a cascade message.
///
/// ```
/// use gdisim_types::RVec;
/// let login_request = RVec::new(5.5e8, 25_000.0, 32e6, 0.0);
/// let with_disk = login_request + RVec::disk(1e6);
/// assert!(with_disk.is_valid());
/// assert_eq!(with_disk.disk_bytes, 1e6);
/// assert_eq!((with_disk * 2.0).cycles, 1.1e9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RVec {
    /// Computational cost in CPU cycles (`Rp`).
    pub cycles: f64,
    /// Network cost in bytes (`Rt`).
    pub net_bytes: f64,
    /// Memory occupancy in bytes (`Rm`).
    pub mem_bytes: f64,
    /// Disk cost in bytes (`Rd`).
    pub disk_bytes: f64,
}

impl RVec {
    /// The zero-cost vector.
    pub const ZERO: RVec = RVec {
        cycles: 0.0,
        net_bytes: 0.0,
        mem_bytes: 0.0,
        disk_bytes: 0.0,
    };

    /// Builds a vector from its four components `(Rp, Rt, Rm, Rd)`.
    pub const fn new(cycles: f64, net_bytes: f64, mem_bytes: f64, disk_bytes: f64) -> Self {
        RVec {
            cycles,
            net_bytes,
            mem_bytes,
            disk_bytes,
        }
    }

    /// A pure-computation cost.
    pub const fn cycles(c: f64) -> Self {
        RVec {
            cycles: c,
            net_bytes: 0.0,
            mem_bytes: 0.0,
            disk_bytes: 0.0,
        }
    }

    /// A pure-network cost.
    pub const fn net(b: f64) -> Self {
        RVec {
            cycles: 0.0,
            net_bytes: b,
            mem_bytes: 0.0,
            disk_bytes: 0.0,
        }
    }

    /// A pure-disk cost.
    pub const fn disk(b: f64) -> Self {
        RVec {
            cycles: 0.0,
            net_bytes: 0.0,
            mem_bytes: 0.0,
            disk_bytes: b,
        }
    }

    /// Returns the named scalar.
    pub fn get(&self, kind: ResourceKind) -> f64 {
        match kind {
            ResourceKind::Cycles => self.cycles,
            ResourceKind::NetBytes => self.net_bytes,
            ResourceKind::MemBytes => self.mem_bytes,
            ResourceKind::DiskBytes => self.disk_bytes,
        }
    }

    /// Sets the named scalar, builder-style.
    pub fn with(mut self, kind: ResourceKind, value: f64) -> Self {
        match kind {
            ResourceKind::Cycles => self.cycles = value,
            ResourceKind::NetBytes => self.net_bytes = value,
            ResourceKind::MemBytes => self.mem_bytes = value,
            ResourceKind::DiskBytes => self.disk_bytes = value,
        }
        self
    }

    /// Whether every component is zero.
    pub fn is_zero(&self) -> bool {
        self.cycles == 0.0
            && self.net_bytes == 0.0
            && self.mem_bytes == 0.0
            && self.disk_bytes == 0.0
    }

    /// Whether every component is finite and non-negative — the invariant
    /// every profiled or calibrated `R` array must satisfy.
    pub fn is_valid(&self) -> bool {
        [self.cycles, self.net_bytes, self.mem_bytes, self.disk_bytes]
            .iter()
            .all(|v| v.is_finite() && *v >= 0.0)
    }
}

impl Add for RVec {
    type Output = RVec;
    fn add(self, rhs: RVec) -> RVec {
        RVec {
            cycles: self.cycles + rhs.cycles,
            net_bytes: self.net_bytes + rhs.net_bytes,
            mem_bytes: self.mem_bytes + rhs.mem_bytes,
            disk_bytes: self.disk_bytes + rhs.disk_bytes,
        }
    }
}

impl AddAssign for RVec {
    fn add_assign(&mut self, rhs: RVec) {
        *self = *self + rhs;
    }
}

impl Mul<f64> for RVec {
    type Output = RVec;
    fn mul(self, k: f64) -> RVec {
        RVec {
            cycles: self.cycles * k,
            net_bytes: self.net_bytes * k,
            mem_bytes: self.mem_bytes * k,
            disk_bytes: self.disk_bytes * k,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn accessors_roundtrip() {
        let r = RVec::new(1.0, 2.0, 3.0, 4.0);
        assert_eq!(r.get(ResourceKind::Cycles), 1.0);
        assert_eq!(r.get(ResourceKind::NetBytes), 2.0);
        assert_eq!(r.get(ResourceKind::MemBytes), 3.0);
        assert_eq!(r.get(ResourceKind::DiskBytes), 4.0);
        let r2 = RVec::ZERO
            .with(ResourceKind::Cycles, 1.0)
            .with(ResourceKind::NetBytes, 2.0)
            .with(ResourceKind::MemBytes, 3.0)
            .with(ResourceKind::DiskBytes, 4.0);
        assert_eq!(r, r2);
    }

    #[test]
    fn validity() {
        assert!(RVec::ZERO.is_valid());
        assert!(RVec::ZERO.is_zero());
        assert!(!RVec::cycles(-1.0).is_valid());
        assert!(!RVec::net(f64::NAN).is_valid());
        assert!(!RVec::disk(f64::INFINITY).is_valid());
    }

    proptest! {
        #[test]
        fn addition_is_componentwise(a in 0.0f64..1e9, b in 0.0f64..1e9, c in 0.0f64..1e9, d in 0.0f64..1e9) {
            let r = RVec::new(a, b, c, d) + RVec::new(d, c, b, a);
            prop_assert_eq!(r.cycles, a + d);
            prop_assert_eq!(r.net_bytes, b + c);
            prop_assert_eq!(r.mem_bytes, c + b);
            prop_assert_eq!(r.disk_bytes, d + a);
            prop_assert!(r.is_valid());
        }

        #[test]
        fn scaling_preserves_validity(a in 0.0f64..1e9, k in 0.0f64..1e3) {
            let r = RVec::new(a, a, a, a) * k;
            prop_assert!(r.is_valid());
            prop_assert!((r.cycles - a * k).abs() < 1e-6 * (1.0 + a * k));
        }
    }
}
