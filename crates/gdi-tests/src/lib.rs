//! Host crate for the cross-crate integration tests in the repository's
//! top-level `tests/` directory (each `[[test]]` target in this crate's
//! manifest points there). The library itself is intentionally empty.
