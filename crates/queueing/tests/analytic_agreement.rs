//! Cross-validation of the discrete-time fluid queues against classical
//! queueing theory: driven with Poisson arrivals and exponential demands,
//! the fluid FCFS and PS queues must reproduce the M/M/1 and M/M/c
//! steady-state formulas within sampling tolerance. This pins the
//! simulator's building blocks to theory, exactly the role the analytic
//! models of Ch. 2 play for the paper.

use gdisim_queueing::analytic::{mm1_response_time, mmc_response_time};
use gdisim_queueing::{FcfsMulti, JobToken, PsQueue, SplitMix64, Station};
use gdisim_types::{SimDuration, SimTime};
use std::collections::HashMap;

const DT: SimDuration = SimDuration::from_millis(1);

/// Drives a station with Poisson(λ) arrivals of exp(μ) demands for
/// `horizon_secs`, returning the mean response time of completed jobs.
fn measure_mean_response(
    station: &mut dyn Station,
    lambda: f64,
    mu: f64,
    horizon_secs: f64,
    seed: u64,
) -> f64 {
    let mut rng = SplitMix64::new(seed);
    let mut arrivals: HashMap<u64, SimTime> = HashMap::new();
    let mut responses: Vec<f64> = Vec::new();
    let mut next_id = 0u64;
    let mut now = SimTime::ZERO;
    let mut done = Vec::new();
    let steps = (horizon_secs / DT.as_secs_f64()) as u64;
    // Warm-up fraction discarded from statistics.
    let warmup = SimTime::from_secs_f64_approx(horizon_secs * 0.2);

    for _ in 0..steps {
        // Poisson arrivals within the tick (Bernoulli thinning is exact
        // enough at λ·dt ≪ 1).
        if rng.next_f64() < lambda * DT.as_secs_f64() {
            // Demand in "work units" with service rate 1 unit/s per
            // server: exp(μ) service time = exp with mean 1/μ units.
            let demand = rng.exponential(mu);
            station.enqueue(JobToken(next_id), demand, now);
            arrivals.insert(next_id, now);
            next_id += 1;
        }
        done.clear();
        station.tick(now, DT, &mut done);
        now += DT;
        for t in &done {
            let started = arrivals.remove(&t.0).expect("arrival recorded");
            if started >= warmup {
                responses.push((now - started).as_secs_f64());
            }
        }
    }
    responses.iter().sum::<f64>() / responses.len().max(1) as f64
}

trait FromSecsApprox {
    fn from_secs_f64_approx(s: f64) -> SimTime;
}
impl FromSecsApprox for SimTime {
    fn from_secs_f64_approx(s: f64) -> SimTime {
        SimTime((s * 1e6) as u64)
    }
}

#[test]
fn fluid_fcfs_matches_mm1() {
    // λ = 4/s, μ = 10/s -> ρ = 0.4, W = 1/6 s.
    let (lambda, mu) = (4.0, 10.0);
    let mut q = FcfsMulti::new(1, 1.0); // rate 1 unit/s; demands are in seconds
    let measured = measure_mean_response(&mut q, lambda, mu, 4000.0, 7);
    let theory = mm1_response_time(lambda, mu);
    let rel = (measured - theory).abs() / theory;
    assert!(
        rel < 0.10,
        "M/M/1: measured {measured:.4}s vs theory {theory:.4}s"
    );
}

#[test]
fn fluid_fcfs_matches_mm1_under_heavier_load() {
    // ρ = 0.7: queueing dominates, W = 1/3 s.
    let (lambda, mu) = (7.0, 10.0);
    let mut q = FcfsMulti::new(1, 1.0);
    let measured = measure_mean_response(&mut q, lambda, mu, 8000.0, 11);
    let theory = mm1_response_time(lambda, mu);
    let rel = (measured - theory).abs() / theory;
    assert!(
        rel < 0.15,
        "M/M/1 ρ=0.7: measured {measured:.4}s vs theory {theory:.4}s"
    );
}

#[test]
fn fluid_multi_server_matches_mmc() {
    // c = 4, λ = 12/s, μ = 5/s per server -> ρ = 0.6.
    let (lambda, mu, c) = (12.0, 5.0, 4u32);
    let mut q = FcfsMulti::new(c, 1.0);
    let measured = measure_mean_response(&mut q, lambda, mu, 6000.0, 13);
    let theory = mmc_response_time(lambda, mu, c);
    let rel = (measured - theory).abs() / theory;
    assert!(
        rel < 0.12,
        "M/M/{c}: measured {measured:.4}s vs theory {theory:.4}s"
    );
}

#[test]
fn fluid_ps_matches_mm1_mean() {
    // Processor sharing with exponential service has the same *mean*
    // sojourn as FCFS: W = 1/(μ − λ).
    let (lambda, mu) = (5.0, 10.0);
    let mut q = PsQueue::new(1.0, 4096);
    let measured = measure_mean_response(&mut q, lambda, mu, 6000.0, 17);
    let theory = mm1_response_time(lambda, mu);
    let rel = (measured - theory).abs() / theory;
    assert!(
        rel < 0.12,
        "M/M/1-PS: measured {measured:.4}s vs theory {theory:.4}s"
    );
}

#[test]
fn utilization_matches_rho() {
    // Long-run busy fraction equals ρ = λ/μ.
    let (lambda, mu) = (6.0, 10.0);
    let mut q = FcfsMulti::new(1, 1.0);
    let mut rng = SplitMix64::new(23);
    let mut now = SimTime::ZERO;
    let mut done = Vec::new();
    let mut id = 0u64;
    let steps = 2_000_000u64; // 2000 s at 1 ms
    for _ in 0..steps {
        if rng.next_f64() < lambda * DT.as_secs_f64() {
            q.enqueue(JobToken(id), rng.exponential(mu), now);
            id += 1;
        }
        done.clear();
        q.tick(now, DT, &mut done);
        now += DT;
    }
    let util = q.collect_utilization();
    let rho = lambda / mu;
    assert!(
        (util - rho).abs() < 0.03,
        "utilization {util:.3} vs ρ {rho:.3}"
    );
}
