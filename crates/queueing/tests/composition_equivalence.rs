//! The generic composition primitives (Tandem / Bypass / ForkJoin) can
//! assemble the exact RAID structure of Fig. 3-7. With cache draws
//! disabled, the assembled pipeline and the hand-rolled [`RaidModel`]
//! must produce identical completion schedules — a structural proof that
//! the combinators and the specialized model implement the same queueing
//! network.

use gdisim_queueing::{
    Bypass, FcfsMulti, ForkJoin, JobToken, RaidModel, RaidSpec, Station, Tandem,
};
use gdisim_types::units::{gbps, mb_per_s};
use gdisim_types::{SimDuration, SimTime};

const DT: SimDuration = SimDuration::from_millis(10);

fn generic_raid(disks: u32) -> Tandem {
    // Qdacc -> Bypass(array cache){ ForkJoin[ Qdcc -> Bypass(disk cache){Qhdd} ] }
    let branches: Vec<Box<dyn Station>> = (0..disks)
        .map(|_| {
            Box::new(Tandem::new(vec![
                Box::new(FcfsMulti::new(1, gbps(2.0))) as Box<dyn Station>,
                Box::new(Bypass::new(
                    Box::new(FcfsMulti::new(1, mb_per_s(120.0))),
                    0.0,
                    1,
                )),
            ])) as Box<dyn Station>
        })
        .collect();
    Tandem::new(vec![
        Box::new(FcfsMulti::new(1, gbps(4.0))) as Box<dyn Station>,
        Box::new(Bypass::new(Box::new(ForkJoin::new(branches)), 0.0, 2)),
    ])
}

fn hand_rolled_raid(disks: u32) -> RaidModel {
    RaidModel::new(
        RaidSpec::new(disks, gbps(4.0), 0.0, gbps(2.0), 0.0, mb_per_s(120.0)),
        3,
    )
}

/// Runs a station and records `(tick index, token)` completions.
fn completion_schedule(
    station: &mut dyn Station,
    jobs: &[(u64, f64)],
    ticks: u64,
) -> Vec<(u64, u64)> {
    for (id, demand) in jobs {
        station.enqueue(JobToken(*id), *demand, SimTime::ZERO);
    }
    let mut schedule = Vec::new();
    let mut now = SimTime::ZERO;
    let mut done = Vec::new();
    for tick in 0..ticks {
        done.clear();
        station.tick(now, DT, &mut done);
        for t in &done {
            schedule.push((tick, t.0));
        }
        now += DT;
    }
    schedule
}

#[test]
fn assembled_pipeline_matches_raid_model_exactly() {
    let jobs: Vec<(u64, f64)> = (0..12)
        .map(|i| (i, 1.2e6 * (1.0 + (i % 4) as f64)))
        .collect();
    for disks in [1u32, 2, 4] {
        let mut generic = generic_raid(disks);
        let mut specialized = hand_rolled_raid(disks);
        let a = completion_schedule(&mut generic, &jobs, 400);
        let b = completion_schedule(&mut specialized, &jobs, 400);
        assert_eq!(a.len(), jobs.len(), "{disks}-disk generic RAID lost jobs");
        assert_eq!(a, b, "schedules diverge at {disks} disks");
    }
}

#[test]
fn full_cache_hit_rates_agree_up_to_bypass_release_semantics() {
    // With a certain array-cache hit, both structures skip the disks.
    // One deliberate semantic difference: the generic `Bypass` releases
    // hits when *it* next ticks (stage order is back-to-front, so that is
    // the following tick), while `RaidModel` completes a hit within the
    // same tick as the controller service. The generic schedule is
    // therefore the specialized one shifted by exactly one tick.
    let jobs: Vec<(u64, f64)> = (0..6).map(|i| (i, 2.4e6)).collect();

    let branches: Vec<Box<dyn Station>> = (0..2)
        .map(|_| Box::new(FcfsMulti::new(1, mb_per_s(120.0))) as Box<dyn Station>)
        .collect();
    let mut generic = Tandem::new(vec![
        Box::new(FcfsMulti::new(1, gbps(4.0))) as Box<dyn Station>,
        Box::new(Bypass::new(Box::new(ForkJoin::new(branches)), 1.0, 2)),
    ]);
    let mut specialized = RaidModel::new(
        RaidSpec::new(2, gbps(4.0), 1.0, gbps(2.0), 0.0, mb_per_s(120.0)),
        3,
    );
    let a = completion_schedule(&mut generic, &jobs, 100);
    let b = completion_schedule(&mut specialized, &jobs, 100);
    let b_shifted: Vec<(u64, u64)> = b.iter().map(|(t, id)| (t + 1, *id)).collect();
    assert_eq!(a, b_shifted);
}
