//! Composition primitives: series (tandem), fork-join and probabilistic
//! bypass.
//!
//! RAID and SAN models (Figs. 3-7/3-8) are fork-join structures of
//! two-stage disk pipelines preceded by cache queues whose hits bypass the
//! downstream stages. These combinators express that structure over any
//! [`Station`]; they are also used by the baselines and by tests that
//! cross-check the hand-rolled RAID/SAN models.

use super::Station;
use crate::job::JobToken;
use crate::rng::SplitMix64;
use gdisim_types::{SimDuration, SimTime};
use std::collections::HashMap;

/// Stations in series: a job completes stage `i` and immediately enters
/// stage `i + 1`; the tandem completes when the last stage does.
pub struct Tandem {
    stages: Vec<Box<dyn Station>>,
    // (current stage, original demand) per in-flight job: every stage
    // serves the job's full demand at its own rate, matching the paper's
    // Qdcc → Qhdd disk pipeline where both queues move the same bytes.
    state: HashMap<JobToken, (usize, f64)>,
    scratch: Vec<JobToken>,
}

impl Tandem {
    /// Creates a tandem over the given stages (at least one).
    pub fn new(stages: Vec<Box<dyn Station>>) -> Self {
        assert!(!stages.is_empty(), "tandem needs at least one stage");
        Tandem {
            stages,
            state: HashMap::new(),
            scratch: Vec::new(),
        }
    }
}

impl Station for Tandem {
    fn enqueue(&mut self, token: JobToken, demand: f64, now: SimTime) {
        self.state.insert(token, (0, demand));
        self.stages[0].enqueue(token, demand, now);
    }

    fn tick(&mut self, now: SimTime, dt: SimDuration, completed: &mut Vec<JobToken>) {
        // Tick stages back to front so a job advances at most one stage per
        // tick (matching the paper's "interaction forwarded to the next
        // agent" semantics, where each hop costs at least one time step).
        for i in (0..self.stages.len()).rev() {
            self.scratch.clear();
            self.stages[i].tick(now, dt, &mut self.scratch);
            for token in self.scratch.drain(..) {
                let next = i + 1;
                if next == self.stages.len() {
                    self.state.remove(&token);
                    completed.push(token);
                } else {
                    let demand = {
                        let entry = self.state.get_mut(&token).expect("job state tracked");
                        entry.0 = next;
                        entry.1
                    };
                    self.stages[next].enqueue(token, demand, now);
                }
            }
        }
    }

    fn account_idle(&mut self, ticks: u64, dt: SimDuration) {
        for s in &mut self.stages {
            s.account_idle(ticks, dt);
        }
    }

    fn collect_utilization(&mut self) -> f64 {
        // Report the bottleneck (maximum) stage utilization.
        self.stages
            .iter_mut()
            .map(|s| s.collect_utilization())
            .fold(0.0, f64::max)
    }

    fn in_system(&self) -> usize {
        self.state.len()
    }

    fn evict_all(&mut self, into: &mut Vec<JobToken>) {
        // Drain the stages but report the canonical job set (sorted for
        // determinism: `state` is hash-ordered).
        let mut discard = Vec::new();
        for s in &mut self.stages {
            s.evict_all(&mut discard);
        }
        let mut jobs: Vec<JobToken> = self.state.drain().map(|(t, _)| t).collect();
        jobs.sort_unstable();
        into.append(&mut jobs);
    }
}

/// Probabilistic bypass: with probability `hit_rate` a job skips the inner
/// station entirely (a cache hit) and completes on the next tick;
/// otherwise it is forwarded.
pub struct Bypass {
    inner: Box<dyn Station>,
    hit_rate: f64,
    rng: SplitMix64,
    hits_pending: Vec<JobToken>,
}

impl Bypass {
    /// Wraps `inner` with a cache of the given hit rate (clamped to
    /// `[0, 1]`), seeded deterministically.
    pub fn new(inner: Box<dyn Station>, hit_rate: f64, seed: u64) -> Self {
        Bypass {
            inner,
            hit_rate: hit_rate.clamp(0.0, 1.0),
            rng: SplitMix64::new(seed),
            hits_pending: Vec::new(),
        }
    }
}

impl Station for Bypass {
    fn enqueue(&mut self, token: JobToken, demand: f64, now: SimTime) {
        if self.rng.bernoulli(self.hit_rate) {
            self.hits_pending.push(token);
        } else {
            self.inner.enqueue(token, demand, now);
        }
    }

    fn tick(&mut self, now: SimTime, dt: SimDuration, completed: &mut Vec<JobToken>) {
        completed.append(&mut self.hits_pending);
        self.inner.tick(now, dt, completed);
    }

    fn account_idle(&mut self, ticks: u64, dt: SimDuration) {
        self.inner.account_idle(ticks, dt);
    }

    fn collect_utilization(&mut self) -> f64 {
        self.inner.collect_utilization()
    }

    fn in_system(&self) -> usize {
        self.inner.in_system() + self.hits_pending.len()
    }

    fn evict_all(&mut self, into: &mut Vec<JobToken>) {
        into.append(&mut self.hits_pending);
        self.inner.evict_all(into);
    }
}

/// Fork-join over `n` parallel branches: the demand is striped equally
/// across all branches and the job completes when every branch has served
/// its share (Fig. 3-7's RAID-0 semantics).
pub struct ForkJoin {
    branches: Vec<Box<dyn Station>>,
    outstanding: HashMap<JobToken, u32>,
    scratch: Vec<JobToken>,
}

impl ForkJoin {
    /// Creates a fork-join over the given branches (at least one).
    pub fn new(branches: Vec<Box<dyn Station>>) -> Self {
        assert!(!branches.is_empty(), "fork-join needs at least one branch");
        ForkJoin {
            branches,
            outstanding: HashMap::new(),
            scratch: Vec::new(),
        }
    }

    /// Number of parallel branches.
    pub fn width(&self) -> usize {
        self.branches.len()
    }
}

impl Station for ForkJoin {
    fn enqueue(&mut self, token: JobToken, demand: f64, now: SimTime) {
        let n = self.branches.len();
        self.outstanding.insert(token, n as u32);
        let share = demand / n as f64;
        for b in &mut self.branches {
            b.enqueue(token, share, now);
        }
    }

    fn tick(&mut self, now: SimTime, dt: SimDuration, completed: &mut Vec<JobToken>) {
        for b in &mut self.branches {
            self.scratch.clear();
            b.tick(now, dt, &mut self.scratch);
            for token in self.scratch.drain(..) {
                let remaining = self
                    .outstanding
                    .get_mut(&token)
                    .expect("branch completed a job the join never saw");
                *remaining -= 1;
                if *remaining == 0 {
                    self.outstanding.remove(&token);
                    completed.push(token);
                }
            }
        }
    }

    fn account_idle(&mut self, ticks: u64, dt: SimDuration) {
        for b in &mut self.branches {
            b.account_idle(ticks, dt);
        }
    }

    fn collect_utilization(&mut self) -> f64 {
        let n = self.branches.len() as f64;
        self.branches
            .iter_mut()
            .map(|b| b.collect_utilization())
            .sum::<f64>()
            / n
    }

    fn in_system(&self) -> usize {
        self.outstanding.len()
    }

    fn evict_all(&mut self, into: &mut Vec<JobToken>) {
        let mut discard = Vec::new();
        for b in &mut self.branches {
            b.evict_all(&mut discard);
        }
        let mut jobs: Vec<JobToken> = self.outstanding.drain().map(|(t, _)| t).collect();
        jobs.sort_unstable();
        into.append(&mut jobs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discipline::FcfsMulti;

    const DT: SimDuration = SimDuration::from_millis(10);

    fn run(station: &mut dyn Station, ticks: u64) -> Vec<JobToken> {
        let mut done = Vec::new();
        let mut now = SimTime::ZERO;
        for _ in 0..ticks {
            station.tick(now, DT, &mut done);
            now += DT;
        }
        done
    }

    #[test]
    fn tandem_advances_one_stage_per_tick() {
        let mut t = Tandem::new(vec![
            Box::new(FcfsMulti::new(1, 1000.0)),
            Box::new(FcfsMulti::new(1, 1000.0)),
        ]);
        t.enqueue(JobToken(1), 1.0, SimTime::ZERO);
        assert_eq!(t.in_system(), 1);
        // Tick 1: finishes stage 0, enters stage 1. Tick 2: finishes.
        assert!(run(&mut t, 1).is_empty());
        assert_eq!(run(&mut t, 1), vec![JobToken(1)]);
        assert_eq!(t.in_system(), 0);
    }

    #[test]
    fn forkjoin_waits_for_slowest_branch() {
        // Branch rates 100 and 50 units/s; demand 2.0 striped to 1.0 each.
        // Fast branch finishes in 1 tick, slow branch in 2 — join at tick 2.
        let mut fj = ForkJoin::new(vec![
            Box::new(FcfsMulti::new(1, 100.0)),
            Box::new(FcfsMulti::new(1, 50.0)),
        ]);
        fj.enqueue(JobToken(9), 2.0, SimTime::ZERO);
        assert!(run(&mut fj, 1).is_empty());
        assert_eq!(run(&mut fj, 1), vec![JobToken(9)]);
    }

    #[test]
    fn forkjoin_stripes_demand() {
        // 4 branches at 100/s each and demand 4.0: each stripe is 1.0,
        // total completion after exactly one tick (vs 4 ticks unstriped).
        let mut fj = ForkJoin::new(
            (0..4)
                .map(|_| Box::new(FcfsMulti::new(1, 100.0)) as Box<dyn Station>)
                .collect(),
        );
        fj.enqueue(JobToken(1), 4.0, SimTime::ZERO);
        assert_eq!(run(&mut fj, 1), vec![JobToken(1)]);
    }

    #[test]
    fn bypass_hit_rate_one_skips_inner() {
        let mut b = Bypass::new(Box::new(FcfsMulti::new(1, 1e-3_f64.recip())), 1.0, 1);
        b.enqueue(JobToken(1), 1e9, SimTime::ZERO);
        assert_eq!(run(&mut b, 1), vec![JobToken(1)]);
    }

    #[test]
    fn bypass_hit_rate_zero_forwards_everything() {
        let mut b = Bypass::new(Box::new(FcfsMulti::new(1, 100.0)), 0.0, 1);
        b.enqueue(JobToken(1), 1.0, SimTime::ZERO);
        assert_eq!(run(&mut b, 1), vec![JobToken(1)]);
    }

    #[test]
    fn bypass_statistics_match_rate() {
        // A slow inner queue: hits complete fast, misses pile up.
        let mut b = Bypass::new(Box::new(FcfsMulti::new(1, 1e-6)), 0.75, 42);
        for i in 0..10_000 {
            b.enqueue(JobToken(i), 1.0, SimTime::ZERO);
        }
        let done = run(&mut b, 1);
        let frac = done.len() as f64 / 10_000.0;
        assert!((frac - 0.75).abs() < 0.02, "hit fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_tandem_panics() {
        Tandem::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "at least one branch")]
    fn empty_forkjoin_panics() {
        ForkJoin::new(vec![]);
    }
}
