//! Bounded processor-sharing fluid queue — the `M/M/1/k – PS` network-link
//! model of Fig. 3-6 (right).
//!
//! Up to `k` jobs are served simultaneously, each receiving an equal share
//! of the total rate ("the bandwidth … is distributed uniformly among the
//! number of tasks simultaneously being processed"); further jobs wait in
//! FIFO order for a service slot. Within a tick the share is re-balanced
//! exactly (water-filling) whenever a job finishes, so short jobs never
//! strand capacity.

use super::{Station, EPS};
use crate::job::{JobEntry, JobToken};
use gdisim_metrics::UtilizationMeter;
use gdisim_types::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Processor-sharing queue with total rate `rate` and at most `k`
/// simultaneously served jobs.
#[derive(Debug, Clone)]
pub struct PsQueue {
    active: Vec<JobEntry>,
    waiting: VecDeque<JobEntry>,
    rate: f64,
    max_sharing: usize,
    meter: UtilizationMeter,
}

impl PsQueue {
    /// Creates a PS queue. `max_sharing` is the paper's `k` — the number
    /// of simultaneous connections the link admits.
    ///
    /// # Panics
    /// Panics on a non-positive rate or `max_sharing == 0`.
    pub fn new(rate: f64, max_sharing: u32) -> Self {
        assert!(
            rate > 0.0 && rate.is_finite(),
            "PS service rate must be positive"
        );
        assert!(max_sharing > 0, "PS queue needs at least one service slot");
        PsQueue {
            active: Vec::new(),
            waiting: VecDeque::new(),
            rate,
            max_sharing: max_sharing as usize,
            meter: UtilizationMeter::new(),
        }
    }

    /// Total service rate in demand units per second.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Jobs currently receiving service.
    pub fn active_len(&self) -> usize {
        self.active.len()
    }

    fn promote_waiting(&mut self) {
        while self.active.len() < self.max_sharing {
            match self.waiting.pop_front() {
                Some(j) => self.active.push(j),
                None => break,
            }
        }
    }
}

impl Station for PsQueue {
    fn enqueue(&mut self, token: JobToken, demand: f64, now: SimTime) {
        self.waiting.push_back(JobEntry::new(token, demand, now));
    }

    fn tick(&mut self, _now: SimTime, dt: SimDuration, completed: &mut Vec<JobToken>) {
        let total_budget = self.rate * dt.as_secs_f64();
        let mut budget = total_budget;
        self.promote_waiting();

        // Exact intra-tick processor sharing: repeatedly give every active
        // job an equal share until either the budget runs out or the
        // smallest job finishes (then re-balance over the survivors plus
        // any newly promoted waiters).
        while budget > EPS && !self.active.is_empty() {
            let n = self.active.len() as f64;
            let min_remaining = self
                .active
                .iter()
                .map(|j| j.remaining)
                .fold(f64::INFINITY, f64::min);
            let share = budget / n;
            if min_remaining <= share {
                // Everyone advances by the smallest remaining demand; the
                // finished jobs leave and their slots refill.
                budget -= min_remaining * n;
                for j in &mut self.active {
                    j.remaining -= min_remaining;
                }
                self.active.retain(|j| {
                    if j.remaining <= EPS {
                        completed.push(j.token);
                        false
                    } else {
                        true
                    }
                });
                self.promote_waiting();
            } else {
                for j in &mut self.active {
                    j.remaining -= share;
                }
                budget = 0.0;
            }
        }

        let used = total_budget - budget;
        let busy = if total_budget > 0.0 {
            used / total_budget
        } else {
            0.0
        };
        self.meter.record(busy, 1.0, dt);
    }

    fn account_idle(&mut self, ticks: u64, dt: SimDuration) {
        self.meter.record_idle(1.0, dt, ticks);
    }

    fn collect_utilization(&mut self) -> f64 {
        self.meter.collect()
    }

    fn in_system(&self) -> usize {
        self.active.len() + self.waiting.len()
    }

    fn evict_all(&mut self, into: &mut Vec<JobToken>) {
        into.extend(self.active.drain(..).map(|j| j.token));
        into.extend(self.waiting.drain(..).map(|j| j.token));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DT: SimDuration = SimDuration::from_millis(10);

    #[test]
    fn equal_sharing_halves_throughput() {
        // rate 100/s, two jobs of 0.5 each: both finish exactly at 10 ms.
        let mut q = PsQueue::new(100.0, 8);
        q.enqueue(JobToken(1), 0.5, SimTime::ZERO);
        q.enqueue(JobToken(2), 0.5, SimTime::ZERO);
        let mut done = Vec::new();
        q.tick(SimTime::ZERO, DT, &mut done);
        assert_eq!(done.len(), 2);
    }

    #[test]
    fn short_job_finishes_first_and_releases_share() {
        // Jobs of 0.25 and 0.75 at rate 100/s: tick budget 1.0.
        // Share phase 1: both get 0.25 (short one finishes, cost 0.5).
        // Phase 2: the long one gets the remaining 0.5 alone -> finishes.
        let mut q = PsQueue::new(100.0, 8);
        q.enqueue(JobToken(1), 0.25, SimTime::ZERO);
        q.enqueue(JobToken(2), 0.75, SimTime::ZERO);
        let mut done = Vec::new();
        q.tick(SimTime::ZERO, DT, &mut done);
        assert_eq!(done, vec![JobToken(1), JobToken(2)]);
    }

    #[test]
    fn sharing_limit_k_queues_excess() {
        // k = 1: jobs are served strictly one at a time. With both demands
        // equal to the 1.0-unit tick budget, only the first finishes.
        let mut q = PsQueue::new(100.0, 1);
        q.enqueue(JobToken(1), 1.0, SimTime::ZERO);
        q.enqueue(JobToken(2), 1.0, SimTime::ZERO);
        let mut done = Vec::new();
        q.tick(SimTime::ZERO, DT, &mut done);
        assert_eq!(done, vec![JobToken(1)]);
        assert_eq!(q.in_system(), 1);
        // Work conservation: two half-budget jobs both clear in one tick
        // even with k = 1, because the slot refills mid-tick.
        let mut q = PsQueue::new(100.0, 1);
        q.enqueue(JobToken(1), 0.5, SimTime::ZERO);
        q.enqueue(JobToken(2), 0.5, SimTime::ZERO);
        let mut done = Vec::new();
        q.tick(SimTime::ZERO, DT, &mut done);
        assert_eq!(done, vec![JobToken(1), JobToken(2)]);
    }

    #[test]
    fn utilization_full_when_saturated() {
        let mut q = PsQueue::new(100.0, 4);
        q.enqueue(JobToken(1), 100.0, SimTime::ZERO);
        let mut done = Vec::new();
        q.tick(SimTime::ZERO, DT, &mut done);
        assert!((q.collect_utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_partial_when_underloaded() {
        // 0.5 demand against a 1.0 budget -> 50 % busy.
        let mut q = PsQueue::new(100.0, 4);
        q.enqueue(JobToken(1), 0.5, SimTime::ZERO);
        let mut done = Vec::new();
        q.tick(SimTime::ZERO, DT, &mut done);
        assert!((q.collect_utilization() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_tick_is_idle() {
        let mut q = PsQueue::new(100.0, 4);
        let mut done = Vec::new();
        q.tick(SimTime::ZERO, DT, &mut done);
        assert!(done.is_empty());
        assert_eq!(q.collect_utilization(), 0.0);
    }

    #[test]
    #[should_panic(expected = "service slot")]
    fn zero_slots_panics() {
        PsQueue::new(1.0, 0);
    }
}

// Checkpoint support.
gdisim_snap::snap_struct!(PsQueue {
    active,
    waiting,
    rate,
    max_sharing,
    meter,
});
