//! Multi-server FCFS fluid queue — the `M/M/c – FCFS` workhorse used by
//! the CPU (Fig. 3-4), NIC and switch (Fig. 3-6) models.

use super::{Station, EPS};
use crate::job::{JobEntry, JobToken};
use gdisim_metrics::UtilizationMeter;
use gdisim_types::{SimDuration, SimTime};
use std::collections::VecDeque;

/// A first-come-first-served queue with `c` identical servers, each
/// serving `rate` demand units per second.
#[derive(Debug, Clone)]
pub struct FcfsMulti {
    servers: Vec<Option<JobEntry>>,
    waiting: VecDeque<JobEntry>,
    rate: f64,
    meter: UtilizationMeter,
}

impl FcfsMulti {
    /// Creates a queue with `servers` servers of `rate` units/second each.
    ///
    /// # Panics
    /// Panics if `servers == 0` or `rate` is not positive — a mute queue
    /// is always a configuration bug.
    pub fn new(servers: u32, rate: f64) -> Self {
        assert!(servers > 0, "FCFS queue needs at least one server");
        assert!(
            rate > 0.0 && rate.is_finite(),
            "FCFS service rate must be positive"
        );
        FcfsMulti {
            servers: vec![None; servers as usize],
            waiting: VecDeque::new(),
            rate,
            meter: UtilizationMeter::new(),
        }
    }

    /// Service rate per server, in demand units per second.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Number of servers.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// Jobs waiting (not yet in service).
    pub fn waiting_len(&self) -> usize {
        self.waiting.len()
    }
}

impl Station for FcfsMulti {
    fn enqueue(&mut self, token: JobToken, demand: f64, now: SimTime) {
        self.waiting.push_back(JobEntry::new(token, demand, now));
    }

    fn tick(&mut self, _now: SimTime, dt: SimDuration, completed: &mut Vec<JobToken>) {
        let per_server_budget = self.rate * dt.as_secs_f64();
        if per_server_budget <= 0.0 {
            self.meter.record(0.0, self.servers.len() as f64, dt);
            return;
        }
        let mut used_units = 0.0;
        for slot in &mut self.servers {
            let mut budget = per_server_budget;
            while budget > EPS {
                let job = match slot {
                    Some(j) => j,
                    None => match self.waiting.pop_front() {
                        Some(j) => slot.insert(j),
                        None => break,
                    },
                };
                let take = job.remaining.min(budget);
                job.remaining -= take;
                budget -= take;
                used_units += take;
                if job.remaining <= EPS {
                    completed.push(job.token);
                    *slot = None;
                }
            }
        }
        let busy_servers = used_units / per_server_budget;
        self.meter
            .record(busy_servers, self.servers.len() as f64, dt);
    }

    fn account_idle(&mut self, ticks: u64, dt: SimDuration) {
        self.meter.record_idle(self.servers.len() as f64, dt, ticks);
    }

    fn collect_utilization(&mut self) -> f64 {
        self.meter.collect()
    }

    fn in_system(&self) -> usize {
        self.waiting.len() + self.servers.iter().filter(|s| s.is_some()).count()
    }

    fn evict_all(&mut self, into: &mut Vec<JobToken>) {
        for slot in &mut self.servers {
            if let Some(j) = slot.take() {
                into.push(j.token);
            }
        }
        into.extend(self.waiting.drain(..).map(|j| j.token));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DT: SimDuration = SimDuration::from_millis(10);

    fn drain(q: &mut FcfsMulti, ticks: u64) -> Vec<JobToken> {
        let mut done = Vec::new();
        let mut now = SimTime::ZERO;
        for _ in 0..ticks {
            q.tick(now, DT, &mut done);
            now += DT;
        }
        done
    }

    #[test]
    fn single_job_takes_demand_over_rate() {
        // rate 100 units/s, demand 1 unit -> 10 ms = exactly one tick.
        let mut q = FcfsMulti::new(1, 100.0);
        q.enqueue(JobToken(1), 1.0, SimTime::ZERO);
        let mut done = Vec::new();
        q.tick(SimTime::ZERO, DT, &mut done);
        assert_eq!(done, vec![JobToken(1)]);
        assert_eq!(q.in_system(), 0);
    }

    #[test]
    fn fifo_order_is_respected() {
        let mut q = FcfsMulti::new(1, 100.0);
        for i in 0..5 {
            q.enqueue(JobToken(i), 1.0, SimTime::ZERO);
        }
        let done = drain(&mut q, 5);
        assert_eq!(done, (0..5).map(JobToken).collect::<Vec<_>>());
    }

    #[test]
    fn work_conserving_within_tick() {
        // Two 0.5-unit jobs fit in one 1-unit tick budget on one server.
        let mut q = FcfsMulti::new(1, 100.0);
        q.enqueue(JobToken(1), 0.5, SimTime::ZERO);
        q.enqueue(JobToken(2), 0.5, SimTime::ZERO);
        let mut done = Vec::new();
        q.tick(SimTime::ZERO, DT, &mut done);
        assert_eq!(done, vec![JobToken(1), JobToken(2)]);
    }

    #[test]
    fn parallel_servers_serve_concurrently() {
        let mut q = FcfsMulti::new(2, 100.0);
        q.enqueue(JobToken(1), 1.0, SimTime::ZERO);
        q.enqueue(JobToken(2), 1.0, SimTime::ZERO);
        let mut done = Vec::new();
        q.tick(SimTime::ZERO, DT, &mut done);
        assert_eq!(
            done.len(),
            2,
            "both servers should finish their job in one tick"
        );
    }

    #[test]
    fn long_job_spans_ticks() {
        let mut q = FcfsMulti::new(1, 100.0);
        q.enqueue(JobToken(1), 2.5, SimTime::ZERO);
        assert!(drain(&mut q, 2).is_empty());
        let done = drain(&mut q, 1);
        assert_eq!(done, vec![JobToken(1)]);
    }

    #[test]
    fn utilization_reflects_busy_fraction() {
        let mut q = FcfsMulti::new(2, 100.0);
        // One server busy for one tick out of two ticks on two servers:
        // busy fraction = 1 / (2 * 2) = 0.25.
        q.enqueue(JobToken(1), 1.0, SimTime::ZERO);
        drain(&mut q, 2);
        let u = q.collect_utilization();
        assert!((u - 0.25).abs() < 1e-9, "got {u}");
    }

    #[test]
    fn zero_demand_job_completes_immediately() {
        let mut q = FcfsMulti::new(1, 100.0);
        q.enqueue(JobToken(1), 0.0, SimTime::ZERO);
        let mut done = Vec::new();
        q.tick(SimTime::ZERO, DT, &mut done);
        assert_eq!(done, vec![JobToken(1)]);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_panics() {
        FcfsMulti::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        FcfsMulti::new(1, 0.0);
    }
}

// Checkpoint support: in-service slots, the waiting line and the
// mid-interval meter all roundtrip exactly.
gdisim_snap::snap_struct!(FcfsMulti {
    servers,
    waiting,
    rate,
    meter,
});
