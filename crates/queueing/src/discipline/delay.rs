//! Constant-delay line.
//!
//! Network links add a constant propagation latency "added to the
//! processing time of each task" (§3.4.2). A delay line holds every job
//! for exactly its configured delay and models no contention: all jobs
//! progress simultaneously.

use super::Station;
use crate::job::JobToken;
use gdisim_metrics::GaugeMeter;
use gdisim_types::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Holds each job for a fixed delay, then releases it.
#[derive(Debug, Clone)]
pub struct DelayLine {
    delay: SimDuration,
    // Jobs in FIFO release order (enqueue order == release order because
    // the delay is constant).
    in_flight: VecDeque<(JobToken, SimTime)>,
    gauge: GaugeMeter,
}

impl DelayLine {
    /// Creates a delay line with the given constant delay. A zero delay is
    /// permitted and releases jobs on the next tick.
    pub fn new(delay: SimDuration) -> Self {
        DelayLine {
            delay,
            in_flight: VecDeque::new(),
            gauge: GaugeMeter::new(),
        }
    }

    /// The configured delay.
    pub fn delay(&self) -> SimDuration {
        self.delay
    }
}

impl Station for DelayLine {
    fn enqueue(&mut self, token: JobToken, _demand: f64, now: SimTime) {
        self.in_flight.push_back((token, now + self.delay));
        self.gauge.set(self.in_flight.len() as f64);
    }

    fn tick(&mut self, now: SimTime, dt: SimDuration, completed: &mut Vec<JobToken>) {
        let end = now + dt;
        while let Some((_, release)) = self.in_flight.front() {
            if *release <= end {
                completed.push(self.in_flight.pop_front().expect("front checked").0);
            } else {
                break;
            }
        }
        self.gauge.set(self.in_flight.len() as f64);
        self.gauge.advance(dt);
    }

    fn account_idle(&mut self, ticks: u64, dt: SimDuration) {
        // Empty line: the gauge already sits at zero, so only time advances.
        self.gauge.advance_by(dt, ticks);
    }

    fn collect_utilization(&mut self) -> f64 {
        // No contention: report the average number of in-flight jobs.
        self.gauge.collect()
    }

    fn in_system(&self) -> usize {
        self.in_flight.len()
    }

    fn evict_all(&mut self, into: &mut Vec<JobToken>) {
        into.extend(self.in_flight.drain(..).map(|(t, _)| t));
        self.gauge.set(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DT: SimDuration = SimDuration::from_millis(10);

    #[test]
    fn releases_after_delay() {
        let mut d = DelayLine::new(SimDuration::from_millis(25));
        d.enqueue(JobToken(1), 0.0, SimTime::ZERO);
        let mut done = Vec::new();
        d.tick(SimTime::ZERO, DT, &mut done); // covers [0, 10)
        assert!(done.is_empty());
        d.tick(SimTime::from_millis(10), DT, &mut done); // [10, 20)
        assert!(done.is_empty());
        d.tick(SimTime::from_millis(20), DT, &mut done); // [20, 30) releases at 25
        assert_eq!(done, vec![JobToken(1)]);
    }

    #[test]
    fn zero_delay_releases_same_tick() {
        let mut d = DelayLine::new(SimDuration::ZERO);
        d.enqueue(JobToken(1), 0.0, SimTime::ZERO);
        let mut done = Vec::new();
        d.tick(SimTime::ZERO, DT, &mut done);
        assert_eq!(done, vec![JobToken(1)]);
    }

    #[test]
    fn concurrent_jobs_do_not_contend() {
        let mut d = DelayLine::new(SimDuration::from_millis(5));
        for i in 0..100 {
            d.enqueue(JobToken(i), 0.0, SimTime::ZERO);
        }
        let mut done = Vec::new();
        d.tick(SimTime::ZERO, DT, &mut done);
        assert_eq!(done.len(), 100, "all jobs release together");
    }

    #[test]
    fn in_system_counts_in_flight() {
        let mut d = DelayLine::new(SimDuration::from_millis(50));
        d.enqueue(JobToken(1), 0.0, SimTime::ZERO);
        d.enqueue(JobToken(2), 0.0, SimTime::ZERO);
        assert_eq!(d.in_system(), 2);
    }
}

// Checkpoint support.
gdisim_snap::snap_struct!(DelayLine {
    delay,
    in_flight,
    gauge,
});
