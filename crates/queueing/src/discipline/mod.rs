//! Discrete-time fluid queue disciplines.
//!
//! Every discipline implements [`Station`]: jobs are enqueued with a scalar
//! demand, and at each tick the station performs up to
//! `servers × rate × dt` work, handing back the tokens of the jobs whose
//! demand was fully served. Service within a tick is *work-conserving*: a
//! server that finishes a job mid-tick immediately continues with the next
//! waiting job, so no capacity is lost to tick granularity.

mod delay;
mod fcfs;
mod forkjoin;
mod infinite;
mod ps;

pub use delay::DelayLine;
pub use fcfs::FcfsMulti;
pub use forkjoin::{Bypass, ForkJoin, Tandem};
pub use infinite::InfiniteServer;
pub use ps::PsQueue;

use crate::job::JobToken;
use gdisim_types::{SimDuration, SimTime};

/// Numerical tolerance for "demand fully served" decisions. Demands are
/// cycles (≤ 1e10) or bytes (≤ 1e10); f64 gives ~6 digits of slack beyond
/// this threshold.
pub(crate) const EPS: f64 = 1e-6;

/// A queueing station processing scalar-demand jobs tick by tick.
pub trait Station {
    /// Submits a job with `demand` units of service required.
    fn enqueue(&mut self, token: JobToken, demand: f64, now: SimTime);

    /// Advances the station by one tick, pushing the tokens of completed
    /// jobs onto `completed` (in completion order).
    fn tick(&mut self, now: SimTime, dt: SimDuration, completed: &mut Vec<JobToken>);

    /// Accounts `ticks` consecutive empty ticks to the station's meters in
    /// one bulk addition — bit-for-bit equivalent to calling
    /// [`tick`](Self::tick) that many times with an empty system. The
    /// engine's active-agent fast path skips idle stations entirely and
    /// credits the elapsed idle time through this method just before a
    /// collection or re-activation, so utilization and gauge averages stay
    /// identical to the always-tick loop.
    ///
    /// Callers must only invoke this while `in_system() == 0`.
    fn account_idle(&mut self, ticks: u64, dt: SimDuration);

    /// Returns the utilization since the previous collection and resets
    /// the meter. For delay lines (which model no contention) this is the
    /// average number of in-flight jobs instead.
    fn collect_utilization(&mut self) -> f64;

    /// Number of jobs currently in the system (waiting + in service).
    fn in_system(&self) -> usize;

    /// Removes every job from the station, pushing the evicted tokens onto
    /// `into` in a deterministic order (service slots first, then waiters
    /// in FIFO order; composite stations emit their canonical job set in
    /// ascending token order). Afterwards `in_system() == 0`, so the
    /// active-set fast path may resume bulk idle accounting via
    /// [`account_idle`](Self::account_idle). Used by fault injection to
    /// drain a component that just went down.
    fn evict_all(&mut self, into: &mut Vec<JobToken>);
}
