//! Infinite-server station (`M/G/∞`).
//!
//! Client holons do not contend with each other: every client runs on its
//! own machine, so client-side `Rp` cycles translate into a pure service
//! time with no queueing. An infinite-server station serves every job in
//! parallel at the configured rate — the natural model for a population
//! of client machines aggregated into one agent.

use super::{Station, EPS};
use crate::job::{JobEntry, JobToken};
use gdisim_metrics::GaugeMeter;
use gdisim_types::{SimDuration, SimTime};

/// Serves all jobs simultaneously, each at `rate` units/second.
#[derive(Debug, Clone)]
pub struct InfiniteServer {
    jobs: Vec<JobEntry>,
    rate: f64,
    gauge: GaugeMeter,
}

impl InfiniteServer {
    /// Creates an infinite-server station with per-job service `rate`.
    pub fn new(rate: f64) -> Self {
        assert!(
            rate > 0.0 && rate.is_finite(),
            "service rate must be positive"
        );
        InfiniteServer {
            jobs: Vec::new(),
            rate,
            gauge: GaugeMeter::new(),
        }
    }

    /// Per-job service rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl Station for InfiniteServer {
    fn enqueue(&mut self, token: JobToken, demand: f64, now: SimTime) {
        self.jobs.push(JobEntry::new(token, demand, now));
    }

    fn tick(&mut self, _now: SimTime, dt: SimDuration, completed: &mut Vec<JobToken>) {
        let budget = self.rate * dt.as_secs_f64();
        self.jobs.retain_mut(|j| {
            j.remaining -= budget;
            if j.remaining <= EPS {
                completed.push(j.token);
                false
            } else {
                true
            }
        });
        self.gauge.set(self.jobs.len() as f64);
        self.gauge.advance(dt);
    }

    fn account_idle(&mut self, ticks: u64, dt: SimDuration) {
        // Empty station: the gauge already sits at zero, so only time advances.
        self.gauge.advance_by(dt, ticks);
    }

    fn collect_utilization(&mut self) -> f64 {
        // No finite capacity: report the average number of jobs in service.
        self.gauge.collect()
    }

    fn in_system(&self) -> usize {
        self.jobs.len()
    }

    fn evict_all(&mut self, into: &mut Vec<JobToken>) {
        into.extend(self.jobs.drain(..).map(|j| j.token));
        self.gauge.set(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DT: SimDuration = SimDuration::from_millis(10);

    #[test]
    fn all_jobs_progress_in_parallel() {
        let mut s = InfiniteServer::new(100.0);
        for i in 0..50 {
            s.enqueue(JobToken(i), 1.0, SimTime::ZERO);
        }
        let mut done = Vec::new();
        s.tick(SimTime::ZERO, DT, &mut done);
        assert_eq!(done.len(), 50, "no contention: everyone finishes together");
    }

    #[test]
    fn service_time_is_demand_over_rate() {
        let mut s = InfiniteServer::new(100.0);
        s.enqueue(JobToken(1), 2.5, SimTime::ZERO);
        let mut done = Vec::new();
        for _ in 0..2 {
            s.tick(SimTime::ZERO, DT, &mut done);
        }
        assert!(done.is_empty());
        s.tick(SimTime::ZERO, DT, &mut done);
        assert_eq!(done, vec![JobToken(1)]);
    }

    #[test]
    fn gauge_tracks_population() {
        let mut s = InfiniteServer::new(1.0);
        s.enqueue(JobToken(1), 100.0, SimTime::ZERO);
        s.enqueue(JobToken(2), 100.0, SimTime::ZERO);
        let mut done = Vec::new();
        s.tick(SimTime::ZERO, DT, &mut done);
        assert_eq!(s.in_system(), 2);
        assert!((s.collect_utilization() - 2.0).abs() < 1e-9);
    }
}

// Checkpoint support.
gdisim_snap::snap_struct!(InfiniteServer { jobs, rate, gauge });
