//! Queueing-network building blocks for GDISim.
//!
//! Chapter 3.4 of the paper models every hardware component as a queue or
//! a small network of queues, then composes them into servers, tiers and
//! data centers. This crate implements:
//!
//! * the **disciplines** those models use — multi-server FCFS, bounded
//!   processor sharing, constant-delay lines and fork-join arrays — as
//!   discrete-time *fluid* queues: at every tick a queue performs
//!   `capacity = servers × rate × dt` work, allocated according to its
//!   discipline. This is the paper's "a fraction of the processing is
//!   carried out at each time step" (§4.3.3);
//! * the **hardware component models** of Figs. 3-4..3-8 — CPU, memory,
//!   NIC, switch, link, RAID and SAN — composed from those disciplines;
//! * **analytic** steady-state formulas (M/M/1, M/M/c Erlang-C, M/M/1/k)
//!   used to cross-validate the fluid queues and to power the analytic
//!   baseline of `gdisim-baselines`.
//!
//! All models are deterministic given their seed: stochastic elements
//! (cache hits) draw from an embedded SplitMix64 generator.

#![warn(missing_docs)]

pub mod analytic;
pub mod components;
pub mod discipline;
pub mod job;
pub mod rng;

pub use components::{
    CpuModel, CpuSpec, LinkModel, LinkSpec, MemoryModel, MemorySpec, NicModel, NicSpec, RaidModel,
    RaidSpec, SanModel, SanSpec, SwitchModel, SwitchSpec,
};
pub use discipline::{
    Bypass, DelayLine, FcfsMulti, ForkJoin, InfiniteServer, PsQueue, Station, Tandem,
};
pub use job::JobToken;
pub use rng::SplitMix64;
