//! Closed-form steady-state queueing formulas.
//!
//! These serve two purposes:
//!
//! 1. **Cross-validation** — integration tests drive the fluid queues with
//!    Poisson arrivals and check their mean response times against these
//!    formulas, pinning the discrete-time models to queueing theory.
//! 2. **Baseline** — the Urgaonkar-style analytic tandem model in
//!    `gdisim-baselines` is assembled from them (Ch. 2.2.3).
//!
//! All functions take an arrival rate `lambda` (jobs/s) and a per-server
//! service rate `mu` (jobs/s) and return times in seconds.

/// Utilization `ρ = λ / (c·μ)` of a `c`-server queue.
pub fn utilization(lambda: f64, mu: f64, servers: u32) -> f64 {
    lambda / (servers as f64 * mu)
}

/// Mean response time (wait + service) of an `M/M/1 – FCFS` queue:
/// `W = 1 / (μ − λ)`. Returns `f64::INFINITY` at or beyond saturation.
///
/// ```
/// use gdisim_queueing::analytic::mm1_response_time;
/// assert_eq!(mm1_response_time(8.0, 10.0), 0.5);
/// assert!(mm1_response_time(10.0, 10.0).is_infinite());
/// ```
pub fn mm1_response_time(lambda: f64, mu: f64) -> f64 {
    assert!(
        lambda >= 0.0 && mu > 0.0,
        "rates must be non-negative, μ positive"
    );
    if lambda >= mu {
        return f64::INFINITY;
    }
    1.0 / (mu - lambda)
}

/// Mean number of jobs in an `M/M/1` system: `L = ρ / (1 − ρ)`.
pub fn mm1_jobs_in_system(lambda: f64, mu: f64) -> f64 {
    let rho = lambda / mu;
    if rho >= 1.0 {
        return f64::INFINITY;
    }
    rho / (1.0 - rho)
}

/// Erlang-C: probability that an arriving job must wait in an `M/M/c`
/// queue. Returns `1.0` at or beyond saturation.
pub fn erlang_c(lambda: f64, mu: f64, servers: u32) -> f64 {
    assert!(servers > 0, "need at least one server");
    let c = servers as f64;
    let a = lambda / mu; // offered load in Erlangs
    let rho = a / c;
    if rho >= 1.0 {
        return 1.0;
    }
    // P_wait = (a^c / c!) / ((1-ρ) Σ_{k<c} a^k/k! + a^c/c!)
    // computed with an incremental term to avoid factorial overflow.
    let mut term = 1.0; // a^k / k! at k = 0
    let mut sum = 0.0;
    for k in 0..servers {
        sum += term;
        term *= a / (k as f64 + 1.0);
    }
    // `term` is now a^c / c!.
    let numerator = term / (1.0 - rho);
    numerator / (sum + numerator)
}

/// Mean response time of an `M/M/c – FCFS` queue:
/// `W = 1/μ + C(c, a) / (c·μ − λ)`.
pub fn mmc_response_time(lambda: f64, mu: f64, servers: u32) -> f64 {
    let c = servers as f64;
    if lambda >= c * mu {
        return f64::INFINITY;
    }
    1.0 / mu + erlang_c(lambda, mu, servers) / (c * mu - lambda)
}

/// Mean response time of an `M/M/1 – PS` queue. Processor sharing with
/// exponential service has the same mean as FCFS: `W = 1/(μ − λ)` —
/// the sojourn-time *distribution* differs, the mean does not.
pub fn mm1_ps_response_time(lambda: f64, mu: f64) -> f64 {
    mm1_response_time(lambda, mu)
}

/// Blocking probability of an `M/M/1/K` queue (Erlang loss for the
/// single-server finite-capacity case): the probability an arrival finds
/// the system full and is dropped.
pub fn mm1k_blocking(lambda: f64, mu: f64, capacity: u32) -> f64 {
    assert!(capacity > 0, "capacity must be positive");
    let rho = lambda / mu;
    let k = capacity as f64;
    if (rho - 1.0).abs() < 1e-12 {
        return 1.0 / (k + 1.0);
    }
    (1.0 - rho) * rho.powf(k) / (1.0 - rho.powf(k + 1.0))
}

/// Mean jobs in an `M/M/1/K` system.
pub fn mm1k_jobs_in_system(lambda: f64, mu: f64, capacity: u32) -> f64 {
    let rho = lambda / mu;
    let k = capacity as f64;
    if (rho - 1.0).abs() < 1e-12 {
        return k / 2.0;
    }
    rho / (1.0 - rho) - (k + 1.0) * rho.powf(k + 1.0) / (1.0 - rho.powf(k + 1.0))
}

/// Mean response time of an `M/M/1/K` queue for *accepted* jobs, by
/// Little's law over the effective arrival rate.
pub fn mm1k_response_time(lambda: f64, mu: f64, capacity: u32) -> f64 {
    let effective = lambda * (1.0 - mm1k_blocking(lambda, mu, capacity));
    if effective <= 0.0 {
        return 0.0;
    }
    mm1k_jobs_in_system(lambda, mu, capacity) / effective
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mm1_textbook_values() {
        // λ=8, μ=10: W = 1/2 = 0.5 s, L = 4.
        assert!((mm1_response_time(8.0, 10.0) - 0.5).abs() < 1e-12);
        assert!((mm1_jobs_in_system(8.0, 10.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn mm1_saturation_is_infinite() {
        assert!(mm1_response_time(10.0, 10.0).is_infinite());
        assert!(mm1_jobs_in_system(12.0, 10.0).is_infinite());
    }

    #[test]
    fn erlang_c_single_server_equals_rho() {
        // For c=1, P_wait = ρ.
        let p = erlang_c(7.0, 10.0, 1);
        assert!((p - 0.7).abs() < 1e-12, "got {p}");
    }

    #[test]
    fn erlang_c_known_value() {
        // a = 2 Erlangs over c = 3 servers: C(3,2) = 4/9 ≈ 0.4444.
        let p = erlang_c(2.0, 1.0, 3);
        assert!((p - 4.0 / 9.0).abs() < 1e-9, "got {p}");
    }

    #[test]
    fn mmc_reduces_to_mm1() {
        let w1 = mm1_response_time(5.0, 10.0);
        let wc = mmc_response_time(5.0, 10.0, 1);
        assert!((w1 - wc).abs() < 1e-12);
    }

    #[test]
    fn mmc_faster_than_mm1_at_same_total_capacity_light_load() {
        // Light load: pooled single fast server beats c slow ones, but
        // c slow servers beat one slow server. Sanity ordering checks.
        let w_mm2 = mmc_response_time(5.0, 10.0, 2);
        let w_mm1 = mm1_response_time(5.0, 10.0);
        assert!(w_mm2 < w_mm1, "adding a server must reduce response time");
    }

    #[test]
    fn mm1k_blocking_limits() {
        // Very large capacity approaches zero blocking below saturation.
        assert!(mm1k_blocking(5.0, 10.0, 200) < 1e-12);
        // ρ = 1 gives 1/(K+1).
        assert!((mm1k_blocking(10.0, 10.0, 4) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn mm1k_approaches_mm1_for_large_k() {
        let w = mm1k_response_time(8.0, 10.0, 500);
        assert!((w - 0.5).abs() < 1e-6, "got {w}");
    }

    #[test]
    fn utilization_helper() {
        assert!((utilization(8.0, 2.0, 2) - 2.0).abs() < 1e-12);
        assert!((utilization(8.0, 10.0, 4) - 0.2).abs() < 1e-12);
    }
}
