//! Storage Area Network (Fig. 3-8).
//!
//! Like the RAID, a SAN is an `n`-way fork-join of `Qdcc → Qhdd` disk
//! pipelines, but the fork is preceded by three queues: the fibre-channel
//! switch `Qfcsw`, the disk-array controller cache `Qdacc`, and the
//! fibre-channel arbitrated loop `Qfcal`. A cache hit in `Qdacc` bypasses
//! the loop and the fork-join structure.

use crate::discipline::{FcfsMulti, Station};
use crate::job::JobToken;
use crate::rng::SplitMix64;
use gdisim_types::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Datasheet specification of a SAN.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SanSpec {
    /// Number of disks `n`.
    pub disks: u32,
    /// Fibre-channel switch (`Qfcsw`) rate in bytes/second.
    pub fc_switch_rate: f64,
    /// Disk-array controller (`Qdacc`) rate in bytes/second.
    pub array_ctrl_rate: f64,
    /// `Qdacc` cache hit rate.
    pub array_cache_hit: f64,
    /// Fibre-channel arbitrated loop (`Qfcal`) rate in bytes/second.
    pub fc_loop_rate: f64,
    /// Per-disk controller (`Qdcc`) rate in bytes/second.
    pub disk_ctrl_rate: f64,
    /// `Qdcc` cache hit rate.
    pub disk_cache_hit: f64,
    /// Drive (`Qhdd`) sustained rate in bytes/second.
    pub disk_rate: f64,
}

impl SanSpec {
    /// Creates a spec, clamping hit rates to `[0, 1]`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        disks: u32,
        fc_switch_rate: f64,
        array_ctrl_rate: f64,
        array_cache_hit: f64,
        fc_loop_rate: f64,
        disk_ctrl_rate: f64,
        disk_cache_hit: f64,
        disk_rate: f64,
    ) -> Self {
        assert!(disks > 0, "SAN needs at least one disk");
        assert!(
            fc_switch_rate > 0.0
                && array_ctrl_rate > 0.0
                && fc_loop_rate > 0.0
                && disk_ctrl_rate > 0.0
                && disk_rate > 0.0,
            "SAN rates must be positive"
        );
        SanSpec {
            disks,
            fc_switch_rate,
            array_ctrl_rate,
            array_cache_hit: array_cache_hit.clamp(0.0, 1.0),
            fc_loop_rate,
            disk_ctrl_rate,
            disk_cache_hit: disk_cache_hit.clamp(0.0, 1.0),
            disk_rate,
        }
    }
}

/// Progress of a job through the SAN front-end.
#[derive(Debug, Clone, Copy, PartialEq)]
enum FrontStage {
    Switch,
    ArrayCtrl,
    Loop,
}

/// Runtime SAN model.
#[derive(Clone)]
pub struct SanModel {
    spec: SanSpec,
    fcsw: FcfsMulti,
    dacc: FcfsMulti,
    fcal: FcfsMulti,
    disk_ctrl: Vec<FcfsMulti>,
    disk_drive: Vec<FcfsMulti>,
    front_stage: HashMap<JobToken, FrontStage>,
    demand_of: HashMap<JobToken, f64>,
    outstanding: HashMap<JobToken, u32>,
    rng: SplitMix64,
    scratch: Vec<JobToken>,
}

impl SanModel {
    /// Builds the model from its spec with a deterministic seed.
    pub fn new(spec: SanSpec, seed: u64) -> Self {
        SanModel {
            fcsw: FcfsMulti::new(1, spec.fc_switch_rate),
            dacc: FcfsMulti::new(1, spec.array_ctrl_rate),
            fcal: FcfsMulti::new(1, spec.fc_loop_rate),
            disk_ctrl: (0..spec.disks)
                .map(|_| FcfsMulti::new(1, spec.disk_ctrl_rate))
                .collect(),
            disk_drive: (0..spec.disks)
                .map(|_| FcfsMulti::new(1, spec.disk_rate))
                .collect(),
            front_stage: HashMap::new(),
            demand_of: HashMap::new(),
            outstanding: HashMap::new(),
            rng: SplitMix64::new(seed),
            spec,
            scratch: Vec::new(),
        }
    }

    /// The spec this model was built from.
    pub fn spec(&self) -> &SanSpec {
        &self.spec
    }

    /// Average drive utilization since the last collection (resets).
    pub fn collect_drive_utilization(&mut self) -> f64 {
        let n = self.disk_drive.len() as f64;
        self.disk_drive
            .iter_mut()
            .map(|d| d.collect_utilization())
            .sum::<f64>()
            / n
    }

    /// Nominal zero-contention service time for `bytes`: the expected
    /// cache-weighted sum over the switch → controller → loop →
    /// disk-controller → drive pipeline with `bytes / n` stripes
    /// (optrace attribution; an expectation, since cache hits are
    /// drawn per request).
    pub fn nominal_service_secs(&self, bytes: f64) -> f64 {
        let stripe = bytes / self.spec.disks as f64;
        let miss = 1.0 - self.spec.array_cache_hit;
        let disk_miss = 1.0 - self.spec.disk_cache_hit;
        bytes / self.spec.fc_switch_rate
            + bytes / self.spec.array_ctrl_rate
            + miss
                * (bytes / self.spec.fc_loop_rate
                    + stripe / self.spec.disk_ctrl_rate
                    + disk_miss * stripe / self.spec.disk_rate)
    }

    fn join_stripe(&mut self, token: JobToken, completed: &mut Vec<JobToken>) {
        let remaining = self
            .outstanding
            .get_mut(&token)
            .expect("stripe without join entry");
        *remaining -= 1;
        if *remaining == 0 {
            self.outstanding.remove(&token);
            self.demand_of.remove(&token);
            completed.push(token);
        }
    }
}

impl Station for SanModel {
    fn enqueue(&mut self, token: JobToken, bytes: f64, now: SimTime) {
        self.front_stage.insert(token, FrontStage::Switch);
        self.demand_of.insert(token, bytes);
        self.fcsw.enqueue(token, bytes, now);
    }

    fn tick(&mut self, now: SimTime, dt: SimDuration, completed: &mut Vec<JobToken>) {
        // Back to front: drives, disk controllers, loop, array controller,
        // FC switch.
        for i in 0..self.spec.disks as usize {
            self.scratch.clear();
            self.disk_drive[i].tick(now, dt, &mut self.scratch);
            let done = std::mem::take(&mut self.scratch);
            for token in done {
                self.join_stripe(token, completed);
            }
        }
        for i in 0..self.spec.disks as usize {
            self.scratch.clear();
            self.disk_ctrl[i].tick(now, dt, &mut self.scratch);
            let done = std::mem::take(&mut self.scratch);
            for token in done {
                if self.rng.bernoulli(self.spec.disk_cache_hit) {
                    self.join_stripe(token, completed);
                } else {
                    let stripe = self.demand_of[&token] / self.spec.disks as f64;
                    self.disk_drive[i].enqueue(token, stripe, now);
                }
            }
        }
        self.scratch.clear();
        self.fcal.tick(now, dt, &mut self.scratch);
        let through_loop = std::mem::take(&mut self.scratch);
        for token in through_loop {
            self.front_stage.remove(&token);
            self.outstanding.insert(token, self.spec.disks);
            let stripe = self.demand_of[&token] / self.spec.disks as f64;
            for ctrl in &mut self.disk_ctrl {
                ctrl.enqueue(token, stripe, now);
            }
        }
        self.scratch.clear();
        self.dacc.tick(now, dt, &mut self.scratch);
        let through_ctrl = std::mem::take(&mut self.scratch);
        for token in through_ctrl {
            if self.rng.bernoulli(self.spec.array_cache_hit) {
                self.front_stage.remove(&token);
                self.demand_of.remove(&token);
                completed.push(token);
            } else {
                self.front_stage.insert(token, FrontStage::Loop);
                let bytes = self.demand_of[&token];
                self.fcal.enqueue(token, bytes, now);
            }
        }
        self.scratch.clear();
        self.fcsw.tick(now, dt, &mut self.scratch);
        let through_switch = std::mem::take(&mut self.scratch);
        for token in through_switch {
            self.front_stage.insert(token, FrontStage::ArrayCtrl);
            let bytes = self.demand_of[&token];
            self.dacc.enqueue(token, bytes, now);
        }
    }

    fn account_idle(&mut self, ticks: u64, dt: SimDuration) {
        self.fcsw.account_idle(ticks, dt);
        self.dacc.account_idle(ticks, dt);
        self.fcal.account_idle(ticks, dt);
        for q in self.disk_ctrl.iter_mut().chain(self.disk_drive.iter_mut()) {
            q.account_idle(ticks, dt);
        }
    }

    fn collect_utilization(&mut self) -> f64 {
        // Report the fibre-channel switch, the SAN's entry bottleneck;
        // drives are exposed separately.
        let u = self.fcsw.collect_utilization();
        let _ = self.dacc.collect_utilization();
        let _ = self.fcal.collect_utilization();
        u
    }

    fn in_system(&self) -> usize {
        self.demand_of.len()
    }

    fn evict_all(&mut self, into: &mut Vec<JobToken>) {
        let mut discard = Vec::new();
        self.fcsw.evict_all(&mut discard);
        self.dacc.evict_all(&mut discard);
        self.fcal.evict_all(&mut discard);
        for q in self.disk_ctrl.iter_mut().chain(self.disk_drive.iter_mut()) {
            q.evict_all(&mut discard);
        }
        // `demand_of` holds every in-flight job exactly once; sort for
        // determinism (it is hash-ordered).
        let mut jobs: Vec<JobToken> = self.demand_of.drain().map(|(t, _)| t).collect();
        jobs.sort_unstable();
        into.append(&mut jobs);
        self.front_stage.clear();
        self.outstanding.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdisim_types::units::{gbps, mb_per_s};

    const DT: SimDuration = SimDuration::from_millis(10);

    fn run(s: &mut SanModel, ticks: u64) -> Vec<JobToken> {
        let mut done = Vec::new();
        let mut now = SimTime::ZERO;
        for _ in 0..ticks {
            s.tick(now, DT, &mut done);
            now += DT;
        }
        done
    }

    fn spec_no_cache(disks: u32) -> SanSpec {
        SanSpec::new(
            disks,
            gbps(8.0),
            gbps(4.0),
            0.0,
            gbps(4.0),
            gbps(2.0),
            0.0,
            mb_per_s(120.0),
        )
    }

    #[test]
    fn full_path_is_five_stages() {
        // 1.2 MB request, 2 disks: every front queue serves < 10 ms, the
        // 0.6 MB stripes take 5 ms at the drive. Path length = 5 ticks
        // (switch, ctrl, loop, disk ctrl, drive).
        let mut s = SanModel::new(spec_no_cache(2), 3);
        s.enqueue(JobToken(1), 1.2e6, SimTime::ZERO);
        assert!(run(&mut s, 4).is_empty());
        assert_eq!(run(&mut s, 1), vec![JobToken(1)]);
    }

    #[test]
    fn array_cache_hit_skips_loop_and_disks() {
        let spec = SanSpec {
            array_cache_hit: 1.0,
            ..spec_no_cache(2)
        };
        let mut s = SanModel::new(spec, 3);
        s.enqueue(JobToken(1), 1.2e6, SimTime::ZERO);
        // switch (tick 1) + array ctrl (tick 2) only.
        assert!(run(&mut s, 1).is_empty());
        assert_eq!(run(&mut s, 1), vec![JobToken(1)]);
    }

    #[test]
    fn many_jobs_complete_exactly_once() {
        let mut s = SanModel::new(spec_no_cache(4), 3);
        for i in 0..10 {
            s.enqueue(JobToken(i), 1.2e6, SimTime::ZERO);
        }
        let done = run(&mut s, 200);
        assert_eq!(done.len(), 10);
        let mut sorted: Vec<u64> = done.iter().map(|t| t.0).collect();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
        assert_eq!(s.in_system(), 0);
    }

    #[test]
    fn partial_cache_mixes_paths() {
        let spec = SanSpec {
            array_cache_hit: 0.5,
            ..spec_no_cache(2)
        };
        let mut s = SanModel::new(spec, 42);
        for i in 0..100 {
            s.enqueue(JobToken(i), 1.2e6, SimTime::ZERO);
        }
        let done = run(&mut s, 5000);
        assert_eq!(done.len(), 100);
    }
}

// Checkpoint support.
gdisim_snap::snap_enum!(FrontStage {
    0 => Switch,
    1 => ArrayCtrl,
    2 => Loop,
});
gdisim_snap::snap_struct!(SanSpec {
    disks,
    fc_switch_rate,
    array_ctrl_rate,
    array_cache_hit,
    fc_loop_rate,
    disk_ctrl_rate,
    disk_cache_hit,
    disk_rate,
});
gdisim_snap::snap_struct!(SanModel {
    spec,
    fcsw,
    dacc,
    fcal,
    disk_ctrl,
    disk_drive,
    front_stage,
    demand_of,
    outstanding,
    rng,
    scratch,
});
