//! Memory model: caching and occupancy (Fig. 3-5).
//!
//! Memory is "the only component not modeled as a queue" (§3.4.2). It
//! captures two effects:
//!
//! * **Caching** — with probability `hit_rate` an access bypasses the
//!   downstream CPU/I-O queues entirely;
//! * **Occupancy** — the `Rm` bytes of a message are held for the duration
//!   of its processing and released afterwards.
//!
//! Chapter 5.3.3 found this model too coarse against a real OS (pooled
//! allocators keep the physical profile flat); the model is kept faithful
//! to the paper, and the validation harness reproduces that negative
//! finding.

use crate::rng::SplitMix64;
use gdisim_metrics::GaugeMeter;
use gdisim_types::SimDuration;
use serde::{Deserialize, Serialize};

/// Datasheet specification of a memory subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemorySpec {
    /// Capacity in bytes.
    pub capacity_bytes: f64,
    /// Probability that an access is served from cache, bypassing the
    /// downstream queues. Empirically profiled.
    pub hit_rate: f64,
    /// Bytes permanently claimed by OS and runtime pools. Chapter 5.3.3
    /// found the pure occupancy model blind to these ("the kernel
    /// maintains a flat memory profile"); Ch. 9.2.2 lists modeling them
    /// as future work — setting a pool floor implements it: reported
    /// occupancy becomes `pool + dynamic Rm holds`.
    #[serde(default)]
    pub pool_bytes: f64,
}

impl MemorySpec {
    /// Creates a spec with no OS pool, clamping the hit rate to `[0, 1]`.
    pub fn new(capacity_bytes: f64, hit_rate: f64) -> Self {
        assert!(capacity_bytes > 0.0, "memory capacity must be positive");
        MemorySpec {
            capacity_bytes,
            hit_rate: hit_rate.clamp(0.0, 1.0),
            pool_bytes: 0.0,
        }
    }

    /// Adds an OS/runtime pool floor, builder-style.
    ///
    /// # Panics
    /// Panics if the pool exceeds capacity.
    pub fn with_pool(mut self, pool_bytes: f64) -> Self {
        assert!(
            (0.0..=self.capacity_bytes).contains(&pool_bytes),
            "pool must fit in physical memory"
        );
        self.pool_bytes = pool_bytes;
        self
    }
}

/// Runtime memory model.
#[derive(Debug, Clone)]
pub struct MemoryModel {
    spec: MemorySpec,
    occupancy: GaugeMeter,
    rng: SplitMix64,
    overcommit_events: u64,
}

impl MemoryModel {
    /// Builds the model from its spec with a deterministic seed.
    pub fn new(spec: MemorySpec, seed: u64) -> Self {
        MemoryModel {
            spec,
            occupancy: GaugeMeter::new(),
            rng: SplitMix64::new(seed),
            overcommit_events: 0,
        }
    }

    /// The spec this model was built from.
    pub fn spec(&self) -> &MemorySpec {
        &self.spec
    }

    /// Draws a cache-hit decision for one access.
    pub fn access_hits_cache(&mut self) -> bool {
        self.rng.bernoulli(self.spec.hit_rate)
    }

    /// Allocates `bytes` for the duration of a message's processing.
    /// Returns `false` (and counts an overcommit event) if the allocation
    /// pushes occupancy beyond physical capacity — the simulation proceeds,
    /// as a real OS would start swapping rather than fail.
    pub fn allocate(&mut self, bytes: f64) -> bool {
        self.occupancy.add(bytes);
        let fits = self.occupancy.level() + self.spec.pool_bytes <= self.spec.capacity_bytes;
        if !fits {
            self.overcommit_events += 1;
        }
        fits
    }

    /// Releases `bytes` previously allocated.
    pub fn release(&mut self, bytes: f64) {
        self.occupancy.add(-bytes);
        debug_assert!(
            self.occupancy.level() >= -1e-3,
            "released more memory than allocated"
        );
    }

    /// Advances the occupancy clock by one tick.
    pub fn advance(&mut self, dt: SimDuration) {
        self.occupancy.advance(dt);
    }

    /// Current occupancy in bytes, including the OS/runtime pool floor.
    pub fn occupied_bytes(&self) -> f64 {
        self.occupancy.level().max(0.0) + self.spec.pool_bytes
    }

    /// Time-weighted average occupancy (bytes) since the last collection,
    /// including the pool floor; resets the accumulator.
    pub fn collect_avg_occupancy(&mut self) -> f64 {
        self.occupancy.collect().max(0.0) + self.spec.pool_bytes
    }

    /// Occupancy as a fraction of capacity.
    pub fn occupancy_fraction(&self) -> f64 {
        self.occupied_bytes() / self.spec.capacity_bytes
    }

    /// Number of allocations that exceeded physical capacity so far.
    pub fn overcommit_events(&self) -> u64 {
        self.overcommit_events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdisim_types::units::gb;

    #[test]
    fn allocate_release_roundtrip() {
        let mut m = MemoryModel::new(MemorySpec::new(gb(32.0), 0.5), 1);
        assert!(m.allocate(gb(8.0)));
        assert!(m.allocate(gb(8.0)));
        assert!((m.occupancy_fraction() - 0.5).abs() < 1e-12);
        m.release(gb(16.0));
        assert_eq!(m.occupied_bytes(), 0.0);
        assert_eq!(m.overcommit_events(), 0);
    }

    #[test]
    fn overcommit_is_counted_not_fatal() {
        let mut m = MemoryModel::new(MemorySpec::new(gb(1.0), 0.0), 1);
        assert!(!m.allocate(gb(2.0)));
        assert_eq!(m.overcommit_events(), 1);
        assert!(m.occupied_bytes() > 0.0);
    }

    #[test]
    fn hit_rate_statistics() {
        let mut m = MemoryModel::new(MemorySpec::new(gb(1.0), 0.4), 99);
        let hits = (0..100_000).filter(|_| m.access_hits_cache()).count();
        let f = hits as f64 / 1e5;
        assert!((f - 0.4).abs() < 0.01, "hit fraction {f}");
    }

    #[test]
    fn average_occupancy_is_time_weighted() {
        let mut m = MemoryModel::new(MemorySpec::new(gb(4.0), 0.0), 1);
        m.allocate(gb(2.0));
        m.advance(SimDuration::from_millis(10));
        m.release(gb(2.0));
        m.advance(SimDuration::from_millis(10));
        let avg = m.collect_avg_occupancy();
        assert!((avg - gb(1.0)).abs() < 1.0, "avg {avg}");
    }

    #[test]
    fn spec_clamps_hit_rate() {
        assert_eq!(MemorySpec::new(1.0, 2.0).hit_rate, 1.0);
        assert_eq!(MemorySpec::new(1.0, -0.5).hit_rate, 0.0);
    }

    #[test]
    fn pool_floor_dominates_reported_occupancy() {
        // The Ch. 9.2.2 extension: a 30 GB runtime pool makes the profile
        // nearly flat regardless of per-message holds — the behavior the
        // physical system showed in §5.3.3.
        let spec = MemorySpec::new(gb(32.0), 0.0).with_pool(gb(30.0));
        let mut m = MemoryModel::new(spec, 1);
        assert_eq!(m.occupied_bytes(), gb(30.0));
        m.allocate(gb(0.5));
        m.advance(SimDuration::from_millis(10));
        let avg = m.collect_avg_occupancy();
        assert!((avg - gb(30.5)).abs() < 1.0, "avg {avg}");
        // Headroom accounting includes the pool.
        assert!(
            !m.allocate(gb(2.0)),
            "0.5 + 2.0 over the 2 GB of free headroom"
        );
    }

    #[test]
    #[should_panic(expected = "pool must fit")]
    fn oversized_pool_panics() {
        let _ = MemorySpec::new(gb(8.0), 0.0).with_pool(gb(9.0));
    }
}

// Checkpoint support.
gdisim_snap::snap_struct!(MemorySpec {
    capacity_bytes,
    hit_rate,
    pool_bytes,
});
gdisim_snap::snap_struct!(MemoryModel {
    spec,
    occupancy,
    rng,
    overcommit_events,
});
