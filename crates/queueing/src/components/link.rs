//! Network link: `M/M/1/k – PS` plus constant latency (Fig. 3-6, right).
//!
//! Bandwidth is shared uniformly among up to `k` simultaneous transfers;
//! a constant propagation latency is "added to the processing time of each
//! task". The model is a PS queue feeding a delay line.

use crate::discipline::{DelayLine, PsQueue, Station};
use crate::job::JobToken;
use gdisim_types::{Kendall, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Datasheet specification of a link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
    /// One-way propagation latency.
    pub latency: SimDuration,
    /// Maximum simultaneous connections `k`.
    pub max_connections: u32,
}

impl LinkSpec {
    /// Creates a spec.
    pub fn new(bandwidth_bytes_per_sec: f64, latency: SimDuration, max_connections: u32) -> Self {
        assert!(
            bandwidth_bytes_per_sec > 0.0,
            "link bandwidth must be positive"
        );
        assert!(
            max_connections > 0,
            "link must admit at least one connection"
        );
        LinkSpec {
            bandwidth_bytes_per_sec,
            latency,
            max_connections,
        }
    }

    /// The Kendall descriptor of this model.
    pub fn kendall(&self) -> Kendall {
        Kendall::mm1k_ps(self.max_connections)
    }
}

/// Runtime link model: PS service stage followed by a latency stage.
#[derive(Debug, Clone)]
pub struct LinkModel {
    spec: LinkSpec,
    service: PsQueue,
    propagation: DelayLine,
}

impl LinkModel {
    /// Builds the model from its spec.
    pub fn new(spec: LinkSpec) -> Self {
        LinkModel {
            service: PsQueue::new(spec.bandwidth_bytes_per_sec, spec.max_connections),
            propagation: DelayLine::new(spec.latency),
            spec,
        }
    }

    /// The spec this model was built from.
    pub fn spec(&self) -> &LinkSpec {
        &self.spec
    }

    /// Transfers currently receiving bandwidth.
    pub fn active_transfers(&self) -> usize {
        self.service.active_len()
    }

    /// Nominal zero-contention transfer time for `bytes` at full
    /// bandwidth, excluding propagation (optrace attribution).
    pub fn nominal_service_secs(&self, bytes: f64) -> f64 {
        bytes / self.spec.bandwidth_bytes_per_sec
    }

    /// The constant propagation latency every transfer pays (optrace
    /// counts it as WAN transit).
    pub fn propagation_secs(&self) -> f64 {
        self.spec.latency.as_secs_f64()
    }
}

impl Station for LinkModel {
    fn enqueue(&mut self, token: JobToken, bytes: f64, now: SimTime) {
        self.service.enqueue(token, bytes, now);
    }

    fn tick(&mut self, now: SimTime, dt: SimDuration, completed: &mut Vec<JobToken>) {
        let mut served = Vec::new();
        self.service.tick(now, dt, &mut served);
        for token in served {
            // Service finished somewhere inside this tick; stamp the
            // propagation start at the tick's end so latency is never
            // under-counted.
            self.propagation.enqueue(token, 0.0, now + dt);
        }
        self.propagation.tick(now, dt, completed);
    }

    fn account_idle(&mut self, ticks: u64, dt: SimDuration) {
        self.service.account_idle(ticks, dt);
        self.propagation.account_idle(ticks, dt);
    }

    fn collect_utilization(&mut self) -> f64 {
        // Bandwidth utilization; the latency stage models no contention.
        let u = self.service.collect_utilization();
        let _ = self.propagation.collect_utilization();
        u
    }

    fn in_system(&self) -> usize {
        self.service.in_system() + self.propagation.in_system()
    }

    fn evict_all(&mut self, into: &mut Vec<JobToken>) {
        self.service.evict_all(into);
        self.propagation.evict_all(into);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdisim_types::units::mbps;

    const DT: SimDuration = SimDuration::from_millis(10);

    #[test]
    fn latency_adds_to_transfer_time() {
        // 80 Mbps = 10 MB/s: 100 KB takes 10 ms service + 25 ms latency.
        let spec = LinkSpec::new(mbps(80.0), SimDuration::from_millis(25), 64);
        let mut link = LinkModel::new(spec);
        link.enqueue(JobToken(1), 100_000.0, SimTime::ZERO);
        let mut done = Vec::new();
        let mut now = SimTime::ZERO;
        let mut completed_at = None;
        for _ in 0..10 {
            link.tick(now, DT, &mut done);
            if !done.is_empty() {
                completed_at = Some(now);
                break;
            }
            now += DT;
        }
        // Service ends inside tick [0,10) ms; release at 10+25=35 ms falls
        // in the tick starting at 30 ms.
        assert_eq!(completed_at, Some(SimTime::from_millis(30)));
    }

    #[test]
    fn bandwidth_shared_among_transfers() {
        // Two 50 KB transfers on a 10 MB/s link: each gets 5 MB/s, both
        // complete service in the same 10 ms tick.
        let spec = LinkSpec::new(mbps(80.0), SimDuration::ZERO, 64);
        let mut link = LinkModel::new(spec);
        link.enqueue(JobToken(1), 50_000.0, SimTime::ZERO);
        link.enqueue(JobToken(2), 50_000.0, SimTime::ZERO);
        let mut done = Vec::new();
        link.tick(SimTime::ZERO, DT, &mut done);
        assert_eq!(done.len(), 2);
    }

    #[test]
    fn connection_cap_respected() {
        let spec = LinkSpec::new(mbps(80.0), SimDuration::ZERO, 2);
        let mut link = LinkModel::new(spec);
        for i in 0..5 {
            link.enqueue(JobToken(i), 1e9, SimTime::ZERO);
        }
        let mut done = Vec::new();
        link.tick(SimTime::ZERO, DT, &mut done);
        assert_eq!(link.active_transfers(), 2);
    }

    #[test]
    fn utilization_is_bandwidth_fraction() {
        let spec = LinkSpec::new(mbps(80.0), SimDuration::ZERO, 64);
        let mut link = LinkModel::new(spec);
        // 50 KB against a 100 KB tick budget = 50 %.
        link.enqueue(JobToken(1), 50_000.0, SimTime::ZERO);
        let mut done = Vec::new();
        link.tick(SimTime::ZERO, DT, &mut done);
        assert!((link.collect_utilization() - 0.5).abs() < 1e-9);
    }
}

// Checkpoint support.
gdisim_snap::snap_struct!(LinkSpec {
    bandwidth_bytes_per_sec,
    latency,
    max_connections,
});
gdisim_snap::snap_struct!(LinkModel {
    spec,
    service,
    propagation,
});
