//! Multi-socket multi-core CPU: `p × M/M/q – FCFS` (Fig. 3-4).
//!
//! Each socket is an independent `q`-server FCFS queue whose servers
//! consume cycles at the core clock frequency. Tasks are balanced across
//! sockets round-robin; hyper-threading is modeled, as the paper suggests,
//! by scaling the effective core count by an empirically measured speedup
//! factor.

use crate::discipline::{FcfsMulti, Station};
use crate::job::JobToken;
use gdisim_types::{Kendall, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Datasheet specification of a CPU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuSpec {
    /// Number of sockets `p`.
    pub sockets: u32,
    /// Cores per socket `q`.
    pub cores_per_socket: u32,
    /// Core clock frequency in cycles per second.
    pub clock_hz: f64,
    /// Hyper-threading speedup factor applied to the effective core count
    /// (`1.0` = disabled; the paper suggests an empirically measured
    /// value, typically `1.2–1.3`).
    pub hyperthreading: f64,
}

impl CpuSpec {
    /// A spec without hyper-threading.
    pub fn new(sockets: u32, cores_per_socket: u32, clock_hz: f64) -> Self {
        CpuSpec {
            sockets,
            cores_per_socket,
            clock_hz,
            hyperthreading: 1.0,
        }
    }

    /// Total physical cores.
    pub fn total_cores(&self) -> u32 {
        self.sockets * self.cores_per_socket
    }

    /// Effective cores after the hyper-threading factor, rounded to the
    /// nearest whole server.
    pub fn effective_cores_per_socket(&self) -> u32 {
        ((self.cores_per_socket as f64 * self.hyperthreading).round() as u32).max(1)
    }

    /// Aggregate cycles/second the CPU can retire.
    pub fn total_rate(&self) -> f64 {
        self.sockets as f64 * self.effective_cores_per_socket() as f64 * self.clock_hz
    }

    /// The Kendall descriptor of one socket's queue.
    pub fn kendall(&self) -> Kendall {
        Kendall::mmc_fcfs(self.effective_cores_per_socket())
    }
}

/// Runtime CPU model: one FCFS queue per socket, round-robin placement.
#[derive(Debug, Clone)]
pub struct CpuModel {
    spec: CpuSpec,
    sockets: Vec<FcfsMulti>,
    next_socket: usize,
}

impl CpuModel {
    /// Builds the model from its spec.
    pub fn new(spec: CpuSpec) -> Self {
        assert!(
            spec.sockets > 0 && spec.cores_per_socket > 0,
            "CPU needs sockets and cores"
        );
        assert!(spec.clock_hz > 0.0, "CPU clock must be positive");
        let sockets = (0..spec.sockets)
            .map(|_| FcfsMulti::new(spec.effective_cores_per_socket(), spec.clock_hz))
            .collect();
        CpuModel {
            spec,
            sockets,
            next_socket: 0,
        }
    }

    /// The spec this model was built from.
    pub fn spec(&self) -> &CpuSpec {
        &self.spec
    }

    /// Nominal zero-contention service time for `cycles` of demand: a
    /// lone task runs on one core at the clock frequency, so anything a
    /// real residence time exceeds this by is queue wait (optrace
    /// attribution).
    pub fn nominal_service_secs(&self, cycles: f64) -> f64 {
        cycles / self.spec.clock_hz
    }
}

impl Station for CpuModel {
    fn enqueue(&mut self, token: JobToken, cycles: f64, now: SimTime) {
        self.sockets[self.next_socket].enqueue(token, cycles, now);
        self.next_socket = (self.next_socket + 1) % self.sockets.len();
    }

    fn tick(&mut self, now: SimTime, dt: SimDuration, completed: &mut Vec<JobToken>) {
        for s in &mut self.sockets {
            s.tick(now, dt, completed);
        }
    }

    fn account_idle(&mut self, ticks: u64, dt: SimDuration) {
        for s in &mut self.sockets {
            s.account_idle(ticks, dt);
        }
    }

    fn collect_utilization(&mut self) -> f64 {
        let n = self.sockets.len() as f64;
        self.sockets
            .iter_mut()
            .map(|s| s.collect_utilization())
            .sum::<f64>()
            / n
    }

    fn in_system(&self) -> usize {
        self.sockets.iter().map(|s| s.in_system()).sum()
    }

    fn evict_all(&mut self, into: &mut Vec<JobToken>) {
        for s in &mut self.sockets {
            s.evict_all(into);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdisim_types::units::ghz;

    const DT: SimDuration = SimDuration::from_millis(10);

    #[test]
    fn spec_arithmetic() {
        let spec = CpuSpec::new(2, 4, ghz(2.5));
        assert_eq!(spec.total_cores(), 8);
        assert_eq!(spec.total_rate(), 8.0 * 2.5e9);
        assert_eq!(spec.kendall().to_string(), "M/M/4 - FCFS");
    }

    #[test]
    fn hyperthreading_scales_effective_cores() {
        let spec = CpuSpec {
            hyperthreading: 1.25,
            ..CpuSpec::new(1, 4, ghz(2.0))
        };
        assert_eq!(spec.effective_cores_per_socket(), 5);
        assert_eq!(spec.total_rate(), 5.0 * 2e9);
    }

    #[test]
    fn one_core_task_duration() {
        // 2.0 GHz core, 20 M cycles: exactly one 10 ms tick.
        let mut cpu = CpuModel::new(CpuSpec::new(1, 1, ghz(2.0)));
        cpu.enqueue(JobToken(1), 20e6, SimTime::ZERO);
        let mut done = Vec::new();
        cpu.tick(SimTime::ZERO, DT, &mut done);
        assert_eq!(done, vec![JobToken(1)]);
    }

    #[test]
    fn round_robin_spreads_across_sockets() {
        // Two single-core sockets: two equal jobs finish in one tick
        // because each lands on a different socket.
        let mut cpu = CpuModel::new(CpuSpec::new(2, 1, ghz(2.0)));
        cpu.enqueue(JobToken(1), 20e6, SimTime::ZERO);
        cpu.enqueue(JobToken(2), 20e6, SimTime::ZERO);
        let mut done = Vec::new();
        cpu.tick(SimTime::ZERO, DT, &mut done);
        assert_eq!(done.len(), 2);
    }

    #[test]
    fn utilization_averages_sockets() {
        let mut cpu = CpuModel::new(CpuSpec::new(2, 1, ghz(2.0)));
        // One socket fully busy, the other idle.
        cpu.enqueue(JobToken(1), 40e6, SimTime::ZERO);
        let mut done = Vec::new();
        cpu.tick(SimTime::ZERO, DT, &mut done);
        let u = cpu.collect_utilization();
        assert!((u - 0.5).abs() < 1e-9, "got {u}");
    }
}

// Checkpoint support.
gdisim_snap::snap_struct!(CpuSpec {
    sockets,
    cores_per_socket,
    clock_hz,
    hyperthreading,
});
gdisim_snap::snap_struct!(CpuModel {
    spec,
    sockets,
    next_socket,
});
