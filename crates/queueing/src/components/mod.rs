//! Hardware component models (Figs. 3-4 … 3-8).
//!
//! Each model couples a serde-friendly *specification* (the numbers a data
//! center operator can read off a datasheet: sockets, cores, GHz, Mbps,
//! rpm, cache hit rates) with a runtime *model* built from the fluid queue
//! disciplines. Demands are always expressed in the `R` vector's units:
//! cycles for CPUs, bytes for NICs, switches, links, RAIDs and SANs.

mod cpu;
mod link;
mod memory;
mod nic;
mod raid;
mod san;
mod switch;

pub use cpu::{CpuModel, CpuSpec};
pub use link::{LinkModel, LinkSpec};
pub use memory::{MemoryModel, MemorySpec};
pub use nic::{NicModel, NicSpec};
pub use raid::{RaidModel, RaidSpec};
pub use san::{SanModel, SanSpec};
pub use switch::{SwitchModel, SwitchSpec};
