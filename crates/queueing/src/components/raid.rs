//! Redundant Array of Identical Disks: controller cache + `n` fork-join
//! disk pipelines (Fig. 3-7).
//!
//! A request first passes the disk-array controller cache `Qdacc`; a cache
//! hit bypasses the fork-join structure entirely. On a miss the bytes are
//! striped equally over `n` disks; each disk is a two-stage pipeline of
//! its controller cache `Qdcc` (whose hits bypass the platter) and the
//! drive `Qhdd`. The request completes when every stripe has been served.

use crate::discipline::{FcfsMulti, Station};
use crate::job::JobToken;
use crate::rng::SplitMix64;
use gdisim_types::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Datasheet specification of a RAID.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RaidSpec {
    /// Number of disks `n`.
    pub disks: u32,
    /// Disk-array controller (`Qdacc`) rate in bytes/second.
    pub array_ctrl_rate: f64,
    /// `Qdacc` cache hit rate (tunable, empirically measured).
    pub array_cache_hit: f64,
    /// Per-disk controller (`Qdcc`) rate in bytes/second.
    pub disk_ctrl_rate: f64,
    /// `Qdcc` cache hit rate.
    pub disk_cache_hit: f64,
    /// Drive (`Qhdd`) sustained rate in bytes/second.
    pub disk_rate: f64,
}

impl RaidSpec {
    /// Creates a spec, clamping hit rates to `[0, 1]`.
    pub fn new(
        disks: u32,
        array_ctrl_rate: f64,
        array_cache_hit: f64,
        disk_ctrl_rate: f64,
        disk_cache_hit: f64,
        disk_rate: f64,
    ) -> Self {
        assert!(disks > 0, "RAID needs at least one disk");
        assert!(
            array_ctrl_rate > 0.0 && disk_ctrl_rate > 0.0 && disk_rate > 0.0,
            "RAID rates must be positive"
        );
        RaidSpec {
            disks,
            array_ctrl_rate,
            array_cache_hit: array_cache_hit.clamp(0.0, 1.0),
            disk_ctrl_rate,
            disk_cache_hit: disk_cache_hit.clamp(0.0, 1.0),
            disk_rate,
        }
    }
}

/// Runtime RAID model.
#[derive(Clone)]
pub struct RaidModel {
    spec: RaidSpec,
    dacc: FcfsMulti,
    disk_ctrl: Vec<FcfsMulti>,
    disk_drive: Vec<FcfsMulti>,
    /// Stripe size per in-flight job (needed when a `Qdcc` miss forwards
    /// the stripe to the drive).
    stripe_of: HashMap<JobToken, f64>,
    /// Outstanding stripe count per in-flight forked job.
    outstanding: HashMap<JobToken, u32>,
    rng: SplitMix64,
    scratch: Vec<JobToken>,
}

impl RaidModel {
    /// Builds the model from its spec with a deterministic seed.
    pub fn new(spec: RaidSpec, seed: u64) -> Self {
        RaidModel {
            dacc: FcfsMulti::new(1, spec.array_ctrl_rate),
            disk_ctrl: (0..spec.disks)
                .map(|_| FcfsMulti::new(1, spec.disk_ctrl_rate))
                .collect(),
            disk_drive: (0..spec.disks)
                .map(|_| FcfsMulti::new(1, spec.disk_rate))
                .collect(),
            stripe_of: HashMap::new(),
            outstanding: HashMap::new(),
            rng: SplitMix64::new(seed),
            spec,
            scratch: Vec::new(),
        }
    }

    /// The spec this model was built from.
    pub fn spec(&self) -> &RaidSpec {
        &self.spec
    }

    /// Average drive utilization since the last collection (resets).
    pub fn collect_drive_utilization(&mut self) -> f64 {
        let n = self.disk_drive.len() as f64;
        self.disk_drive
            .iter_mut()
            .map(|d| d.collect_utilization())
            .sum::<f64>()
            / n
    }

    /// Nominal zero-contention service time for `bytes`: the expected
    /// cache-weighted sum over the controller → disk-controller → drive
    /// pipeline with `bytes / n` stripes (optrace attribution; an
    /// expectation, since cache hits are drawn per request).
    pub fn nominal_service_secs(&self, bytes: f64) -> f64 {
        let stripe = bytes / self.spec.disks as f64;
        let miss = 1.0 - self.spec.array_cache_hit;
        let disk_miss = 1.0 - self.spec.disk_cache_hit;
        bytes / self.spec.array_ctrl_rate
            + miss * (stripe / self.spec.disk_ctrl_rate + disk_miss * stripe / self.spec.disk_rate)
    }

    fn join_stripe(
        outstanding: &mut HashMap<JobToken, u32>,
        stripe_of: &mut HashMap<JobToken, f64>,
        token: JobToken,
        completed: &mut Vec<JobToken>,
    ) {
        let remaining = outstanding
            .get_mut(&token)
            .expect("stripe completed without a join entry");
        *remaining -= 1;
        if *remaining == 0 {
            outstanding.remove(&token);
            stripe_of.remove(&token);
            completed.push(token);
        }
    }
}

impl Station for RaidModel {
    fn enqueue(&mut self, token: JobToken, bytes: f64, now: SimTime) {
        self.dacc.enqueue(token, bytes, now);
        self.stripe_of.insert(token, bytes / self.spec.disks as f64);
    }

    fn tick(&mut self, now: SimTime, dt: SimDuration, completed: &mut Vec<JobToken>) {
        // Drives first, then disk controllers, then the array controller:
        // back-to-front so a job advances at most one stage per tick.
        for i in 0..self.spec.disks as usize {
            self.scratch.clear();
            self.disk_drive[i].tick(now, dt, &mut self.scratch);
            for token in self.scratch.drain(..) {
                Self::join_stripe(&mut self.outstanding, &mut self.stripe_of, token, completed);
            }
        }
        for i in 0..self.spec.disks as usize {
            self.scratch.clear();
            self.disk_ctrl[i].tick(now, dt, &mut self.scratch);
            for token in self.scratch.drain(..) {
                if self.rng.bernoulli(self.spec.disk_cache_hit) {
                    Self::join_stripe(&mut self.outstanding, &mut self.stripe_of, token, completed);
                } else {
                    let stripe = self.stripe_of[&token];
                    self.disk_drive[i].enqueue(token, stripe, now);
                }
            }
        }
        self.scratch.clear();
        self.dacc.tick(now, dt, &mut self.scratch);
        let forked = std::mem::take(&mut self.scratch);
        for token in forked {
            if self.rng.bernoulli(self.spec.array_cache_hit) {
                self.stripe_of.remove(&token);
                completed.push(token);
            } else {
                self.outstanding.insert(token, self.spec.disks);
                let stripe = self.stripe_of[&token];
                for ctrl in &mut self.disk_ctrl {
                    ctrl.enqueue(token, stripe, now);
                }
            }
        }
    }

    fn account_idle(&mut self, ticks: u64, dt: SimDuration) {
        self.dacc.account_idle(ticks, dt);
        for q in self.disk_ctrl.iter_mut().chain(self.disk_drive.iter_mut()) {
            q.account_idle(ticks, dt);
        }
    }

    fn collect_utilization(&mut self) -> f64 {
        // The array controller is the front-end bottleneck the paper
        // reports for disk subsystems; drives are exposed separately.
        self.dacc.collect_utilization()
    }

    fn in_system(&self) -> usize {
        self.stripe_of.len()
    }

    fn evict_all(&mut self, into: &mut Vec<JobToken>) {
        let mut discard = Vec::new();
        self.dacc.evict_all(&mut discard);
        for q in self.disk_ctrl.iter_mut().chain(self.disk_drive.iter_mut()) {
            q.evict_all(&mut discard);
        }
        // `stripe_of` holds every in-flight job exactly once; sort for
        // determinism (it is hash-ordered).
        let mut jobs: Vec<JobToken> = self.stripe_of.drain().map(|(t, _)| t).collect();
        jobs.sort_unstable();
        into.append(&mut jobs);
        self.outstanding.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdisim_types::units::{gbps, mb_per_s};

    const DT: SimDuration = SimDuration::from_millis(10);

    fn run(r: &mut RaidModel, ticks: u64) -> Vec<JobToken> {
        let mut done = Vec::new();
        let mut now = SimTime::ZERO;
        for _ in 0..ticks {
            r.tick(now, DT, &mut done);
            now += DT;
        }
        done
    }

    fn spec_no_cache(disks: u32) -> RaidSpec {
        RaidSpec::new(disks, gbps(4.0), 0.0, gbps(2.0), 0.0, mb_per_s(120.0))
    }

    #[test]
    fn full_pipeline_without_caches() {
        // 2-disk RAID, 2.4 MB request -> 1.2 MB stripes.
        // dacc at 500 MB/s: 4.8 ms (tick 1). dcc at 250 MB/s: 4.8 ms
        // (tick 2). drive at 120 MB/s: exactly 10 ms (tick 3).
        let mut r = RaidModel::new(spec_no_cache(2), 7);
        r.enqueue(JobToken(1), 2.4e6, SimTime::ZERO);
        assert!(run(&mut r, 2).is_empty());
        assert_eq!(run(&mut r, 1), vec![JobToken(1)]);
        assert_eq!(r.in_system(), 0);
    }

    #[test]
    fn array_cache_hit_bypasses_disks() {
        let spec = RaidSpec::new(2, gbps(4.0), 1.0, gbps(2.0), 0.0, mb_per_s(120.0));
        let mut r = RaidModel::new(spec, 7);
        r.enqueue(JobToken(1), 2.4e6, SimTime::ZERO);
        // Only the dacc service (~4.8 ms) is paid: done after one tick.
        assert_eq!(run(&mut r, 1), vec![JobToken(1)]);
    }

    #[test]
    fn disk_cache_hit_bypasses_platters() {
        let spec = RaidSpec::new(2, gbps(4.0), 0.0, gbps(2.0), 1.0, mb_per_s(120.0));
        let mut r = RaidModel::new(spec, 7);
        r.enqueue(JobToken(1), 2.4e6, SimTime::ZERO);
        // dacc (tick 1) + dcc (tick 2); drives skipped.
        assert!(run(&mut r, 1).is_empty());
        assert_eq!(run(&mut r, 1), vec![JobToken(1)]);
    }

    #[test]
    fn striping_scales_with_disk_count() {
        // Same 4.8 MB demand over 1 disk vs 4 disks: the 4-disk array's
        // drive phase is 4x shorter.
        let mut slow = RaidModel::new(spec_no_cache(1), 7);
        let mut fast = RaidModel::new(spec_no_cache(4), 7);
        slow.enqueue(JobToken(1), 4.8e6, SimTime::ZERO);
        fast.enqueue(JobToken(1), 4.8e6, SimTime::ZERO);
        let slow_done = run(&mut slow, 6);
        let fast_done = run(&mut fast, 6);
        assert!(slow_done.is_empty(), "1-disk drive phase is 40 ms");
        assert_eq!(fast_done, vec![JobToken(1)], "4-disk drive phase is 10 ms");
    }

    #[test]
    fn concurrent_requests_queue_at_controller() {
        let mut r = RaidModel::new(spec_no_cache(2), 7);
        for i in 0..3 {
            r.enqueue(JobToken(i), 2.4e6, SimTime::ZERO);
        }
        let done = run(&mut r, 20);
        assert_eq!(done.len(), 3);
        // FIFO completion order preserved through the pipeline.
        assert_eq!(done, vec![JobToken(0), JobToken(1), JobToken(2)]);
    }
}

// Checkpoint support. `scratch` is a reusable allocation with no
// cross-step meaning; it still roundtrips (cheaply empty between steps)
// so the struct stays fully covered.
gdisim_snap::snap_struct!(RaidSpec {
    disks,
    array_ctrl_rate,
    array_cache_hit,
    disk_ctrl_rate,
    disk_cache_hit,
    disk_rate,
});
gdisim_snap::snap_struct!(RaidModel {
    spec,
    dacc,
    disk_ctrl,
    disk_drive,
    stripe_of,
    outstanding,
    rng,
    scratch,
});
