//! Network Interface Card: `M/M/1 – FCFS` (Fig. 3-6, left).

use crate::discipline::{FcfsMulti, Station};
use crate::job::JobToken;
use gdisim_types::{Kendall, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Datasheet specification of a NIC.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NicSpec {
    /// Line rate in bytes per second ("typically an order of magnitude
    /// slower than the network switch").
    pub rate_bytes_per_sec: f64,
}

impl NicSpec {
    /// Creates a spec from a byte rate.
    pub fn new(rate_bytes_per_sec: f64) -> Self {
        assert!(rate_bytes_per_sec > 0.0, "NIC rate must be positive");
        NicSpec { rate_bytes_per_sec }
    }

    /// The Kendall descriptor of this model.
    pub fn kendall(&self) -> Kendall {
        Kendall::mm1_fcfs()
    }
}

/// Runtime NIC model.
#[derive(Debug, Clone)]
pub struct NicModel {
    spec: NicSpec,
    queue: FcfsMulti,
}

impl NicModel {
    /// Builds the model from its spec.
    pub fn new(spec: NicSpec) -> Self {
        NicModel {
            queue: FcfsMulti::new(1, spec.rate_bytes_per_sec),
            spec,
        }
    }

    /// The spec this model was built from.
    pub fn spec(&self) -> &NicSpec {
        &self.spec
    }

    /// Nominal zero-contention service time for `bytes` at line rate
    /// (optrace attribution).
    pub fn nominal_service_secs(&self, bytes: f64) -> f64 {
        bytes / self.spec.rate_bytes_per_sec
    }
}

impl Station for NicModel {
    fn enqueue(&mut self, token: JobToken, bytes: f64, now: SimTime) {
        self.queue.enqueue(token, bytes, now);
    }

    fn tick(&mut self, now: SimTime, dt: SimDuration, completed: &mut Vec<JobToken>) {
        self.queue.tick(now, dt, completed);
    }

    fn account_idle(&mut self, ticks: u64, dt: SimDuration) {
        self.queue.account_idle(ticks, dt);
    }

    fn collect_utilization(&mut self) -> f64 {
        self.queue.collect_utilization()
    }

    fn in_system(&self) -> usize {
        self.queue.in_system()
    }

    fn evict_all(&mut self, into: &mut Vec<JobToken>) {
        self.queue.evict_all(into);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdisim_types::units::mbps;

    #[test]
    fn transfer_time_matches_rate() {
        // 100 Mbps NIC = 12.5 MB/s; 125 KB takes 10 ms.
        let mut nic = NicModel::new(NicSpec::new(mbps(100.0)));
        nic.enqueue(JobToken(1), 125_000.0, SimTime::ZERO);
        let mut done = Vec::new();
        nic.tick(SimTime::ZERO, SimDuration::from_millis(10), &mut done);
        assert_eq!(done, vec![JobToken(1)]);
        assert_eq!(nic.spec().kendall().to_string(), "M/M/1 - FCFS");
    }

    #[test]
    fn serializes_transfers() {
        let mut nic = NicModel::new(NicSpec::new(mbps(100.0)));
        nic.enqueue(JobToken(1), 125_000.0, SimTime::ZERO);
        nic.enqueue(JobToken(2), 125_000.0, SimTime::ZERO);
        let mut done = Vec::new();
        nic.tick(SimTime::ZERO, SimDuration::from_millis(10), &mut done);
        assert_eq!(done, vec![JobToken(1)], "single server serializes");
        assert_eq!(nic.in_system(), 1);
    }
}

// Checkpoint support.
gdisim_snap::snap_struct!(NicSpec { rate_bytes_per_sec });
gdisim_snap::snap_struct!(NicModel { spec, queue });
