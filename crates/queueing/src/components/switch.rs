//! Network switch: `M/M/1 – FCFS` (Fig. 3-6, center).

use crate::discipline::{FcfsMulti, Station};
use crate::job::JobToken;
use gdisim_types::{Kendall, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Datasheet specification of a switch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwitchSpec {
    /// Backplane rate in bytes per second.
    pub rate_bytes_per_sec: f64,
}

impl SwitchSpec {
    /// Creates a spec from a byte rate.
    pub fn new(rate_bytes_per_sec: f64) -> Self {
        assert!(rate_bytes_per_sec > 0.0, "switch rate must be positive");
        SwitchSpec { rate_bytes_per_sec }
    }

    /// The Kendall descriptor of this model.
    pub fn kendall(&self) -> Kendall {
        Kendall::mm1_fcfs()
    }
}

/// Runtime switch model.
#[derive(Debug, Clone)]
pub struct SwitchModel {
    spec: SwitchSpec,
    queue: FcfsMulti,
}

impl SwitchModel {
    /// Builds the model from its spec.
    pub fn new(spec: SwitchSpec) -> Self {
        SwitchModel {
            queue: FcfsMulti::new(1, spec.rate_bytes_per_sec),
            spec,
        }
    }

    /// The spec this model was built from.
    pub fn spec(&self) -> &SwitchSpec {
        &self.spec
    }

    /// Nominal zero-contention service time for `bytes` at backplane
    /// rate (optrace attribution).
    pub fn nominal_service_secs(&self, bytes: f64) -> f64 {
        bytes / self.spec.rate_bytes_per_sec
    }
}

impl Station for SwitchModel {
    fn enqueue(&mut self, token: JobToken, bytes: f64, now: SimTime) {
        self.queue.enqueue(token, bytes, now);
    }

    fn tick(&mut self, now: SimTime, dt: SimDuration, completed: &mut Vec<JobToken>) {
        self.queue.tick(now, dt, completed);
    }

    fn account_idle(&mut self, ticks: u64, dt: SimDuration) {
        self.queue.account_idle(ticks, dt);
    }

    fn collect_utilization(&mut self) -> f64 {
        self.queue.collect_utilization()
    }

    fn in_system(&self) -> usize {
        self.queue.in_system()
    }

    fn evict_all(&mut self, into: &mut Vec<JobToken>) {
        self.queue.evict_all(into);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdisim_types::units::gbps;

    #[test]
    fn switch_is_faster_than_nic() {
        // A 10 Gbps switch moves 12.5 MB in 10 ms.
        let mut sw = SwitchModel::new(SwitchSpec::new(gbps(10.0)));
        sw.enqueue(JobToken(1), 12.5e6, SimTime::ZERO);
        let mut done = Vec::new();
        sw.tick(SimTime::ZERO, SimDuration::from_millis(10), &mut done);
        assert_eq!(done, vec![JobToken(1)]);
    }
}

// Checkpoint support.
gdisim_snap::snap_struct!(SwitchSpec { rate_bytes_per_sec });
gdisim_snap::snap_struct!(SwitchModel { spec, queue });
