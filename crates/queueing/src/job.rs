//! Work items flowing through queues.
//!
//! A queue does not know what a cascade message is; it only sees *jobs*: a
//! caller-supplied token plus a scalar service demand in the queue's own
//! unit (cycles for CPUs, bytes for everything else). When a job's demand
//! has been fully served the token is handed back, and the engine resumes
//! the cascade.

use gdisim_types::SimTime;

/// Opaque token identifying a job to its submitter.
///
/// The engine packs an interaction id in here; the queueing layer never
/// inspects it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobToken(pub u64);

/// A job with its remaining demand, tracked inside a queue.
#[derive(Debug, Clone, Copy)]
pub(crate) struct JobEntry {
    pub token: JobToken,
    /// Remaining service demand in the queue's unit.
    pub remaining: f64,
    /// When the job entered the queue. Retained for debugging dumps and
    /// future per-queue latency statistics; not read on the hot path.
    #[allow(dead_code)]
    pub enqueued_at: SimTime,
}

impl JobEntry {
    pub(crate) fn new(token: JobToken, demand: f64, now: SimTime) -> Self {
        debug_assert!(
            demand.is_finite() && demand >= 0.0,
            "job demand must be non-negative"
        );
        JobEntry {
            token,
            remaining: demand.max(0.0),
            enqueued_at: now,
        }
    }
}

// Checkpoint support.
impl gdisim_snap::Snap for JobToken {
    fn save(&self, w: &mut gdisim_snap::SnapWriter) {
        w.put_u64(self.0);
    }
    fn load(r: &mut gdisim_snap::SnapReader<'_>) -> Result<Self, gdisim_snap::SnapError> {
        Ok(JobToken(r.take_u64()?))
    }
}

gdisim_snap::snap_struct!(JobEntry {
    token,
    remaining,
    enqueued_at,
});
