//! A small, deterministic pseudo-random generator.
//!
//! Component models need occasional random draws (cache hit decisions).
//! Embedding a SplitMix64 keeps every model reproducible from its seed and
//! keeps `rand` out of the hot simulation path; the heavier distribution
//! machinery in `rand`/`rand_distr` stays confined to the workload
//! generators and the testbed.

/// SplitMix64 generator (Steele, Lea & Flood 2014). Passes BigCrush when
/// used as a 64-bit stream; more than adequate for Bernoulli cache draws.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` of `true`. `p` outside `[0,1]`
    /// clamps.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Exponential draw with the given rate (mean `1/rate`).
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive");
        // Avoid ln(0): next_f64 is in [0,1), so 1 - u is in (0,1].
        -(1.0 - self.next_f64()).ln() / rate
    }

    /// Uniform integer in `[0, n)`. `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "range must be non-empty");
        // Multiply-shift rejection-free mapping; bias is negligible for the
        // small ranges used here (server selection).
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut g = SplitMix64::new(7);
        for _ in 0..10_000 {
            let v = g.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn bernoulli_extremes_and_frequency() {
        let mut g = SplitMix64::new(3);
        assert!(!g.bernoulli(0.0));
        assert!(g.bernoulli(1.0));
        assert!(!g.bernoulli(-0.5));
        assert!(g.bernoulli(1.5));
        let hits = (0..100_000).filter(|_| g.bernoulli(0.3)).count();
        let freq = hits as f64 / 100_000.0;
        assert!(
            (freq - 0.3).abs() < 0.01,
            "frequency {freq} too far from 0.3"
        );
    }

    #[test]
    fn exponential_mean() {
        let mut g = SplitMix64::new(11);
        let n = 100_000;
        let total: f64 = (0..n).map(|_| g.exponential(2.0)).sum();
        let mean = total / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }

    #[test]
    fn below_is_in_range() {
        let mut g = SplitMix64::new(13);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = g.below(5);
            assert!(v < 5);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|s| *s), "all buckets should be hit");
    }
}

// Checkpoint support: the stream position is the whole state.
gdisim_snap::snap_struct!(SplitMix64 { state });
