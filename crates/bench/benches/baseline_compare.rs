//! A3 — baseline comparison: GDISim's cascade simulation of a
//! three-tier data center versus the MDCSim-style M/M/1 chain and the
//! Urgaonkar-style analytic tandem on a RUBiS-like load sweep.
//!
//! The analytic models answer in nanoseconds but only produce mean
//! latency (and `ρ`); the simulation costs real time and produces the
//! full utilization/response/occupancy report — the cost/fidelity trade
//! the paper's Fig. 2-11 quadrant depicts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gdisim_baselines::{MdcSimModel, MdcSimulator, MdcTier, TandemModel};
use gdisim_core::scenarios::rates;
use gdisim_core::{MasterPolicy, Simulation, SimulationConfig};
use gdisim_infra::{
    ClientAccessSpec, DataCenterSpec, Infrastructure, TierSpec, TierStorageSpec, TopologySpec,
};
use gdisim_queueing::SwitchSpec;
use gdisim_types::units::gbps;
use gdisim_types::{SimTime, TierKind};
use gdisim_workload::{AppWorkload, Catalog, DiurnalCurve, SiteLoad};

fn mdcsim() -> MdcSimModel {
    MdcSimModel::new(vec![
        MdcTier {
            servers: 2,
            nic_mu: 5000.0,
            cpu_mu: 60.0,
            io_mu: 400.0,
            visits: 1.0,
        },
        MdcTier {
            servers: 1,
            nic_mu: 5000.0,
            cpu_mu: 80.0,
            io_mu: 300.0,
            visits: 1.4,
        },
        MdcTier {
            servers: 1,
            nic_mu: 5000.0,
            cpu_mu: 50.0,
            io_mu: 120.0,
            visits: 0.6,
        },
    ])
}

fn tandem() -> TandemModel {
    TandemModel::new(vec![120.0, 110.0, 70.0], vec![0.7, 0.4])
}

fn sim_three_tier(clients: f64) -> f64 {
    let tier = |kind, servers| TierSpec {
        kind,
        servers,
        cpu: rates::cpu(1, 4),
        memory: rates::memory(32.0, 0.2),
        nic: rates::nic(),
        lan: rates::lan(),
        storage: TierStorageSpec::PerServerRaid(rates::raid(0.2)),
    };
    let spec = TopologySpec {
        data_centers: vec![DataCenterSpec {
            name: "NA".into(),
            switch: SwitchSpec::new(gbps(10.0)),
            tiers: vec![
                tier(TierKind::App, 2),
                tier(TierKind::Db, 1),
                tier(TierKind::Fs, 1),
                tier(TierKind::Idx, 1),
            ],
            clients: ClientAccessSpec {
                link: rates::client_access(),
                client_clock_hz: rates::CLIENT_CLOCK_HZ,
            },
        }],
        relay_sites: vec![],
        wan_links: vec![],
    };
    let infra = Infrastructure::build(&spec, 42).expect("topology");
    let mut sim = Simulation::new(infra, vec!["NA".into()], {
        let mut c = SimulationConfig::case_study();
        // Chatty metadata cascades need a fine step (§4.3.1's "order of
        // magnitude below the canonical costs" applies per message).
        c.dt = gdisim_types::SimDuration::from_millis(10);
        c
    });
    sim.set_master_policy(MasterPolicy::Local);
    let catalog = Catalog::standard(&rates::lab_rate_card());
    sim.add_application(catalog.app("CAD").expect("CAD").clone());
    sim.add_diurnal(AppWorkload {
        app: "CAD".into(),
        sites: vec![SiteLoad {
            site: "NA".into(),
            curve: DiurnalCurve::business_day(0.0, clients, clients).into(),
        }],
        ops_per_client_per_hour: 12.0,
    });
    sim.run_until(SimTime::from_secs(120));
    sim.active_operations() as f64
}

fn bench_compare(c: &mut Criterion) {
    let mut group = c.benchmark_group("predictor");
    group.sample_size(10);
    for load in [50.0f64, 100.0] {
        group.bench_with_input(
            BenchmarkId::new("mdcsim_analytic", load as u64),
            &load,
            |b, &l| {
                let m = mdcsim();
                b.iter(|| m.predict_response(l));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("tandem_analytic", load as u64),
            &load,
            |b, &l| {
                let m = tandem();
                b.iter(|| m.predict_response(l));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("mdcsim_des", load as u64),
            &load,
            |b, &l| {
                let sim = MdcSimulator::new(mdcsim(), 7);
                b.iter(|| sim.simulate(l, 60.0));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("gdisim_simulation", load as u64),
            &load,
            |b, &l| {
                b.iter(|| sim_three_tier(l * 2.0));
            },
        );
    }
    group.finish();
}

criterion_group!(compare, bench_compare);
criterion_main!(compare);
