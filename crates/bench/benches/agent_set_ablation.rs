//! A1 — design-choice ablation: H-Dispatch agent-set size.
//!
//! The paper fixes the agent set at 64 ("an Agent Set of size 64
//! delivered the best results", §4.3.5). This ablation sweeps the size:
//! tiny sets degenerate into the classic per-item Scatter-Gather
//! (overhead-bound), huge sets degenerate into serial execution
//! (no load balancing).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gdisim_ports::Executor;

struct FakeAgent {
    acc: u64,
}

fn tick(agent: &mut FakeAgent) {
    agent.acc = (0..50u64).fold(agent.acc, |a, i| a.wrapping_mul(31).wrapping_add(i));
}

fn bench_agent_sets(c: &mut Criterion) {
    let mut group = c.benchmark_group("agent_set_size");
    group.sample_size(30);
    let n_agents = 8192;
    for set in [1usize, 8, 64, 256, 2048] {
        let hd = Executor::hdispatch(4, set);
        group.bench_with_input(BenchmarkId::from_parameter(set), &hd, |b, ex| {
            let mut agents: Vec<FakeAgent> = (0..n_agents).map(|i| FakeAgent { acc: i }).collect();
            b.iter(|| ex.run_phase(&mut agents, tick));
        });
    }
    group.finish();
}

criterion_group!(ablation, bench_agent_sets);
criterion_main!(ablation);
