//! Microbenchmarks of the fluid queue kernels — the inner loops every
//! simulated tick spends its time in.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gdisim_queueing::{
    CpuModel, CpuSpec, FcfsMulti, JobToken, LinkModel, LinkSpec, PsQueue, RaidModel, RaidSpec,
    Station,
};
use gdisim_types::units::{gbps, ghz, mb_per_s, mbps};
use gdisim_types::{SimDuration, SimTime};

const DT: SimDuration = SimDuration::from_millis(10);

fn bench_fcfs(c: &mut Criterion) {
    c.bench_function("fcfs_tick_64_jobs", |b| {
        b.iter_batched_ref(
            || {
                let mut q = FcfsMulti::new(8, 1000.0);
                for i in 0..64 {
                    q.enqueue(JobToken(i), 100.0, SimTime::ZERO);
                }
                (q, Vec::with_capacity(64))
            },
            |(q, done)| {
                for t in 0..16u64 {
                    q.tick(SimTime::from_millis(t * 10), DT, done);
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_ps(c: &mut Criterion) {
    c.bench_function("ps_tick_128_transfers", |b| {
        b.iter_batched_ref(
            || {
                let mut q = PsQueue::new(1e6, 64);
                for i in 0..128 {
                    q.enqueue(JobToken(i), 5_000.0, SimTime::ZERO);
                }
                (q, Vec::with_capacity(128))
            },
            |(q, done)| {
                for t in 0..16u64 {
                    q.tick(SimTime::from_millis(t * 10), DT, done);
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_cpu_model(c: &mut Criterion) {
    c.bench_function("cpu_model_tick_idle_plus_busy", |b| {
        b.iter_batched_ref(
            || {
                let mut cpu = CpuModel::new(CpuSpec::new(2, 8, ghz(2.5)));
                for i in 0..32 {
                    cpu.enqueue(JobToken(i), 5e8, SimTime::ZERO);
                }
                (cpu, Vec::with_capacity(32))
            },
            |(cpu, done)| {
                for t in 0..16u64 {
                    cpu.tick(SimTime::from_millis(t * 10), DT, done);
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_raid(c: &mut Criterion) {
    c.bench_function("raid_pipeline_8_requests", |b| {
        b.iter_batched_ref(
            || {
                let spec = RaidSpec::new(4, gbps(4.0), 0.1, gbps(2.0), 0.1, mb_per_s(120.0));
                let mut r = RaidModel::new(spec, 7);
                for i in 0..8 {
                    r.enqueue(JobToken(i), 5e6, SimTime::ZERO);
                }
                (r, Vec::with_capacity(8))
            },
            |(r, done)| {
                for t in 0..32u64 {
                    r.tick(SimTime::from_millis(t * 10), DT, done);
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_link(c: &mut Criterion) {
    c.bench_function("wan_link_tick_with_latency", |b| {
        b.iter_batched_ref(
            || {
                let spec = LinkSpec::new(mbps(155.0), SimDuration::from_millis(40), 256);
                let mut l = LinkModel::new(spec);
                for i in 0..32 {
                    l.enqueue(JobToken(i), 1e6, SimTime::ZERO);
                }
                (l, Vec::with_capacity(32))
            },
            |(l, done)| {
                for t in 0..32u64 {
                    l.tick(SimTime::from_millis(t * 10), DT, done);
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn config() -> Criterion {
    Criterion::default().sample_size(30)
}

criterion_group! {
    name = kernels;
    config = config();
    targets = bench_fcfs, bench_ps, bench_cpu_model, bench_raid, bench_link
}
criterion_main!(kernels);
