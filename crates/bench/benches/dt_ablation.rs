//! A2 — design-choice ablation: time-step size.
//!
//! §4.3.1 requires dt "at least one order of magnitude smaller than the
//! time values measured in the canonical operation set". This ablation
//! measures the wall-time cost of refining dt on a fixed validation
//! slice (accuracy versus dt is reported by the `exp_canonical` binary,
//! whose per-op error scales with the per-message quantization).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gdisim_core::scenarios::validation::{self, EXPERIMENTS};
use gdisim_types::{SimDuration, SimTime};

fn bench_dt(c: &mut Criterion) {
    let mut group = c.benchmark_group("time_step");
    group.sample_size(10);
    for dt_ms in [5u64, 10, 50, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(dt_ms), &dt_ms, |b, &dt_ms| {
            b.iter(|| {
                let mut sim = validation::build(EXPERIMENTS[0], 7);
                sim.set_dt(SimDuration::from_millis(dt_ms));
                sim.run_until(SimTime::from_secs(60));
                sim.active_operations()
            });
        });
    }
    group.finish();
}

criterion_group!(ablation, bench_dt);
criterion_main!(ablation);
