//! Active-agent-set fast path vs. always-tick step loop.
//!
//! The consolidated six-continent scenario is the motivating case: a few
//! thousand hardware agents of which only a handful carry work in any
//! given 10 ms step. The always-tick loop pays a full sweep per step;
//! the active-set loop touches only agents with work in system (plus
//! lazy idle-meter crediting at collection boundaries). Both variants
//! are bit-for-bit identical simulations (see
//! tests/cross_engine_agreement.rs), so this is a pure cost comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gdisim_core::scenarios::consolidated;
use gdisim_types::SimTime;

fn bench_step_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("step_loop");
    group.sample_size(10);
    let horizon = SimTime::from_secs(30);
    for (label, always_tick) in [("active_set", false), ("always_tick", true)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &always_tick,
            |b, &tick_all| {
                b.iter(|| {
                    let mut sim = consolidated::build(42);
                    sim.set_always_tick(tick_all);
                    sim.run_until(horizon);
                    sim.active_operations()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(active_set, bench_step_loop);
criterion_main!(active_set);
