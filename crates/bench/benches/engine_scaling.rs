//! Criterion companion to E1/E2: one tick-phase of a large agent
//! population under serial, Scatter-Gather and H-Dispatch execution —
//! the steady-state cost the `exp_scaling` binary integrates over a
//! whole run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gdisim_ports::Executor;

/// A synthetic "agent": enough state to make per-agent work non-trivial
/// (comparable to ticking a small idle queue).
struct FakeAgent {
    acc: u64,
}

fn tick(agent: &mut FakeAgent) {
    // ~50 cheap ops: the cost scale of an idle component tick.
    agent.acc = (0..50u64).fold(agent.acc, |a, i| a.wrapping_mul(31).wrapping_add(i));
}

fn bench_phases(c: &mut Criterion) {
    let mut group = c.benchmark_group("phase_execution");
    group.sample_size(30);
    let n_agents = 4096;
    for threads in [2usize, 4] {
        let sg = Executor::scatter_gather(threads);
        group.bench_with_input(BenchmarkId::new("scatter_gather", threads), &sg, |b, ex| {
            let mut agents: Vec<FakeAgent> = (0..n_agents).map(|i| FakeAgent { acc: i }).collect();
            b.iter(|| ex.run_phase(&mut agents, tick));
        });
        let hd = Executor::hdispatch(threads, 64);
        group.bench_with_input(BenchmarkId::new("h_dispatch", threads), &hd, |b, ex| {
            let mut agents: Vec<FakeAgent> = (0..n_agents).map(|i| FakeAgent { acc: i }).collect();
            b.iter(|| ex.run_phase(&mut agents, tick));
        });
    }
    let serial = Executor::serial();
    group.bench_function("serial", |b| {
        let mut agents: Vec<FakeAgent> = (0..n_agents).map(|i| FakeAgent { acc: i }).collect();
        b.iter(|| serial.run_phase(&mut agents, tick));
    });
    group.finish();
}

criterion_group!(scaling, bench_phases);
criterion_main!(scaling);
