//! E3 — Table 5.1: canonical durations of the eight CAD operations per
//! series type, measured by running one isolated series on the otherwise
//! idle downscaled infrastructure (the paper's definition of canonical
//! cost, §3.2).

use gdisim_bench::{print_table, write_csv};
use gdisim_core::scenarios::validation;
use gdisim_core::Simulation;
use gdisim_metrics::ResponseKey;
use gdisim_types::{AppId, DcId, OpTypeId, SimDuration, SimTime};
use gdisim_workload::series::{canonical_duration, CAD_OP_NAMES};
use gdisim_workload::{Catalog, SeriesKind};

fn isolated_series(kind: SeriesKind) -> Vec<f64> {
    isolated_series_dt(kind, SimDuration::from_millis(10))
}

fn isolated_series_dt(kind: SeriesKind, dt: SimDuration) -> Vec<f64> {
    let spec = validation::downscaled_topology();
    let infra = gdisim_infra::Infrastructure::build(&spec, 1).expect("topology");
    let mut config = gdisim_core::SimulationConfig::validation();
    config.seed = 1;
    config.dt = dt;
    let mut sim = Simulation::new(infra, vec!["NA".into()], config);
    sim.set_master_policy(gdisim_core::MasterPolicy::Local);
    let rc = gdisim_core::scenarios::rates::lab_rate_card();
    let templates = Catalog::cad_series(kind, &rc);
    // One launch only: the stop time precedes the second period.
    sim.add_series_source(
        AppId(0),
        templates,
        SimDuration::from_secs(10_000),
        "NA",
        SimTime::ZERO,
        Some(SimTime::from_secs(1)),
    );
    sim.run_until(SimTime::from_secs(400));
    let report = sim.report();
    (0..8)
        .map(|op| {
            let key = ResponseKey {
                app: AppId(0),
                op: OpTypeId(op),
                dc: DcId(0),
            };
            report
                .responses
                .history_mean(key)
                .expect("operation completed")
        })
        .collect()
}

fn main() {
    println!("E3 — canonical operation durations (Table 5.1)");
    let measured: Vec<Vec<f64>> = SeriesKind::ALL
        .iter()
        .map(|k| isolated_series(*k))
        .collect();
    let mut rows = Vec::new();
    for (op, name) in CAD_OP_NAMES.iter().enumerate() {
        let mut row = vec![name.to_string()];
        for (ki, kind) in SeriesKind::ALL.iter().enumerate() {
            let paper = canonical_duration(op, *kind);
            let ours = measured[ki][op];
            row.push(format!("{paper:.2}"));
            row.push(format!("{ours:.2}"));
            row.push(format!("{:+.1}%", (ours - paper) / paper * 100.0));
        }
        rows.push(row);
    }
    let headers = vec![
        "Operation".to_string(),
        "Light(paper)".into(),
        "Light(sim)".into(),
        "err".into(),
        "Avg(paper)".into(),
        "Avg(sim)".into(),
        "err".into(),
        "Heavy(paper)".into(),
        "Heavy(sim)".into(),
        "err".into(),
    ];
    print_table("Table 5.1 — canonical durations (seconds)", &headers, &rows);
    write_csv("table_5_1_canonical.csv", &headers, &rows);

    for (ki, kind) in SeriesKind::ALL.iter().enumerate() {
        let paper: f64 = (0..8).map(|op| canonical_duration(op, *kind)).sum();
        let ours: f64 = measured[ki].iter().sum();
        println!(
            "  TOTAL {:?}: paper {paper:.2}s, simulated {ours:.2}s ({:+.1}%)",
            kind,
            (ours - paper) / paper * 100.0
        );
    }

    // A2 (accuracy side): per-message tick quantization grows with dt.
    // §4.3.1 demands dt an order of magnitude below the canonical costs —
    // per *message*, as this sweep shows.
    println!(
        "
A2 — dt sensitivity of canonical accuracy (Average series)"
    );
    let paper_total: f64 = (0..8)
        .map(|op| canonical_duration(op, SeriesKind::Average))
        .sum();
    let mut rows = Vec::new();
    for dt_ms in [5u64, 10, 20, 50, 100] {
        let measured = isolated_series_dt(SeriesKind::Average, SimDuration::from_millis(dt_ms));
        let total: f64 = measured.iter().sum();
        let worst = measured
            .iter()
            .enumerate()
            .map(|(op, v)| {
                ((v - canonical_duration(op, SeriesKind::Average))
                    / canonical_duration(op, SeriesKind::Average))
                .abs()
            })
            .fold(0.0f64, f64::max);
        rows.push(vec![
            format!("{dt_ms} ms"),
            format!("{total:.2}"),
            format!("{:+.1}%", (total - paper_total) / paper_total * 100.0),
            format!("{:.1}%", worst * 100.0),
        ]);
    }
    let headers = vec!["dt", "series total (s)", "total err", "worst op err"];
    print_table(
        "A2 — canonical-duration error vs time step",
        &headers,
        &rows,
    );
    write_csv("ablation_a2_dt_accuracy.csv", &headers, &rows);
}
