//! E18–E22 — the Ch. 7 background-process optimization: 24 hours on the
//! multiple-master infrastructure.
//!
//! Regenerates Tables 7.1/7.2 (access patterns), Figs. 7-4/7-5 (SR
//! volumes for DNA and DEU), Table 7.3 (WAN utilization), Fig. 7-6
//! (SR/IB response times in DNA) and the §7.4.1 computational results
//! (DNA at half capacity, DEU upgraded).

use gdisim_background::{BackgroundKind, BackgroundScheduler, OwnershipSplit, SchedulerConfig};
use gdisim_bench::{pct, print_table, sparkline, write_csv};
use gdisim_core::scenarios::multimaster;
use gdisim_metrics::TimeSeries;
use gdisim_types::{SimDuration, SimTime, TierKind};
use gdisim_workload::AccessPatternMatrix;

const DAY: SimTime = SimTime::from_hours(24);

fn main() {
    println!("E18–E22 — background process optimization (Ch. 7)");

    // ---- Tables 7.1 / 7.2: access-pattern inputs ----
    let apm = AccessPatternMatrix::multimaster_table_7_2();
    let single = AccessPatternMatrix::single_master(apm.sites().to_vec(), "NA");
    for (name, m, file) in [
        (
            "Table 7.1 — consolidated (single master)",
            &single,
            "table_7_1_apm.csv",
        ),
        ("Table 7.2 — multiple master", &apm, "table_7_2_apm.csv"),
    ] {
        let mut headers = vec!["access\\owner".to_string()];
        headers.extend(m.sites().iter().cloned());
        let rows: Vec<Vec<String>> = (0..m.sites().len())
            .map(|a| {
                let mut row = vec![m.sites()[a].clone()];
                row.extend(
                    (0..m.sites().len()).map(|o| format!("{:.2}", m.fraction(a, o) * 100.0)),
                );
                row
            })
            .collect();
        print_table(name, &headers, &rows);
        write_csv(file, &headers, &rows);
    }
    println!(
        "  mean locality: single master {} -> multiple master {}",
        pct(single.mean_locality()),
        pct(apm.mean_locality())
    );

    // ---- Figs. 7-4 / 7-5: SR volumes per master (scheduler replay) ----
    let mut sched = BackgroundScheduler::new(
        multimaster::data_growth(),
        OwnershipSplit::from_access_pattern(&apm),
        SchedulerConfig::default(),
    );
    let mut per_master_pull: Vec<Vec<f64>> = vec![Vec::new(); multimaster::SITES.len()];
    let mut per_master_push: Vec<Vec<f64>> = vec![Vec::new(); multimaster::SITES.len()];
    let mut t = SimTime::ZERO;
    while t < DAY {
        for l in sched.poll(t) {
            match l.kind {
                BackgroundKind::SyncRep => {
                    per_master_pull[l.master_site].push(l.pull_bytes.iter().sum::<f64>() / 1e6);
                    per_master_push[l.master_site].push(l.push_bytes.iter().sum::<f64>() / 1e6);
                }
                BackgroundKind::IndexBuild => sched.on_indexbuild_complete(l.master_site, t),
            }
        }
        t += SimDuration::from_mins(15);
    }
    for (site, fig, paper_peak_gb) in [("NA", "7-4", 8.0), ("EU", "7-5", 5.5)] {
        let idx = multimaster::SITES.iter().position(|s| *s == site).unwrap();
        let peak: f64 = per_master_pull[idx]
            .iter()
            .zip(&per_master_push[idx])
            .map(|(a, b)| a + b)
            .fold(0.0, f64::max);
        println!("\n== Fig. {fig} — SR volumes to/from D{site}");
        println!("  pull: {}", sparkline(&per_master_pull[idx]));
        println!("  push: {}", sparkline(&per_master_push[idx]));
        println!(
            "  peak per-run total {:.2} GB (paper ≈{paper_peak_gb} GB)",
            peak / 1e3
        );
        let rows: Vec<Vec<String>> = per_master_pull[idx]
            .iter()
            .zip(&per_master_push[idx])
            .enumerate()
            .map(|(i, (pull, push))| {
                vec![
                    format!("{}", i * 15),
                    format!("{pull:.0}"),
                    format!("{push:.0}"),
                ]
            })
            .collect();
        write_csv(
            &format!("fig_{}_sr_volumes_{site}.csv", fig.replace('-', "_")),
            &["minute", "pull (MB)", "push (MB)"],
            &rows,
        );
    }

    // ---- Run the day ----
    let wall = std::time::Instant::now();
    let mut sim = multimaster::build(7);
    sim.run_until(DAY);
    let report = sim.into_report();
    println!("\n  24 simulated hours in {:?}", wall.elapsed());

    // ---- Table 7.3: WAN utilization 12:00–16:00 GMT ----
    let w_start = SimTime::from_hours(12);
    let w_end = SimTime::from_hours(16);
    let paper: &[(&str, u32)] = &[
        ("L NA->SA", 53),
        ("L NA->EU", 51),
        ("L NA->AS1", 76),
        ("L EU->AFR (backup)", 0),
        ("L EU->AS1 (backup)", 0),
        ("L AS1->AFR", 67),
        ("L AS1->AS", 56),
        ("L AS1->AUS", 66),
    ];
    let rows: Vec<Vec<String>> = paper
        .iter()
        .map(|(label, p)| {
            let measured = report
                .wan_util
                .get(*label)
                .map(|s| s.window_mean(w_start, w_end))
                .unwrap_or(0.0);
            vec![label.to_string(), format!("{p}%"), pct(measured)]
        })
        .collect();
    let headers = vec!["link", "paper", "simulated"];
    print_table(
        "Table 7.3 — WAN utilization of allocated capacity, 12:00-16:00 GMT",
        &headers,
        &rows,
    );
    write_csv("table_7_3_wan_util.csv", &headers, &rows);

    // ---- Fig. 7-6: SR/IB response times in DNA ----
    println!("\n== Fig. 7-6 — background response times in DNA");
    let na_idx = multimaster::SITES.iter().position(|s| *s == "NA").unwrap();
    for (kind, name, paper_max_min) in [
        (BackgroundKind::SyncRep, "SYNCHREP", 19.0),
        (BackgroundKind::IndexBuild, "INDEXBUILD", 37.0),
    ] {
        let recs: Vec<_> = report
            .background_of(kind)
            .into_iter()
            .filter(|r| r.master_site == na_idx)
            .collect();
        let series: Vec<f64> = recs.iter().map(|r| r.response_secs() / 60.0).collect();
        let max = series.iter().cloned().fold(0.0, f64::max);
        println!(
            "  {name}@NA: {} runs, {} | max {max:.1} min (paper ≈{paper_max_min} min; \
             consolidated was {} min)",
            recs.len(),
            sparkline(&series),
            if kind == BackgroundKind::SyncRep {
                31
            } else {
                63
            },
        );
    }

    // ---- §7.4.1: computational results ----
    println!("\n== §7.4.1 — peak CPU utilization 12:00-16:00 GMT");
    let window_mean =
        |s: Option<&TimeSeries>| s.map(|s| s.window_mean(w_start, w_end)).unwrap_or(0.0);
    let window_max = |s: Option<&TimeSeries>| {
        s.map(|s| s.window(w_start, w_end).iter().cloned().fold(0.0, f64::max))
            .unwrap_or(0.0)
    };
    for (dc, tier, paper_pct) in [
        ("NA", TierKind::App, 78.0),
        ("NA", TierKind::Db, 39.0),
        ("EU", TierKind::App, 57.0),
        ("EU", TierKind::Db, 48.0),
    ] {
        let s = report.cpu(dc, tier);
        println!(
            "  {tier}@{dc}: mean {} / max {} (paper ≈{paper_pct}%)",
            pct(window_mean(s)),
            pct(window_max(s)),
        );
    }
    println!(
        "  note: DNA runs at half its consolidated capacity (4 app servers, 32 DB cores)\n  \
         yet stays in the same utilization band — the global workload offload at work."
    );
}
