//! E1/E2 — Tables 4.1/4.2, Figs. 4-4/4-6: multicore scalability of the
//! classic Scatter-Gather mechanism vs. H-Dispatch.
//!
//! The paper runs its full consolidated scenario (hundreds of hardware
//! agents, thousands of clients) for each thread count. This harness
//! builds a scaled-up rig — one data center with 32 servers per tier and
//! sixteen concurrent series streams — and reports wall time plus
//! speedup vs. one thread for both mechanisms.
//!
//! The claim is the *shape*: classic Scatter-Gather pays a queue
//! round-trip per agent per signal, so adding threads does not help (the
//! paper measured ≈1.0× at every count — Table 4.1); H-Dispatch batches
//! agents into sets and scales with hardware threads (1.71×/3.20×/5.17×/
//! 8.06× at 2/4/8/16 threads on the paper's 24-core host — Table 4.2).
//! On hosts with fewer cores the H-Dispatch curve saturates at the
//! hardware limit while the Scatter-Gather penalty remains visible.

use gdisim_bench::{print_table, write_csv};
use gdisim_core::scenarios::rates;
use gdisim_core::{MasterPolicy, Simulation, SimulationConfig};
use gdisim_infra::{
    ClientAccessSpec, DataCenterSpec, Infrastructure, TierSpec, TierStorageSpec, TopologySpec,
};
use gdisim_ports::Executor;
use gdisim_queueing::SwitchSpec;
use gdisim_types::units::gbps;
use gdisim_types::{AppId, SimDuration, SimTime, TierKind};
use gdisim_workload::{Catalog, SeriesKind};
use std::time::Instant;

const THREADS: [usize; 5] = [1, 2, 4, 8, 16];
const AGENT_SET: usize = 64;
const SLICE_SECS: u64 = 60;
const STREAMS: u64 = 16;

fn scaling_topology() -> TopologySpec {
    let tier = |kind| TierSpec {
        kind,
        servers: 32,
        cpu: rates::cpu(1, 2),
        memory: rates::memory(32.0, 0.0),
        nic: rates::nic(),
        lan: rates::lan(),
        storage: TierStorageSpec::PerServerRaid(rates::raid(0.0)),
    };
    TopologySpec {
        data_centers: vec![DataCenterSpec {
            name: "NA".into(),
            switch: SwitchSpec::new(gbps(100.0)),
            tiers: vec![
                tier(TierKind::App),
                tier(TierKind::Db),
                tier(TierKind::Fs),
                tier(TierKind::Idx),
            ],
            clients: ClientAccessSpec {
                link: rates::client_access(),
                client_clock_hz: rates::CLIENT_CLOCK_HZ,
            },
        }],
        relay_sites: vec![],
        wan_links: vec![],
    }
}

fn run_with(executor: Executor) -> f64 {
    let infra = Infrastructure::build(&scaling_topology(), 42).expect("topology");
    let mut config = SimulationConfig::validation();
    config.executor = executor;
    let mut sim = Simulation::new(infra, vec!["NA".into()], config);
    sim.set_master_policy(MasterPolicy::Local);
    let rc = rates::lab_rate_card();
    for i in 0..STREAMS {
        let templates = Catalog::cad_series(SeriesKind::Average, &rc);
        sim.add_series_source(
            AppId(i as u32),
            templates,
            SimDuration::from_secs(8),
            "NA",
            SimTime::from_millis(i * 137),
            None,
        );
    }
    let t0 = Instant::now();
    sim.run_until(SimTime::from_secs(SLICE_SECS));
    t0.elapsed().as_secs_f64()
}

fn main() {
    println!("E1/E2 — engine scalability (Tables 4.1/4.2)");
    println!(
        "  host hardware threads: {}",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    println!(
        "  rig: 128 servers (~650 agents), {STREAMS} series streams, {SLICE_SECS} simulated seconds"
    );

    let headers = vec!["# of Threads", "Sim time (s)", "Speedup (x)"];
    for (name, file, make) in [
        (
            "Table 4.1 — classic Scatter-Gather",
            "table_4_1_scatter_gather.csv",
            (|threads: usize| {
                if threads == 1 {
                    Executor::serial()
                } else {
                    Executor::scatter_gather(threads)
                }
            }) as fn(usize) -> Executor,
        ),
        (
            "Table 4.2 — H-Dispatch (Agent Set=64)",
            "table_4_2_hdispatch.csv",
            (|threads: usize| {
                if threads == 1 {
                    Executor::serial()
                } else {
                    Executor::hdispatch(threads, AGENT_SET)
                }
            }) as fn(usize) -> Executor,
        ),
    ] {
        let mut rows = Vec::new();
        let mut base = 0.0;
        for &threads in &THREADS {
            let t = run_with(make(threads));
            if threads == 1 {
                base = t;
            }
            rows.push(vec![
                threads.to_string(),
                format!("{t:.3}"),
                format!("{:.2}", base / t),
            ]);
        }
        print_table(name, &headers, &rows);
        write_csv(file, &headers, &rows);
    }

    println!(
        "\n  Paper's 24-core host: Scatter-Gather ≈1.0x throughout; H-Dispatch\n  \
         1.00/1.71/3.20/5.17/8.06x at 1/2/4/8/16 threads. Fewer hardware threads\n  \
         cap the H-Dispatch curve; the Scatter-Gather per-item overhead is\n  \
         host-independent and visible at every scale."
    );
}
