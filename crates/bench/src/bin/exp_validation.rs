//! E4–E8 — the Ch. 5 validation: GDISim ("simulated") vs the
//! independent event-driven testbed ("physical") on the three series
//! experiments.
//!
//! * Fig. 5-6 — concurrent clients, both instruments;
//! * Figs. 5-7..5-10 — CPU utilization in Tapp/Tdb/Tfs/Tidx;
//! * Table 5.2 — steady-state mean/σ per tier and experiment;
//! * Table 5.3 — RMSE between physical and simulated traces;
//! * §5.3.3 — the memory-model finding (flat physical profile).

use gdisim_bench::{pct, print_table, sparkline, write_csv};
use gdisim_core::scenarios::validation::{self, APP_SERIES, EXPERIMENTS};
use gdisim_metrics::{mean_stddev, rmse_between, ResponseKey, TimeSeries};
use gdisim_testbed::{run_validation, PhysicalRun, TestbedConfig};
use gdisim_types::{DcId, OpTypeId, SimTime, TierKind};
use gdisim_workload::{Catalog, SeriesKind};

struct ExperimentResult {
    label: String,
    sim_cpu: Vec<TimeSeries>,  // per tier
    phys_cpu: Vec<TimeSeries>, // per tier
    sim_clients: TimeSeries,
    phys_clients: TimeSeries,
    sim_responses: Vec<f64>, // mean per (series, op)
    phys_responses: Vec<f64>,
    sim_memory_gb: f64, // avg Tapp occupancy from Rm model
}

fn run_experiment(idx: usize) -> ExperimentResult {
    let periods = EXPERIMENTS[idx];
    // Simulated side.
    let mut sim = validation::build(periods, 42);
    sim.run_until(SimTime::ZERO + validation::HORIZON);
    let report = sim.into_report();

    // Physical side: same templates, same schedule, separate machinery.
    let rc = gdisim_core::scenarios::rates::lab_rate_card();
    let series = [
        Catalog::cad_series(SeriesKind::Light, &rc),
        Catalog::cad_series(SeriesKind::Average, &rc),
        Catalog::cad_series(SeriesKind::Heavy, &rc),
    ];
    let config = TestbedConfig {
        periods: (periods.light, periods.average, periods.heavy),
        launch_window: validation::LAUNCH_WINDOW,
        horizon: validation::HORIZON,
        seed: 1042,
        ..TestbedConfig::default()
    };
    let phys: PhysicalRun = run_validation(series, APP_SERIES, &rc, &config);

    let mut sim_responses = Vec::new();
    let mut phys_responses = Vec::new();
    for app in APP_SERIES {
        for op in 0..8 {
            let key = ResponseKey {
                app,
                op: OpTypeId(op),
                dc: DcId(0),
            };
            sim_responses.push(report.responses.history_mean(key).unwrap_or(0.0));
            phys_responses.push(phys.responses.history_mean(key).unwrap_or(0.0));
        }
    }
    let mem = report
        .tier_memory
        .get(&("NA".to_string(), TierKind::App.label()))
        .map(|s| gdisim_metrics::mean(s.values()) / 1e9)
        .unwrap_or(0.0);

    ExperimentResult {
        label: format!("{}-{}-{}", periods.light, periods.average, periods.heavy),
        sim_cpu: TierKind::ALL
            .iter()
            .map(|t| report.cpu("NA", *t).cloned().unwrap_or_default())
            .collect(),
        phys_cpu: TierKind::ALL
            .iter()
            .map(|t| phys.tier_cpu[t.label()].clone())
            .collect(),
        sim_clients: report.concurrent_clients.clone(),
        phys_clients: phys.concurrent,
        sim_responses,
        phys_responses,
        sim_memory_gb: mem,
    }
}

fn main() {
    println!("E4–E8 — validation experiments (Ch. 5)");
    let results: Vec<ExperimentResult> = (0..3).map(run_experiment).collect();

    // Fig. 5-6: concurrent clients.
    println!("\n== Fig. 5-6 — concurrent clients (sparklines: physical / simulated)");
    for r in &results {
        // CSV trace for the renderer: time, physical, simulated.
        let n = r.phys_clients.len().min(r.sim_clients.len());
        let rows: Vec<Vec<String>> = (0..n)
            .map(|i| {
                vec![
                    r.phys_clients.times()[i].to_string(),
                    format!("{:.1}", r.phys_clients.values()[i]),
                    format!("{:.1}", r.sim_clients.values()[i]),
                ]
            })
            .collect();
        write_csv(
            &format!("fig_5_6_clients_{}.csv", r.label),
            &["time", "physical", "simulated"],
            &rows,
        );
        println!(
            "  exp {}: phys {} (peak {:.0})",
            r.label,
            sparkline(r.phys_clients.values()),
            r.phys_clients.max().map(|(_, v)| v).unwrap_or(0.0)
        );
        println!(
            "           sim {} (peak {:.0})",
            sparkline(r.sim_clients.values()),
            r.sim_clients.max().map(|(_, v)| v).unwrap_or(0.0)
        );
    }

    // Figs. 5-7..5-10 + Table 5.2.
    let mut t52_rows = Vec::new();
    for (ti, tier) in TierKind::ALL.iter().enumerate() {
        println!("\n== Fig. 5-{} — CPU utilization in {tier}", 7 + ti);
        for r in &results {
            println!(
                "  exp {}: phys {}",
                r.label,
                sparkline(r.phys_cpu[ti].values())
            );
            println!("           sim {}", sparkline(r.sim_cpu[ti].values()));
            let n = r.phys_cpu[ti].len().min(r.sim_cpu[ti].len());
            let rows: Vec<Vec<String>> = (0..n)
                .map(|i| {
                    vec![
                        r.phys_cpu[ti].times()[i].to_string(),
                        format!("{:.4}", r.phys_cpu[ti].values()[i]),
                        format!("{:.4}", r.sim_cpu[ti].values()[i]),
                    ]
                })
                .collect();
            write_csv(
                &format!("fig_5_{}_cpu_{}_{}.csv", 7 + ti, tier.label(), r.label),
                &["time", "physical", "simulated"],
                &rows,
            );
        }
        for r in &results {
            let w_p = r.phys_cpu[ti].window(validation::STEADY_START, validation::STEADY_END);
            let w_s = r.sim_cpu[ti].window(validation::STEADY_START, validation::STEADY_END);
            let (mu_p, sd_p) = mean_stddev(&w_p);
            let (mu_s, sd_s) = mean_stddev(&w_s);
            t52_rows.push(vec![
                format!("{tier}"),
                r.label.clone(),
                pct(mu_p),
                pct(mu_s),
                pct(sd_p),
                pct(sd_s),
            ]);
        }
    }
    let t52_headers = vec![
        "Tier",
        "Experiment",
        "mu(phys)",
        "mu(sim)",
        "sigma(phys)",
        "sigma(sim)",
    ];
    print_table(
        "Table 5.2 — steady-state CPU statistics",
        &t52_headers,
        &t52_rows,
    );
    write_csv("table_5_2_steady_state.csv", &t52_headers, &t52_rows);

    // Table 5.3: RMSE.
    let mut t53_rows = Vec::new();
    for r in &results {
        let mut row = vec![r.label.clone()];
        for ti in 0..4 {
            row.push(pct(rmse_between(
                r.phys_cpu[ti].values(),
                r.sim_cpu[ti].values(),
            )));
        }
        // Concurrent clients RMSE, normalized by the mean physical count.
        let (mu_c, _) = mean_stddev(r.phys_clients.values());
        let c_rmse = rmse_between(r.phys_clients.values(), r.sim_clients.values()) / mu_c.max(1.0);
        row.push(pct(c_rmse));
        // Response-time RMSE, normalized per op then averaged.
        let mut rel = Vec::new();
        for (p, s) in r.phys_responses.iter().zip(&r.sim_responses) {
            if *p > 0.0 && *s > 0.0 {
                rel.push((s - p) / p);
            }
        }
        let resp_rmse = (rel.iter().map(|e| e * e).sum::<f64>() / rel.len().max(1) as f64).sqrt();
        row.push(pct(resp_rmse));
        t53_rows.push(row);
    }
    let t53_headers = vec![
        "Experiment",
        "CPU Tapp",
        "CPU Tdb",
        "CPU Tfs",
        "CPU Tidx",
        "#Clients",
        "Resp.time",
    ];
    print_table(
        "Table 5.3 — RMSE physical vs simulated",
        &t53_headers,
        &t53_rows,
    );
    write_csv("table_5_3_rmse.csv", &t53_headers, &t53_rows);

    // §5.3.3 memory finding.
    println!("\n== §5.3.3 — memory validation");
    println!("  physical Tapp profile: flat 32.0 GB (OS/runtime pools, workload-independent)");
    for r in &results {
        println!(
            "  simulated Tapp avg occupancy (Rm model), exp {}: {:.3} GB — orders of magnitude \
             below the pool size, reproducing the paper's negative finding",
            r.label, r.sim_memory_gb
        );
    }
}
