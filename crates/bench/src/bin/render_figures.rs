//! Renders the CSV artifacts under `results/` into standalone SVG line
//! charts (`results/svg/*.svg`) — the visualization direction Ch. 9.3.2
//! sketches, with no plotting dependencies.
//!
//! Each CSV's first column is treated as the x-axis label; every numeric
//! column becomes one polyline. Non-numeric columns (e.g. "48%") are
//! parsed leniently by stripping `%`/`s` suffixes.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

const W: f64 = 860.0;
const H: f64 = 340.0;
const MARGIN_L: f64 = 60.0;
const MARGIN_R: f64 = 160.0;
const MARGIN_T: f64 = 30.0;
const MARGIN_B: f64 = 40.0;
const PALETTE: [&str; 8] = [
    "#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd", "#8c564b", "#e377c2", "#7f7f7f",
];

fn parse_cell(cell: &str) -> Option<f64> {
    let trimmed = cell
        .trim()
        .trim_end_matches('%')
        .trim_end_matches('s')
        .trim();
    trimmed.parse::<f64>().ok()
}

fn render_csv(path: &Path, out_dir: &Path) -> Option<()> {
    let text = fs::read_to_string(path).ok()?;
    let mut lines = text.lines();
    let headers: Vec<String> = lines
        .next()?
        .split(',')
        .map(|h| h.trim().to_string())
        .collect();
    let rows: Vec<Vec<String>> = lines
        .map(|l| l.split(',').map(|c| c.trim().to_string()).collect())
        .filter(|r: &Vec<String>| r.len() == headers.len())
        .collect();
    if rows.is_empty() || headers.len() < 2 {
        return None;
    }

    // Numeric columns become series; the first column is the x label.
    let mut series: Vec<(String, Vec<f64>)> = Vec::new();
    for (ci, header) in headers.iter().enumerate().skip(1) {
        let values: Vec<Option<f64>> = rows.iter().map(|r| parse_cell(&r[ci])).collect();
        if values.iter().all(Option::is_some) {
            series.push((
                header.clone(),
                values.into_iter().map(Option::unwrap).collect(),
            ));
        }
    }
    if series.is_empty() {
        return None;
    }

    let n = rows.len();
    let y_max = series
        .iter()
        .flat_map(|(_, v)| v.iter())
        .cloned()
        .fold(f64::MIN, f64::max)
        .max(1e-9);
    let y_min = series
        .iter()
        .flat_map(|(_, v)| v.iter())
        .cloned()
        .fold(f64::MAX, f64::min)
        .min(0.0);
    let plot_w = W - MARGIN_L - MARGIN_R;
    let plot_h = H - MARGIN_T - MARGIN_B;
    let x_of = |i: usize| MARGIN_L + plot_w * i as f64 / (n.max(2) - 1) as f64;
    let y_of = |v: f64| MARGIN_T + plot_h * (1.0 - (v - y_min) / (y_max - y_min));

    let mut svg = String::new();
    let title = path.file_stem().unwrap_or_default().to_string_lossy();
    let _ = write!(
        svg,
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{W}" height="{H}" viewBox="0 0 {W} {H}">
<rect width="{W}" height="{H}" fill="white"/>
<text x="{MARGIN_L}" y="20" font-family="monospace" font-size="13" fill="#333">{title}</text>
"##
    );
    // Axes + gridlines.
    for g in 0..=4 {
        let v = y_min + (y_max - y_min) * g as f64 / 4.0;
        let y = y_of(v);
        let _ = write!(
            svg,
            r##"<line x1="{MARGIN_L}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#ddd"/>
<text x="{:.1}" y="{:.1}" font-family="monospace" font-size="10" fill="#666" text-anchor="end">{v:.1}</text>
"##,
            W - MARGIN_R,
            MARGIN_L - 6.0,
            y + 3.0
        );
    }
    // Series polylines + legend.
    for (si, (name, values)) in series.iter().enumerate() {
        let color = PALETTE[si % PALETTE.len()];
        let points: Vec<String> = values
            .iter()
            .enumerate()
            .map(|(i, v)| format!("{:.1},{:.1}", x_of(i), y_of(*v)))
            .collect();
        let _ = writeln!(
            svg,
            r##"<polyline points="{}" fill="none" stroke="{color}" stroke-width="1.5"/>"##,
            points.join(" ")
        );
        let ly = MARGIN_T + 14.0 * si as f64;
        let _ = write!(
            svg,
            r##"<rect x="{:.1}" y="{ly:.1}" width="10" height="3" fill="{color}"/>
<text x="{:.1}" y="{:.1}" font-family="monospace" font-size="10" fill="#333">{name}</text>
"##,
            W - MARGIN_R + 10.0,
            W - MARGIN_R + 24.0,
            ly + 5.0
        );
    }
    let _ = writeln!(svg, "</svg>");

    let out = out_dir.join(format!("{title}.svg"));
    fs::write(&out, svg).ok()?;
    println!("  rendered {}", out.display());
    Some(())
}

fn main() {
    let results = Path::new("results");
    if !results.is_dir() {
        eprintln!("no results/ directory — run the exp_* binaries first");
        std::process::exit(1);
    }
    let out_dir = results.join("svg");
    fs::create_dir_all(&out_dir).expect("create results/svg");
    let mut rendered = 0;
    let mut entries: Vec<_> = fs::read_dir(results)
        .expect("read results/")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "csv"))
        .collect();
    entries.sort();
    for path in entries {
        if render_csv(&path, &out_dir).is_some() {
            rendered += 1;
        }
    }
    println!("rendered {rendered} figure(s) into results/svg/");
}
