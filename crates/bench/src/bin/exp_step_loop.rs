//! Event-indexed step loop: timer-wheel gating vs. per-step polling.
//!
//! Three workload shapes bracket the wheel's effect:
//!
//! * **sparse-series** — an idle-heavy lab: hundreds of periodic series
//!   sources with multi-second intervals on the downscaled validation
//!   topology. Almost every 10 ms step has *nothing* due, so the
//!   polling loop's per-step sweep over all sources (plus the empty
//!   retry/timeout/fault checks) dominates; the wheel skips all of it.
//! * **consolidated** — the saturated six-continent case study: diurnal
//!   Poisson samplers must draw every step regardless (their RNG stream
//!   is part of the result), so the wheel can only gate the remaining
//!   classes and must at worst break even.
//! * **faulted-churn** — the faulted topology under repeated link flaps
//!   with short-timeout retries and `InFlightPolicy::Drop`: the
//!   cancellation-heavy "normal failure" load where every completion or
//!   failure retires the attempt's timeout gate. Its `cancelled` column
//!   is the generation-counter protocol's visible footprint.
//! * **churned** — the churned scenario under a hot stochastic churn
//!   model (every server failing about every two minutes) with the full
//!   resilience bundle (hedging, breakers, shedding): the worst case
//!   for the two new event classes, with Churn and Hedges gates arming
//!   and cancelling continuously.
//!
//! All modes are bit-for-bit identical simulations (pinned by
//! tests/wheel_equivalence.rs and tests/wheel_cancellation.rs), so this
//! is a pure cost comparison. *Before* is the seed's dense loop — every
//! source polled, every agent ticked, every step (`always_poll` +
//! `always_tick`); *after* is the event-indexed default (wheel-gated
//! drains over the active set). Alongside the table and CSV, a
//! machine-readable `results/BENCH_step_loop.json` records wall-ms per
//! simulated second for both loops per scenario × executor.
//!
//! A second table covers the **sharded engine** (one shard per DC with
//! conservative WAN lookahead, DESIGN.md §4.6): serial wheel-mode vs
//! `ShardedSimulation` at several shard × worker combinations, with the
//! cross-shard mailbox volume alongside. Those rows land in the
//! `"sharded"` key of `results/BENCH_step_loop.json` and in
//! `results/BENCH_step_loop_sharded.csv`.
//!
//! A third table prices the **robustness features** (DESIGN.md §4.7):
//! periodic atomic checkpoint writes and the `--paranoid` invariant
//! auditor, each against the plain serial run. Those rows land in the
//! `"robustness"` key of `results/BENCH_step_loop.json` and in
//! `results/BENCH_step_loop_robustness.csv`.
//!
//! A fourth table prices **causal operation tracing** (DESIGN.md §4.8):
//! `--trace-ops` at the production sampling rate (1%) and at full rate
//! against the untraced serial run. Sampling is decided once per
//! operation at launch, so the 1% case measures what always-on tracing
//! costs a deployment; those rows land in the `"optrace"` key of
//! `results/BENCH_step_loop.json` and in
//! `results/BENCH_step_loop_optrace.csv`.
//!
//! `--check` runs the CI smoke assertions instead of the timed
//! benchmark: stale-gate no-op drains on the consolidated run must stay
//! within 10% of their pre-cancellation baseline, Scatter-Gather's
//! indexed dispatch must stay range-batched (not one item per agent),
//! the fault-plan churn scenario must actually cancel gates, the
//! stochastic churn run must apply incidents while keeping its Churn
//! drains wheel-gated, and the sharded consolidated run must exchange
//! mailbox traffic with **zero** ordering violations (sequence gaps).
//! On hosts with at least 4 cores the sharded run must also beat the
//! serial engine by ≥ 1.5×; on smaller hosts the measured ratio is
//! printed but not asserted (barrier overhead without real parallelism
//! is exactly what the lookahead math predicts). The robust driver
//! loop with checkpoints and paranoid both *off* must stay within 2%
//! of the plain step loop — robustness must be free when unused.
//! Finally, operation tracing sampled at 1% must stay within 5% of the
//! untraced run — observability at production rates must be near-free.

use gdisim_bench::{json_escape, print_table, write_csv, write_json};
use gdisim_core::scenarios::{churned, consolidated, faulted, rates, validation};
use gdisim_core::{
    ChurnProcess, EventClass, FaultAction, FaultEvent, FaultPlan, FaultTarget, InFlightPolicy,
    MasterPolicy, ShardedSimulation, Simulation, SimulationConfig, Snapshot,
};
use gdisim_infra::Infrastructure;
use gdisim_ports::Executor;
use gdisim_types::{AppId, SimDuration, SimTime};
use gdisim_workload::{Catalog, RetryPolicy, SeriesKind};
use std::time::Instant;

/// Periodic sources in the idle-heavy scenario. Enough that the polling
/// loop's per-step source sweep is the dominant phase-1 cost.
const SPARSE_SOURCES: u64 = 1024;

/// CI budget for stale-gate no-op drains on the consolidated 30 sim-s
/// run: 10% of the pre-cancellation baseline of 2902 (the PR 5
/// measurement that motivated generation-counter cancellation).
const NOOP_BUDGET: u64 = 290;

/// An idle-heavy lab: many long-interval series on the small validation
/// topology. With 30–90 s intervals against a 10 ms step, far fewer
/// than 1% of steps launch anything — but the polling loop still sweeps
/// every source every step, while the wheel visits only due ones.
fn build_sparse(seed: u64) -> Simulation {
    let spec = validation::downscaled_topology();
    let infra = Infrastructure::build(&spec, seed).expect("valid downscaled topology");
    let mut config = SimulationConfig::validation();
    config.seed = seed;
    let mut sim = Simulation::new(infra, vec!["NA".into()], config);
    sim.set_master_policy(MasterPolicy::Local);
    let rc = rates::lab_rate_card();
    for i in 0..SPARSE_SOURCES {
        sim.add_series_source(
            AppId(1000 + i as u32),
            Catalog::cad_series(SeriesKind::Light, &rc),
            SimDuration::from_secs(30 + i % 61),
            "NA",
            SimTime::ZERO + SimDuration::from_millis(50 * i),
            None,
        );
    }
    sim
}

/// The faulted scenario under cancellation churn: six fail/recover
/// cycles of the primary link, short per-attempt timeouts, retries, and
/// silently dropped in-flight work (see tests/wheel_cancellation.rs for
/// the equivalence pin of this exact shape).
fn build_churn(seed: u64) -> Simulation {
    let link = || FaultTarget::WanLink {
        label: faulted::PRIMARY_LINK.into(),
    };
    let mut events = Vec::new();
    for cycle in 0..6u32 {
        let base = 10.0 + 13.0 * f64::from(cycle);
        events.push(FaultEvent {
            at_secs: base,
            target: link(),
            action: FaultAction::Fail,
        });
        events.push(FaultEvent {
            at_secs: base + 6.0,
            target: link(),
            action: FaultAction::Recover,
        });
    }
    let plan = FaultPlan {
        events,
        in_flight: InFlightPolicy::Drop,
        retry: Some(RetryPolicy {
            timeout_secs: 8.0,
            max_retries: 3,
            backoff_base_secs: 1.0,
            backoff_factor: 2.0,
            backoff_cap_secs: 10.0,
        }),
    };
    let mut sim = faulted::build(seed);
    sim.set_fault_plan(plan)
        .expect("churn plan matches topology");
    sim
}

/// The churned scenario under a hot stochastic churn model (MTBF scaled
/// down so a two-minute horizon sees dozens of incidents) plus the full
/// demo resilience bundle — the heaviest exercise of the Churn and
/// Hedges event classes.
fn build_churned(seed: u64) -> Simulation {
    let hot = |mtbf: f64, mttr: f64| ChurnProcess {
        mtbf_secs: mtbf,
        mttr_secs: mttr,
        fail_shape: Some(1.5),
        repair_shape: None,
    };
    let mut model = churned::demo_churn_model();
    model.servers = Some(hot(120.0, 20.0));
    model.wan_links = Some(hot(240.0, 15.0));
    model.domains.clear();
    model.retry = Some(RetryPolicy {
        timeout_secs: 30.0,
        max_retries: 3,
        backoff_base_secs: 1.0,
        backoff_factor: 2.0,
        backoff_cap_secs: 10.0,
    });
    let mut sim = churned::build(seed);
    sim.set_churn_model(model)
        .expect("hot model matches the churned topology");
    sim.set_resilience(churned::demo_resilience())
        .expect("demo resilience bundle is valid");
    sim
}

struct Case {
    scenario: &'static str,
    build: fn(u64) -> Simulation,
    horizon_secs: u64,
}

const CASES: [Case; 4] = [
    Case {
        scenario: "sparse-series",
        build: build_sparse,
        horizon_secs: 60,
    },
    Case {
        scenario: "consolidated",
        build: consolidated::build,
        horizon_secs: 30,
    },
    Case {
        scenario: "faulted-churn",
        build: build_churn,
        horizon_secs: 90,
    },
    Case {
        scenario: "churned",
        build: build_churned,
        horizon_secs: 120,
    },
];

/// Wheel-gating profile of one run: how phase 1 actually spent its
/// drain opportunities, plus mean active-set occupancy. Collected from
/// a dedicated profiled run (serial, un-timed) so the timed reps stay
/// instrumentation-free; drain counts are executor-independent because
/// the step sequence is bit-identical across strategies.
struct Gating {
    skipped: u64,
    gated: u64,
    polled: u64,
    noop: u64,
    cancelled: u64,
    active_mean: f64,
}

fn gating_stats(build: fn(u64) -> Simulation, horizon_secs: u64, poll: bool) -> Gating {
    let mut sim = build(42);
    sim.set_always_poll(poll);
    sim.enable_profiler(0);
    sim.run_until(SimTime::from_secs(horizon_secs));
    let p = sim.step_profile().expect("profiler was enabled");
    let mut g = Gating {
        skipped: 0,
        gated: 0,
        polled: 0,
        noop: 0,
        cancelled: 0,
        active_mean: p.occupancy_mean,
    };
    for (_, d) in &p.drains {
        g.skipped += d.skipped;
        g.gated += d.gated;
        g.polled += d.polled;
        g.noop += d.noop;
        g.cancelled += d.cancelled;
    }
    g
}

/// Best-of-`reps` wall milliseconds for one full run. The runs are
/// short (tens of milliseconds), so the minimum — the least-interfered
/// sample — is a far stabler estimator than the median under scheduler
/// noise, and both sides of every before/after ratio use it.
///
/// `dense` selects the *before* loop: every phase-1 source polled and
/// every agent ticked every step (`always_poll` + `always_tick`, the
/// seed loop all the event-indexed machinery replaced). The *after*
/// loop is the default: wheel-gated drains over the active set.
fn measure(
    build: fn(u64) -> Simulation,
    executor: &Executor,
    horizon_secs: u64,
    dense: bool,
) -> f64 {
    let reps = 5;
    (0..reps)
        .map(|_| {
            let mut sim = build(42);
            sim.set_executor(executor.clone());
            if dense {
                sim.set_always_poll(true);
                sim.set_always_tick(true);
            }
            let start = Instant::now();
            sim.run_until(SimTime::from_secs(horizon_secs));
            std::hint::black_box(sim.active_operations());
            start.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::INFINITY, f64::min)
}

/// Best-of-reps wall ms for one serial wheel-mode run through the
/// CLI's *robust driver loop*: chunked `run_until` under panic
/// supervision, with the paranoid auditor and periodic atomic
/// checkpoint writes individually toggled. With both features off this
/// is exactly what every ordinary `gdisim run` now executes, so
/// `measure_robust(b, h, false, None)` against `measure(...)` prices
/// the supervision plumbing itself.
fn measure_robust(
    build: fn(u64) -> Simulation,
    horizon_secs: u64,
    paranoid: bool,
    ckpt_every_secs: Option<u64>,
) -> f64 {
    let reps = 5;
    let dir = std::env::temp_dir().join(format!("gdisim-bench-ckpt-{}", std::process::id()));
    let horizon = SimTime::from_secs(horizon_secs);
    let every = ckpt_every_secs.map(SimDuration::from_secs);
    let best = (0..reps)
        .map(|_| {
            let mut sim = build(42);
            sim.set_paranoid(paranoid);
            let start = Instant::now();
            let mut next = every.map(|e| SimTime::ZERO + e);
            loop {
                let target = match next {
                    Some(n) if n < horizon => n,
                    _ => horizon,
                };
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sim.run_until(target)))
                    .expect("benchmark run must not panic");
                if target >= horizon {
                    break;
                }
                let path = gdisim_core::snapshot::checkpoint_path(&dir, "bench", sim.now());
                Snapshot::write_serial(&path, "bench", 42, &sim)
                    .expect("checkpoint write succeeds");
                next = next.zip(every).map(|(n, e)| n + e);
            }
            std::hint::black_box(sim.active_operations());
            start.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::INFINITY, f64::min);
    let _ = std::fs::remove_dir_all(&dir);
    best
}

/// Best-of-reps wall ms for one serial wheel-mode run with causal
/// operation tracing enabled at `rate` (`None` leaves it off — the
/// untraced baseline). The sampler decides once per operation at
/// launch, so a low rate skips the span bookkeeping for almost every
/// operation; this prices exactly what `--trace-ops RATE` adds.
fn measure_optrace(build: fn(u64) -> Simulation, horizon_secs: u64, rate: Option<f64>) -> f64 {
    let reps = 5;
    (0..reps)
        .map(|_| {
            let mut sim = build(42);
            if let Some(rate) = rate {
                sim.enable_optrace(rate);
            }
            let start = Instant::now();
            sim.run_until(SimTime::from_secs(horizon_secs));
            std::hint::black_box(sim.active_operations());
            std::hint::black_box(sim.optrace().map_or(0, |r| r.counters().sampled));
            start.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::INFINITY, f64::min)
}

/// One sharded measurement: best-of-reps wall ms plus the (run-to-run
/// deterministic) mailbox volume, window length and violation count.
struct ShardedRun {
    wall_ms: f64,
    window_ticks: u64,
    mail_sent: u64,
    ordering_violations: u64,
}

fn measure_sharded(
    build: fn(u64) -> Simulation,
    horizon_secs: u64,
    shards: usize,
    workers: usize,
) -> ShardedRun {
    let reps = 5;
    let mut best = ShardedRun {
        wall_ms: f64::INFINITY,
        window_ticks: 0,
        mail_sent: 0,
        ordering_violations: 0,
    };
    for _ in 0..reps {
        let mut sim = ShardedSimulation::new(build(42), shards, None, Some(workers))
            .expect("valid shard configuration");
        let start = Instant::now();
        sim.run_until(SimTime::from_secs(horizon_secs));
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let stats = sim.stats();
        // The mailbox traffic is byte-deterministic across reps; only
        // the wall time varies.
        best.window_ticks = sim.window_ticks();
        best.mail_sent = stats.iter().map(|s| s.mail_sent).sum();
        best.ordering_violations = stats.iter().map(|s| s.ordering_violations).sum();
        best.wall_ms = best.wall_ms.min(wall_ms);
    }
    best
}

/// One sharded bench case: (label, builder, horizon secs, shards, workers).
type ShardedCase = (&'static str, fn(u64) -> Simulation, u64, usize, usize);

/// The sharded bench matrix: shard counts sized to each topology's DC
/// count (consolidated has six DCs plus a relay; faulted/churned two).
const SHARDED_CASES: [ShardedCase; 4] = [
    ("consolidated", consolidated::build, 30, 4, 2),
    ("consolidated", consolidated::build, 30, 4, 4),
    ("faulted-churn", build_churn, 90, 2, 2),
    ("churned", build_churned, 120, 2, 2),
];

/// CI smoke assertions (`--check`): fast, deterministic, no timing.
fn check() {
    // 1. Stale-gate no-op drains on the consolidated run must stay
    //    ≤ 10% of the pre-cancellation baseline (2902). Polled site
    //    visits count as work units, so what remains in `noop` is
    //    genuinely stale gates — the quantity cancellation eliminates.
    let g = gating_stats(consolidated::build, 30, false);
    println!(
        "check: consolidated 30 sim-s: noop={} (budget {NOOP_BUDGET}), cancelled={}",
        g.noop, g.cancelled
    );
    assert!(
        g.noop <= NOOP_BUDGET,
        "no-op drains regressed: {} > {NOOP_BUDGET} (10% of the pre-fix 2902)",
        g.noop
    );

    // 2. Scatter-Gather's indexed dispatch must stay range-batched: the
    //    mean items-per-phase over a wheel-gated sparse run tracks the
    //    number of index *ranges*, not the number of active agents
    //    (mean active set ≈ 4.5 would show through as ≈ 4.5 items per
    //    phase under per-agent dispatch).
    let executor = Executor::scatter_gather(4);
    let mut sim = build_sparse(42);
    sim.set_executor(executor.clone());
    sim.run_until(SimTime::from_secs(10));
    let stats = executor.stats().expect("pooled executor has stats");
    let per_phase = stats.items as f64 / stats.phases.max(1) as f64;
    println!(
        "check: SG indexed dispatch: {} items / {} phases = {per_phase:.2} per phase",
        stats.items, stats.phases
    );
    assert!(
        per_phase < 2.0,
        "SG indexed dispatch regressed toward one item per agent: {per_phase:.2} items/phase"
    );

    // 3. The churn scenario must exercise the cancellation protocol —
    //    otherwise the noop budget above is checking a vacuum.
    let g = gating_stats(build_churn, 90, false);
    println!(
        "check: faulted-churn 90 sim-s: cancelled={}, noop={}",
        g.cancelled, g.noop
    );
    assert!(g.cancelled > 0, "churn run cancelled no gates");

    // 4. The stochastic churn run must actually apply incidents, and
    //    its Churn drain class must stay wheel-gated: far more steps
    //    skip the class than drain it (the queue never drains dry, so
    //    the wheel knows the next transition exactly).
    let mut sim = build_churned(42);
    sim.enable_profiler(0);
    sim.run_until(SimTime::from_secs(120));
    let c = &sim.report().churn;
    println!(
        "check: churned 120 sim-s: incidents={}, repairs={}, refused={}",
        c.incidents, c.repairs, c.refused_incidents
    );
    assert!(c.incidents > 0, "stochastic churn applied no incidents");
    let p = sim.profiler().expect("profiler enabled");
    let d = p.drain_stats(EventClass::Churn.index());
    println!(
        "check: churned Churn class: skipped={}, gated={}, polled={}",
        d.skipped, d.gated, d.polled
    );
    assert!(d.gated > 0, "no Churn drain was ever gated");
    assert!(
        d.skipped > d.gated,
        "Churn class is not wheel-gated: {} skipped vs {} gated",
        d.skipped,
        d.gated
    );

    // 5. The sharded engine must actually partition the consolidated
    //    run — cross-shard flights flow through the window mailboxes —
    //    and no receiver may ever observe a sequence gap: the mailbox
    //    protocol's determinism rests on consecutive per-pair numbering.
    let sharded = measure_sharded(consolidated::build, 30, 4, 2);
    println!(
        "check: sharded consolidated 30 sim-s: {} envelopes over {}-tick windows, {} violations",
        sharded.mail_sent, sharded.window_ticks, sharded.ordering_violations
    );
    assert!(sharded.mail_sent > 0, "no cross-shard flight was exported");
    assert_eq!(
        sharded.ordering_violations, 0,
        "cross-shard mailbox observed sequence gaps"
    );

    // 6. With real cores behind the pool, whole-window parallelism must
    //    pay: ≥ 1.5× over the serial engine at 4 shards × 4 workers.
    //    On smaller hosts the ratio is reported but not asserted —
    //    barrier waits without parallel hardware measure only overhead.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let serial = measure(consolidated::build, &Executor::serial(), 30, false);
    let par = measure_sharded(consolidated::build, 30, 4, 4);
    let ratio = serial / par.wall_ms;
    println!(
        "check: sharded speedup on consolidated: {serial:.1} ms serial vs {:.1} ms sharded \
         = {ratio:.2}x ({cores} cores)",
        par.wall_ms
    );
    if cores >= 4 {
        assert!(
            ratio >= 1.5,
            "sharded engine too slow: {ratio:.2}x < 1.5x on a {cores}-core host"
        );
    }

    // 7. The robust driver loop (panic supervision + checkpoint
    //    plumbing) with every feature off is what ordinary runs now
    //    execute; it must stay within 2% of the plain step loop (plus
    //    1 ms of timer slack — these are ~100 ms runs measured at
    //    millisecond granularity).
    let plain = measure(consolidated::build, &Executor::serial(), 30, false);
    let robust_off = measure_robust(consolidated::build, 30, false, None);
    let overhead_pct = (robust_off / plain - 1.0) * 100.0;
    println!(
        "check: robust driver, features off: {plain:.1} ms plain vs {robust_off:.1} ms \
         supervised = {overhead_pct:+.2}%"
    );
    assert!(
        robust_off <= plain * 1.02 + 1.0,
        "supervision plumbing with checkpoints and paranoid off costs {overhead_pct:.2}% \
         (> 2% budget): {robust_off:.1} ms vs {plain:.1} ms"
    );

    // 8. Operation tracing sampled at the 1% production rate must stay
    //    within 5% of the untraced run (plus the same 1 ms timer slack)
    //    on the saturated consolidated case — the per-operation launch
    //    check is one hash, and 99% of operations take no other branch.
    //    The sampler must also not be vacuous at this rate and horizon.
    let untraced = measure_optrace(consolidated::build, 30, None);
    let sampled = measure_optrace(consolidated::build, 30, Some(0.01));
    let optrace_pct = (sampled / untraced - 1.0) * 100.0;
    println!(
        "check: optrace at 1%: {untraced:.1} ms untraced vs {sampled:.1} ms \
         sampled = {optrace_pct:+.2}%"
    );
    let mut sim = consolidated::build(42);
    sim.enable_optrace(0.01);
    sim.run_until(SimTime::from_secs(30));
    let counters = sim.optrace().expect("optrace enabled").counters();
    println!(
        "check: optrace at 1%: sampled={}, finished={}",
        counters.sampled, counters.finished
    );
    assert!(counters.sampled > 0, "1% sampler admitted no operations");
    assert!(
        sampled <= untraced * 1.05 + 1.0,
        "sampled operation tracing costs {optrace_pct:.2}% (> 5% budget): \
         {sampled:.1} ms vs {untraced:.1} ms"
    );
    println!("check: OK");
}

fn main() {
    if std::env::args().any(|a| a == "--check") {
        check();
        return;
    }
    let executors: [(&str, Executor); 3] = [
        ("serial", Executor::serial()),
        ("scatter-gather", Executor::scatter_gather(4)),
        ("h-dispatch", Executor::hdispatch(4, 64)),
    ];

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut gating_rows: Vec<Vec<String>> = Vec::new();
    let mut json_entries: Vec<String> = Vec::new();
    for case in &CASES {
        let gate = gating_stats(case.build, case.horizon_secs, false);
        gating_rows.push(vec![
            case.scenario.to_string(),
            gate.skipped.to_string(),
            gate.gated.to_string(),
            gate.polled.to_string(),
            gate.noop.to_string(),
            gate.cancelled.to_string(),
            format!("{:.1}", gate.active_mean),
        ]);
        for (name, executor) in &executors {
            let before = measure(case.build, executor, case.horizon_secs, true);
            let after = measure(case.build, executor, case.horizon_secs, false);
            let sim_s = case.horizon_secs as f64;
            let before_rate = before / sim_s;
            let after_rate = after / sim_s;
            let speedup = before / after;
            rows.push(vec![
                case.scenario.to_string(),
                name.to_string(),
                format!("{before_rate:.3}"),
                format!("{after_rate:.3}"),
                format!("{speedup:.2}x"),
            ]);
            json_entries.push(format!(
                concat!(
                    "    {{\"scenario\": \"{}\", \"executor\": \"{}\", ",
                    "\"sim_seconds\": {}, \"before_ms_per_sim_s\": {:.4}, ",
                    "\"after_ms_per_sim_s\": {:.4}, \"speedup\": {:.3}, ",
                    "\"skipped_drains\": {}, \"gated_drains\": {}, ",
                    "\"polled_drains\": {}, \"noop_drains\": {}, ",
                    "\"cancelled_gates\": {}, \"active_set_mean\": {:.3}}}"
                ),
                json_escape(case.scenario),
                json_escape(name),
                case.horizon_secs,
                before_rate,
                after_rate,
                speedup,
                gate.skipped,
                gate.gated,
                gate.polled,
                gate.noop,
                gate.cancelled,
                gate.active_mean,
            ));
        }
    }

    // Sharded engine: serial wheel-mode vs whole-window parallelism.
    // The serial baseline is re-measured here (not taken from the rows
    // above) so both sides of each ratio come from the same machine
    // state.
    let mut sharded_rows: Vec<Vec<String>> = Vec::new();
    let mut sharded_json: Vec<String> = Vec::new();
    for &(scenario, build, horizon_secs, shards, workers) in &SHARDED_CASES {
        let serial = measure(build, &Executor::serial(), horizon_secs, false);
        let run = measure_sharded(build, horizon_secs, shards, workers);
        let sim_s = horizon_secs as f64;
        let speedup = serial / run.wall_ms;
        sharded_rows.push(vec![
            scenario.to_string(),
            format!("{shards}x{workers}w"),
            run.window_ticks.to_string(),
            format!("{:.3}", serial / sim_s),
            format!("{:.3}", run.wall_ms / sim_s),
            format!("{speedup:.2}x"),
            run.mail_sent.to_string(),
            run.ordering_violations.to_string(),
        ]);
        sharded_json.push(format!(
            concat!(
                "    {{\"scenario\": \"{}\", \"shards\": {}, \"workers\": {}, ",
                "\"window_ticks\": {}, \"sim_seconds\": {}, ",
                "\"serial_ms_per_sim_s\": {:.4}, \"sharded_ms_per_sim_s\": {:.4}, ",
                "\"speedup\": {:.3}, \"mailbox_sent\": {}, ",
                "\"ordering_violations\": {}}}"
            ),
            json_escape(scenario),
            shards,
            workers,
            run.window_ticks,
            horizon_secs,
            serial / sim_s,
            run.wall_ms / sim_s,
            speedup,
            run.mail_sent,
            run.ordering_violations,
        ));
    }

    // Robustness features: paranoid auditing and periodic checkpoint
    // writes, each priced against the plain serial run. The checkpoint
    // cadence is a quarter of the horizon — three mid-run writes, the
    // shape a long campaign with `--checkpoint-every` actually has.
    let mut robust_rows: Vec<Vec<String>> = Vec::new();
    let mut robust_json: Vec<String> = Vec::new();
    for case in &CASES {
        let base = measure(case.build, &Executor::serial(), case.horizon_secs, false);
        let every = (case.horizon_secs / 4).max(1);
        let ckpt = measure_robust(case.build, case.horizon_secs, false, Some(every));
        let paranoid = measure_robust(case.build, case.horizon_secs, true, None);
        let sim_s = case.horizon_secs as f64;
        let ckpt_pct = (ckpt / base - 1.0) * 100.0;
        let paranoid_pct = (paranoid / base - 1.0) * 100.0;
        robust_rows.push(vec![
            case.scenario.to_string(),
            format!("{:.3}", base / sim_s),
            format!("{every}s"),
            format!("{:.3}", ckpt / sim_s),
            format!("{ckpt_pct:+.1}%"),
            format!("{:.3}", paranoid / sim_s),
            format!("{paranoid_pct:+.1}%"),
        ]);
        robust_json.push(format!(
            concat!(
                "    {{\"scenario\": \"{}\", \"sim_seconds\": {}, ",
                "\"base_ms_per_sim_s\": {:.4}, \"checkpoint_every_secs\": {}, ",
                "\"checkpoint_ms_per_sim_s\": {:.4}, \"checkpoint_overhead_pct\": {:.2}, ",
                "\"paranoid_ms_per_sim_s\": {:.4}, \"paranoid_overhead_pct\": {:.2}}}"
            ),
            json_escape(case.scenario),
            case.horizon_secs,
            base / sim_s,
            every,
            ckpt / sim_s,
            ckpt_pct,
            paranoid / sim_s,
            paranoid_pct,
        ));
    }

    // Operation tracing: untraced vs 1% sampling vs full rate, each on
    // the plain serial run. The sampled count comes from a dedicated
    // profiling run (deterministic, so any rep would report the same).
    let mut optrace_rows: Vec<Vec<String>> = Vec::new();
    let mut optrace_json: Vec<String> = Vec::new();
    for case in &CASES {
        let base = measure_optrace(case.build, case.horizon_secs, None);
        let sampled = measure_optrace(case.build, case.horizon_secs, Some(0.01));
        let full = measure_optrace(case.build, case.horizon_secs, Some(1.0));
        let mut sim = (case.build)(42);
        sim.enable_optrace(1.0);
        sim.run_until(SimTime::from_secs(case.horizon_secs));
        let total_ops = sim.optrace().expect("optrace enabled").counters().sampled;
        let sim_s = case.horizon_secs as f64;
        let sampled_pct = (sampled / base - 1.0) * 100.0;
        let full_pct = (full / base - 1.0) * 100.0;
        optrace_rows.push(vec![
            case.scenario.to_string(),
            format!("{:.3}", base / sim_s),
            format!("{:.3}", sampled / sim_s),
            format!("{sampled_pct:+.1}%"),
            format!("{:.3}", full / sim_s),
            format!("{full_pct:+.1}%"),
            total_ops.to_string(),
        ]);
        optrace_json.push(format!(
            concat!(
                "    {{\"scenario\": \"{}\", \"sim_seconds\": {}, ",
                "\"base_ms_per_sim_s\": {:.4}, \"sampled_ms_per_sim_s\": {:.4}, ",
                "\"sampled_overhead_pct\": {:.2}, \"full_ms_per_sim_s\": {:.4}, ",
                "\"full_overhead_pct\": {:.2}, \"operations\": {}}}"
            ),
            json_escape(case.scenario),
            case.horizon_secs,
            base / sim_s,
            sampled / sim_s,
            sampled_pct,
            full / sim_s,
            full_pct,
            total_ops,
        ));
    }

    print_table(
        "Step loop: dense poll+tick (before) vs wheel+active-set (after), wall ms per sim s",
        &["scenario", "executor", "before", "after", "speedup"],
        &rows,
    );
    print_table(
        "Robustness: checkpoint writes and paranoid auditing vs plain serial run",
        &[
            "scenario",
            "base",
            "ckpt-every",
            "ckpt",
            "ckpt-ovh",
            "paranoid",
            "paranoid-ovh",
        ],
        &robust_rows,
    );
    print_table(
        "Operation tracing: untraced vs --trace-ops 0.01 vs 1.0, wall ms per sim s",
        &[
            "scenario", "base", "1%", "1%-ovh", "full", "full-ovh", "ops",
        ],
        &optrace_rows,
    );
    print_table(
        "Sharded engine: serial wheel-mode vs shard windows, wall ms per sim s",
        &[
            "scenario", "shards", "window", "serial", "sharded", "speedup", "mail", "seq-gaps",
        ],
        &sharded_rows,
    );
    print_table(
        "Wheel gating (wheel mode): drain opportunities by outcome",
        &[
            "scenario",
            "skipped",
            "gated",
            "polled",
            "noop",
            "cancelled",
            "active-mean",
        ],
        &gating_rows,
    );
    write_csv(
        "BENCH_step_loop.csv",
        &[
            "scenario",
            "executor",
            "before_ms_per_sim_s",
            "after_ms_per_sim_s",
            "speedup",
            "skipped_drains",
            "gated_drains",
            "polled_drains",
            "noop_drains",
            "cancelled_gates",
            "active_set_mean",
        ],
        &rows
            .iter()
            .enumerate()
            .map(|(i, r)| {
                // Three executor rows per case; gating stats are
                // executor-independent, so each case's row repeats.
                let g = &gating_rows[i / executors.len()];
                vec![
                    r[0].clone(),
                    r[1].clone(),
                    r[2].clone(),
                    r[3].clone(),
                    r[4].trim_end_matches('x').to_string(),
                    g[1].clone(),
                    g[2].clone(),
                    g[3].clone(),
                    g[4].clone(),
                    g[5].clone(),
                    g[6].clone(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    write_csv(
        "BENCH_step_loop_robustness.csv",
        &[
            "scenario",
            "base_ms_per_sim_s",
            "checkpoint_every_secs",
            "checkpoint_ms_per_sim_s",
            "checkpoint_overhead_pct",
            "paranoid_ms_per_sim_s",
            "paranoid_overhead_pct",
        ],
        &robust_rows
            .iter()
            .map(|r| {
                let mut r = r.clone();
                r[2] = r[2].trim_end_matches('s').to_string();
                for i in [4, 6] {
                    r[i] = r[i]
                        .trim_start_matches('+')
                        .trim_end_matches('%')
                        .to_string();
                }
                r
            })
            .collect::<Vec<_>>(),
    );
    write_csv(
        "BENCH_step_loop_optrace.csv",
        &[
            "scenario",
            "base_ms_per_sim_s",
            "sampled_ms_per_sim_s",
            "sampled_overhead_pct",
            "full_ms_per_sim_s",
            "full_overhead_pct",
            "operations",
        ],
        &optrace_rows
            .iter()
            .map(|r| {
                let mut r = r.clone();
                for i in [3, 5] {
                    r[i] = r[i]
                        .trim_start_matches('+')
                        .trim_end_matches('%')
                        .to_string();
                }
                r
            })
            .collect::<Vec<_>>(),
    );
    write_csv(
        "BENCH_step_loop_sharded.csv",
        &[
            "scenario",
            "shards",
            "window_ticks",
            "serial_ms_per_sim_s",
            "sharded_ms_per_sim_s",
            "speedup",
            "mailbox_sent",
            "ordering_violations",
        ],
        &sharded_rows
            .iter()
            .map(|r| {
                let mut r = r.clone();
                r[5] = r[5].trim_end_matches('x').to_string();
                r
            })
            .collect::<Vec<_>>(),
    );
    write_json(
        "BENCH_step_loop.json",
        &format!(
            "{{\n  \"benchmark\": \"step_loop\",\n  \"unit\": \"wall_ms_per_sim_s\",\n  \"results\": [\n{}\n  ],\n  \"sharded\": [\n{}\n  ],\n  \"robustness\": [\n{}\n  ],\n  \"optrace\": [\n{}\n  ]\n}}\n",
            json_entries.join(",\n"),
            sharded_json.join(",\n"),
            robust_json.join(",\n"),
            optrace_json.join(",\n")
        ),
    );
}
