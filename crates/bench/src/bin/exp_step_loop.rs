//! Event-indexed step loop: timer-wheel gating vs. per-step polling.
//!
//! Two workload shapes bracket the wheel's effect:
//!
//! * **sparse-series** — an idle-heavy lab: hundreds of periodic series
//!   sources with multi-second intervals on the downscaled validation
//!   topology. Almost every 10 ms step has *nothing* due, so the
//!   polling loop's per-step sweep over all sources (plus the empty
//!   retry/timeout/fault checks) dominates; the wheel skips all of it.
//! * **consolidated** — the saturated six-continent case study: diurnal
//!   Poisson samplers must draw every step regardless (their RNG stream
//!   is part of the result), so the wheel can only gate the remaining
//!   classes and must at worst break even.
//!
//! Both modes are bit-for-bit identical simulations (pinned by
//! tests/wheel_equivalence.rs), so this is a pure cost comparison.
//! Alongside the table and CSV, a machine-readable
//! `results/BENCH_step_loop.json` records wall-ms per simulated second
//! before (polling) and after (wheel) for each scenario × executor.

use gdisim_bench::{json_escape, print_table, write_csv, write_json};
use gdisim_core::scenarios::{consolidated, rates, validation};
use gdisim_core::{MasterPolicy, Simulation, SimulationConfig};
use gdisim_infra::Infrastructure;
use gdisim_ports::Executor;
use gdisim_types::{AppId, SimDuration, SimTime};
use gdisim_workload::{Catalog, SeriesKind};
use std::time::Instant;

/// Periodic sources in the idle-heavy scenario. Enough that the polling
/// loop's per-step source sweep is the dominant phase-1 cost.
const SPARSE_SOURCES: u64 = 1024;

/// An idle-heavy lab: many long-interval series on the small validation
/// topology. With 30–90 s intervals against a 10 ms step, far fewer
/// than 1% of steps launch anything — but the polling loop still sweeps
/// every source every step, while the wheel visits only due ones.
fn build_sparse(seed: u64) -> Simulation {
    let spec = validation::downscaled_topology();
    let infra = Infrastructure::build(&spec, seed).expect("valid downscaled topology");
    let mut config = SimulationConfig::validation();
    config.seed = seed;
    let mut sim = Simulation::new(infra, vec!["NA".into()], config);
    sim.set_master_policy(MasterPolicy::Local);
    let rc = rates::lab_rate_card();
    for i in 0..SPARSE_SOURCES {
        sim.add_series_source(
            AppId(1000 + i as u32),
            Catalog::cad_series(SeriesKind::Light, &rc),
            SimDuration::from_secs(30 + i % 61),
            "NA",
            SimTime::ZERO + SimDuration::from_millis(50 * i),
            None,
        );
    }
    sim
}

struct Case {
    scenario: &'static str,
    build: fn(u64) -> Simulation,
    horizon_secs: u64,
}

const CASES: [Case; 2] = [
    Case {
        scenario: "sparse-series",
        build: build_sparse,
        horizon_secs: 60,
    },
    Case {
        scenario: "consolidated",
        build: consolidated::build,
        horizon_secs: 30,
    },
];

/// Wheel-gating profile of one run: how phase 1 actually spent its
/// drain opportunities, plus mean active-set occupancy. Collected from
/// a dedicated profiled run (serial, un-timed) so the timed reps stay
/// instrumentation-free; drain counts are executor-independent because
/// the step sequence is bit-identical across strategies.
struct Gating {
    skipped: u64,
    gated: u64,
    polled: u64,
    noop: u64,
    active_mean: f64,
}

fn gating_stats(build: fn(u64) -> Simulation, horizon_secs: u64, poll: bool) -> Gating {
    let mut sim = build(42);
    sim.set_always_poll(poll);
    sim.enable_profiler(0);
    sim.run_until(SimTime::from_secs(horizon_secs));
    let p = sim.step_profile().expect("profiler was enabled");
    let mut g = Gating {
        skipped: 0,
        gated: 0,
        polled: 0,
        noop: 0,
        active_mean: p.occupancy_mean,
    };
    for (_, d) in &p.drains {
        g.skipped += d.skipped;
        g.gated += d.gated;
        g.polled += d.polled;
        g.noop += d.noop;
    }
    g
}

/// Median-of-`reps` wall milliseconds for one full run.
fn measure(
    build: fn(u64) -> Simulation,
    executor: &Executor,
    horizon_secs: u64,
    poll: bool,
) -> f64 {
    let reps = 3;
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let mut sim = build(42);
            sim.set_executor(executor.clone());
            sim.set_always_poll(poll);
            let start = Instant::now();
            sim.run_until(SimTime::from_secs(horizon_secs));
            std::hint::black_box(sim.active_operations());
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[reps / 2]
}

fn main() {
    let executors: [(&str, Executor); 3] = [
        ("serial", Executor::serial()),
        ("scatter-gather", Executor::scatter_gather(4)),
        ("h-dispatch", Executor::hdispatch(4, 64)),
    ];

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut gating_rows: Vec<Vec<String>> = Vec::new();
    let mut json_entries: Vec<String> = Vec::new();
    for case in &CASES {
        let gate = gating_stats(case.build, case.horizon_secs, false);
        gating_rows.push(vec![
            case.scenario.to_string(),
            gate.skipped.to_string(),
            gate.gated.to_string(),
            gate.polled.to_string(),
            gate.noop.to_string(),
            format!("{:.1}", gate.active_mean),
        ]);
        for (name, executor) in &executors {
            let before = measure(case.build, executor, case.horizon_secs, true);
            let after = measure(case.build, executor, case.horizon_secs, false);
            let sim_s = case.horizon_secs as f64;
            let before_rate = before / sim_s;
            let after_rate = after / sim_s;
            let speedup = before / after;
            rows.push(vec![
                case.scenario.to_string(),
                name.to_string(),
                format!("{before_rate:.3}"),
                format!("{after_rate:.3}"),
                format!("{speedup:.2}x"),
            ]);
            json_entries.push(format!(
                concat!(
                    "    {{\"scenario\": \"{}\", \"executor\": \"{}\", ",
                    "\"sim_seconds\": {}, \"before_ms_per_sim_s\": {:.4}, ",
                    "\"after_ms_per_sim_s\": {:.4}, \"speedup\": {:.3}, ",
                    "\"skipped_drains\": {}, \"gated_drains\": {}, ",
                    "\"polled_drains\": {}, \"noop_drains\": {}, ",
                    "\"active_set_mean\": {:.3}}}"
                ),
                json_escape(case.scenario),
                json_escape(name),
                case.horizon_secs,
                before_rate,
                after_rate,
                speedup,
                gate.skipped,
                gate.gated,
                gate.polled,
                gate.noop,
                gate.active_mean,
            ));
        }
    }

    print_table(
        "Step loop: polling (before) vs timer wheel (after), wall ms per sim s",
        &["scenario", "executor", "before", "after", "speedup"],
        &rows,
    );
    print_table(
        "Wheel gating (wheel mode): drain opportunities by outcome",
        &[
            "scenario",
            "skipped",
            "gated",
            "polled",
            "noop",
            "active-mean",
        ],
        &gating_rows,
    );
    write_csv(
        "BENCH_step_loop.csv",
        &[
            "scenario",
            "executor",
            "before_ms_per_sim_s",
            "after_ms_per_sim_s",
            "speedup",
            "skipped_drains",
            "gated_drains",
            "polled_drains",
            "noop_drains",
            "active_set_mean",
        ],
        &rows
            .iter()
            .enumerate()
            .map(|(i, r)| {
                // Three executor rows per case; gating stats are
                // executor-independent, so each case's row repeats.
                let g = &gating_rows[i / executors.len()];
                vec![
                    r[0].clone(),
                    r[1].clone(),
                    r[2].clone(),
                    r[3].clone(),
                    r[4].trim_end_matches('x').to_string(),
                    g[1].clone(),
                    g[2].clone(),
                    g[3].clone(),
                    g[4].clone(),
                    g[5].clone(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    write_json(
        "BENCH_step_loop.json",
        &format!(
            "{{\n  \"benchmark\": \"step_loop\",\n  \"unit\": \"wall_ms_per_sim_s\",\n  \"results\": [\n{}\n  ]\n}}\n",
            json_entries.join(",\n")
        ),
    );
}
