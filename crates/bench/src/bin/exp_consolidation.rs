//! E11–E17 — the Ch. 6 consolidation case study: a 24-hour day on the
//! consolidated six-data-center platform.
//!
//! Regenerates Fig. 6-11 (pull/push volumes), Fig. 6-12 (CPU in DNA),
//! Fig. 6-13 (Tfs CPU in DAUS), Table 6.1 (WAN utilization 12:00–16:00
//! GMT), Fig. 6-14 (SR/IB response times and their maxima), the response
//! time figures 6-15..6-20, and Table 6.2 (latency impact in DAUS).

use gdisim_background::{BackgroundKind, BackgroundScheduler, OwnershipSplit, SchedulerConfig};
use gdisim_bench::{pct, print_table, secs, sparkline, write_csv};
use gdisim_core::scenarios::{consolidated, rates};
use gdisim_metrics::ResponseKey;
use gdisim_types::{DcId, OpTypeId, SimDuration, SimTime, TierKind};
use gdisim_workload::Catalog;

const DAY: SimTime = SimTime::from_hours(24);

fn hourly_means(series: &gdisim_metrics::TimeSeries) -> Vec<f64> {
    series
        .resample(SimDuration::from_secs(3600))
        .values()
        .to_vec()
}

fn main() {
    println!("E11–E17 — data serving platform consolidation (Ch. 6)");
    let wall = std::time::Instant::now();
    let mut sim = consolidated::build(7);
    sim.run_until(DAY);
    let report = sim.into_report();
    println!("  24 simulated hours in {:?}", wall.elapsed());

    // ---- Fig. 6-11: pull/push volumes per SR run (scheduler replay) ----
    let mut sched = BackgroundScheduler::new(
        consolidated::data_growth(),
        OwnershipSplit::single_master(consolidated::SITES.len(), 0),
        SchedulerConfig::default(),
    );
    let mut rows = Vec::new();
    let mut t = SimTime::ZERO;
    let mut peak_total = 0.0f64;
    while t < DAY {
        for l in sched.poll(t) {
            if l.kind == BackgroundKind::SyncRep {
                let pull: f64 = l.pull_bytes.iter().sum();
                let push: f64 = l.push_bytes.iter().sum();
                peak_total = peak_total.max(pull + push);
                rows.push(vec![
                    format!("{t}"),
                    format!("{:.0}", pull / 1e6),
                    format!("{:.0}", push / 1e6),
                ]);
            } else {
                sched.on_indexbuild_complete(l.master_site, t);
            }
        }
        t += SimDuration::from_mins(15);
    }
    let headers = vec!["launch (GMT)", "pull to DNA (MB)", "push from DNA (MB)"];
    println!("\n== Fig. 6-11 — SR volumes to/from DNA per 15-min run");
    let pulls: Vec<f64> = rows.iter().map(|r| r[1].parse().unwrap()).collect();
    let pushes: Vec<f64> = rows.iter().map(|r| r[2].parse().unwrap()).collect();
    println!("  pull: {}", sparkline(&pulls));
    println!("  push: {}", sparkline(&pushes));
    println!(
        "  peak per-run total volume {:.2} GB (paper: ≈14.25 GB combined peak)",
        peak_total / 1e9
    );
    write_csv("fig_6_11_sr_volumes.csv", &headers, &rows);

    // ---- Fig. 6-12: CPU utilization in DNA ----
    println!("\n== Fig. 6-12 — CPU utilization in DNA (hourly means)");
    let mut rows = Vec::new();
    for tier in TierKind::ALL {
        let s = report.cpu("NA", tier).expect("NA tier series");
        let hourly = hourly_means(s);
        let (peak_h, peak) =
            hourly.iter().enumerate().fold(
                (0, 0.0f64),
                |acc, (h, v)| if *v > acc.1 { (h, *v) } else { acc },
            );
        println!(
            "  {tier}: {} peak {} at {:02}:00 GMT",
            sparkline(&hourly),
            pct(peak),
            peak_h
        );
        let mut row = vec![tier.label().to_string()];
        row.extend(hourly.iter().map(|v| format!("{:.3}", v)));
        rows.push(row);
    }
    let mut headers = vec!["tier".to_string()];
    headers.extend((0..24).map(|h| format!("{h:02}h")));
    write_csv("fig_6_12_dna_cpu.csv", &headers, &rows);
    println!("  paper: Tapp ≈73% at 15:00 GMT; Tdb 32%, Tidx 30%, Tfs 31%");

    // ---- Fig. 6-13: Tfs CPU in DAUS ----
    let aus_fs = report.cpu("AUS", TierKind::Fs).expect("AUS Tfs");
    let hourly = hourly_means(aus_fs);
    let peak = hourly.iter().cloned().fold(0.0, f64::max);
    println!(
        "\n== Fig. 6-13 — Tfs CPU in DAUS: {} peak {}",
        sparkline(&hourly),
        pct(peak)
    );
    println!("  paper: ≈3.5% peak — very low saturation risk");

    // ---- Table 6.1: WAN utilization 12:00–16:00 GMT ----
    let w_start = SimTime::from_hours(12);
    let w_end = SimTime::from_hours(16);
    let mut rows = Vec::new();
    let paper: &[(&str, u32)] = &[
        ("L NA->SA", 48),
        ("L NA->EU", 43),
        ("L NA->AS1", 59),
        ("L EU->AFR (backup)", 0),
        ("L EU->AS1 (backup)", 0),
        ("L AS1->AFR", 53),
        ("L AS1->AS", 47),
        ("L AS1->AUS", 54),
    ];
    for (label, paper_pct) in paper {
        let measured = report
            .wan_util
            .get(*label)
            .map(|s| s.window_mean(w_start, w_end))
            .unwrap_or(0.0);
        rows.push(vec![
            label.to_string(),
            format!("{paper_pct}%"),
            pct(measured),
        ]);
    }
    let headers = vec!["link", "paper", "simulated"];
    print_table(
        "Table 6.1 — WAN utilization of allocated capacity, 12:00-16:00 GMT",
        &headers,
        &rows,
    );
    write_csv("table_6_1_wan_util.csv", &headers, &rows);

    // ---- Fig. 6-14: background process response times ----
    println!("\n== Fig. 6-14 — SR and IB response times");
    for (kind, name, paper_max) in [
        (BackgroundKind::SyncRep, "SYNCHREP", 31.0),
        (BackgroundKind::IndexBuild, "INDEXBUILD", 63.0),
    ] {
        let recs = report.background_of(kind);
        let series: Vec<f64> = recs.iter().map(|r| r.response_secs() / 60.0).collect();
        let max = report.max_background_response(kind);
        println!(
            "  {name}: {} runs, {} | max {:.1} min at {} (paper ≈{paper_max} min)",
            recs.len(),
            sparkline(&series),
            max.map(|(_, s)| s / 60.0).unwrap_or(0.0),
            max.map(|(t, _)| t.to_string()).unwrap_or_default(),
        );
        let rows: Vec<Vec<String>> = recs
            .iter()
            .map(|r| {
                vec![
                    r.launched_at.to_string(),
                    format!("{:.1}", r.response_secs() / 60.0),
                    format!("{:.0}", r.volume_bytes / 1e6),
                ]
            })
            .collect();
        write_csv(
            &format!("fig_6_14_{}.csv", name.to_lowercase()),
            &["launched", "response (min)", "volume (MB)"],
            &rows,
        );
    }

    // ---- Figs. 6-15..6-20: client response times in DNA and DAUS ----
    let catalog = Catalog::standard(&rates::lab_rate_card());
    let dc_of =
        |name: &str| DcId(consolidated::SITES.iter().position(|s| *s == name).unwrap() as u32);
    for (dc_name, figs) in [("NA", "6-15/6-16/6-17"), ("AUS", "6-18/6-19/6-20")] {
        println!("\n== Figs. {figs} — operation response times in D{dc_name} (hourly series)");
        let dc = dc_of(dc_name);
        for app in &catalog.apps {
            println!("  {}:", app.name);
            for (oi, op) in app.ops.iter().enumerate() {
                let key = ResponseKey {
                    app: app.id,
                    op: OpTypeId::from_index(oi),
                    dc,
                };
                let series = report.response_series(key, SimDuration::from_secs(3600));
                if series.is_empty() {
                    continue;
                }
                let mean = report.responses.history_mean(key).unwrap_or(0.0);
                println!(
                    "    {:>15} {} mean {:.1}s",
                    op.name,
                    sparkline(series.values()),
                    mean
                );
            }
        }
    }
    println!("  (workload-agnostic below saturation: the paper reports flat curves)");

    // ---- Table 6.2: latency impact on CAD operations in DAUS ----
    let cad = catalog.app("CAD").expect("CAD app");
    let na = dc_of("NA");
    let aus = dc_of("AUS");
    let mut rows = Vec::new();
    for (oi, op) in cad.ops.iter().enumerate() {
        let k_na = ResponseKey {
            app: cad.id,
            op: OpTypeId::from_index(oi),
            dc: na,
        };
        let k_aus = ResponseKey {
            app: cad.id,
            op: OpTypeId::from_index(oi),
            dc: aus,
        };
        let (Some(r_na), Some(r_aus)) = (
            report.responses.history_mean(k_na),
            report.responses.history_mean(k_aus),
        ) else {
            continue;
        };
        let s = op.master_round_trips();
        rows.push(vec![
            format!("CAD {}", op.name),
            secs(r_na),
            secs(r_aus),
            s.to_string(),
            secs(r_aus - r_na),
            format!("{:.1}%", (r_aus - r_na) / r_na * 100.0),
        ]);
    }
    let headers = vec!["Operation", "R_NA", "R_AUS", "S", "dR", "dR/R_NA"];
    print_table(
        "Table 6.2 — latency impact on CAD operations in DAUS",
        &headers,
        &rows,
    );
    write_csv("table_6_2_latency_impact.csv", &headers, &rows);
    println!(
        "  paper: EXPLORE/SPATIAL-SEARCH/SELECT degrade strongly (many round trips),\n  \
         OPEN/SAVE barely (~1%): files are served locally."
    );
}
