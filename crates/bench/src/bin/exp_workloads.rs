//! E9/E10 — the case-study inputs: application workloads per data
//! center (Figs. 6-5/6-6/6-7) and data growth (Fig. 6-10).
//!
//! These are simulator *inputs*; the binary renders them hour by hour so
//! the curves can be compared with the paper's figures (peak magnitudes,
//! timezone offsets, 12:00–16:00 GMT overlap).

use gdisim_bench::{print_table, sparkline, write_csv};
use gdisim_core::scenarios::consolidated;
use gdisim_types::SimTime;

fn main() {
    println!("E9/E10 — workload and data-growth inputs (Figs. 6-5..6-7, 6-10)");
    let workloads = consolidated::workloads();
    let growth = consolidated::data_growth();

    for (wl, fig) in workloads.iter().zip(["6-5", "6-6", "6-7"]) {
        println!(
            "\n== Fig. {fig} — {} workload (active clients by hour, GMT)",
            wl.app
        );
        let mut rows = Vec::new();
        for (si, site) in wl.sites.iter().enumerate() {
            let series: Vec<f64> = (0..24)
                .map(|h| site.curve.population(SimTime::from_hours(h)))
                .collect();
            let peak = series.iter().cloned().fold(0.0, f64::max);
            println!(
                "  {:>4}: {} (peak {:.0})",
                site.site,
                sparkline(&series),
                peak
            );
            let mut row = vec![site.site.clone()];
            row.extend(series.iter().map(|v| format!("{v:.0}")));
            rows.push(row);
            let _ = si;
        }
        let global: Vec<f64> = (0..24)
            .map(|h| wl.global_population(SimTime::from_hours(h)))
            .collect();
        let gpeak = global.iter().cloned().fold(0.0, f64::max);
        println!("  GLOB: {} (peak {:.0})", sparkline(&global), gpeak);
        let mut grow = vec!["GLOBAL".to_string()];
        grow.extend(global.iter().map(|v| format!("{v:.0}")));
        rows.push(grow);
        let mut headers = vec!["site".to_string()];
        headers.extend((0..24).map(|h| format!("{h:02}h")));
        write_csv(
            &format!("fig_{}_workload_{}.csv", fig.replace('-', "_"), wl.app),
            &headers,
            &rows,
        );
    }

    println!("\n== Fig. 6-10 — data growth (MB/hour by data center, GMT)");
    let mut rows = Vec::new();
    for (si, site) in growth.sites.iter().enumerate() {
        let series: Vec<f64> = (0..24)
            .map(|h| growth.rate_bytes_per_hour(si, SimTime::from_hours(h)) / 1e6)
            .collect();
        let peak = series.iter().cloned().fold(0.0, f64::max);
        println!(
            "  {:>4}: {} (peak {:.0} MB/h)",
            site.site,
            sparkline(&series),
            peak
        );
        let mut row = vec![site.site.clone()];
        row.extend(series.iter().map(|v| format!("{v:.0}")));
        rows.push(row);
    }
    let mut headers = vec!["site".to_string()];
    headers.extend((0..24).map(|h| format!("{h:02}h")));
    print_table("Fig. 6-10 — data growth (MB/h)", &headers, &rows);
    write_csv("fig_6_10_data_growth.csv", &headers, &rows);
}
