//! Shared harness utilities for the experiment binaries.
//!
//! Every table and figure of the paper's evaluation has a binary in
//! `src/bin/` (see DESIGN.md's experiment index). The binaries print the
//! same rows/series the paper reports and drop machine-readable CSV next
//! to their stdout output under `results/`.

#![warn(missing_docs)]

use std::fmt::Display;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Prints an aligned text table.
pub fn print_table<H: Display, C: Display>(title: &str, headers: &[H], rows: &[Vec<C>]) {
    println!("\n== {title}");
    let headers: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    let rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| r.iter().map(|c| c.to_string()).collect())
        .collect();
    let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
    for row in &rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let joined: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths.get(i).copied().unwrap_or(c.len())))
            .collect();
        println!("  {}", joined.join("  "));
    };
    line(&headers);
    for row in &rows {
        line(row);
    }
}

/// The output directory for CSV artifacts (`results/`, created on use).
pub fn results_dir() -> PathBuf {
    let dir = Path::new("results").to_path_buf();
    fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Writes a CSV file under `results/`.
pub fn write_csv<H: Display, C: Display>(name: &str, headers: &[H], rows: &[Vec<C>]) {
    let path = results_dir().join(name);
    let mut f = fs::File::create(&path).expect("create csv");
    let head: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    writeln!(f, "{}", head.join(",")).expect("write header");
    for row in rows {
        let cells: Vec<String> = row.iter().map(|c| c.to_string()).collect();
        writeln!(f, "{}", cells.join(",")).expect("write row");
    }
    println!("  -> wrote {}", path.display());
}

/// Writes a machine-readable JSON artifact under `results/` and returns
/// its path. The content is pre-rendered text: the experiment binaries
/// hand-format their JSON so the artifact shape is explicit in the
/// binary that owns it.
pub fn write_json(name: &str, content: &str) -> PathBuf {
    let path = results_dir().join(name);
    fs::write(&path, content).expect("write json");
    println!("  -> wrote {}", path.display());
    path
}

/// Escapes a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Formats seconds with two decimals.
pub fn secs(v: f64) -> String {
    format!("{v:.2}s")
}

/// Renders a crude ASCII sparkline for a series (for figure-shaped
/// output in the terminal).
pub fn sparkline(values: &[f64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let max = values.iter().cloned().fold(f64::MIN, f64::max);
    let min = values.iter().cloned().fold(f64::MAX, f64::min);
    let span = (max - min).max(1e-12);
    values
        .iter()
        .map(|v| GLYPHS[(((v - min) / span) * 7.0).round() as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_spans_glyphs() {
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.435), "43.5%");
        assert_eq!(secs(12.345), "12.35s");
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
