//! Data growth model (Fig. 6-10).
//!
//! "The impact and effectiveness of the SR and IB processes is directly
//! related to the volume of new data generated in different data centers
//! at different times of the day" (§6.4.3). Growth follows the same
//! business-hour bump shape as the client workload — data is created
//! where and when engineers are working — so the model reuses the
//! diurnal trapezoid with MB/hour as its unit.

use gdisim_types::{SimDuration, SimTime};
use gdisim_workload::PopulationCurve;
use serde::{Deserialize, Serialize};

/// One site's data-growth curve, in MB/hour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GrowthCurve {
    /// Site name, matching the topology spec.
    pub site: String,
    /// MB/hour curve ("population" is MB/h here) — parametric trapezoid
    /// or a measured hourly table.
    pub curve: PopulationCurve,
}

/// The global data-growth input.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataGrowth {
    /// Per-site curves.
    pub sites: Vec<GrowthCurve>,
    /// Average file size in bytes (50 MB in the case study, §6.4.3) —
    /// converts volumes to file counts.
    pub avg_file_bytes: f64,
}

impl DataGrowth {
    /// Instantaneous growth rate at `t`, in bytes/hour.
    pub fn rate_bytes_per_hour(&self, site: usize, t: SimTime) -> f64 {
        self.sites[site].curve.population(t) * 1e6
    }

    /// Bytes generated at `site` during `[from, to)`, by trapezoidal
    /// integration at one-minute resolution (the curves are piecewise
    /// linear with multi-hour pieces, so this is effectively exact).
    pub fn generated_bytes(&self, site: usize, from: SimTime, to: SimTime) -> f64 {
        if to <= from {
            return 0.0;
        }
        let step = SimDuration::from_mins(1).min(to - from);
        let mut total = 0.0;
        let mut t = from;
        while t < to {
            let next = (t + step).min(to);
            let dt_hours = (next - t).as_secs_f64() / 3600.0;
            let mid_rate =
                (self.rate_bytes_per_hour(site, t) + self.rate_bytes_per_hour(site, next)) / 2.0;
            total += mid_rate * dt_hours;
            t = next;
        }
        total
    }

    /// Files generated at `site` during `[from, to)`.
    pub fn generated_files(&self, site: usize, from: SimTime, to: SimTime) -> f64 {
        self.generated_bytes(site, from, to) / self.avg_file_bytes
    }

    /// Site index by name.
    pub fn site_index(&self, name: &str) -> Option<usize> {
        self.sites.iter().position(|s| s.site == name)
    }

    /// Number of sites.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdisim_types::units::mb;
    use gdisim_workload::DiurnalCurve;

    fn growth() -> DataGrowth {
        DataGrowth {
            sites: vec![
                GrowthCurve {
                    site: "NA".into(),
                    // 9 GB/h at the plateau, 500 MB/h off-hours, NA zone.
                    curve: DiurnalCurve::business_day(-5.0, 500.0, 9000.0).into(),
                },
                GrowthCurve {
                    site: "EU".into(),
                    curve: DiurnalCurve::business_day(1.0, 300.0, 6000.0).into(),
                },
            ],
            avg_file_bytes: mb(50.0),
        }
    }

    #[test]
    fn off_hours_rate_is_base() {
        let g = growth();
        // 03:00 GMT = 22:00 NA local: base.
        let r = g.rate_bytes_per_hour(0, SimTime::from_hours(3));
        assert!((r - 500.0e6).abs() < 1.0);
    }

    #[test]
    fn plateau_integration_matches_rate_times_time() {
        let g = growth();
        // NA plateau: 10:00–15:00 local = 15:00–20:00 GMT. Integrate one
        // plateau hour: exactly 9 GB.
        let bytes = g.generated_bytes(0, SimTime::from_hours(16), SimTime::from_hours(17));
        assert!((bytes - 9000.0e6).abs() / 9000.0e6 < 1e-9, "got {bytes}");
        // 50 MB average files -> 180 files.
        let files = g.generated_files(0, SimTime::from_hours(16), SimTime::from_hours(17));
        assert!((files - 180.0).abs() < 1e-6);
    }

    #[test]
    fn ramp_integration_is_half_plateau() {
        let g = growth();
        // NA ramp-up 8:00–10:00 local = 13:00–15:00 GMT: averages
        // (base+peak)/2 per hour.
        let bytes = g.generated_bytes(0, SimTime::from_hours(13), SimTime::from_hours(15));
        let expected = 2.0 * (500.0e6 + 9000.0e6) / 2.0;
        assert!((bytes - expected).abs() / expected < 1e-3, "got {bytes}");
    }

    #[test]
    fn empty_and_inverted_windows() {
        let g = growth();
        let t = SimTime::from_hours(5);
        assert_eq!(g.generated_bytes(0, t, t), 0.0);
        assert_eq!(g.generated_bytes(0, SimTime::from_hours(6), t), 0.0);
    }

    #[test]
    fn site_lookup() {
        let g = growth();
        assert_eq!(g.site_index("EU"), Some(1));
        assert_eq!(g.site_index("MARS"), None);
        assert_eq!(g.site_count(), 2);
    }
}

// Checkpoint support.
gdisim_snap::snap_struct!(GrowthCurve { site, curve });
gdisim_snap::snap_struct!(DataGrowth {
    sites,
    avg_file_bytes,
});
