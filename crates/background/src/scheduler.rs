//! Background-process scheduling and volume accounting.
//!
//! One scheduler instance manages the SR and IB daemons of every master
//! data center (one master in Ch. 6; all six in Ch. 7):
//!
//! * **SYNCHREP** launches every `sync_interval` (`ΔT_SR = 15 min`),
//!   whether or not earlier instances are still running ("multiple
//!   independent SYNCHREP operations will overlap"). Each instance
//!   handles the file subset modified during its interval, split across
//!   masters by the ownership matrix.
//! * **INDEXBUILD** launches `ib_gap` (`ΔT_IB = 5 min`) after the
//!   previous build *completed*, over everything pulled since — "only
//!   one INDEXBUILD operation can run at a time", which is what makes
//!   backlog accumulate through the peak (Fig. 6-14).

use crate::growth::DataGrowth;
use crate::indexbuild::{build_indexbuild, IndexCosts};
use crate::synchrep::{build_synchrep, SyncCosts};
use gdisim_types::{SimDuration, SimTime};
use gdisim_workload::{AccessPatternMatrix, OperationTemplate};
use serde::{Deserialize, Serialize};

/// Which background process a launch belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BackgroundKind {
    /// Synchronization & Replication.
    SyncRep,
    /// Index Build.
    IndexBuild,
}

/// How new data is split among master data centers.
///
/// `fraction(created_at, master)` gives the share of files created at a
/// site that fall under a master's ownership. The consolidated
/// infrastructure assigns everything to the single master; the multiple
/// master infrastructure uses the access-pattern matrix — a file created
/// at a site is owned per that site's access distribution (§7.2.1: files
/// belong to the data center closest to the largest volume of requests).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OwnershipSplit {
    masters: Vec<usize>,
    /// `rows[site][master_pos]`, row-stochastic.
    rows: Vec<Vec<f64>>,
}

impl OwnershipSplit {
    /// Everything belongs to one master.
    pub fn single_master(site_count: usize, master: usize) -> Self {
        assert!(master < site_count, "master index out of range");
        OwnershipSplit {
            masters: vec![master],
            rows: (0..site_count).map(|_| vec![1.0]).collect(),
        }
    }

    /// Ownership follows the access-pattern matrix: every site is a
    /// master and a file created at site `s` is owned by master `m` with
    /// the fraction `apm[s][m]`.
    pub fn from_access_pattern(apm: &AccessPatternMatrix) -> Self {
        let n = apm.sites().len();
        OwnershipSplit {
            masters: (0..n).collect(),
            rows: (0..n)
                .map(|s| (0..n).map(|m| apm.fraction(s, m)).collect())
                .collect(),
        }
    }

    /// The master site indices.
    pub fn masters(&self) -> &[usize] {
        &self.masters
    }

    /// Share of data created at `site` owned by the master at position
    /// `master_pos` in [`Self::masters`].
    pub fn fraction(&self, site: usize, master_pos: usize) -> f64 {
        self.rows[site][master_pos]
    }
}

/// Scheduler configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// `ΔT_SR`: SYNCHREP period (15 min in the case studies).
    pub sync_interval: SimDuration,
    /// `ΔT_IB`: gap between an INDEXBUILD completion and the next launch
    /// (5 min in the case studies).
    pub ib_gap: SimDuration,
    /// SYNCHREP control-plane costs.
    pub sync_costs: SyncCosts,
    /// INDEXBUILD costs.
    pub index_costs: IndexCosts,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            sync_interval: SimDuration::from_mins(15),
            ib_gap: SimDuration::from_mins(5),
            sync_costs: SyncCosts::default(),
            index_costs: IndexCosts::default(),
        }
    }
}

/// One background operation ready to launch.
#[derive(Debug, Clone)]
pub struct BackgroundLaunch {
    /// SR or IB.
    pub kind: BackgroundKind,
    /// The master site (index into the growth model's site list).
    pub master_site: usize,
    /// The cascade to execute.
    pub template: OperationTemplate,
    /// Site indices bound to `Site::Extra(i)` (the slaves, for SR).
    pub extra_sites: Vec<usize>,
    /// Pull volume per extra site, bytes (SR only; parallel to
    /// `extra_sites`).
    pub pull_bytes: Vec<f64>,
    /// Push volume per extra site, bytes (SR only).
    pub push_bytes: Vec<f64>,
    /// Volume indexed, bytes (IB only).
    pub volume_bytes: f64,
}

#[derive(Debug, Clone)]
struct MasterState {
    site: usize,
    last_sync: SimTime,
    next_sync: SimTime,
    ib_pending_bytes: f64,
    ib_running: bool,
    ib_next_allowed: SimTime,
}

/// The background-process scheduler.
#[derive(Debug, Clone)]
pub struct BackgroundScheduler {
    growth: DataGrowth,
    split: OwnershipSplit,
    config: SchedulerConfig,
    masters: Vec<MasterState>,
}

impl BackgroundScheduler {
    /// Creates a scheduler; the first SYNCHREP of each master fires one
    /// full interval after time zero.
    pub fn new(growth: DataGrowth, split: OwnershipSplit, config: SchedulerConfig) -> Self {
        let masters = split
            .masters()
            .iter()
            .map(|&site| MasterState {
                site,
                last_sync: SimTime::ZERO,
                next_sync: SimTime::ZERO + config.sync_interval,
                ib_pending_bytes: 0.0,
                ib_running: false,
                ib_next_allowed: SimTime::ZERO + config.ib_gap,
            })
            .collect();
        BackgroundScheduler {
            growth,
            split,
            config,
            masters,
        }
    }

    /// The growth model (for reporting).
    pub fn growth(&self) -> &DataGrowth {
        &self.growth
    }

    /// Returns every background operation due at or before `now`.
    pub fn poll(&mut self, now: SimTime) -> Vec<BackgroundLaunch> {
        let mut launches = Vec::new();
        for pos in 0..self.masters.len() {
            // SYNCHREP: catch up on every elapsed interval.
            while self.masters[pos].next_sync <= now {
                let (from, to) = (self.masters[pos].last_sync, self.masters[pos].next_sync);
                launches.push(self.launch_sync(pos, from, to));
                let m = &mut self.masters[pos];
                m.last_sync = m.next_sync;
                m.next_sync += self.config.sync_interval;
            }
            // INDEXBUILD: one at a time, gap after completion.
            let m = &self.masters[pos];
            if !m.ib_running && m.ib_next_allowed <= now && m.ib_pending_bytes > 0.0 {
                let volume = self.masters[pos].ib_pending_bytes;
                self.masters[pos].ib_pending_bytes = 0.0;
                self.masters[pos].ib_running = true;
                launches.push(BackgroundLaunch {
                    kind: BackgroundKind::IndexBuild,
                    master_site: self.masters[pos].site,
                    template: build_indexbuild(volume, &self.config.index_costs),
                    extra_sites: Vec::new(),
                    pull_bytes: Vec::new(),
                    push_bytes: Vec::new(),
                    volume_bytes: volume,
                });
            }
        }
        launches
    }

    fn launch_sync(&mut self, pos: usize, from: SimTime, to: SimTime) -> BackgroundLaunch {
        let master_site = self.masters[pos].site;
        let slaves: Vec<usize> = (0..self.growth.site_count())
            .filter(|s| *s != master_site)
            .collect();

        // Pull: new data created at each slave that this master owns.
        let pull_bytes: Vec<f64> = slaves
            .iter()
            .map(|&s| self.growth.generated_bytes(s, from, to) * self.split.fraction(s, pos))
            .collect();
        // The master's own new (owned) data needs no pull but is pushed.
        let master_new = self.growth.generated_bytes(master_site, from, to)
            * self.split.fraction(master_site, pos);
        let total_owned: f64 = pull_bytes.iter().sum::<f64>() + master_new;

        // Push: each slave receives everything new except what it created
        // itself.
        let push_bytes: Vec<f64> = slaves
            .iter()
            .zip(&pull_bytes)
            .map(|(_, own_contribution)| total_owned - own_contribution)
            .collect();

        // Everything pulled or locally created becomes index backlog.
        self.masters[pos].ib_pending_bytes += total_owned;

        BackgroundLaunch {
            kind: BackgroundKind::SyncRep,
            master_site,
            template: build_synchrep(&pull_bytes, &push_bytes, &self.config.sync_costs),
            extra_sites: slaves,
            pull_bytes,
            push_bytes,
            volume_bytes: total_owned,
        }
    }

    /// The earliest time any master has work due: the next SYNCHREP
    /// launch, or — when a build is allowed and backlog is pending — the
    /// next INDEXBUILD gate. `None` only for a scheduler with no
    /// masters. A poll before this time returns nothing, which is what
    /// lets the engine's timer wheel skip the per-step scan; an
    /// INDEXBUILD completion can pull the horizon closer, so callers
    /// must re-ask after [`Self::poll`] and
    /// [`Self::on_indexbuild_complete`].
    pub fn next_due(&self) -> Option<SimTime> {
        self.masters
            .iter()
            .flat_map(|m| {
                let ib = (!m.ib_running && m.ib_pending_bytes > 0.0).then_some(m.ib_next_allowed);
                std::iter::once(m.next_sync).chain(ib)
            })
            .min()
    }

    /// Notifies the scheduler that a master's INDEXBUILD completed.
    pub fn on_indexbuild_complete(&mut self, master_site: usize, now: SimTime) {
        let m = self
            .masters
            .iter_mut()
            .find(|m| m.site == master_site)
            .expect("completion from an unknown master");
        debug_assert!(m.ib_running, "completion without a running build");
        m.ib_running = false;
        m.ib_next_allowed = now + self.config.ib_gap;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::growth::GrowthCurve;
    use gdisim_types::units::mb;
    use gdisim_workload::DiurnalCurve;

    fn growth3() -> DataGrowth {
        DataGrowth {
            sites: ["NA", "EU", "AUS"]
                .iter()
                .enumerate()
                .map(|(i, s)| GrowthCurve {
                    site: (*s).into(),
                    // Constant growth for predictable arithmetic:
                    // 600/300/100 MB per hour.
                    curve: DiurnalCurve {
                        tz_offset_hours: 0.0,
                        base: [600.0, 300.0, 100.0][i],
                        peak: [600.0, 300.0, 100.0][i],
                        ramp_up_start: 0.0,
                        ramp_up_end: 0.0,
                        ramp_down_start: 24.0,
                        ramp_down_end: 24.0,
                    }
                    .into(),
                })
                .collect(),
            avg_file_bytes: mb(50.0),
        }
    }

    fn mins(m: u64) -> SimTime {
        SimTime::from_secs(m * 60)
    }

    fn config() -> SchedulerConfig {
        SchedulerConfig {
            sync_interval: SimDuration::from_mins(15),
            ib_gap: SimDuration::from_mins(5),
            ..SchedulerConfig::default()
        }
    }

    #[test]
    fn sync_fires_every_interval() {
        let split = OwnershipSplit::single_master(3, 0);
        let mut sched = BackgroundScheduler::new(growth3(), split, config());
        assert!(sched.poll(mins(10)).is_empty());
        let launches = sched.poll(mins(15));
        // The SR fires, and its backlog immediately admits the first IB
        // (the 5-minute gate opened at t = 5 min).
        let srs: Vec<_> = launches
            .iter()
            .filter(|l| l.kind == BackgroundKind::SyncRep)
            .collect();
        assert_eq!(srs.len(), 1);
        // Pull volumes: 15 min of EU (300 MB/h) and AUS (100 MB/h).
        let pulls = &srs[0].pull_bytes;
        assert!((pulls[0] - 75.0e6).abs() < 1e4, "EU pull {}", pulls[0]);
        assert!((pulls[1] - 25.0e6).abs() < 1e4, "AUS pull {}", pulls[1]);
        // Push to EU = total(250 MB) - EU's own 75 MB = 175 MB.
        assert!((srs[0].push_bytes[0] - 175.0e6).abs() < 1e4);
    }

    #[test]
    fn missed_intervals_catch_up() {
        let split = OwnershipSplit::single_master(3, 0);
        let mut sched = BackgroundScheduler::new(growth3(), split, config());
        // Poll only at t = 45 min: three SYNCHREPs are due (plus one IB
        // for the backlog accumulated by the first SR).
        let launches = sched.poll(mins(45));
        let srs = launches
            .iter()
            .filter(|l| l.kind == BackgroundKind::SyncRep)
            .count();
        assert_eq!(srs, 3);
    }

    #[test]
    fn indexbuild_waits_for_completion_gap() {
        let split = OwnershipSplit::single_master(3, 0);
        let mut sched = BackgroundScheduler::new(growth3(), split, config());
        // SR at 15 min accrues backlog; IB launches in the same poll
        // (ib_next_allowed = 5 min < 15 min).
        let launches = sched.poll(mins(15));
        let ib: Vec<_> = launches
            .iter()
            .filter(|l| l.kind == BackgroundKind::IndexBuild)
            .collect();
        assert_eq!(ib.len(), 1);
        // Volume = full 15-minute global growth (single master owns all):
        // 1000 MB/h * 0.25 h.
        assert!(
            (ib[0].volume_bytes - 250.0e6).abs() < 1e4,
            "{}",
            ib[0].volume_bytes
        );

        // While running, no further IB launches even with backlog.
        sched.poll(mins(30));
        let more = sched.poll(mins(31));
        assert!(more.iter().all(|l| l.kind != BackgroundKind::IndexBuild));

        // After completion + gap, the next IB covers the accumulated
        // backlog.
        sched.on_indexbuild_complete(0, mins(32));
        assert!(sched.poll(mins(36)).is_empty(), "gap not elapsed");
        let after = sched.poll(mins(37));
        assert_eq!(after.len(), 1);
        assert_eq!(after[0].kind, BackgroundKind::IndexBuild);
        assert!((after[0].volume_bytes - 250.0e6).abs() < 1e4);
    }

    #[test]
    fn next_due_tracks_sync_and_indexbuild_gates() {
        let split = OwnershipSplit::single_master(3, 0);
        let mut sched = BackgroundScheduler::new(growth3(), split, config());
        // Fresh scheduler: nothing pending, the first SR is the horizon.
        assert_eq!(sched.next_due(), Some(mins(15)));
        // Polls before the horizon launch nothing and do not move it.
        assert!(sched.poll(mins(10)).is_empty());
        assert_eq!(sched.next_due(), Some(mins(15)));
        // The first poll at 15 min launches SR + IB; the IB is now
        // running, so only the next SR remains due.
        let launches = sched.poll(mins(15));
        assert_eq!(launches.len(), 2);
        assert_eq!(sched.next_due(), Some(mins(30)));
        // SR at 30 min accrues backlog but the build still runs: the
        // horizon stays at the next SR until the completion gap opens.
        sched.poll(mins(30));
        assert_eq!(sched.next_due(), Some(mins(45)));
        sched.on_indexbuild_complete(0, mins(32));
        assert_eq!(sched.next_due(), Some(mins(37)), "IB gate pulled in");
    }

    #[test]
    fn multimaster_splits_volumes() {
        let apm = AccessPatternMatrix::new(
            ["NA", "EU", "AUS"].map(String::from).to_vec(),
            vec![
                vec![0.8, 0.15, 0.05],
                vec![0.2, 0.75, 0.05],
                vec![0.3, 0.2, 0.5],
            ],
        );
        let split = OwnershipSplit::from_access_pattern(&apm);
        assert_eq!(split.masters().len(), 3);
        let mut sched = BackgroundScheduler::new(growth3(), split, config());
        let launches = sched.poll(mins(15));
        let srs: Vec<_> = launches
            .iter()
            .filter(|l| l.kind == BackgroundKind::SyncRep)
            .collect();
        assert_eq!(srs.len(), 3, "every master runs its own SR");
        // NA's master pulls only its owned share of EU and AUS data:
        // EU 75 MB * 0.2 + AUS 25 MB * 0.3.
        let na_sr = srs.iter().find(|l| l.master_site == 0).unwrap();
        assert!((na_sr.pull_bytes[0] - 15.0e6).abs() < 1e4);
        assert!((na_sr.pull_bytes[1] - 7.5e6).abs() < 1e4);
        // Aggregate SR volume across masters equals the single-master
        // volume: ownership partitions the data, it doesn't shrink it.
        let total: f64 = srs.iter().map(|l| l.volume_bytes).sum();
        assert!((total - 250.0e6).abs() < 1e4, "{total}");
    }
}

// Checkpoint support.
gdisim_snap::snap_enum!(BackgroundKind {
    0 => SyncRep,
    1 => IndexBuild,
});
gdisim_snap::snap_struct!(OwnershipSplit { masters, rows });
gdisim_snap::snap_struct!(SchedulerConfig {
    sync_interval,
    ib_gap,
    sync_costs,
    index_costs,
});
gdisim_snap::snap_struct!(MasterState {
    site,
    last_sync,
    next_sync,
    ib_pending_bytes,
    ib_running,
    ib_next_allowed,
});
gdisim_snap::snap_struct!(BackgroundScheduler {
    growth,
    split,
    config,
    masters,
});
