//! The SYNCHREP operation (Fig. 6-8).
//!
//! A daemon `R` at the master queries `Tdb` (via `Tapp`) for the list of
//! modified files, then runs two phases: **Pull** — every slave's new
//! files are copied to the master's file tier, all slaves concurrently —
//! and **Push** — the master scatters each new file to every data center
//! except its creator, again concurrently. A final database pass records
//! the new replica locations.

use gdisim_types::RVec;
use gdisim_types::TierKind;
use gdisim_workload::{CascadeStep, Endpoint, Holon, OperationTemplate, Site};
use serde::{Deserialize, Serialize};

/// Cost coefficients for SYNCHREP's control-plane messages.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyncCosts {
    /// Cycles for each daemon↔app control message.
    pub control_cycles: f64,
    /// Cycles per modified-file-list database query.
    pub query_cycles: f64,
    /// Database cycles per byte synchronized (bookkeeping; tiny).
    pub db_cycles_per_byte: f64,
    /// Control message size in bytes.
    pub control_bytes: f64,
}

impl Default for SyncCosts {
    fn default() -> Self {
        SyncCosts {
            control_cycles: 50e6,
            query_cycles: 400e6,
            db_cycles_per_byte: 0.002,
            control_bytes: 256e3,
        }
    }
}

fn daemon() -> Endpoint {
    // The daemon process runs inside the master data center; it behaves
    // like a (lightweight) client holon located there.
    Endpoint {
        holon: Holon::Client,
        site: Site::Master,
    }
}

fn app() -> Endpoint {
    Endpoint::tier(TierKind::App, Site::Master)
}

fn db() -> Endpoint {
    Endpoint::tier(TierKind::Db, Site::Master)
}

fn master_fs() -> Endpoint {
    Endpoint::tier(TierKind::Fs, Site::Master)
}

fn slave_fs(i: usize) -> Endpoint {
    Endpoint::tier(TierKind::Fs, Site::Extra(i as u8))
}

/// Builds one SYNCHREP instance.
///
/// `pull_bytes[i]` is the volume to pull from slave `i` (bound to
/// `Site::Extra(i)`), `push_bytes[i]` the volume to push to it. Zero
/// volumes skip their transfer message. The total synchronized volume
/// drives the database bookkeeping cost.
pub fn build_synchrep(
    pull_bytes: &[f64],
    push_bytes: &[f64],
    costs: &SyncCosts,
) -> OperationTemplate {
    assert_eq!(
        pull_bytes.len(),
        push_bytes.len(),
        "one pull and push volume per slave"
    );
    let total: f64 = pull_bytes.iter().sum();
    let mut steps = vec![
        // Daemon asks for the modified-file list.
        CascadeStep::seq(
            daemon(),
            app(),
            RVec::new(costs.control_cycles, costs.control_bytes, 0.0, 0.0),
        ),
        CascadeStep::seq(
            app(),
            db(),
            RVec::new(costs.query_cycles, costs.control_bytes, 0.0, 0.0),
        ),
        CascadeStep::seq(db(), app(), RVec::net(costs.control_bytes)),
        CascadeStep::seq(app(), daemon(), RVec::net(costs.control_bytes)),
    ];
    // Pull phase: all slaves concurrently. The destination (master Tfs)
    // receives and writes the bytes.
    let mut first_in_stage = true;
    for (i, &bytes) in pull_bytes.iter().enumerate() {
        if bytes <= 0.0 {
            continue;
        }
        let r = RVec::new(0.0, bytes, 0.0, bytes);
        steps.push(if first_in_stage {
            CascadeStep::seq(slave_fs(i), master_fs(), r)
        } else {
            CascadeStep::par(slave_fs(i), master_fs(), r)
        });
        first_in_stage = false;
    }
    // Version bookkeeping between phases.
    steps.push(CascadeStep::seq(
        app(),
        db(),
        RVec::new(
            costs.query_cycles + costs.db_cycles_per_byte * total,
            costs.control_bytes,
            0.0,
            0.0,
        ),
    ));
    // Push phase: scatter to all slaves concurrently.
    first_in_stage = true;
    for (i, &bytes) in push_bytes.iter().enumerate() {
        if bytes <= 0.0 {
            continue;
        }
        let r = RVec::new(0.0, bytes, 0.0, bytes);
        steps.push(if first_in_stage {
            CascadeStep::seq(master_fs(), slave_fs(i), r)
        } else {
            CascadeStep::par(master_fs(), slave_fs(i), r)
        });
        first_in_stage = false;
    }
    // Completion: record replica locations, notify the daemon.
    steps.push(CascadeStep::seq(
        app(),
        db(),
        RVec::cycles(costs.query_cycles),
    ));
    steps.push(CascadeStep::seq(
        app(),
        daemon(),
        RVec::net(costs.control_bytes),
    ));
    OperationTemplate::new("SYNCHREP", steps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pulls_and_pushes_form_parallel_stages() {
        let op = build_synchrep(&[1e9, 2e9, 3e9], &[4e9, 5e9, 6e9], &SyncCosts::default());
        let stages = op.stages();
        // 4 control + pull-stage + bookkeeping + push-stage + 2 tail = 9.
        assert_eq!(stages.len(), 9);
        let pull_stage = &stages[4];
        assert_eq!(pull_stage.len(), 3, "three concurrent pulls");
        let push_stage = &stages[6];
        assert_eq!(push_stage.len(), 3, "three concurrent pushes");
    }

    #[test]
    fn zero_volumes_are_skipped() {
        let op = build_synchrep(&[0.0, 2e9], &[1e9, 0.0], &SyncCosts::default());
        // Only one pull and one push message.
        let transfers: Vec<_> = op.steps.iter().filter(|s| s.r.net_bytes > 1e8).collect();
        assert_eq!(transfers.len(), 2);
    }

    #[test]
    fn wan_volume_matches_inputs() {
        let op = build_synchrep(&[1e9], &[2e9], &SyncCosts::default());
        // WAN bytes = transfers crossing sites: pull 1 GB + push 2 GB
        // (control messages stay inside the master site).
        assert!((op.wan_bytes() - 3e9).abs() < 1e6, "got {}", op.wan_bytes());
    }

    #[test]
    #[should_panic(expected = "one pull and push volume per slave")]
    fn mismatched_volumes_panic() {
        build_synchrep(&[1.0], &[1.0, 2.0], &SyncCosts::default());
    }
}

// Checkpoint support.
gdisim_snap::snap_struct!(SyncCosts {
    control_cycles,
    query_cycles,
    db_cycles_per_byte,
    control_bytes,
});
