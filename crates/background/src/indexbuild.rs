//! The INDEXBUILD operation (Fig. 6-9).
//!
//! A daemon `I` at the master collects the files flagged during SYNCHREP
//! pulls, streams them from the file tier to the index tier, computes the
//! text index and spatial snapshots — the step that is "not
//! parallelizable" because it must analyze relationships between
//! interrelated files (§6.3.3) — and registers the fresh index in the
//! database.

use gdisim_types::{RVec, TierKind};
use gdisim_workload::{CascadeStep, Endpoint, Holon, OperationTemplate, Site};
use serde::{Deserialize, Serialize};

/// Cost coefficients for the index build.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IndexCosts {
    /// Cycles for each daemon↔app control message.
    pub control_cycles: f64,
    /// Cycles per flagged-file-list database query.
    pub query_cycles: f64,
    /// Index-computation cycles per byte analyzed (dominates the
    /// operation: parsing, geometry tessellation, relationship analysis,
    /// snapshot generation — the paper's hour-scale builds over a few GB
    /// imply on the order of a thousand cycles per byte).
    pub cycles_per_byte: f64,
    /// Fraction of the analyzed volume written back as index data.
    pub index_size_fraction: f64,
    /// Control message size in bytes.
    pub control_bytes: f64,
}

impl Default for IndexCosts {
    fn default() -> Self {
        IndexCosts {
            control_cycles: 50e6,
            query_cycles: 400e6,
            cycles_per_byte: 700.0,
            index_size_fraction: 0.05,
            control_bytes: 256e3,
        }
    }
}

/// Builds one INDEXBUILD instance over `volume_bytes` of flagged files.
pub fn build_indexbuild(volume_bytes: f64, costs: &IndexCosts) -> OperationTemplate {
    assert!(volume_bytes >= 0.0, "volume must be non-negative");
    let daemon = Endpoint {
        holon: Holon::Client,
        site: Site::Master,
    };
    let app = Endpoint::tier(TierKind::App, Site::Master);
    let db = Endpoint::tier(TierKind::Db, Site::Master);
    let fs = Endpoint::tier(TierKind::Fs, Site::Master);
    let idx = Endpoint::tier(TierKind::Idx, Site::Master);
    let index_bytes = volume_bytes * costs.index_size_fraction;
    OperationTemplate::new(
        "INDEXBUILD",
        vec![
            // Collect the flagged file list.
            CascadeStep::seq(
                daemon,
                app,
                RVec::new(costs.control_cycles, costs.control_bytes, 0.0, 0.0),
            ),
            CascadeStep::seq(
                app,
                db,
                RVec::new(costs.query_cycles, costs.control_bytes, 0.0, 0.0),
            ),
            CascadeStep::seq(db, app, RVec::net(costs.control_bytes)),
            // Stream the flagged files from the file tier into the index
            // tier: the destination reads, stages and *analyzes* them —
            // the cycles term is the index computation itself.
            CascadeStep::seq(
                fs,
                idx,
                RVec::new(
                    costs.cycles_per_byte * volume_bytes,
                    volume_bytes,
                    0.0,
                    volume_bytes,
                ),
            ),
            // Write the fresh index back to the index tier's storage and
            // register it in the database.
            CascadeStep::seq(
                idx,
                db,
                RVec::new(costs.query_cycles, index_bytes, 0.0, index_bytes),
            ),
            CascadeStep::seq(app, daemon, RVec::net(costs.control_bytes)),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_cost_scales_with_volume() {
        let costs = IndexCosts::default();
        let control = build_indexbuild(0.0, &costs).total_r().cycles;
        let small = build_indexbuild(1e9, &costs);
        let large = build_indexbuild(10e9, &costs);
        // Above the fixed control-plane cost, compute scales linearly.
        let small_var = small.total_r().cycles - control;
        let large_var = large.total_r().cycles - control;
        assert!((large_var - 10.0 * small_var).abs() / large_var < 1e-9);
        assert!(large.total_r().disk_bytes > 9.0 * small.total_r().disk_bytes);
    }

    #[test]
    fn indexbuild_is_fully_sequential() {
        let op = build_indexbuild(5e9, &IndexCosts::default());
        // One stage per step: "indexing … might not be parallelizable".
        assert_eq!(op.stages().len(), op.steps.len());
    }

    #[test]
    fn all_traffic_stays_at_the_master() {
        let op = build_indexbuild(5e9, &IndexCosts::default());
        assert_eq!(op.wan_bytes(), 0.0);
    }

    #[test]
    fn zero_volume_build_is_control_plane_only() {
        let op = build_indexbuild(0.0, &IndexCosts::default());
        assert!(op.total_r().disk_bytes < 1.0);
        assert!(
            op.total_r().cycles > 0.0,
            "control messages still cost cycles"
        );
    }
}

// Checkpoint support.
gdisim_snap::snap_struct!(IndexCosts {
    control_cycles,
    query_cycles,
    cycles_per_byte,
    index_size_fraction,
    control_bytes,
});
