//! Background processes (§6.3.2, §6.4.3, Ch. 7).
//!
//! Distributed data infrastructures run daemon-initiated jobs alongside
//! client workloads: **Synchronization & Replication** (SR) propagates
//! file changes between data centers in Pull/Push phases, and **Index
//! Build** (IB) makes new data searchable. Both are modeled exactly like
//! client operations — message cascades with `R` arrays — but their
//! volumes derive from the data-growth curves, and their scheduling
//! policies differ: SR fires every `ΔT_SR` regardless of overlap, IB
//! fires `ΔT_IB` after the previous build *completes* (at most one at a
//! time), which is what produces IB's cumulative backlog effect in
//! Fig. 6-14.

#![warn(missing_docs)]

pub mod growth;
pub mod indexbuild;
pub mod scheduler;
pub mod synchrep;

pub use growth::{DataGrowth, GrowthCurve};
pub use indexbuild::{build_indexbuild, IndexCosts};
pub use scheduler::{
    BackgroundKind, BackgroundLaunch, BackgroundScheduler, OwnershipSplit, SchedulerConfig,
};
pub use synchrep::{build_synchrep, SyncCosts};
