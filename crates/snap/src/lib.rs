//! Exact-roundtrip binary snapshots for checkpoint/restore.
//!
//! The checkpoint subsystem (PR 9) must restore a [`Simulation`] to a
//! state whose continued run is **bit-identical** to the uninterrupted
//! one. JSON round-trips floats through decimal text and loses the
//! distinction between `-0.0` and `0.0` (and can perturb the last ulp),
//! so checkpoints use this little binary codec instead: every scalar is
//! written in a fixed-width little-endian encoding, floats travel as
//! their raw IEEE-754 bits, and collections carry explicit lengths.
//!
//! The [`Snap`] trait is deliberately symmetric — `save` and `load` are
//! always written next to each other (usually via [`snap_struct!`] /
//! [`snap_enum!`]) so a field added to one side cannot silently go
//! missing on the other: `load` consumes exactly the bytes `save`
//! produced or fails with a typed [`SnapError`].
//!
//! Unordered containers (`HashMap`, `HashSet`, `BinaryHeap`) are
//! serialized in sorted key order so the byte stream is canonical: two
//! equal states always produce identical checkpoint bytes, which lets
//! tests compare checkpoints directly.

#![warn(missing_docs)]

use std::collections::{BTreeMap, BinaryHeap, HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// Error produced when decoding a snapshot stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The stream ended before the value was complete.
    Eof {
        /// Bytes needed to finish the read.
        needed: usize,
        /// Bytes remaining in the stream.
        remaining: usize,
    },
    /// An enum tag byte did not match any known variant.
    BadTag {
        /// The type being decoded.
        ty: &'static str,
        /// The offending tag.
        tag: u8,
    },
    /// A length prefix was implausibly large for the remaining stream.
    BadLength {
        /// The declared element count.
        len: u64,
        /// Bytes remaining in the stream.
        remaining: usize,
    },
    /// A string was not valid UTF-8.
    BadUtf8,
    /// A decoded value violated a domain constraint.
    Invalid(&'static str),
}

impl std::fmt::Display for SnapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapError::Eof { needed, remaining } => write!(
                f,
                "snapshot stream truncated: needed {needed} bytes, {remaining} remain"
            ),
            SnapError::BadTag { ty, tag } => {
                write!(f, "unknown variant tag {tag} while decoding {ty}")
            }
            SnapError::BadLength { len, remaining } => write!(
                f,
                "implausible length {len} with only {remaining} bytes remaining"
            ),
            SnapError::BadUtf8 => write!(f, "snapshot string is not valid UTF-8"),
            SnapError::Invalid(what) => write!(f, "invalid snapshot value: {what}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// Sink for snapshot bytes.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes raw bytes with no length prefix (caller owns framing).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a collection length.
    pub fn put_len(&mut self, len: usize) {
        self.put_u64(len as u64);
    }
}

/// Cursor over snapshot bytes.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Wraps a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the stream is fully consumed.
    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Eof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one raw byte.
    pub fn take_u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads `n` raw bytes.
    pub fn take_raw(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        self.take(n)
    }

    /// Reads a collection length, sanity-checking it against the bytes
    /// remaining (every element costs at least one byte).
    pub fn take_len(&mut self) -> Result<usize, SnapError> {
        let len = self.take_u64()?;
        if len > self.remaining() as u64 {
            return Err(SnapError::BadLength {
                len,
                remaining: self.remaining(),
            });
        }
        Ok(len as usize)
    }
}

/// A type that can be saved to and restored from a snapshot stream with
/// exact (bit-identical) roundtrip fidelity.
pub trait Snap: Sized {
    /// Appends this value's encoding to `w`.
    fn save(&self, w: &mut SnapWriter);
    /// Decodes one value from `r`.
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError>;
}

/// Encodes a value into a standalone byte vector.
pub fn to_bytes<T: Snap>(value: &T) -> Vec<u8> {
    let mut w = SnapWriter::new();
    value.save(&mut w);
    w.into_bytes()
}

/// Decodes a value from a byte slice, requiring full consumption.
pub fn from_bytes<T: Snap>(bytes: &[u8]) -> Result<T, SnapError> {
    let mut r = SnapReader::new(bytes);
    let v = T::load(&mut r)?;
    if !r.is_done() {
        return Err(SnapError::Invalid("trailing bytes after value"));
    }
    Ok(v)
}

// ----- scalar impls --------------------------------------------------------

macro_rules! snap_uint {
    ($($ty:ty),*) => {$(
        impl Snap for $ty {
            fn save(&self, w: &mut SnapWriter) {
                w.put_u64(*self as u64);
            }
            fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
                let v = r.take_u64()?;
                <$ty>::try_from(v).map_err(|_| SnapError::Invalid(stringify!($ty)))
            }
        }
    )*};
}
snap_uint!(u16, u32, u64, usize);

impl Snap for u8 {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u8(*self);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.take_u8()
    }
}

macro_rules! snap_int {
    ($($ty:ty),*) => {$(
        impl Snap for $ty {
            fn save(&self, w: &mut SnapWriter) {
                w.put_u64(*self as i64 as u64);
            }
            fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
                let v = r.take_u64()? as i64;
                <$ty>::try_from(v).map_err(|_| SnapError::Invalid(stringify!($ty)))
            }
        }
    )*};
}
snap_int!(i32, i64, isize);

impl Snap for bool {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u8(u8::from(*self));
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(SnapError::BadTag { ty: "bool", tag }),
        }
    }
}

impl Snap for f64 {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u64(self.to_bits());
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(f64::from_bits(r.take_u64()?))
    }
}

impl Snap for f32 {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u32(self.to_bits());
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(f32::from_bits(r.take_u32()?))
    }
}

impl Snap for String {
    fn save(&self, w: &mut SnapWriter) {
        w.put_len(self.len());
        w.put_raw(self.as_bytes());
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let len = r.take_len()?;
        let bytes = r.take_raw(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapError::BadUtf8)
    }
}

// ----- container impls -----------------------------------------------------

impl<T: Snap> Snap for Option<T> {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.save(w);
            }
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::load(r)?)),
            tag => Err(SnapError::BadTag { ty: "Option", tag }),
        }
    }
}

impl<T: Snap> Snap for Vec<T> {
    fn save(&self, w: &mut SnapWriter) {
        w.put_len(self.len());
        for v in self {
            v.save(w);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let len = r.take_len()?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::load(r)?);
        }
        Ok(out)
    }
}

impl<T: Snap> Snap for VecDeque<T> {
    fn save(&self, w: &mut SnapWriter) {
        w.put_len(self.len());
        for v in self {
            v.save(w);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let len = r.take_len()?;
        let mut out = VecDeque::with_capacity(len);
        for _ in 0..len {
            out.push_back(T::load(r)?);
        }
        Ok(out)
    }
}

impl<T: Snap> Snap for Box<T> {
    fn save(&self, w: &mut SnapWriter) {
        (**self).save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Box::new(T::load(r)?))
    }
}

/// `Arc` snapshots by value: sharing is not preserved across a
/// checkpoint, which is fine for the engine's immutable shared payloads
/// (operation templates) — equal values behave identically.
impl<T: Snap> Snap for Arc<T> {
    fn save(&self, w: &mut SnapWriter) {
        (**self).save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Arc::new(T::load(r)?))
    }
}

impl<T: Snap> Snap for std::cmp::Reverse<T> {
    fn save(&self, w: &mut SnapWriter) {
        self.0.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(std::cmp::Reverse(T::load(r)?))
    }
}

impl Snap for std::ops::Range<usize> {
    fn save(&self, w: &mut SnapWriter) {
        self.start.save(w);
        self.end.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(usize::load(r)?..usize::load(r)?)
    }
}

macro_rules! snap_tuple {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Snap),+> Snap for ($($t,)+) {
            fn save(&self, w: &mut SnapWriter) {
                $(self.$n.save(w);)+
            }
            fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
                Ok(($($t::load(r)?,)+))
            }
        }
    )+};
}
snap_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E)
);

impl<T: Snap, const N: usize> Snap for [T; N] {
    fn save(&self, w: &mut SnapWriter) {
        for v in self {
            v.save(w);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let mut out = Vec::with_capacity(N);
        for _ in 0..N {
            out.push(T::load(r)?);
        }
        out.try_into()
            .map_err(|_| SnapError::Invalid("array length"))
    }
}

impl<K: Snap + Ord, V: Snap> Snap for BTreeMap<K, V> {
    fn save(&self, w: &mut SnapWriter) {
        w.put_len(self.len());
        for (k, v) in self {
            k.save(w);
            v.save(w);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let len = r.take_len()?;
        let mut out = BTreeMap::new();
        for _ in 0..len {
            let k = K::load(r)?;
            let v = V::load(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

/// `HashMap` entries are written in sorted key order so equal maps
/// produce identical bytes regardless of hasher state.
impl<K: Snap + Ord + Eq + std::hash::Hash, V: Snap> Snap for HashMap<K, V> {
    fn save(&self, w: &mut SnapWriter) {
        w.put_len(self.len());
        let mut keys: Vec<&K> = self.keys().collect();
        keys.sort_unstable();
        for k in keys {
            k.save(w);
            self[k].save(w);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let len = r.take_len()?;
        let mut out = HashMap::with_capacity(len);
        for _ in 0..len {
            let k = K::load(r)?;
            let v = V::load(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

/// `HashSet` members are written sorted, for the same canonical-bytes
/// reason as [`HashMap`].
impl<T: Snap + Ord + Eq + std::hash::Hash> Snap for HashSet<T> {
    fn save(&self, w: &mut SnapWriter) {
        w.put_len(self.len());
        let mut members: Vec<&T> = self.iter().collect();
        members.sort_unstable();
        for m in members {
            m.save(w);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let len = r.take_len()?;
        let mut out = HashSet::with_capacity(len);
        for _ in 0..len {
            out.insert(T::load(r)?);
        }
        Ok(out)
    }
}

/// `BinaryHeap` contents are written as a sorted vec; reloading pushes
/// them back, which rebuilds an equivalent heap (heaps compare by their
/// popped order, which only depends on the multiset of elements).
impl<T: Snap + Ord> Snap for BinaryHeap<T> {
    fn save(&self, w: &mut SnapWriter) {
        let mut items: Vec<&T> = self.iter().collect();
        items.sort_unstable();
        w.put_len(items.len());
        for v in items {
            v.save(w);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let len = r.take_len()?;
        let mut out = BinaryHeap::with_capacity(len);
        for _ in 0..len {
            out.push(T::load(r)?);
        }
        Ok(out)
    }
}

// ----- gdisim-types impls --------------------------------------------------

macro_rules! snap_newtype_u32 {
    ($($ty:ty),*) => {$(
        impl Snap for $ty {
            fn save(&self, w: &mut SnapWriter) {
                w.put_u32(self.0);
            }
            fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
                Ok(Self(r.take_u32()?))
            }
        }
    )*};
}
snap_newtype_u32!(
    gdisim_types::DcId,
    gdisim_types::TierId,
    gdisim_types::ServerId,
    gdisim_types::AgentId,
    gdisim_types::LinkId,
    gdisim_types::AppId,
    gdisim_types::OpTypeId
);

impl Snap for gdisim_types::SimTime {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u64(self.0);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(gdisim_types::SimTime(r.take_u64()?))
    }
}

impl Snap for gdisim_types::SimDuration {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u64(self.0);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(gdisim_types::SimDuration(r.take_u64()?))
    }
}

impl Snap for gdisim_types::TierKind {
    fn save(&self, w: &mut SnapWriter) {
        let tag = match self {
            gdisim_types::TierKind::App => 0u8,
            gdisim_types::TierKind::Db => 1,
            gdisim_types::TierKind::Fs => 2,
            gdisim_types::TierKind::Idx => 3,
        };
        w.put_u8(tag);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.take_u8()? {
            0 => Ok(gdisim_types::TierKind::App),
            1 => Ok(gdisim_types::TierKind::Db),
            2 => Ok(gdisim_types::TierKind::Fs),
            3 => Ok(gdisim_types::TierKind::Idx),
            tag => Err(SnapError::BadTag {
                ty: "TierKind",
                tag,
            }),
        }
    }
}

impl Snap for gdisim_types::RVec {
    fn save(&self, w: &mut SnapWriter) {
        self.cycles.save(w);
        self.net_bytes.save(w);
        self.mem_bytes.save(w);
        self.disk_bytes.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(gdisim_types::RVec {
            cycles: f64::load(r)?,
            net_bytes: f64::load(r)?,
            mem_bytes: f64::load(r)?,
            disk_bytes: f64::load(r)?,
        })
    }
}

// ----- derive-style macros -------------------------------------------------

/// Implements [`Snap`] for a named-field struct by saving/loading each
/// listed field in order. Every field must be listed — a mismatch shows
/// up as a compile error (missing field in the constructor).
#[macro_export]
macro_rules! snap_struct {
    ($ty:ty { $($f:ident),* $(,)? }) => {
        impl $crate::Snap for $ty {
            fn save(&self, w: &mut $crate::SnapWriter) {
                $( $crate::Snap::save(&self.$f, w); )*
            }
            fn load(r: &mut $crate::SnapReader<'_>) -> Result<Self, $crate::SnapError> {
                Ok(Self {
                    $( $f: $crate::Snap::load(r)?, )*
                })
            }
        }
    };
}

/// Implements [`Snap`] for an enum whose variants are unit or
/// named-field. Each variant gets an explicit, stable tag byte.
#[macro_export]
macro_rules! snap_enum {
    ($ty:ty { $( $tag:literal => $variant:ident $( { $($f:ident),* $(,)? } )? ),* $(,)? }) => {
        impl $crate::Snap for $ty {
            fn save(&self, w: &mut $crate::SnapWriter) {
                match self {
                    $( Self::$variant $( { $($f),* } )? => {
                        w.put_u8($tag);
                        $( $( $crate::Snap::save($f, w); )* )?
                    } )*
                }
            }
            fn load(r: &mut $crate::SnapReader<'_>) -> Result<Self, $crate::SnapError> {
                match r.take_u8()? {
                    $( $tag => Ok(Self::$variant $( { $($f: $crate::Snap::load(r)?),* } )? ), )*
                    tag => Err($crate::SnapError::BadTag { ty: stringify!($ty), tag }),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip_exactly() {
        for v in [0.0f64, -0.0, 1.5, f64::NAN, f64::MIN_POSITIVE, 1e300] {
            let got: f64 = from_bytes(&to_bytes(&v)).unwrap();
            assert_eq!(got.to_bits(), v.to_bits());
        }
        let v = (u64::MAX, -5i64, true, String::from("héllo"));
        let got: (u64, i64, bool, String) = from_bytes(&to_bytes(&v)).unwrap();
        assert_eq!(got, v);
    }

    #[test]
    fn containers_roundtrip() {
        let mut m = HashMap::new();
        m.insert(3u32, vec![1.0f64, 2.0]);
        m.insert(1u32, vec![]);
        let got: HashMap<u32, Vec<f64>> = from_bytes(&to_bytes(&m)).unwrap();
        assert_eq!(got, m);

        let mut h = BinaryHeap::new();
        h.push(std::cmp::Reverse((5u64, 1u64)));
        h.push(std::cmp::Reverse((2u64, 9u64)));
        let got: BinaryHeap<std::cmp::Reverse<(u64, u64)>> = from_bytes(&to_bytes(&h)).unwrap();
        assert_eq!(
            got.into_sorted_vec(),
            vec![
                std::cmp::Reverse((5u64, 1u64)),
                std::cmp::Reverse((2u64, 9u64))
            ]
        );
    }

    #[test]
    fn hashmap_bytes_are_canonical() {
        let mut a = HashMap::new();
        let mut b = HashMap::new();
        for k in 0..100u64 {
            a.insert(k, k * 2);
        }
        for k in (0..100u64).rev() {
            b.insert(k, k * 2);
        }
        assert_eq!(to_bytes(&a), to_bytes(&b));
    }

    #[test]
    fn truncation_is_a_typed_error() {
        let bytes = to_bytes(&vec![1u64, 2, 3]);
        let err = from_bytes::<Vec<u64>>(&bytes[..bytes.len() - 1]).unwrap_err();
        assert!(matches!(err, SnapError::Eof { .. }));
    }

    #[test]
    fn bogus_length_is_rejected() {
        let mut w = SnapWriter::new();
        w.put_u64(u64::MAX);
        let err = from_bytes::<Vec<u64>>(&w.into_bytes()).unwrap_err();
        assert!(matches!(err, SnapError::BadLength { .. }));
    }

    #[derive(Debug, PartialEq)]
    struct Demo {
        a: u64,
        b: Option<String>,
    }
    snap_struct!(Demo { a, b });

    #[derive(Debug, PartialEq)]
    enum DemoEnum {
        Unit,
        Named { x: u64, y: f64 },
    }
    snap_enum!(DemoEnum {
        0 => Unit,
        1 => Named { x, y },
    });

    #[test]
    fn macros_roundtrip() {
        let d = Demo {
            a: 7,
            b: Some("hi".into()),
        };
        assert_eq!(from_bytes::<Demo>(&to_bytes(&d)).unwrap(), d);
        for e in [DemoEnum::Unit, DemoEnum::Named { x: 1, y: -0.0 }] {
            let got = from_bytes::<DemoEnum>(&to_bytes(&e)).unwrap();
            match (&got, &e) {
                (DemoEnum::Named { y: g, .. }, DemoEnum::Named { y: w, .. }) => {
                    assert_eq!(g.to_bits(), w.to_bits());
                }
                _ => assert_eq!(got, e),
            }
        }
    }
}
