//! WAN route computation.
//!
//! Inter-continental messages traverse one or more WAN links, possibly
//! through relay hub sites (the paper routes Australia through the AS1
//! Asian hub). Routes are precomputed at build time as shortest paths by
//! total latency over the non-backup links; backup links exist in the
//! graph but carry no traffic unless explicitly activated — exactly the
//! paper's treatment of `L^{EU→AFR}` and `L^{EU→AS1}` ("redundant network
//! links that are used only in case of failure").

use crate::spec::WanLinkSpec;
use std::collections::{BinaryHeap, HashMap};

/// A computed route: the indices (into the WAN-link list) of the links a
/// message crosses, in order.
pub type Route = Vec<usize>;

/// Computes shortest-latency routes between every pair of sites.
///
/// `sites` is the full site list; `links` the WAN links (bidirectional).
/// When `use_backups` is false, backup links are excluded — the normal
/// operating mode. Returns a map from `(from_site_index, to_site_index)`
/// to the route; unreachable pairs are absent.
pub fn compute_routes(
    sites: &[&str],
    links: &[WanLinkSpec],
    use_backups: bool,
) -> HashMap<(usize, usize), Route> {
    compute_routes_excluding(sites, links, use_backups, &[])
}

/// Like [`compute_routes`], but treating the links whose indices appear
/// in `failed` as down. Used to re-route after a link failure — backup
/// links (if `use_backups`) take over exactly the paper's "secondary
/// links in case of failure" role.
pub fn compute_routes_excluding(
    sites: &[&str],
    links: &[WanLinkSpec],
    use_backups: bool,
    failed: &[usize],
) -> HashMap<(usize, usize), Route> {
    let index_of: HashMap<&str, usize> = sites.iter().enumerate().map(|(i, s)| (*s, i)).collect();

    // adjacency: site -> [(neighbor, link index, latency µs)]
    let mut adj: Vec<Vec<(usize, usize, u64)>> = vec![Vec::new(); sites.len()];
    for (li, l) in links.iter().enumerate() {
        if (l.backup && !use_backups) || failed.contains(&li) {
            continue;
        }
        let (Some(&a), Some(&b)) = (index_of.get(l.from.as_str()), index_of.get(l.to.as_str()))
        else {
            continue;
        };
        // Cost: latency, with a 1 µs floor so hop count breaks ties.
        let cost = l.link.latency.as_micros().max(1);
        adj[a].push((b, li, cost));
        adj[b].push((a, li, cost));
    }

    let mut routes = HashMap::new();
    for src in 0..sites.len() {
        // Dijkstra from src.
        let mut dist: Vec<u64> = vec![u64::MAX; sites.len()];
        let mut prev: Vec<Option<(usize, usize)>> = vec![None; sites.len()]; // (prev site, link idx)
        let mut heap = BinaryHeap::new();
        dist[src] = 0;
        heap.push(std::cmp::Reverse((0u64, src)));
        while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
            if d > dist[u] {
                continue;
            }
            for &(v, li, w) in &adj[u] {
                let nd = d.saturating_add(w);
                if nd < dist[v] {
                    dist[v] = nd;
                    prev[v] = Some((u, li));
                    heap.push(std::cmp::Reverse((nd, v)));
                }
            }
        }
        #[allow(clippy::needless_range_loop)] // dst is an index into three arrays
        for dst in 0..sites.len() {
            if dst == src || dist[dst] == u64::MAX {
                continue;
            }
            let mut path = Vec::new();
            let mut cur = dst;
            while cur != src {
                let (p, li) = prev[cur].expect("reachable node has a predecessor");
                path.push(li);
                cur = p;
            }
            path.reverse();
            routes.insert((src, dst), path);
        }
    }
    routes
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdisim_queueing::LinkSpec;
    use gdisim_types::units::mbps;
    use gdisim_types::SimDuration;

    fn wan(from: &str, to: &str, latency_ms: u64, backup: bool) -> WanLinkSpec {
        WanLinkSpec {
            from: from.into(),
            to: to.into(),
            link: LinkSpec::new(mbps(155.0), SimDuration::from_millis(latency_ms), 256),
            backup,
        }
    }

    #[test]
    fn direct_route_is_single_hop() {
        let sites = ["NA", "EU"];
        let links = [wan("NA", "EU", 40, false)];
        let routes = compute_routes(&sites, &links, false);
        assert_eq!(routes[&(0, 1)], vec![0]);
        assert_eq!(routes[&(1, 0)], vec![0]);
    }

    #[test]
    fn relayed_route_goes_through_hub() {
        // NA -- AS1 -- AUS: AUS reachable from NA only through the hub.
        let sites = ["NA", "AUS", "AS1"];
        let links = [wan("NA", "AS1", 80, false), wan("AS1", "AUS", 60, false)];
        let routes = compute_routes(&sites, &links, false);
        assert_eq!(routes[&(0, 1)], vec![0, 1]);
        assert_eq!(routes[&(1, 0)], vec![1, 0]);
    }

    #[test]
    fn lower_latency_path_wins() {
        // Two NA->EU paths: direct 100 ms, via hub 40 + 40 ms. Hub wins.
        let sites = ["NA", "EU", "HUB"];
        let links = [
            wan("NA", "EU", 100, false),
            wan("NA", "HUB", 40, false),
            wan("HUB", "EU", 40, false),
        ];
        let routes = compute_routes(&sites, &links, false);
        assert_eq!(routes[&(0, 1)], vec![1, 2]);
    }

    #[test]
    fn backup_links_excluded_by_default() {
        let sites = ["EU", "AFR", "AS1"];
        let links = [
            wan("EU", "AFR", 30, true), // backup: unused
            wan("EU", "AS1", 90, false),
            wan("AS1", "AFR", 50, false),
        ];
        let routes = compute_routes(&sites, &links, false);
        assert_eq!(
            routes[&(0, 1)],
            vec![1, 2],
            "must route around the backup link"
        );
        let with_backup = compute_routes(&sites, &links, true);
        assert_eq!(with_backup[&(0, 1)], vec![0], "backup used when activated");
    }

    #[test]
    fn unreachable_pairs_are_absent() {
        let sites = ["NA", "ISLAND"];
        let routes = compute_routes(&sites, &[], false);
        assert!(routes.is_empty());
    }

    #[test]
    fn excluding_a_cut_vertex_link_partitions_the_topology() {
        // A -- R -- B is a line: R is a cut vertex, and every A<->B path
        // crosses both links. Excluding either one must partition the
        // graph into {A, R} / {B} (or {A} / {R, B}) — reported as absent
        // pairs, never panicked on.
        let sites = ["A", "R", "B"];
        let links = [wan("A", "R", 40, false), wan("R", "B", 40, false)];

        let full = compute_routes_excluding(&sites, &links, false, &[]);
        assert_eq!(full.len(), 6, "all ordered pairs reachable");
        assert_eq!(full[&(0, 2)], vec![0, 1]);

        let cut_right = compute_routes_excluding(&sites, &links, false, &[1]);
        assert_eq!(cut_right[&(0, 1)], vec![0], "A-R survives");
        assert!(!cut_right.contains_key(&(0, 2)), "A cannot reach B");
        assert!(!cut_right.contains_key(&(2, 0)), "B cannot reach A");
        assert!(!cut_right.contains_key(&(1, 2)), "R cannot reach B");
        assert_eq!(cut_right.len(), 2, "only A<->R remains");

        let cut_left = compute_routes_excluding(&sites, &links, false, &[0]);
        assert_eq!(cut_left[&(1, 2)], vec![1], "R-B survives");
        assert!(!cut_left.contains_key(&(0, 1)), "A is isolated");
        assert_eq!(cut_left.len(), 2);

        // Excluding both links strands everyone.
        let none = compute_routes_excluding(&sites, &links, false, &[0, 1]);
        assert!(none.is_empty());
    }
}
