//! Infrastructure specifications — the operator-facing input format.
//!
//! The paper's notation `T^(a,b,c)` (servers, cores/server, GB/server),
//! `san^(s,b,c)` and `L^(a,b)` maps onto these structs. A complete
//! [`TopologySpec`] is one of the simulator's four inputs (Fig. 3-1:
//! software applications, background jobs, data centers, global topology).

use gdisim_queueing::{CpuSpec, LinkSpec, MemorySpec, NicSpec, RaidSpec, SanSpec, SwitchSpec};
use gdisim_types::TierKind;
use serde::{Deserialize, Serialize};

/// Storage attached to a tier's servers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TierStorageSpec {
    /// Each server has its own RAID.
    PerServerRaid(RaidSpec),
    /// All servers of the tier share one SAN.
    SharedSan(SanSpec),
    /// Diskless tier (pure compute / broker).
    None,
}

/// One homogeneous server tier: `T^(servers, cores, memory)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TierSpec {
    /// Functional role (`Tapp`, `Tdb`, `Tfs`, `Tidx`).
    pub kind: TierKind,
    /// Number of identical servers `a`.
    pub servers: u32,
    /// Per-server CPU.
    pub cpu: CpuSpec,
    /// Per-server memory.
    pub memory: MemorySpec,
    /// Per-server NIC.
    pub nic: NicSpec,
    /// Local link connecting each server to the data center switch.
    pub lan: LinkSpec,
    /// Tier storage.
    pub storage: TierStorageSpec,
}

/// How the local client population attaches to its data center.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClientAccessSpec {
    /// Aggregate access link between the client population and the DC
    /// switch (the paper's `L^{NA→NA}` client links).
    pub link: LinkSpec,
    /// Clock rate of a client workstation in cycles/second; client-side
    /// `Rp` runs without contention (every client has its own machine).
    pub client_clock_hz: f64,
}

/// A data center: tiers joined by a switch, plus the client attach point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataCenterSpec {
    /// Unique site name ("NA", "EU", …).
    pub name: String,
    /// Core switch interconnecting the tiers.
    pub switch: SwitchSpec,
    /// Server tiers.
    pub tiers: Vec<TierSpec>,
    /// Local client population attach point.
    pub clients: ClientAccessSpec,
}

impl DataCenterSpec {
    /// Total server count across tiers.
    pub fn total_servers(&self) -> u32 {
        self.tiers.iter().map(|t| t.servers).sum()
    }

    /// Total core count across tiers.
    pub fn total_cores(&self) -> u32 {
        self.tiers
            .iter()
            .map(|t| t.servers * t.cpu.total_cores())
            .sum()
    }

    /// The tier of the given kind, if present.
    pub fn tier(&self, kind: TierKind) -> Option<&TierSpec> {
        self.tiers.iter().find(|t| t.kind == kind)
    }
}

/// A WAN link between two sites (data centers or relay hubs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WanLinkSpec {
    /// Origin site name.
    pub from: String,
    /// Destination site name.
    pub to: String,
    /// Link characteristics (bandwidth, latency, connection cap).
    pub link: LinkSpec,
    /// Backup links exist in the topology but carry no traffic unless the
    /// primary path fails (the paper's `L^{EU→AFR}`, `L^{EU→AS1}`).
    pub backup: bool,
}

/// The full global topology: one of the simulator's four inputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopologySpec {
    /// Data centers.
    pub data_centers: Vec<DataCenterSpec>,
    /// Relay hub sites that carry WAN links but host no servers (the
    /// paper's Asian AS1/AS2 switch sites).
    pub relay_sites: Vec<String>,
    /// WAN links between sites.
    pub wan_links: Vec<WanLinkSpec>,
}

impl TopologySpec {
    /// All site names: data centers then relays.
    pub fn site_names(&self) -> Vec<&str> {
        self.data_centers
            .iter()
            .map(|d| d.name.as_str())
            .chain(self.relay_sites.iter().map(String::as_str))
            .collect()
    }

    /// Validates structural invariants: unique site names, links that
    /// reference known sites, at least one data center.
    pub fn validate(&self) -> Result<(), String> {
        if self.data_centers.is_empty() {
            return Err("topology needs at least one data center".into());
        }
        let names = self.site_names();
        let mut seen = std::collections::HashSet::new();
        for n in &names {
            if !seen.insert(*n) {
                return Err(format!("duplicate site name '{n}'"));
            }
        }
        for l in &self.wan_links {
            for end in [&l.from, &l.to] {
                if !seen.contains(end.as_str()) {
                    return Err(format!("WAN link references unknown site '{end}'"));
                }
            }
            if l.from == l.to {
                return Err(format!("WAN link loops on site '{}'", l.from));
            }
        }
        for dc in &self.data_centers {
            if dc.tiers.is_empty() {
                return Err(format!("data center '{}' has no tiers", dc.name));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdisim_types::units::{gbps, ghz};
    use gdisim_types::SimDuration;

    pub(crate) fn tiny_tier(kind: TierKind, servers: u32) -> TierSpec {
        TierSpec {
            kind,
            servers,
            cpu: CpuSpec::new(1, 4, ghz(2.5)),
            memory: MemorySpec::new(32e9, 0.2),
            nic: NicSpec::new(gbps(1.0)),
            lan: LinkSpec::new(gbps(1.0), SimDuration::from_millis(0), 256),
            storage: TierStorageSpec::None,
        }
    }

    fn tiny_dc(name: &str) -> DataCenterSpec {
        DataCenterSpec {
            name: name.into(),
            switch: SwitchSpec::new(gbps(10.0)),
            tiers: vec![tiny_tier(TierKind::App, 2), tiny_tier(TierKind::Fs, 1)],
            clients: ClientAccessSpec {
                link: LinkSpec::new(gbps(1.0), SimDuration::from_millis(1), 1024),
                client_clock_hz: ghz(2.0),
            },
        }
    }

    fn wan(from: &str, to: &str) -> WanLinkSpec {
        WanLinkSpec {
            from: from.into(),
            to: to.into(),
            link: LinkSpec::new(gbps(0.155), SimDuration::from_millis(40), 256),
            backup: false,
        }
    }

    #[test]
    fn totals() {
        let dc = tiny_dc("NA");
        assert_eq!(dc.total_servers(), 3);
        assert_eq!(dc.total_cores(), 12);
        assert!(dc.tier(TierKind::App).is_some());
        assert!(dc.tier(TierKind::Db).is_none());
    }

    #[test]
    fn validate_accepts_well_formed() {
        let t = TopologySpec {
            data_centers: vec![tiny_dc("NA"), tiny_dc("EU")],
            relay_sites: vec!["AS1".into()],
            wan_links: vec![wan("NA", "EU"), wan("NA", "AS1")],
        };
        assert!(t.validate().is_ok());
        assert_eq!(t.site_names(), vec!["NA", "EU", "AS1"]);
    }

    #[test]
    fn validate_rejects_duplicates_and_bad_links() {
        let dup = TopologySpec {
            data_centers: vec![tiny_dc("NA"), tiny_dc("NA")],
            relay_sites: vec![],
            wan_links: vec![],
        };
        assert!(dup.validate().unwrap_err().contains("duplicate"));

        let bad_link = TopologySpec {
            data_centers: vec![tiny_dc("NA")],
            relay_sites: vec![],
            wan_links: vec![wan("NA", "MARS")],
        };
        assert!(bad_link.validate().unwrap_err().contains("unknown site"));

        let self_loop = TopologySpec {
            data_centers: vec![tiny_dc("NA")],
            relay_sites: vec![],
            wan_links: vec![wan("NA", "NA")],
        };
        assert!(self_loop.validate().unwrap_err().contains("loops"));

        let empty = TopologySpec {
            data_centers: vec![],
            relay_sites: vec![],
            wan_links: vec![],
        };
        assert!(empty.validate().is_err());
    }

    #[test]
    fn spec_roundtrips_through_json() {
        let t = TopologySpec {
            data_centers: vec![tiny_dc("NA")],
            relay_sites: vec![],
            wan_links: vec![],
        };
        let json = serde_json::to_string(&t).expect("serialize");
        let back: TopologySpec = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(t, back);
    }
}

// Checkpoint support (retained at runtime for post-fault re-routing).
gdisim_snap::snap_struct!(WanLinkSpec {
    from,
    to,
    link,
    backup,
});
