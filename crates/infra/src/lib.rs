//! The holonic infrastructure model (§3.3.2, Fig. 3-2 and 3-9).
//!
//! A global data infrastructure is a holarchy: hardware component *agents*
//! (CPU, memory, NIC, RAID, SAN, switch, link) are encapsulated into
//! *server* holons, servers into *tier* holons, tiers into *data center*
//! holons, and data centers are interconnected by WAN links — possibly
//! through relay hub sites (the paper's AS1/AS2 switches) — to form the
//! global topology.
//!
//! This crate provides:
//!
//! * serde-friendly **specifications** ([`spec`]) describing an
//!   infrastructure the way an operator would: tiers × servers × hardware
//!   datasheets plus the WAN graph;
//! * the **component registry** ([`component`]) — a flat, densely indexed
//!   pool of runtime queue models the engine ticks;
//! * the **builder** ([`build`]) that turns a [`spec::TopologySpec`] into a
//!   runtime [`Infrastructure`], including shortest-path WAN route
//!   precomputation ([`routing`]).

#![warn(missing_docs)]

pub mod active;
pub mod build;
pub mod component;
pub mod routing;
pub mod spec;

pub use active::ActiveSet;
pub use build::{DataCenter, Infrastructure, LoadBalancing, Server, ServerRef, Tier};
pub use component::{AgentSlot, Component, ComponentKind, ComponentMeta};
pub use spec::{
    ClientAccessSpec, DataCenterSpec, TierSpec, TierStorageSpec, TopologySpec, WanLinkSpec,
};
