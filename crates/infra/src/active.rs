//! Active-agent-set bookkeeping for the engine's fast path.
//!
//! Most agents in a large topology are idle at any instant: a mostly-idle
//! mid-size deployment keeps thousands of component queues empty for long
//! stretches. Ticking an empty queue only records idle time on its
//! meters, so the engine can skip it entirely and credit the idle span in
//! one bulk, bit-for-bit-identical addition later (see
//! `Station::account_idle`). [`ActiveSet`] tracks which agents currently
//! hold work and since when the idle ones have been empty.
//!
//! The member list is kept **incrementally sorted**: activation
//! binary-inserts (with an O(1) append fast path for the common
//! ascending-activation case) and the retire sweep compacts in one
//! order-preserving pass, so a snapshot is a plain copy — no per-step
//! `sort_unstable`.
//!
//! Invariants maintained together with the engine:
//!
//! * an agent is a member iff its `in_system() > 0` *or* it received a
//!   token since the last retire sweep;
//! * `members` is strictly ascending at all times (each agent appears at
//!   most once) — phase 2's non-aliasing argument and phase 3's
//!   deterministic drain order both rest on this;
//! * `idle_from[i]` is meaningful only for non-members and records the
//!   tick boundary at which agent `i` last went (or started) empty;
//! * non-members always have empty outboxes — an active agent's outbox is
//!   drained every step, and membership is only dropped right after a
//!   drain.

use gdisim_types::{SimDuration, SimTime};

/// Dense membership bookkeeping: a flag per agent plus a member list
/// kept in strictly ascending agent order.
#[derive(Clone)]
pub struct ActiveSet {
    flags: Vec<bool>,
    members: Vec<u32>,
    idle_from: Vec<SimTime>,
}

impl ActiveSet {
    /// Creates a set over `n` agents, all idle since time zero.
    pub fn new(n: usize) -> Self {
        ActiveSet {
            flags: vec![false; n],
            members: Vec::new(),
            idle_from: vec![SimTime::ZERO; n],
        }
    }

    /// Whether the agent is currently a member.
    pub fn contains(&self, agent: usize) -> bool {
        self.flags[agent]
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether no agent is active.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Marks the agent active, returning `Some(idle_since)` when this
    /// call changed the membership (the caller must then credit the idle
    /// span ending now) and `None` when the agent was already a member.
    ///
    /// Insertion keeps `members` sorted: an agent above the current
    /// maximum is appended (routing visits agents in ascending order, so
    /// this is the common case); anything else binary-searches its slot.
    pub fn activate(&mut self, agent: usize) -> Option<SimTime> {
        if self.flags[agent] {
            return None;
        }
        self.flags[agent] = true;
        let a = agent as u32;
        match self.members.last() {
            Some(&last) if last > a => {
                let pos = self.members.partition_point(|&m| m < a);
                self.members.insert(pos, a);
            }
            _ => self.members.push(a),
        }
        Some(self.idle_from[agent])
    }

    /// The members in strictly ascending agent order, copied into `buf`.
    /// Ascending order is what keeps phase-2 iteration and the phase-3
    /// outbox drain deterministic regardless of activation order.
    pub fn snapshot_into(&self, buf: &mut Vec<u32>) {
        buf.clear();
        buf.extend_from_slice(&self.members);
    }

    /// Drops every member for which `is_idle` returns true, stamping its
    /// idle start at `t`. `is_idle` receives the agent index. One
    /// order-preserving compaction pass, so the ascending invariant
    /// survives without a re-sort.
    pub fn retire<F: FnMut(usize) -> bool>(&mut self, t: SimTime, mut is_idle: F) {
        let flags = &mut self.flags;
        let idle_from = &mut self.idle_from;
        self.members.retain(|&m| {
            let agent = m as usize;
            if is_idle(agent) {
                flags[agent] = false;
                idle_from[agent] = t;
                false
            } else {
                true
            }
        });
    }

    /// Calls `credit(agent, ticks)` for every non-member whose idle span
    /// `[max(idle_from, epoch), t)` is non-empty, where `ticks` is that
    /// span divided by `dt`. Used at collection time so skipped agents
    /// still account the full interval; `epoch` is the previous
    /// collection boundary (idle time before it was already credited).
    pub fn credit_idle<F: FnMut(usize, u64)>(
        &self,
        epoch: SimTime,
        t: SimTime,
        dt: SimDuration,
        mut credit: F,
    ) {
        for agent in 0..self.flags.len() {
            if self.flags[agent] {
                continue;
            }
            let from = self.idle_from[agent].max(epoch);
            if let Some(ticks) = ticks_between(from, t, dt) {
                credit(agent, ticks);
            }
        }
    }
}

/// Whole ticks between two tick boundaries; `None` when the span is empty.
///
/// # Panics
/// Debug-asserts that the span divides evenly: every activation,
/// retirement and collection happens on a tick boundary, so a remainder
/// means the engine lost alignment (which would break the bit-for-bit
/// idle-accounting argument).
pub fn ticks_between(from: SimTime, to: SimTime, dt: SimDuration) -> Option<u64> {
    if to <= from {
        return None;
    }
    let span = to.as_micros() - from.as_micros();
    let dt = dt.as_micros();
    debug_assert_eq!(span % dt, 0, "idle span must be whole ticks");
    Some(span / dt)
}

#[cfg(test)]
mod tests {
    use super::*;

    const DT: SimDuration = SimDuration::from_millis(10);

    #[test]
    fn activate_is_idempotent_and_reports_idle_start() {
        let mut s = ActiveSet::new(4);
        assert_eq!(s.activate(2), Some(SimTime::ZERO));
        assert_eq!(s.activate(2), None);
        assert!(s.contains(2));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn snapshot_is_ascending_regardless_of_activation_order() {
        let mut s = ActiveSet::new(8);
        for agent in [5, 1, 7, 0, 3] {
            s.activate(agent);
        }
        let mut buf = Vec::new();
        s.snapshot_into(&mut buf);
        assert_eq!(buf, vec![0, 1, 3, 5, 7]);
    }

    #[test]
    fn members_stay_sorted_after_every_single_operation() {
        // The list must be ascending *between* operations, not just at
        // snapshot time — phase 2 reads it without a sorting step.
        let mut s = ActiveSet::new(16);
        let mut buf = Vec::new();
        for agent in [9, 2, 11, 2, 0, 15, 7, 9, 3] {
            s.activate(agent);
            s.snapshot_into(&mut buf);
            let mut sorted = buf.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(buf, sorted, "unsorted after activating {agent}");
        }
        s.retire(SimTime::from_millis(10), |a| a % 2 == 1);
        s.snapshot_into(&mut buf);
        assert_eq!(buf, vec![0, 2]);
    }

    #[test]
    fn retire_drops_idle_members_and_stamps_time() {
        let mut s = ActiveSet::new(4);
        s.activate(0);
        s.activate(1);
        s.activate(3);
        let t = SimTime::from_millis(30);
        s.retire(t, |agent| agent != 1);
        let mut buf = Vec::new();
        s.snapshot_into(&mut buf);
        assert_eq!(buf, vec![1]);
        // Re-activating a retired agent reports the retire boundary.
        assert_eq!(s.activate(0), Some(t));
    }

    #[test]
    fn credit_idle_spans_whole_ticks_since_epoch() {
        let mut s = ActiveSet::new(3);
        s.activate(1); // members are never credited
        s.retire(SimTime::from_millis(20), |agent| agent == 1); // 1 idle from 20 ms
        let mut credited = Vec::new();
        s.credit_idle(
            SimTime::ZERO,
            SimTime::from_millis(50),
            DT,
            |agent, ticks| {
                credited.push((agent, ticks));
            },
        );
        // Agents 0 and 2 idle the full 5 ticks; agent 1 only the last 3.
        assert_eq!(credited, vec![(0, 5), (1, 3), (2, 5)]);
        // After a collection the epoch advances; earlier idle time is not
        // re-credited.
        let mut credited = Vec::new();
        s.credit_idle(
            SimTime::from_millis(50),
            SimTime::from_millis(70),
            DT,
            |agent, ticks| {
                credited.push((agent, ticks));
            },
        );
        assert_eq!(credited, vec![(0, 2), (1, 2), (2, 2)]);
    }

    #[test]
    fn ticks_between_handles_empty_and_whole_spans() {
        assert_eq!(
            ticks_between(SimTime::from_millis(10), SimTime::from_millis(10), DT),
            None
        );
        assert_eq!(
            ticks_between(SimTime::from_millis(10), SimTime::from_millis(40), DT),
            Some(3)
        );
    }
}

// Checkpoint support: the set's membership and idle-from stamps are
// load-bearing for the lazy idle-crediting fast path.
gdisim_snap::snap_struct!(ActiveSet {
    flags,
    members,
    idle_from,
});
