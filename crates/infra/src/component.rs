//! The flat component registry.
//!
//! Every hardware agent in the holarchy is stored in one dense vector and
//! addressed by [`gdisim_types::AgentId`]; the engine's hot loops iterate
//! that vector directly (H-Dispatch agent sets are contiguous slices of
//! it). [`Component`] is the closed set of agent types; [`ComponentMeta`]
//! carries the reporting labels (which data center, which tier, what name)
//! so collectors can group samples the way the paper's figures do.

use gdisim_queueing::discipline::InfiniteServer;
use gdisim_queueing::{
    CpuModel, JobToken, LinkModel, NicModel, RaidModel, SanModel, Station, SwitchModel,
};
use gdisim_types::{DcId, SimDuration, SimTime, TierKind};

/// What kind of hardware an agent models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComponentKind {
    /// Multi-socket multi-core CPU.
    Cpu,
    /// Network interface card.
    Nic,
    /// Data center switch.
    Switch,
    /// LAN or WAN link.
    Link,
    /// Per-server disk array.
    Raid,
    /// Tier-shared storage area network.
    San,
    /// Aggregated client population (infinite-server).
    ClientPool,
}

/// Reporting metadata for one agent.
#[derive(Debug, Clone)]
pub struct ComponentMeta {
    /// Agent kind.
    pub kind: ComponentKind,
    /// Owning data center (WAN links belong to their origin site).
    pub dc: DcId,
    /// Owning tier, when the agent sits inside one.
    pub tier: Option<TierKind>,
    /// Human-readable label ("cpu srv2 Tapp@NA", "L NA->EU", …).
    pub label: String,
}

/// A runtime hardware agent.
///
/// Variant sizes differ widely (a CPU model embeds per-socket queues, a
/// NIC is a single queue); boxing the large ones would add a pointer
/// chase to every tick of the hottest loop in the simulator, so the
/// registry deliberately stores the enum inline.
#[allow(clippy::large_enum_variant)]
#[derive(Clone)]
pub enum Component {
    /// CPU model (demand: cycles).
    Cpu(CpuModel),
    /// NIC model (demand: bytes).
    Nic(NicModel),
    /// Switch model (demand: bytes).
    Switch(SwitchModel),
    /// Link model (demand: bytes).
    Link(LinkModel),
    /// RAID model (demand: bytes).
    Raid(RaidModel),
    /// SAN model (demand: bytes).
    San(SanModel),
    /// Client population (demand: cycles).
    ClientPool(InfiniteServer),
}

impl Component {
    /// The agent kind.
    pub fn kind(&self) -> ComponentKind {
        match self {
            Component::Cpu(_) => ComponentKind::Cpu,
            Component::Nic(_) => ComponentKind::Nic,
            Component::Switch(_) => ComponentKind::Switch,
            Component::Link(_) => ComponentKind::Link,
            Component::Raid(_) => ComponentKind::Raid,
            Component::San(_) => ComponentKind::San,
            Component::ClientPool(_) => ComponentKind::ClientPool,
        }
    }

    /// Splits a hop's residence time baseline into `(service, wan)`
    /// seconds for optrace attribution: the nominal zero-contention
    /// service time for `demand` at this agent, plus the constant WAN
    /// propagation a link adds. Whatever a hop's measured residence
    /// exceeds this split by is attributed to queue wait.
    pub fn nominal_segments_secs(&self, demand: f64) -> (f64, f64) {
        match self {
            Component::Cpu(m) => (m.nominal_service_secs(demand), 0.0),
            Component::Nic(m) => (m.nominal_service_secs(demand), 0.0),
            Component::Switch(m) => (m.nominal_service_secs(demand), 0.0),
            Component::Link(m) => (m.nominal_service_secs(demand), m.propagation_secs()),
            Component::Raid(m) => (m.nominal_service_secs(demand), 0.0),
            Component::San(m) => (m.nominal_service_secs(demand), 0.0),
            Component::ClientPool(m) => (demand / m.rate(), 0.0),
        }
    }

    fn station(&mut self) -> &mut dyn Station {
        match self {
            Component::Cpu(m) => m,
            Component::Nic(m) => m,
            Component::Switch(m) => m,
            Component::Link(m) => m,
            Component::Raid(m) => m,
            Component::San(m) => m,
            Component::ClientPool(m) => m,
        }
    }
}

impl Station for Component {
    fn enqueue(&mut self, token: JobToken, demand: f64, now: SimTime) {
        self.station().enqueue(token, demand, now)
    }

    fn tick(&mut self, now: SimTime, dt: SimDuration, completed: &mut Vec<JobToken>) {
        self.station().tick(now, dt, completed)
    }

    fn account_idle(&mut self, ticks: u64, dt: SimDuration) {
        self.station().account_idle(ticks, dt)
    }

    fn collect_utilization(&mut self) -> f64 {
        self.station().collect_utilization()
    }

    fn in_system(&self) -> usize {
        match self {
            Component::Cpu(m) => m.in_system(),
            Component::Nic(m) => m.in_system(),
            Component::Switch(m) => m.in_system(),
            Component::Link(m) => m.in_system(),
            Component::Raid(m) => m.in_system(),
            Component::San(m) => m.in_system(),
            Component::ClientPool(m) => m.in_system(),
        }
    }

    fn evict_all(&mut self, into: &mut Vec<JobToken>) {
        self.station().evict_all(into)
    }
}

/// A component plus its per-tick completion outbox.
///
/// The engine's time-increment phase may run agents on several worker
/// threads (Scatter-Gather or H-Dispatch); each agent writes the tokens
/// it completed into its own outbox, and the serial interaction phase
/// drains them afterwards — the decoupling of time-increment and
/// interaction steps that H-Dispatch requires (§4.3.5).
#[derive(Clone)]
pub struct AgentSlot {
    /// The hardware agent.
    pub component: Component,
    /// Tokens completed during the current tick.
    pub outbox: Vec<JobToken>,
}

impl AgentSlot {
    /// Runs one tick, leaving completions in the outbox.
    pub fn tick_into_outbox(&mut self, now: SimTime, dt: SimDuration) {
        self.outbox.clear();
        self.component.tick(now, dt, &mut self.outbox);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdisim_queueing::{CpuSpec, NicSpec};
    use gdisim_types::units::{gbps, ghz};

    #[test]
    fn delegation_ticks_inner_model() {
        let mut c = Component::Cpu(CpuModel::new(CpuSpec::new(1, 1, ghz(2.0))));
        assert_eq!(c.kind(), ComponentKind::Cpu);
        c.enqueue(JobToken(1), 20e6, SimTime::ZERO);
        assert_eq!(c.in_system(), 1);
        let mut done = Vec::new();
        c.tick(SimTime::ZERO, SimDuration::from_millis(10), &mut done);
        assert_eq!(done, vec![JobToken(1)]);
        assert!((c.collect_utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn kinds_are_distinct() {
        let nic = Component::Nic(NicModel::new(NicSpec::new(gbps(1.0))));
        assert_eq!(nic.kind(), ComponentKind::Nic);
        assert_ne!(nic.kind(), ComponentKind::Switch);
    }
}

// Checkpoint support.
gdisim_snap::snap_enum!(ComponentKind {
    0 => Cpu,
    1 => Nic,
    2 => Switch,
    3 => Link,
    4 => Raid,
    5 => San,
    6 => ClientPool,
});
gdisim_snap::snap_struct!(ComponentMeta {
    kind,
    dc,
    tier,
    label,
});

impl gdisim_snap::Snap for Component {
    fn save(&self, w: &mut gdisim_snap::SnapWriter) {
        match self {
            Component::Cpu(m) => {
                w.put_u8(0);
                m.save(w);
            }
            Component::Nic(m) => {
                w.put_u8(1);
                m.save(w);
            }
            Component::Switch(m) => {
                w.put_u8(2);
                m.save(w);
            }
            Component::Link(m) => {
                w.put_u8(3);
                m.save(w);
            }
            Component::Raid(m) => {
                w.put_u8(4);
                m.save(w);
            }
            Component::San(m) => {
                w.put_u8(5);
                m.save(w);
            }
            Component::ClientPool(m) => {
                w.put_u8(6);
                m.save(w);
            }
        }
    }
    fn load(r: &mut gdisim_snap::SnapReader<'_>) -> Result<Self, gdisim_snap::SnapError> {
        use gdisim_snap::Snap;
        Ok(match r.take_u8()? {
            0 => Component::Cpu(Snap::load(r)?),
            1 => Component::Nic(Snap::load(r)?),
            2 => Component::Switch(Snap::load(r)?),
            3 => Component::Link(Snap::load(r)?),
            4 => Component::Raid(Snap::load(r)?),
            5 => Component::San(Snap::load(r)?),
            6 => Component::ClientPool(Snap::load(r)?),
            tag => {
                return Err(gdisim_snap::SnapError::BadTag {
                    ty: "Component",
                    tag,
                })
            }
        })
    }
}

gdisim_snap::snap_struct!(AgentSlot { component, outbox });
