//! Building a runtime [`Infrastructure`] from a [`TopologySpec`].
//!
//! The builder walks the spec, instantiating one runtime queue model per
//! hardware agent into a flat registry, recording the holarchy (data
//! centers → tiers → servers → agent ids) alongside, and precomputing the
//! WAN routes between every pair of data centers.

use crate::active::{ticks_between, ActiveSet};
use crate::component::{AgentSlot, Component, ComponentKind, ComponentMeta};
use crate::routing::{compute_routes_excluding, Route};
use crate::spec::{TierStorageSpec, TopologySpec, WanLinkSpec};
use gdisim_queueing::discipline::InfiniteServer;
use gdisim_queueing::{
    CpuModel, LinkModel, MemoryModel, NicModel, RaidModel, SanModel, Station, SwitchModel,
};
use gdisim_types::{AgentId, DcId, SimDuration, SimTime, TierKind};
use std::collections::HashMap;

/// One server holon: the agent ids of its encapsulated hardware.
#[derive(Debug, Clone)]
pub struct Server {
    /// CPU agent (cycles).
    pub cpu: AgentId,
    /// NIC agent (bytes).
    pub nic: AgentId,
    /// Local link to the data center switch (bytes).
    pub lan: AgentId,
    /// RAID or shared SAN agent, if the tier has storage.
    pub storage: Option<AgentId>,
    /// Index into the memory-model pool.
    pub memory: usize,
}

/// One tier holon: an array of identical servers plus a round-robin
/// load-balancing cursor (§3.5.2: instances are "decided at runtime …
/// based on predefined load-balancing strategies").
#[derive(Debug, Clone)]
pub struct Tier {
    /// Functional role.
    pub kind: TierKind,
    /// Member servers.
    pub servers: Vec<Server>,
    /// Per-server health: a failed server receives no new work ("typical
    /// data centers are composed by thousands of commodity servers that
    /// will inevitably fail", §1.1).
    down: Vec<bool>,
    next: usize,
}

impl Tier {
    /// Picks the next healthy server round-robin.
    ///
    /// # Panics
    /// Panics if every server is down — [`Infrastructure::fail_server`]
    /// refuses to take the last one out, so this cannot happen through
    /// the public API.
    pub fn pick_server(&mut self) -> usize {
        for _ in 0..self.servers.len() {
            let idx = self.next;
            self.next = (self.next + 1) % self.servers.len();
            if !self.down[idx] {
                return idx;
            }
        }
        panic!("tier {} has no healthy servers", self.kind)
    }

    /// Whether the given server is marked down.
    pub fn is_down(&self, server: usize) -> bool {
        self.down[server]
    }

    /// Number of healthy servers.
    pub fn healthy_count(&self) -> usize {
        self.down.iter().filter(|d| !**d).count()
    }
}

/// One data center holon.
#[derive(Debug, Clone)]
pub struct DataCenter {
    /// Dense id.
    pub id: DcId,
    /// Site name.
    pub name: String,
    /// Core switch agent.
    pub switch: AgentId,
    /// Client-population access link agent.
    pub client_link: AgentId,
    /// Client-population compute agent (infinite server).
    pub client_pool: AgentId,
    /// Tiers, in spec order.
    pub tiers: Vec<Tier>,
}

impl DataCenter {
    /// Index of the tier with the given kind, if present.
    pub fn tier_index(&self, kind: TierKind) -> Option<usize> {
        self.tiers.iter().position(|t| t.kind == kind)
    }
}

/// How a tier picks the server for the next message (§3.5.2's
/// "predefined load-balancing strategies").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoadBalancing {
    /// Cycle through the servers in order.
    #[default]
    RoundRobin,
    /// Pick the server whose CPU currently holds the fewest jobs —
    /// join-the-shortest-queue on the compute stage.
    LeastOutstanding,
}

/// A resolved reference to one server in the holarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerRef {
    /// Data center.
    pub dc: DcId,
    /// Tier index within the data center.
    pub tier: usize,
    /// Server index within the tier.
    pub server: usize,
}

/// The runtime infrastructure: flat agent registry + holarchy + routes.
#[derive(Clone)]
pub struct Infrastructure {
    components: Vec<AgentSlot>,
    metas: Vec<ComponentMeta>,
    memories: Vec<MemoryModel>,
    dcs: Vec<DataCenter>,
    dc_by_name: HashMap<String, DcId>,
    /// WAN link agents in spec order, with their `L from->to` labels.
    wan_links: Vec<(String, AgentId)>,
    routes: HashMap<(DcId, DcId), Vec<AgentId>>,
    /// All site names (data centers then relays), for re-routing.
    site_names: Vec<String>,
    /// The WAN link specs, for re-routing after failures.
    wan_specs: Vec<WanLinkSpec>,
    /// Indices (into `wan_specs`) of links currently down.
    failed_links: Vec<usize>,
    /// Per-data-center health: a downed site admits no work and its
    /// adjacent WAN links leave the routing graph.
    dc_down: Vec<bool>,
    /// Which agents currently hold work (the engine's fast-path set).
    active: ActiveSet,
}

impl Infrastructure {
    /// Builds the runtime infrastructure.
    ///
    /// # Errors
    /// Returns the validation error message if the spec is malformed.
    pub fn build(spec: &TopologySpec, seed: u64) -> Result<Self, String> {
        spec.validate()?;
        let mut b = Builder {
            components: Vec::new(),
            metas: Vec::new(),
            memories: Vec::new(),
            seed,
        };

        let mut dcs = Vec::new();
        let mut dc_by_name = HashMap::new();
        for (i, dc_spec) in spec.data_centers.iter().enumerate() {
            let id = DcId::from_index(i);
            dc_by_name.insert(dc_spec.name.clone(), id);
            let switch = b.push(
                Component::Switch(SwitchModel::new(dc_spec.switch)),
                ComponentKind::Switch,
                id,
                None,
                format!("switch@{}", dc_spec.name),
            );
            let client_link = b.push(
                Component::Link(LinkModel::new(dc_spec.clients.link)),
                ComponentKind::Link,
                id,
                None,
                format!("client-link@{}", dc_spec.name),
            );
            let client_pool = b.push(
                Component::ClientPool(InfiniteServer::new(dc_spec.clients.client_clock_hz)),
                ComponentKind::ClientPool,
                id,
                None,
                format!("clients@{}", dc_spec.name),
            );

            let mut tiers = Vec::new();
            for tier_spec in &dc_spec.tiers {
                let shared_san = match tier_spec.storage {
                    TierStorageSpec::SharedSan(san) => {
                        let seed = b.next_seed();
                        Some(b.push(
                            Component::San(SanModel::new(san, seed)),
                            ComponentKind::San,
                            id,
                            Some(tier_spec.kind),
                            format!("san {}@{}", tier_spec.kind, dc_spec.name),
                        ))
                    }
                    _ => None,
                };
                let mut servers = Vec::new();
                for s in 0..tier_spec.servers {
                    let label =
                        |part: &str| format!("{part} srv{s} {}@{}", tier_spec.kind, dc_spec.name);
                    let cpu = b.push(
                        Component::Cpu(CpuModel::new(tier_spec.cpu)),
                        ComponentKind::Cpu,
                        id,
                        Some(tier_spec.kind),
                        label("cpu"),
                    );
                    let nic = b.push(
                        Component::Nic(NicModel::new(tier_spec.nic)),
                        ComponentKind::Nic,
                        id,
                        Some(tier_spec.kind),
                        label("nic"),
                    );
                    let lan = b.push(
                        Component::Link(LinkModel::new(tier_spec.lan)),
                        ComponentKind::Link,
                        id,
                        Some(tier_spec.kind),
                        label("lan"),
                    );
                    let storage = match tier_spec.storage {
                        TierStorageSpec::PerServerRaid(raid) => {
                            let seed = b.next_seed();
                            Some(b.push(
                                Component::Raid(RaidModel::new(raid, seed)),
                                ComponentKind::Raid,
                                id,
                                Some(tier_spec.kind),
                                label("raid"),
                            ))
                        }
                        TierStorageSpec::SharedSan(_) => shared_san,
                        TierStorageSpec::None => None,
                    };
                    let memory = b.memories.len();
                    let mem_seed = b.next_seed();
                    b.memories
                        .push(MemoryModel::new(tier_spec.memory, mem_seed));
                    servers.push(Server {
                        cpu,
                        nic,
                        lan,
                        storage,
                        memory,
                    });
                }
                let down = vec![false; servers.len()];
                tiers.push(Tier {
                    kind: tier_spec.kind,
                    servers,
                    down,
                    next: 0,
                });
            }
            dcs.push(DataCenter {
                id,
                name: dc_spec.name.clone(),
                switch,
                client_link,
                client_pool,
                tiers,
            });
        }

        // WAN link agents (backups included; routing skips them). Backup
        // links carry a label suffix so a primary/backup pair over the
        // same sites reports two distinct utilization series.
        let mut wan_links = Vec::new();
        for l in &spec.wan_links {
            let origin = dc_by_name.get(&l.from).copied().unwrap_or(DcId(0));
            let label = if l.backup {
                format!("L {}->{} (backup)", l.from, l.to)
            } else {
                format!("L {}->{}", l.from, l.to)
            };
            let agent = b.push(
                Component::Link(LinkModel::new(l.link)),
                ComponentKind::Link,
                origin,
                None,
                label.clone(),
            );
            wan_links.push((label, agent));
        }

        let active = ActiveSet::new(b.components.len());
        let dc_down = vec![false; dcs.len()];
        let mut infra = Infrastructure {
            components: b.components,
            metas: b.metas,
            memories: b.memories,
            dcs,
            dc_by_name,
            wan_links,
            routes: HashMap::new(),
            site_names: spec.site_names().iter().map(|s| s.to_string()).collect(),
            wan_specs: spec.wan_links.clone(),
            failed_links: Vec::new(),
            dc_down,
            active,
        };
        infra.recompute_routes();
        Ok(infra)
    }

    /// Recomputes the WAN routes from the current link and site health.
    /// Backup links join the graph as soon as any primary has failed — the
    /// paper's "secondary links in case of failure". Links adjacent to a
    /// downed data center are excluded as if they had failed themselves.
    fn recompute_routes(&mut self) {
        let sites: Vec<&str> = self.site_names.iter().map(String::as_str).collect();
        let mut excluded = self.failed_links.clone();
        for (i, l) in self.wan_specs.iter().enumerate() {
            let touches_down_dc = [&l.from, &l.to].into_iter().any(|site| {
                self.dc_by_name
                    .get(site)
                    .is_some_and(|dc| self.dc_down[dc.index()])
            });
            if touches_down_dc && !excluded.contains(&i) {
                excluded.push(i);
            }
        }
        let use_backups = !excluded.is_empty();
        let site_routes = compute_routes_excluding(&sites, &self.wan_specs, use_backups, &excluded);
        self.routes.clear();
        let n_dcs = self.dcs.len();
        for i in 0..n_dcs {
            for j in 0..n_dcs {
                if i == j {
                    continue;
                }
                if let Some(path) = site_routes.get(&(i, j)) {
                    let path: &Route = path;
                    let agents: Vec<AgentId> =
                        path.iter().map(|li| self.wan_links[*li].1).collect();
                    self.routes
                        .insert((DcId::from_index(i), DcId::from_index(j)), agents);
                }
            }
        }
    }

    /// Marks a WAN link as failed (by its `L from->to` label) and
    /// re-routes around it, activating backup links. Messages already on
    /// the link finish their transfer — the failure affects routing, not
    /// in-flight frames.
    ///
    /// # Errors
    /// Returns an error if no link carries that label.
    pub fn fail_wan_link(&mut self, label: &str) -> Result<(), String> {
        let idx = self
            .wan_links
            .iter()
            .position(|(l, _)| l == label)
            .ok_or_else(|| format!("no WAN link labelled '{label}'"))?;
        if !self.failed_links.contains(&idx) {
            self.failed_links.push(idx);
            self.recompute_routes();
        }
        Ok(())
    }

    /// Restores a previously failed WAN link and re-routes.
    ///
    /// # Errors
    /// Returns an error if no link carries that label.
    pub fn restore_wan_link(&mut self, label: &str) -> Result<(), String> {
        let idx = self
            .wan_links
            .iter()
            .position(|(l, _)| l == label)
            .ok_or_else(|| format!("no WAN link labelled '{label}'"))?;
        self.failed_links.retain(|i| *i != idx);
        self.recompute_routes();
        Ok(())
    }

    /// Labels of the links currently failed.
    pub fn failed_wan_links(&self) -> Vec<&str> {
        self.failed_links
            .iter()
            .map(|i| self.wan_links[*i].0.as_str())
            .collect()
    }

    /// Marks a server as failed: it receives no new work (its in-flight
    /// jobs drain — fail-stop for admission, matching a server pulled
    /// from the load balancer).
    ///
    /// # Errors
    /// Refuses to take the tier's last healthy server down, or errors if
    /// the tier/server does not exist.
    pub fn fail_server(&mut self, dc: DcId, kind: TierKind, server: usize) -> Result<(), String> {
        let dc_ref = &mut self.dcs[dc.index()];
        let tier = dc_ref
            .tiers
            .iter_mut()
            .find(|t| t.kind == kind)
            .ok_or_else(|| format!("no {kind} tier in {}", dc_ref.name))?;
        if server >= tier.servers.len() {
            return Err(format!("{kind} has only {} servers", tier.servers.len()));
        }
        if !tier.down[server] && tier.healthy_count() == 1 {
            return Err(format!("cannot fail the last healthy {kind} server"));
        }
        tier.down[server] = true;
        Ok(())
    }

    /// Returns a failed server to service.
    ///
    /// # Errors
    /// Errors if the tier or server does not exist.
    pub fn restore_server(
        &mut self,
        dc: DcId,
        kind: TierKind,
        server: usize,
    ) -> Result<(), String> {
        let dc_ref = &mut self.dcs[dc.index()];
        let tier = dc_ref
            .tiers
            .iter_mut()
            .find(|t| t.kind == kind)
            .ok_or_else(|| format!("no {kind} tier in {}", dc_ref.name))?;
        if server >= tier.servers.len() {
            return Err(format!("{kind} has only {} servers", tier.servers.len()));
        }
        tier.down[server] = false;
        Ok(())
    }

    /// Takes a whole data center out of service: it admits no new work
    /// ([`pick_server_with`](Self::pick_server_with) and
    /// [`route`](Self::route) report it unavailable) and every WAN link
    /// touching the site leaves the routing graph.
    ///
    /// # Errors
    /// Errors if no data center carries that site name.
    pub fn fail_data_center(&mut self, site: &str) -> Result<(), String> {
        let id = self
            .dc_by_name(site)
            .ok_or_else(|| format!("no data center named '{site}'"))?;
        if !self.dc_down[id.index()] {
            self.dc_down[id.index()] = true;
            self.recompute_routes();
        }
        Ok(())
    }

    /// Returns a failed data center to service and re-routes.
    ///
    /// # Errors
    /// Errors if no data center carries that site name.
    pub fn restore_data_center(&mut self, site: &str) -> Result<(), String> {
        let id = self
            .dc_by_name(site)
            .ok_or_else(|| format!("no data center named '{site}'"))?;
        if self.dc_down[id.index()] {
            self.dc_down[id.index()] = false;
            self.recompute_routes();
        }
        Ok(())
    }

    /// Whether the data center is currently down.
    pub fn dc_is_down(&self, id: DcId) -> bool {
        self.dc_down[id.index()]
    }

    /// Resolves a WAN link label (`L from->to`) to its link agent.
    pub fn wan_link_agent(&self, label: &str) -> Option<AgentId> {
        self.wan_links
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, a)| *a)
    }

    /// Drains every in-flight job out of one agent, pushing the evicted
    /// tokens onto `into` in the component's deterministic eviction order.
    /// The agent stays in the active set until the next retire sweep
    /// notices it went empty, so the active-set invariant (members cover
    /// every agent holding work) is preserved.
    pub fn evict_agent(&mut self, agent: AgentId, into: &mut Vec<gdisim_queueing::JobToken>) {
        self.components[agent.index()].component.evict_all(into);
    }

    /// Number of agents in the registry.
    pub fn agent_count(&self) -> usize {
        self.components.len()
    }

    /// All agent slots (component + outbox), for engine ticking.
    pub fn components_mut(&mut self) -> &mut [AgentSlot] {
        &mut self.components
    }

    /// One component.
    pub fn component_mut(&mut self, id: AgentId) -> &mut Component {
        &mut self.components[id.index()].component
    }

    /// Read-only view of one component — e.g. queue-depth inspection
    /// for load shedding, which must not disturb the agent's state.
    pub fn component(&self, id: AgentId) -> &Component {
        &self.components[id.index()].component
    }

    /// Reporting metadata of one agent.
    pub fn meta(&self, id: AgentId) -> &ComponentMeta {
        &self.metas[id.index()]
    }

    /// All metas, parallel to the component registry.
    pub fn metas(&self) -> &[ComponentMeta] {
        &self.metas
    }

    /// All memory models (indexed by [`Server::memory`]).
    pub fn memories_mut(&mut self) -> &mut [MemoryModel] {
        &mut self.memories
    }

    /// Read-only view of the memory models — e.g. occupancy checks by
    /// the invariant auditor, which must not disturb metering state.
    pub fn memories(&self) -> &[MemoryModel] {
        &self.memories
    }

    /// Data centers.
    pub fn data_centers(&self) -> &[DataCenter] {
        &self.dcs
    }

    /// One data center.
    pub fn dc(&self, id: DcId) -> &DataCenter {
        &self.dcs[id.index()]
    }

    /// Looks a data center up by site name.
    pub fn dc_by_name(&self, name: &str) -> Option<DcId> {
        self.dc_by_name.get(name).copied()
    }

    /// The WAN link agents, in spec order, with their labels.
    pub fn wan_links(&self) -> &[(String, AgentId)] {
        &self.wan_links
    }

    /// The smallest propagation latency over *all* WAN links, backups
    /// included (they carry traffic after a failover, so any
    /// conservative-lookahead bound must honor them too). `None` for a
    /// single-site topology with no WAN links.
    pub fn min_wan_latency(&self) -> Option<gdisim_types::SimDuration> {
        self.wan_specs.iter().map(|l| l.link.latency).min()
    }

    /// The precomputed route between two data centers (empty when they are
    /// the same site). `None` means unreachable — no surviving path, or a
    /// downed endpoint.
    pub fn route(&self, from: DcId, to: DcId) -> Option<&[AgentId]> {
        if self.dc_down[from.index()] || self.dc_down[to.index()] {
            return None;
        }
        if from == to {
            return Some(&[]);
        }
        self.routes.get(&(from, to)).map(Vec::as_slice)
    }

    /// Round-robin picks a server of the given tier kind in a data center.
    pub fn pick_server(&mut self, dc: DcId, kind: TierKind) -> Option<ServerRef> {
        self.pick_server_with(dc, kind, LoadBalancing::RoundRobin)
    }

    /// Picks a server under the given load-balancing policy.
    pub fn pick_server_with(
        &mut self,
        dc: DcId,
        kind: TierKind,
        policy: LoadBalancing,
    ) -> Option<ServerRef> {
        if self.dc_down[dc.index()] {
            return None;
        }
        let tier_idx = self.dcs[dc.index()]
            .tiers
            .iter()
            .position(|t| t.kind == kind)?;
        let server = match policy {
            LoadBalancing::RoundRobin => self.dcs[dc.index()].tiers[tier_idx].pick_server(),
            LoadBalancing::LeastOutstanding => {
                // Join the shortest *healthy* CPU queue; ties break toward
                // the lowest index for determinism.
                let tier = &self.dcs[dc.index()].tiers[tier_idx];
                let candidates: Vec<(usize, gdisim_types::AgentId)> = tier
                    .servers
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !tier.is_down(*i))
                    .map(|(i, s)| (i, s.cpu))
                    .collect();
                assert!(!candidates.is_empty(), "tier has no healthy servers");
                let mut best = candidates[0].0;
                let mut best_depth = usize::MAX;
                for (i, cpu) in candidates {
                    let depth = self.components[cpu.index()].component.in_system();
                    if depth < best_depth {
                        best_depth = depth;
                        best = i;
                    }
                }
                best
            }
        };
        Some(ServerRef {
            dc,
            tier: tier_idx,
            server,
        })
    }

    /// Resolves a [`ServerRef`].
    pub fn server(&self, r: ServerRef) -> &Server {
        &self.dcs[r.dc.index()].tiers[r.tier].servers[r.server]
    }

    /// Total jobs currently inside any component — used by drain logic and
    /// leak assertions in tests.
    pub fn total_in_flight(&mut self) -> usize {
        self.components
            .iter_mut()
            .map(|c| c.component.in_system())
            .sum()
    }

    // ----- active-agent set (the engine's fast-path bookkeeping) ---------

    /// Enqueues a job on an agent, activating it in the active set first.
    /// A newly activated agent has been skipped by the time-increment
    /// phase since `max(idle_from, epoch)`; that idle span is credited to
    /// its meters here in one bulk addition (bit-for-bit identical to the
    /// empty ticks the always-tick loop would have run), where `epoch` is
    /// the last collection boundary and `dt` the engine time step.
    pub fn enqueue_job(
        &mut self,
        agent: AgentId,
        token: gdisim_queueing::JobToken,
        demand: f64,
        now: SimTime,
        epoch: SimTime,
        dt: SimDuration,
    ) {
        let slot = &mut self.components[agent.index()];
        if let Some(idle_from) = self.active.activate(agent.index()) {
            if let Some(ticks) = ticks_between(idle_from.max(epoch), now, dt) {
                slot.component.account_idle(ticks, dt);
            }
        }
        slot.component.enqueue(token, demand, now);
    }

    /// Copies the active agents, in strictly ascending order, into `buf`.
    pub fn active_snapshot_into(&self, buf: &mut Vec<u32>) {
        self.active.snapshot_into(buf);
    }

    /// Number of currently active agents.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Whether `agent` is currently an active-set member.
    pub fn active_contains(&self, agent: usize) -> bool {
        self.active.contains(agent)
    }

    /// Drops every active agent that went empty, stamping its idle start
    /// at tick boundary `t`. Run after the interaction phase has routed
    /// all completions (and therefore drained every active outbox).
    pub fn retire_idle(&mut self, t: SimTime) {
        let components = &self.components;
        self.active
            .retire(t, |agent| components[agent].component.in_system() == 0);
    }

    /// Credits the idle span `[max(idle_from, epoch), t)` to every
    /// inactive agent's meters. Run right before a collection so skipped
    /// agents still account the full measurement interval.
    pub fn account_idle_inactive(&mut self, epoch: SimTime, t: SimTime, dt: SimDuration) {
        let components = &mut self.components;
        self.active.credit_idle(epoch, t, dt, |agent, ticks| {
            components[agent].component.account_idle(ticks, dt);
        });
    }
}

struct Builder {
    components: Vec<AgentSlot>,
    metas: Vec<ComponentMeta>,
    memories: Vec<MemoryModel>,
    seed: u64,
}

impl Builder {
    fn push(
        &mut self,
        component: Component,
        kind: ComponentKind,
        dc: DcId,
        tier: Option<TierKind>,
        label: String,
    ) -> AgentId {
        let id = AgentId::from_index(self.components.len());
        self.components.push(AgentSlot {
            component,
            outbox: Vec::new(),
        });
        self.metas.push(ComponentMeta {
            kind,
            dc,
            tier,
            label,
        });
        id
    }

    fn next_seed(&mut self) -> u64 {
        self.seed = self
            .seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ClientAccessSpec, DataCenterSpec, TierSpec, WanLinkSpec};
    use gdisim_queueing::{CpuSpec, LinkSpec, MemorySpec, NicSpec, RaidSpec, SwitchSpec};
    use gdisim_types::units::{gbps, ghz, mb_per_s};
    use gdisim_types::SimDuration;

    fn tier(kind: TierKind, servers: u32, raid: bool) -> TierSpec {
        TierSpec {
            kind,
            servers,
            cpu: CpuSpec::new(1, 4, ghz(2.5)),
            memory: MemorySpec::new(32e9, 0.2),
            nic: NicSpec::new(gbps(1.0)),
            lan: LinkSpec::new(gbps(1.0), SimDuration::ZERO, 256),
            storage: if raid {
                TierStorageSpec::PerServerRaid(RaidSpec::new(
                    4,
                    gbps(4.0),
                    0.1,
                    gbps(2.0),
                    0.1,
                    mb_per_s(120.0),
                ))
            } else {
                TierStorageSpec::None
            },
        }
    }

    fn dc(name: &str) -> DataCenterSpec {
        DataCenterSpec {
            name: name.into(),
            switch: SwitchSpec::new(gbps(10.0)),
            tiers: vec![tier(TierKind::App, 2, true), tier(TierKind::Fs, 1, true)],
            clients: ClientAccessSpec {
                link: LinkSpec::new(gbps(1.0), SimDuration::from_millis(1), 1024),
                client_clock_hz: ghz(2.0),
            },
        }
    }

    fn wan(from: &str, to: &str, backup: bool) -> WanLinkSpec {
        WanLinkSpec {
            from: from.into(),
            to: to.into(),
            link: LinkSpec::new(gbps(0.155), SimDuration::from_millis(40), 256),
            backup,
        }
    }

    fn three_site_spec() -> TopologySpec {
        TopologySpec {
            data_centers: vec![dc("NA"), dc("EU"), dc("AUS")],
            relay_sites: vec!["AS1".into()],
            wan_links: vec![
                wan("NA", "EU", false),
                wan("NA", "AS1", false),
                wan("AS1", "AUS", false),
            ],
        }
    }

    #[test]
    fn builds_expected_agent_counts() {
        let mut infra = Infrastructure::build(&three_site_spec(), 42).expect("build");
        // Per DC: switch + client link + client pool = 3; per server:
        // cpu + nic + lan + raid = 4; 3 servers per DC -> 12.
        // 3 DCs * 15 = 45, plus 3 WAN links = 48.
        assert_eq!(infra.agent_count(), 48);
        // One memory model per server.
        assert_eq!(infra.memories_mut().len(), 9);
        assert_eq!(infra.data_centers().len(), 3);
    }

    #[test]
    fn routes_traverse_relays() {
        let infra = Infrastructure::build(&three_site_spec(), 42).expect("build");
        let na = infra.dc_by_name("NA").unwrap();
        let eu = infra.dc_by_name("EU").unwrap();
        let aus = infra.dc_by_name("AUS").unwrap();
        assert_eq!(infra.route(na, eu).unwrap().len(), 1);
        assert_eq!(
            infra.route(na, aus).unwrap().len(),
            2,
            "NA->AUS goes through AS1"
        );
        assert_eq!(
            infra.route(eu, aus).unwrap().len(),
            3,
            "EU->AUS goes EU-NA-AS1-AUS"
        );
        assert_eq!(infra.route(na, na).unwrap().len(), 0);
    }

    #[test]
    fn round_robin_cycles_servers() {
        let mut infra = Infrastructure::build(&three_site_spec(), 42).expect("build");
        let na = infra.dc_by_name("NA").unwrap();
        let a = infra.pick_server(na, TierKind::App).unwrap();
        let b = infra.pick_server(na, TierKind::App).unwrap();
        let c = infra.pick_server(na, TierKind::App).unwrap();
        assert_ne!(a.server, b.server);
        assert_eq!(a.server, c.server, "two app servers cycle with period 2");
        assert!(
            infra.pick_server(na, TierKind::Db).is_none(),
            "no Db tier in this spec"
        );
    }

    #[test]
    fn server_agents_have_matching_meta() {
        let mut infra = Infrastructure::build(&three_site_spec(), 42).expect("build");
        let na = infra.dc_by_name("NA").unwrap();
        let sref = infra.pick_server(na, TierKind::Fs).unwrap();
        let server = infra.server(sref).clone();
        let meta = infra.meta(server.cpu);
        assert_eq!(meta.kind, ComponentKind::Cpu);
        assert_eq!(meta.dc, na);
        assert_eq!(meta.tier, Some(TierKind::Fs));
        assert!(meta.label.contains("Tfs@NA"), "label: {}", meta.label);
        assert!(server.storage.is_some());
    }

    #[test]
    fn backup_links_not_routed() {
        let mut spec = three_site_spec();
        spec.wan_links.push(wan("EU", "AS1", true));
        let infra = Infrastructure::build(&spec, 42).expect("build");
        let eu = infra.dc_by_name("EU").unwrap();
        let aus = infra.dc_by_name("AUS").unwrap();
        // Still routes through NA, not the backup EU->AS1.
        assert_eq!(infra.route(eu, aus).unwrap().len(), 3);
        // But the backup agent exists for failure experiments.
        assert_eq!(infra.wan_links().len(), 4);
    }

    #[test]
    fn fresh_infrastructure_is_empty() {
        let mut infra = Infrastructure::build(&three_site_spec(), 42).expect("build");
        assert_eq!(infra.total_in_flight(), 0);
    }

    #[test]
    fn link_failure_activates_backups_and_restores() {
        // Primary NA-EU plus a backup NA-EU with worse latency.
        let mut spec = three_site_spec();
        spec.wan_links.push(WanLinkSpec {
            from: "NA".into(),
            to: "EU".into(),
            link: LinkSpec::new(gbps(0.045), SimDuration::from_millis(120), 256),
            backup: true,
        });
        let mut infra = Infrastructure::build(&spec, 42).expect("build");
        let na = infra.dc_by_name("NA").unwrap();
        let eu = infra.dc_by_name("EU").unwrap();
        let primary = infra.route(na, eu).unwrap()[0];

        infra.fail_wan_link("L NA->EU").expect("known link");
        assert_eq!(infra.failed_wan_links(), vec!["L NA->EU"]);
        let rerouted = infra.route(na, eu).expect("backup path exists").to_vec();
        assert_eq!(rerouted.len(), 1);
        assert_ne!(rerouted[0], primary, "traffic must shift to the backup");

        infra.restore_wan_link("L NA->EU").expect("known link");
        assert!(infra.failed_wan_links().is_empty());
        assert_eq!(infra.route(na, eu).unwrap()[0], primary, "primary restored");

        assert!(infra.fail_wan_link("L MARS->VENUS").is_err());
    }

    #[test]
    fn least_outstanding_prefers_idle_servers() {
        use gdisim_queueing::{JobToken, Station};
        let mut infra = Infrastructure::build(&three_site_spec(), 42).expect("build");
        let na = infra.dc_by_name("NA").unwrap();
        // Round robin would give server 0 then 1; load server 0's CPU so
        // least-outstanding must pick server 1 twice in a row.
        let s0 = {
            let r = infra
                .pick_server_with(na, TierKind::App, LoadBalancing::RoundRobin)
                .unwrap();
            assert_eq!(r.server, 0);
            infra.server(r).clone()
        };
        infra
            .component_mut(s0.cpu)
            .enqueue(JobToken(1), 1e12, gdisim_types::SimTime::ZERO);
        for _ in 0..3 {
            let r = infra
                .pick_server_with(na, TierKind::App, LoadBalancing::LeastOutstanding)
                .unwrap();
            assert_eq!(r.server, 1, "busy server 0 must be avoided");
        }
        // Ties break deterministically toward the lowest index.
        let mut fresh = Infrastructure::build(&three_site_spec(), 42).expect("build");
        let r = fresh
            .pick_server_with(na, TierKind::App, LoadBalancing::LeastOutstanding)
            .unwrap();
        assert_eq!(r.server, 0);
    }

    #[test]
    fn server_failure_redirects_and_protects_the_last_server() {
        let mut infra = Infrastructure::build(&three_site_spec(), 42).expect("build");
        let na = infra.dc_by_name("NA").unwrap();
        // Two app servers: fail server 0, all picks go to 1.
        infra
            .fail_server(na, TierKind::App, 0)
            .expect("redundancy available");
        for _ in 0..4 {
            let r = infra.pick_server(na, TierKind::App).unwrap();
            assert_eq!(r.server, 1);
        }
        // Least-outstanding also avoids the dead server.
        let r = infra
            .pick_server_with(na, TierKind::App, LoadBalancing::LeastOutstanding)
            .unwrap();
        assert_eq!(r.server, 1);
        // The last healthy server is protected.
        assert!(infra.fail_server(na, TierKind::App, 1).is_err());
        // Restoration brings server 0 back into rotation.
        infra
            .restore_server(na, TierKind::App, 0)
            .expect("known server");
        let picks: Vec<usize> = (0..4)
            .map(|_| infra.pick_server(na, TierKind::App).unwrap().server)
            .collect();
        assert!(picks.contains(&0), "restored server rejoins: {picks:?}");
        // Unknown tier/server indices error cleanly.
        assert!(
            infra.fail_server(na, TierKind::Db, 0).is_err(),
            "no Db tier in this spec"
        );
        assert!(infra.fail_server(na, TierKind::App, 9).is_err());
    }

    #[test]
    fn failing_the_only_path_partitions_the_network() {
        let mut infra = Infrastructure::build(&three_site_spec(), 42).expect("build");
        let na = infra.dc_by_name("NA").unwrap();
        let aus = infra.dc_by_name("AUS").unwrap();
        infra.fail_wan_link("L AS1->AUS").expect("known link");
        assert!(
            infra.route(na, aus).is_none(),
            "AUS is unreachable without its only link"
        );
    }
}

// Checkpoint support. The spec is not retained at runtime, so the whole
// infrastructure state (including recomputable routes — cheaper to carry
// than to re-derive and re-verify) roundtrips through the snapshot.
gdisim_snap::snap_struct!(Server {
    cpu,
    nic,
    lan,
    storage,
    memory,
});
gdisim_snap::snap_struct!(Tier {
    kind,
    servers,
    down,
    next,
});
gdisim_snap::snap_struct!(DataCenter {
    id,
    name,
    switch,
    client_link,
    client_pool,
    tiers,
});
gdisim_snap::snap_enum!(LoadBalancing {
    0 => RoundRobin,
    1 => LeastOutstanding,
});
gdisim_snap::snap_struct!(Infrastructure {
    components,
    metas,
    memories,
    dcs,
    dc_by_name,
    wan_links,
    routes,
    site_names,
    wan_specs,
    failed_links,
    dc_down,
    active,
});
