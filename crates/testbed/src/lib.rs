//! An independent event-driven emulator standing in for the *physical*
//! validation infrastructure of Ch. 5.
//!
//! The paper validates GDISim against a real downscaled Fortune-500
//! system. We do not have that system, so this crate provides the
//! closest faithful substitute: a **separate instrument** observing the
//! same workload through entirely different machinery —
//!
//! * **continuous time, event-driven** (a calendar of service
//!   completions), not the engine's discrete fluid ticks;
//! * **stochastic service times** (log-normal around each demand's mean,
//!   like real hardware jitter), not deterministic fluid service;
//! * **its own queue implementation** (straight `c`-server FCFS pools),
//!   sharing no code with `gdisim-queueing`'s disciplines.
//!
//! Both instruments consume identical scenario inputs (cascade templates
//! and launch schedules), so comparing their traces — exactly what
//! Ch. 5 does between the physical and simulated infrastructures — is a
//! meaningful accuracy statement for the queueing-network models.

#![warn(missing_docs)]

pub mod des;
pub mod machine;
pub mod runner;

pub use des::{Event, EventQueue};
pub use machine::{MachinePool, PoolStats};
pub use runner::{run_validation, PhysicalRun, TestbedConfig};
