//! Machine pools: straight `c`-server FCFS queues with busy-time
//! accounting, written independently of `gdisim-queueing`.

use gdisim_types::{SimDuration, SimTime};
use std::collections::VecDeque;

/// A pool of `c` identical servers with a FIFO backlog. Service times
/// are supplied by the caller (the runner samples them), so the pool
/// itself is purely mechanical.
#[derive(Debug)]
pub struct MachinePool {
    servers: usize,
    busy: usize,
    backlog: VecDeque<(u64, SimDuration)>,
    /// Busy server-microseconds accumulated since the last stats read.
    busy_acc: f64,
    last_update: SimTime,
}

/// Utilization statistics for one sampling interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolStats {
    /// Mean utilization over the interval, in `[0, 1]`.
    pub utilization: f64,
}

impl MachinePool {
    /// Creates an idle pool of `servers` servers.
    pub fn new(servers: usize) -> Self {
        assert!(servers > 0, "pool needs at least one server");
        MachinePool {
            servers,
            busy: 0,
            backlog: VecDeque::new(),
            busy_acc: 0.0,
            last_update: SimTime::ZERO,
        }
    }

    fn advance(&mut self, now: SimTime) {
        let dt = (now - self.last_update).as_micros() as f64;
        self.busy_acc += dt * self.busy as f64;
        self.last_update = now;
    }

    /// Offers a job with the given service time. Returns `Some(finish)`
    /// if a server was free and service starts immediately; otherwise the
    /// job is queued and `None` is returned.
    pub fn offer(
        &mut self,
        now: SimTime,
        job: u64,
        service: SimDuration,
    ) -> Option<(u64, SimTime)> {
        self.advance(now);
        if self.busy < self.servers {
            self.busy += 1;
            Some((job, now + service))
        } else {
            self.backlog.push_back((job, service));
            None
        }
    }

    /// Marks a service completion; if a queued job can start, returns it
    /// with its finish time.
    pub fn complete(&mut self, now: SimTime) -> Option<(u64, SimTime)> {
        self.advance(now);
        debug_assert!(self.busy > 0, "completion on an idle pool");
        if let Some((job, service)) = self.backlog.pop_front() {
            // The freed server immediately takes the next job.
            Some((job, now + service))
        } else {
            self.busy -= 1;
            None
        }
    }

    /// Jobs in the system (in service + queued).
    pub fn in_system(&self) -> usize {
        self.busy + self.backlog.len()
    }

    /// Reads and resets the interval utilization.
    pub fn stats(&mut self, now: SimTime, interval: SimDuration) -> PoolStats {
        self.advance(now);
        let denom = interval.as_micros() as f64 * self.servers as f64;
        let u = if denom > 0.0 {
            (self.busy_acc / denom).clamp(0.0, 1.0)
        } else {
            0.0
        };
        self.busy_acc = 0.0;
        PoolStats { utilization: u }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: SimDuration = SimDuration::from_secs(1);

    #[test]
    fn immediate_service_when_free() {
        let mut p = MachinePool::new(2);
        let r = p.offer(SimTime::ZERO, 1, SEC);
        assert_eq!(r, Some((1, SimTime::from_secs(1))));
        let r2 = p.offer(SimTime::ZERO, 2, SEC);
        assert!(r2.is_some(), "second server free");
        assert_eq!(p.in_system(), 2);
    }

    #[test]
    fn backlog_drains_on_completion() {
        let mut p = MachinePool::new(1);
        assert!(p.offer(SimTime::ZERO, 1, SEC).is_some());
        assert!(p.offer(SimTime::ZERO, 2, SEC).is_none());
        // Job 1 finishes at t=1; job 2 starts then.
        let next = p.complete(SimTime::from_secs(1));
        assert_eq!(next, Some((2, SimTime::from_secs(2))));
        assert!(p.complete(SimTime::from_secs(2)).is_none());
        assert_eq!(p.in_system(), 0);
    }

    #[test]
    fn utilization_accounting() {
        let mut p = MachinePool::new(2);
        p.offer(SimTime::ZERO, 1, SEC);
        p.complete(SimTime::from_secs(1));
        // One of two servers busy for 1 s of a 2 s interval: 25 %.
        let s = p.stats(SimTime::from_secs(2), SimDuration::from_secs(2));
        assert!((s.utilization - 0.25).abs() < 1e-9);
        // Stats reset.
        let s2 = p.stats(SimTime::from_secs(4), SimDuration::from_secs(2));
        assert_eq!(s2.utilization, 0.0);
    }
}
