//! The validation-experiment runner: replays the Ch. 5 series schedule
//! against the machine pools and produces the same traces the collector
//! produces on the GDISim side (CPU utilization per tier every 6 s,
//! concurrent clients, response times per operation).

use crate::des::EventQueue;
use crate::machine::MachinePool;
use gdisim_metrics::{ResponseKey, ResponseTimeRegistry, TimeSeries};
use gdisim_types::{AppId, OpTypeId, SimDuration, SimTime, TierKind};
use gdisim_workload::{Holon, OperationTemplate, RateCard};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, LogNormal};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Configuration of a testbed run.
#[derive(Debug, Clone)]
pub struct TestbedConfig {
    /// Launch periods in seconds for the three series types
    /// `(light, average, heavy)`.
    pub periods: (u64, u64, u64),
    /// Stop launching new series after this time.
    pub launch_window: SimDuration,
    /// Hard experiment horizon.
    pub horizon: SimDuration,
    /// Sampling cadence (6 s in §5.2.4).
    pub sample_every: SimDuration,
    /// Coefficient of variation of the log-normal service jitter.
    pub service_cv: f64,
    /// RNG seed.
    pub seed: u64,
    /// Cores per tier CPU pool: `[Tapp, Tdb, Tfs, Tidx]`.
    pub cpu_cores: [usize; 4],
    /// Parallel requests each tier's storage sustains.
    pub disk_channels: [usize; 4],
}

impl Default for TestbedConfig {
    fn default() -> Self {
        TestbedConfig {
            periods: (15, 36, 60),
            launch_window: SimDuration::from_secs(33 * 60),
            horizon: SimDuration::from_secs(38 * 60),
            sample_every: SimDuration::from_secs(6),
            service_cv: 0.08,
            seed: 0x5EED,
            // Matches the downscaled lab: Tapp 2×2, Tdb 2, Tfs 2, Tidx 2.
            cpu_cores: [4, 2, 2, 2],
            disk_channels: [2, 4, 4, 2],
        }
    }
}

/// The traces a testbed run produces.
#[derive(Debug)]
pub struct PhysicalRun {
    /// CPU utilization per tier, one sample per interval.
    pub tier_cpu: BTreeMap<&'static str, TimeSeries>,
    /// Concurrent series in execution.
    pub concurrent: TimeSeries,
    /// Response times per `(app, op)`, with full history.
    pub responses: ResponseTimeRegistry,
}

const TIERS: [TierKind; 4] = [TierKind::App, TierKind::Db, TierKind::Fs, TierKind::Idx];

fn tier_index(kind: TierKind) -> usize {
    TIERS.iter().position(|t| *t == kind).expect("known tier")
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Cpu,
    Disk,
}

#[derive(Debug)]
struct SeriesJob {
    app: AppId,
    op_idx: usize,
    step_idx: usize,
    op_started: SimTime,
}

enum Ev {
    Launch { series: usize },
    StepStart { job: u64 },
    PoolDone { pool: usize, job: u64, phase: Phase },
    ClientDone { job: u64 },
    Sample,
}

/// Runs the validation experiment on the testbed.
///
/// `series_templates[k]` holds the calibrated CAD templates of series
/// type `k` (Light/Average/Heavy) — the *same* inputs the GDISim engine
/// consumes — and `apps[k]` the application id each series reports under.
pub fn run_validation(
    series_templates: [Vec<OperationTemplate>; 3],
    apps: [AppId; 3],
    rates: &RateCard,
    config: &TestbedConfig,
) -> PhysicalRun {
    let templates: [Vec<Arc<OperationTemplate>>; 3] =
        series_templates.map(|v| v.into_iter().map(Arc::new).collect());
    let mut rng = StdRng::seed_from_u64(config.seed);
    let sample = |rng: &mut StdRng, mean: f64, cv: f64| -> SimDuration {
        if mean <= 0.0 {
            return SimDuration::ZERO;
        }
        let sigma2 = (1.0 + cv * cv).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        let d = LogNormal::new(mu, sigma2.sqrt()).expect("valid lognormal");
        SimDuration::from_secs_f64(d.sample(rng))
    };

    // Pools 0..4 are tier CPUs, 4..8 tier disks.
    let mut pools: Vec<MachinePool> = config
        .cpu_cores
        .iter()
        .map(|c| MachinePool::new(*c))
        .chain(config.disk_channels.iter().map(|c| MachinePool::new(*c)))
        .collect();

    let mut q: EventQueue<Ev> = EventQueue::new();
    let horizon = SimTime::ZERO + config.horizon;
    for s in 0..3 {
        q.schedule(SimTime::ZERO, Ev::Launch { series: s });
    }
    q.schedule(SimTime::ZERO + config.sample_every, Ev::Sample);

    let mut jobs: HashMap<u64, SeriesJob> = HashMap::new();
    let mut job_series: HashMap<u64, usize> = HashMap::new();
    let mut next_job: u64 = 0;
    let mut run = PhysicalRun {
        tier_cpu: TIERS
            .iter()
            .map(|t| (t.label(), TimeSeries::new()))
            .collect(),
        concurrent: TimeSeries::new(),
        responses: ResponseTimeRegistry::with_history(),
    };
    let dc = gdisim_types::DcId(0);

    macro_rules! begin_step {
        ($q:expr, $job_id:expr, $now:expr, $jobs:expr, $job_series:expr, $rng:expr) => {{
            let job = &$jobs[&$job_id];
            let series = $job_series[&$job_id];
            let template = &templates[series][job.op_idx];
            let step = template.steps[job.step_idx];
            let overhead = rates.per_message_overhead;
            match step.to.holon {
                Holon::Client => {
                    let svc = sample(
                        $rng,
                        step.r.cycles / rates.client_clock_hz,
                        config.service_cv,
                    );
                    $q.schedule($now + overhead + svc, Ev::ClientDone { job: $job_id });
                }
                Holon::Tier(kind) => {
                    let pool = tier_index(kind);
                    let svc = sample(
                        $rng,
                        step.r.cycles / rates.server_clock_hz,
                        config.service_cv,
                    );
                    let arrive = $now + overhead;
                    if let Some((j, finish)) = pools[pool].offer(arrive, $job_id, svc) {
                        $q.schedule(
                            finish,
                            Ev::PoolDone {
                                pool,
                                job: j,
                                phase: Phase::Cpu,
                            },
                        );
                    }
                }
            }
        }};
    }

    while let Some(ev) = q.pop() {
        let now = ev.at;
        if now > horizon {
            break;
        }
        match ev.payload {
            Ev::Launch { series } => {
                // Start a new chained series run.
                let job_id = next_job;
                next_job += 1;
                jobs.insert(
                    job_id,
                    SeriesJob {
                        app: apps[series],
                        op_idx: 0,
                        step_idx: 0,
                        op_started: now,
                    },
                );
                job_series.insert(job_id, series);
                begin_step!(q, job_id, now, jobs, job_series, &mut rng);
                let period = [config.periods.0, config.periods.1, config.periods.2][series];
                let next = now + SimDuration::from_secs(period);
                if next < SimTime::ZERO + config.launch_window {
                    q.schedule(next, Ev::Launch { series });
                }
            }
            Ev::StepStart { job } => {
                begin_step!(q, job, now, jobs, job_series, &mut rng);
            }
            Ev::PoolDone { pool, job, phase } => {
                // Free the server; a queued job may start.
                if let Some((next_j, finish)) = pools[pool].complete(now) {
                    q.schedule(
                        finish,
                        Ev::PoolDone {
                            pool,
                            job: next_j,
                            phase,
                        },
                    );
                }
                let series = job_series[&job];
                let (step, kind) = {
                    let j = &jobs[&job];
                    let t = &templates[series][j.op_idx];
                    let step = t.steps[j.step_idx];
                    let kind = match step.to.holon {
                        Holon::Tier(k) => k,
                        Holon::Client => unreachable!("pool completion for a client step"),
                    };
                    (step, kind)
                };
                if phase == Phase::Cpu && step.r.disk_bytes > 0.0 {
                    // Continue into the tier's storage pool.
                    let disk_pool = 4 + tier_index(kind);
                    let svc = sample(
                        &mut rng,
                        step.r.disk_bytes / rates.disk_bytes_per_sec,
                        config.service_cv,
                    );
                    if let Some((j, finish)) = pools[disk_pool].offer(now, job, svc) {
                        q.schedule(
                            finish,
                            Ev::PoolDone {
                                pool: disk_pool,
                                job: j,
                                phase: Phase::Disk,
                            },
                        );
                    }
                } else {
                    advance_job(
                        &mut q,
                        &mut jobs,
                        &mut job_series,
                        &templates,
                        &mut run,
                        job,
                        now,
                        dc,
                    );
                }
            }
            Ev::ClientDone { job } => {
                advance_job(
                    &mut q,
                    &mut jobs,
                    &mut job_series,
                    &templates,
                    &mut run,
                    job,
                    now,
                    dc,
                );
            }
            Ev::Sample => {
                for (i, tier) in TIERS.iter().enumerate() {
                    let stats = pools[i].stats(now, config.sample_every);
                    run.tier_cpu
                        .get_mut(tier.label())
                        .expect("tier series")
                        .push(now, stats.utilization);
                }
                // Also reset disk meters so their windows stay aligned.
                for pool in pools.iter_mut().skip(4) {
                    let _ = pool.stats(now, config.sample_every);
                }
                run.concurrent.push(now, jobs.len() as f64);
                let next = now + config.sample_every;
                if next <= horizon {
                    q.schedule(next, Ev::Sample);
                }
            }
        }
    }
    run
}

#[allow(clippy::too_many_arguments)]
fn advance_job(
    q: &mut EventQueue<Ev>,
    jobs: &mut HashMap<u64, SeriesJob>,
    job_series: &mut HashMap<u64, usize>,
    templates: &[Vec<Arc<OperationTemplate>>; 3],
    run: &mut PhysicalRun,
    job_id: u64,
    now: SimTime,
    dc: gdisim_types::DcId,
) {
    let series = job_series[&job_id];
    let job = jobs.get_mut(&job_id).expect("job live");
    let template = &templates[series][job.op_idx];
    job.step_idx += 1;
    if job.step_idx < template.steps.len() {
        q.schedule(now, Ev::StepStart { job: job_id });
        return;
    }
    // Operation complete.
    let key = ResponseKey {
        app: job.app,
        op: OpTypeId::from_index(job.op_idx),
        dc,
    };
    run.responses.record(key, now, now - job.op_started);
    job.op_idx += 1;
    job.step_idx = 0;
    job.op_started = now;
    if job.op_idx < templates[series].len() {
        q.schedule(now, Ev::StepStart { job: job_id });
    } else {
        jobs.remove(&job_id);
        job_series.remove(&job_id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdisim_types::units::ghz;
    use gdisim_workload::{Catalog, SeriesKind};

    fn rates() -> RateCard {
        RateCard {
            client_clock_hz: ghz(2.0),
            server_clock_hz: ghz(2.5),
            net_secs_per_byte: 2.48e-8,
            disk_bytes_per_sec: 190e6,
            per_message_overhead: SimDuration::from_millis(15),
        }
    }

    fn quick_config() -> TestbedConfig {
        TestbedConfig {
            launch_window: SimDuration::from_secs(300),
            horizon: SimDuration::from_secs(420),
            ..TestbedConfig::default()
        }
    }

    fn series3(rc: &RateCard) -> [Vec<OperationTemplate>; 3] {
        [
            Catalog::cad_series(SeriesKind::Light, rc),
            Catalog::cad_series(SeriesKind::Average, rc),
            Catalog::cad_series(SeriesKind::Heavy, rc),
        ]
    }

    #[test]
    fn runs_and_completes_operations() {
        let rc = rates();
        let run = run_validation(
            series3(&rc),
            [AppId(10), AppId(11), AppId(12)],
            &rc,
            &quick_config(),
        );
        // LOGIN of the light series completes within the horizon, many
        // times.
        let key = ResponseKey {
            app: AppId(10),
            op: OpTypeId(0),
            dc: gdisim_types::DcId(0),
        };
        let history = run.responses.history(key);
        assert!(
            history.len() >= 10,
            "got {} LOGIN completions",
            history.len()
        );
        // Mean near the canonical 1.94 s (jitter and queueing allowed).
        let mean = run.responses.history_mean(key).unwrap();
        assert!((mean - 1.94).abs() < 0.8, "LOGIN mean {mean}");
    }

    #[test]
    fn utilization_traces_are_sampled() {
        let rc = rates();
        let run = run_validation(
            series3(&rc),
            [AppId(10), AppId(11), AppId(12)],
            &rc,
            &quick_config(),
        );
        let app = &run.tier_cpu["Tapp"];
        assert!(app.len() > 50, "6 s cadence over 7 min");
        let mean_util = gdisim_metrics::mean(app.values());
        assert!(mean_util > 0.02 && mean_util < 1.0, "Tapp mean {mean_util}");
        assert!(run.concurrent.max().unwrap().1 >= 3.0);
    }

    #[test]
    fn deterministic_for_a_seed() {
        let rc = rates();
        let a = run_validation(
            series3(&rc),
            [AppId(10), AppId(11), AppId(12)],
            &rc,
            &quick_config(),
        );
        let b = run_validation(
            series3(&rc),
            [AppId(10), AppId(11), AppId(12)],
            &rc,
            &quick_config(),
        );
        assert_eq!(a.tier_cpu["Tapp"].values(), b.tier_cpu["Tapp"].values());
        assert_eq!(a.concurrent.values(), b.concurrent.values());
    }

    #[test]
    fn heavier_schedule_raises_utilization() {
        let rc = rates();
        let light = run_validation(
            series3(&rc),
            [AppId(10), AppId(11), AppId(12)],
            &rc,
            &quick_config(),
        );
        let heavy_cfg = TestbedConfig {
            periods: (8, 18, 30),
            ..quick_config()
        };
        let heavy = run_validation(
            series3(&rc),
            [AppId(10), AppId(11), AppId(12)],
            &rc,
            &heavy_cfg,
        );
        let lu = gdisim_metrics::mean(light.tier_cpu["Tapp"].values());
        let hu = gdisim_metrics::mean(heavy.tier_cpu["Tapp"].values());
        assert!(
            hu > lu,
            "heavier schedule must load Tapp more: {lu} vs {hu}"
        );
    }
}
