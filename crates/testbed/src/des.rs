//! A minimal discrete-event calendar.
//!
//! Events are `(time, sequence, payload)` triples in a binary heap; the
//! sequence number makes simultaneous events FIFO-stable so runs are
//! exactly reproducible.

use gdisim_types::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An event: a payload due at a time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event<P> {
    /// Due time.
    pub at: SimTime,
    /// Payload.
    pub payload: P,
}

/// A time-ordered event queue.
#[derive(Debug)]
pub struct EventQueue<P> {
    heap: BinaryHeap<Reverse<(u64, u64, u64)>>,
    payloads: Vec<Option<P>>,
    seq: u64,
}

impl<P> Default for EventQueue<P> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            payloads: Vec::new(),
            seq: 0,
        }
    }
}

impl<P> EventQueue<P> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules a payload at `at`.
    pub fn schedule(&mut self, at: SimTime, payload: P) {
        let idx = self.payloads.len() as u64;
        self.payloads.push(Some(payload));
        self.heap.push(Reverse((at.as_micros(), self.seq, idx)));
        self.seq += 1;
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<Event<P>> {
        let Reverse((t, _, idx)) = self.heap.pop()?;
        let payload = self.payloads[idx as usize]
            .take()
            .expect("event fired twice");
        Some(Event {
            at: SimTime(t),
            payload,
        })
    }

    /// Earliest scheduled time without popping.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((t, _, _))| SimTime(*t))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), "c");
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}
