//! `--profile-json` document rendering.
//!
//! The document is a single JSON object (schema tag
//! `"gdisim.profile.v1"`) combining the aggregated [`StepProfile`] with
//! an optional [`MetricsRegistry`] snapshot:
//!
//! ```json
//! {
//!   "schema": "gdisim.profile.v1",
//!   "steps": 360000, "wall_ns": 1234567,
//!   "phases": {"drain": {"wall_ns": ..., "share": ...}, ...},
//!   "step_ns": {"count": ..., "p50": ..., "buckets": [[lo, hi, n], ...]},
//!   "drains": {"faults": {"skipped": ..., "gated": ..., "noop": ..., "cancelled": ...}, ...},
//!   "active_set": {"mean": ..., "max": ..., "series": [[t_secs, n], ...]},
//!   "spans": {"recorded": ..., "dropped": ...},
//!   "registry": {"counters": {...}, "gauges": {...}, "histograms": {...}}
//! }
//! ```

use crate::profiler::{DrainStats, StepProfile, PHASE_NAMES};
use gdisim_metrics::MetricsRegistry;
use serde::Value;

fn drain_to_value(d: &DrainStats) -> Value {
    Value::Object(vec![
        ("skipped".into(), Value::U64(d.skipped)),
        ("gated".into(), Value::U64(d.gated)),
        ("polled".into(), Value::U64(d.polled)),
        ("noop".into(), Value::U64(d.noop)),
        ("cancelled".into(), Value::U64(d.cancelled)),
        ("events".into(), Value::U64(d.events)),
    ])
}

/// Renders the profile (and registry, when given) as a JSON value.
pub fn profile_to_value(p: &StepProfile, registry: Option<&MetricsRegistry>) -> Value {
    let wall = p.wall_ns.max(1) as f64;
    let phases = PHASE_NAMES
        .iter()
        .zip(p.phase_ns.iter())
        .map(|(name, &ns)| {
            (
                (*name).to_string(),
                Value::Object(vec![
                    ("wall_ns".into(), Value::U64(ns)),
                    ("share".into(), Value::F64(ns as f64 / wall)),
                ]),
            )
        })
        .collect();
    let drains = p
        .drains
        .iter()
        .map(|(label, d)| (label.clone(), drain_to_value(d)))
        .collect();
    let series = p
        .occupancy_series
        .iter()
        .map(|&(t, v)| Value::Array(vec![Value::F64(t), Value::F64(v)]))
        .collect();
    let mut doc = vec![
        ("schema".into(), Value::Str("gdisim.profile.v1".into())),
        ("steps".into(), Value::U64(p.steps)),
        ("wall_ns".into(), Value::U64(p.wall_ns)),
        ("phases".into(), Value::Object(phases)),
        ("step_ns".into(), p.step_hist.to_value()),
        ("drains".into(), Value::Object(drains)),
        (
            "active_set".into(),
            Value::Object(vec![
                ("mean".into(), Value::F64(p.occupancy_mean)),
                ("max".into(), Value::U64(p.occupancy_max)),
                ("series".into(), Value::Array(series)),
            ]),
        ),
        (
            "spans".into(),
            Value::Object(vec![
                ("recorded".into(), Value::U64(p.spans_recorded)),
                ("dropped".into(), Value::U64(p.spans_dropped)),
            ]),
        ),
    ];
    if let Some(r) = registry {
        doc.push(("registry".into(), r.to_value()));
    }
    Value::Object(doc)
}

/// Renders the profile document as pretty-printed JSON.
pub fn profile_json(p: &StepProfile, registry: Option<&MetricsRegistry>) -> String {
    serde_json::to_string_pretty(&profile_to_value(p, registry))
        .expect("value serialization is infallible")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::{StepProfiler, NUM_CLASSES, PHASE_ADVANCE, PHASE_DRAIN};

    const LABELS: [&str; NUM_CLASSES] = ["a", "b", "c", "d", "e", "f", "g", "h", "i"];

    #[test]
    fn document_has_required_keys_and_parses() {
        let mut prof = StepProfiler::new();
        prof.begin_step(0);
        prof.mark_phase(PHASE_DRAIN);
        prof.mark_phase(PHASE_ADVANCE);
        prof.end_step(2);
        prof.note_drain(0, true, true, 3);
        prof.note_cancelled(0, 2);
        prof.sample_occupancy(1.0, 2.0);
        let mut reg = MetricsRegistry::new();
        reg.set_counter("ops.completed", 9);
        let json = profile_json(&prof.profile(&LABELS), Some(&reg));
        let doc = serde_json::parse_value(&json).expect("valid JSON");
        for key in [
            "schema",
            "steps",
            "wall_ns",
            "phases",
            "step_ns",
            "drains",
            "active_set",
            "spans",
            "registry",
        ] {
            assert!(doc.get(key).is_some(), "missing key {key}");
        }
        assert_eq!(
            doc.get("schema").and_then(Value::as_str),
            Some("gdisim.profile.v1")
        );
        let drain_a = doc.get("drains").unwrap().get("a").unwrap();
        assert_eq!(drain_a.get("gated").and_then(Value::as_u64), Some(1));
        assert_eq!(drain_a.get("events").and_then(Value::as_u64), Some(3));
        assert_eq!(drain_a.get("cancelled").and_then(Value::as_u64), Some(2));
        let reg = doc.get("registry").unwrap();
        assert_eq!(
            reg.get("counters")
                .unwrap()
                .get("ops.completed")
                .and_then(Value::as_u64),
            Some(9)
        );
    }

    #[test]
    fn phase_shares_sum_to_one() {
        let mut prof = StepProfiler::new();
        for _ in 0..10 {
            prof.begin_step(0);
            prof.mark_phase(PHASE_DRAIN);
            prof.mark_phase(PHASE_ADVANCE);
            prof.end_step(0);
        }
        let v = profile_to_value(&prof.profile(&LABELS), None);
        let phases = v.get("phases").unwrap();
        let total: f64 = PHASE_NAMES
            .iter()
            .map(|n| {
                phases
                    .get(n)
                    .unwrap()
                    .get("share")
                    .and_then(Value::as_f64)
                    .unwrap()
            })
            .sum();
        assert!((total - 1.0).abs() < 1e-9, "shares sum to {total}");
    }
}
