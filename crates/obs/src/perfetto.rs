//! Chrome trace-event rendering of recorded phase spans.
//!
//! The output is the JSON object form of the trace-event format
//! (`{"traceEvents": [...]}`), loadable in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`. Each recorded
//! phase span becomes one complete (`"ph": "X"`) event; timestamps and
//! durations are in integer microseconds as the format requires, and
//! the owning step's simulation time rides along in `args.sim_us` so a
//! wall-clock hotspot can be mapped back to the simulated moment that
//! caused it.

use crate::profiler::{Span, PHASE_NAMES};
use serde::Value;

/// Renders one span as a trace-event object.
pub fn span_to_value(span: &Span) -> Value {
    Value::Object(vec![
        ("name".into(), Value::Str(PHASE_NAMES[span.phase].into())),
        ("cat".into(), Value::Str("step".into())),
        ("ph".into(), Value::Str("X".into())),
        ("ts".into(), Value::U64(span.start_ns / 1_000)),
        ("dur".into(), Value::U64(span.dur_ns / 1_000)),
        ("pid".into(), Value::U64(1)),
        ("tid".into(), Value::U64(1)),
        (
            "args".into(),
            Value::Object(vec![("sim_us".into(), Value::U64(span.sim_us))]),
        ),
    ])
}

/// Renders a full trace document from recorded spans.
pub fn render_trace(spans: &[Span]) -> String {
    let events: Vec<Value> = spans.iter().map(span_to_value).collect();
    let doc = Value::Object(vec![
        ("traceEvents".into(), Value::Array(events)),
        ("displayTimeUnit".into(), Value::Str("ms".into())),
    ]);
    serde_json::to_string(&doc).expect("value serialization is infallible")
}

/// Renders a combined trace document: the profiler's step-phase spans
/// (pid 1, exactly as [`render_trace`] emits them) plus extra
/// pre-rendered events — typically the per-DC operation async spans
/// from [`crate::optrace::op_perfetto_events`].
pub fn render_trace_with(spans: &[Span], extra: Vec<Value>) -> String {
    let mut events: Vec<Value> = spans.iter().map(span_to_value).collect();
    events.extend(extra);
    let doc = Value::Object(vec![
        ("traceEvents".into(), Value::Array(events)),
        ("displayTimeUnit".into(), Value::Str("ms".into())),
    ]);
    serde_json::to_string(&doc).expect("value serialization is infallible")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_span_record() {
        let span = Span {
            phase: 1,
            start_ns: 2_500,
            dur_ns: 1_500,
            sim_us: 10_000,
        };
        let json = serde_json::to_string(&span_to_value(&span)).unwrap();
        assert_eq!(
            json,
            r#"{"name":"advance","cat":"step","ph":"X","ts":2,"dur":1,"pid":1,"tid":1,"args":{"sim_us":10000}}"#
        );
    }

    #[test]
    fn trace_document_parses_back() {
        let spans = [
            Span {
                phase: 0,
                start_ns: 0,
                dur_ns: 4_000,
                sim_us: 0,
            },
            Span {
                phase: 3,
                start_ns: 4_000,
                dur_ns: 2_000,
                sim_us: 0,
            },
        ];
        let doc = serde_json::parse_value(&render_trace(&spans)).expect("valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("traceEvents array");
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("name").and_then(Value::as_str), Some("drain"));
        assert_eq!(events[1].get("ts").and_then(Value::as_u64), Some(4));
    }
}
