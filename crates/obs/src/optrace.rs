//! Causal operation tracing: span trees with latency attribution
//! (ISSUE 10).
//!
//! The engine's `--trace-jsonl` event log answers "what happened when";
//! this module answers "*why was this operation slow*". Each sampled
//! operation becomes a span tree: the operation root, one
//! [`AttemptSpan`] per retry attempt (annotated with the route's
//! circuit-breaker state at admission), one [`HalfSpan`] per hedge half
//! (primary and, when a twin launched, the twin), one [`MsgSpan`] per
//! cascade message and one [`HopSeg`] per component hop — each hop
//! split into queue-wait, nominal service and WAN-propagation segments.
//!
//! Everything here is **engine-free**: the recorder in `gdisim-core`
//! owns the bookkeeping and hands finished records to this module for
//! attribution ([`attribute`]) and rendering ([`render_optrace`],
//! [`op_perfetto_events`]). Cross-shard hops arrive as pre-split
//! [`HopSeg`]s stitched onto the home record, so no component lookup is
//! ever needed at render time.
//!
//! Sampling ([`sample`]) is counter-free and seed-stable: a splitmix64
//! finalizer over `(seed, instance id)` — no RNG stream is consumed, so
//! tracing on/off (at any rate) cannot perturb the simulation.

use gdisim_metrics::{OpComponents, ResponseKey};
use serde::Value;

/// Sampling threshold scale: the top 53 bits of the hash, mapped to
/// `[0, 1)` exactly the way the engine's own uniform sampler does.
const SAMPLE_SCALE: f64 = 1.0 / (1u64 << 53) as f64;

/// Deterministic per-operation sampling decision.
///
/// Hashes `(seed, instance)` through a splitmix64 finalizer and accepts
/// when the resulting uniform lies under `rate`. Stable across engines,
/// shard counts and runs; monotone in `rate` (an operation sampled at
/// 1% is also sampled at 10%). Draws nothing from any RNG stream.
pub fn sample(seed: u64, instance: u64, rate: f64) -> bool {
    if rate <= 0.0 {
        return false;
    }
    if rate >= 1.0 {
        return true;
    }
    let mut z = seed ^ instance.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    ((z >> 11) as f64 * SAMPLE_SCALE) < rate
}

/// One finished component hop, pre-split into attribution segments.
///
/// The split is computed *when the hop closes*, on whichever shard ran
/// it (the only place the component model is addressable), so the
/// segment is self-contained: `done_us - enq_us` is the hop's measured
/// residence, `service_us` its nominal zero-contention service time,
/// `wan_us` the link-propagation floor, and whatever remains is queue
/// wait by subtraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopSeg {
    /// Agent index the hop ran on (engine `AgentId` index).
    pub agent: u32,
    /// When the job entered the agent's queue, in sim microseconds.
    pub enq_us: u64,
    /// When the agent completed the job, in sim microseconds.
    pub done_us: u64,
    /// Nominal service segment (capped at the measured residence).
    pub service_us: u64,
    /// WAN-propagation segment (capped at the measured residence).
    pub wan_us: u64,
}

impl HopSeg {
    /// Builds a segment from raw residence bounds and the nominal
    /// `(service, wan)` split in seconds, capping each segment so that
    /// `service + wan <= done - enq` always holds (propagation first:
    /// it is a hard physical floor, service yields to it).
    pub fn from_nominal(
        agent: u32,
        enq_us: u64,
        done_us: u64,
        service_secs: f64,
        wan_secs: f64,
    ) -> Self {
        let total = done_us.saturating_sub(enq_us);
        let wan = secs_to_us(wan_secs).min(total);
        let service = secs_to_us(service_secs).min(total - wan);
        HopSeg {
            agent,
            enq_us,
            done_us,
            service_us: service,
            wan_us: wan,
        }
    }

    /// The hop's measured residence time.
    pub fn total_us(&self) -> u64 {
        self.done_us.saturating_sub(self.enq_us)
    }
}

fn secs_to_us(s: f64) -> u64 {
    if s <= 0.0 || !s.is_finite() {
        0
    } else {
        (s * 1e6).round() as u64
    }
}

/// One cascade message of an attempt half: its hop segments plus the
/// enqueue/done envelope. `remote` marks messages that migrated across
/// shard boundaries; uncovered time inside a remote message (mailbox
/// barrier waits) is attributed to WAN, not queue.
#[derive(Debug, Clone, PartialEq)]
pub struct MsgSpan {
    /// Cascade stage index the message belongs to.
    pub stage: u32,
    /// When the message's first hop was enqueued, in sim microseconds.
    pub enq_us: u64,
    /// When the message finished (or was aborted); `None` while live.
    pub done_us: Option<u64>,
    /// Whether any hop ran on a foreign shard.
    pub remote: bool,
    /// Finished hop segments, in completion order.
    pub segs: Vec<HopSeg>,
}

impl MsgSpan {
    fn effective_done(&self) -> u64 {
        self.done_us
            .unwrap_or_else(|| self.segs.last().map_or(self.enq_us, |s| s.done_us))
    }
}

/// Terminal state of one hedge half.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HalfOutcome {
    /// Still running when the run (or export) ended.
    InFlight,
    /// Delivered the operation's response.
    Completed,
    /// Cancelled quietly (hedge loser, or failing half of a live pair).
    Cancelled,
    /// Failed: timeout, fault eviction, shed, breaker rejection…
    Failed,
}

impl HalfOutcome {
    /// Stable lowercase label used in `gdisim.optrace.v1` exports.
    pub const fn label(self) -> &'static str {
        match self {
            HalfOutcome::InFlight => "in-flight",
            HalfOutcome::Completed => "completed",
            HalfOutcome::Cancelled => "cancelled",
            HalfOutcome::Failed => "failed",
        }
    }
}

/// One hedge half of an attempt: the primary launch or its hedge twin.
#[derive(Debug, Clone, PartialEq)]
pub struct HalfSpan {
    /// Engine instance id of this half.
    pub instance: u64,
    /// `"primary"` or `"twin"`.
    pub role: &'static str,
    /// Launch time, in sim microseconds.
    pub launched_us: u64,
    /// Settle time (complete, fail or cancel); `None` while live.
    pub ended_us: Option<u64>,
    /// How the half ended.
    pub outcome: HalfOutcome,
    /// Failure/cancel cause label (`"timeout"`, `"fault"`, `"churn"`,
    /// `"shed"`, `"breaker"`, `"unroutable"`), when one applies.
    pub cause: Option<&'static str>,
    /// Cascade messages issued by this half, in launch order.
    pub msgs: Vec<MsgSpan>,
}

impl HalfSpan {
    /// Creates a fresh, in-flight half.
    pub fn new(instance: u64, role: &'static str, launched_us: u64) -> Self {
        HalfSpan {
            instance,
            role,
            launched_us,
            ended_us: None,
            outcome: HalfOutcome::InFlight,
            cause: None,
            msgs: Vec::new(),
        }
    }
}

/// One retry attempt: the primary half, its optional hedge twin, and
/// the circuit-breaker state its route was in at admission.
#[derive(Debug, Clone, PartialEq)]
pub struct AttemptSpan {
    /// Attempt number (0 = first launch).
    pub attempt: u32,
    /// Breaker state label at admission (`"closed"`, `"open"`,
    /// `"half-open"`).
    pub breaker: &'static str,
    /// The original launch.
    pub primary: HalfSpan,
    /// The hedge twin, when one was issued.
    pub twin: Option<HalfSpan>,
}

impl AttemptSpan {
    /// Latest settle time across both halves, defaulting to the primary
    /// launch when nothing has ended yet.
    pub fn ended_us(&self) -> u64 {
        let p = self.primary.ended_us.unwrap_or(self.primary.launched_us);
        let t = self.twin.as_ref().and_then(|t| t.ended_us).unwrap_or(p);
        p.max(t)
    }
}

/// Terminal state of a sampled operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpStatus {
    /// Still running when the run (or export) ended.
    InFlight,
    /// Completed (a response reached the client).
    Completed,
    /// Every retry budget exhausted; the operation was abandoned.
    Abandoned,
}

impl OpStatus {
    /// Stable lowercase label used in `gdisim.optrace.v1` exports.
    pub const fn label(self) -> &'static str {
        match self {
            OpStatus::InFlight => "in-flight",
            OpStatus::Completed => "completed",
            OpStatus::Abandoned => "abandoned",
        }
    }
}

/// One sampled operation's full span tree.
#[derive(Debug, Clone, PartialEq)]
pub struct OpRecord {
    /// Root id: the engine instance id of attempt 0 (stable across
    /// retries and hedges — all later spans stitch under it).
    pub root: u64,
    /// Reporting key (application, operation type, client data center).
    pub key: ResponseKey,
    /// `"client"` or `"background"`.
    pub kind: &'static str,
    /// First-attempt launch time, in sim microseconds.
    pub started_us: u64,
    /// Settle time (completion or abandonment); `None` while live.
    pub settled_us: Option<u64>,
    /// Terminal state.
    pub status: OpStatus,
    /// Attempts in launch order.
    pub attempts: Vec<AttemptSpan>,
}

/// Decomposes a completed record's end-to-end response time into the
/// five additive [`OpComponents`]. Returns `None` for in-flight or
/// abandoned records (they have no client-visible response).
///
/// The walk covers the response interval exactly, with no gaps and no
/// double counting:
///
/// * each attempt `i` contributes `[primary launch, attempt end]`
///   (`attempt end` = settle time for the last attempt);
/// * when the last attempt was won by its hedge twin, the slice up to
///   the twin's launch is **hedge wait** and the dominant path is
///   walked through the twin's messages instead of the primary's;
/// * inside an attempt, the dominant message of each cascade stage
///   (the one finishing last) donates its nominal service and WAN
///   segments; remote messages additionally donate their uncovered
///   migration time to WAN; whatever the segments do not explain is
///   **queue** wait by subtraction;
/// * the gap between an attempt's end and the next attempt's launch is
///   retry **backoff**.
///
/// All arithmetic is in integer microseconds, so
/// `queue + service + wan + backoff + hedge_wait == response` holds
/// exactly (a final residue fold into queue guards even degenerate
/// clock data).
pub fn attribute(rec: &OpRecord) -> Option<OpComponents> {
    if rec.status != OpStatus::Completed {
        return None;
    }
    let settled = rec.settled_us?;
    let response = settled.saturating_sub(rec.started_us);
    let mut queue = 0u64;
    let mut service = 0u64;
    let mut wan = 0u64;
    let mut backoff = 0u64;
    let mut hedge_wait = 0u64;
    let n = rec.attempts.len();
    for (i, att) in rec.attempts.iter().enumerate() {
        let last = i + 1 == n;
        let end = if last { settled } else { att.ended_us() };
        // The carrying half: for the final attempt, whichever half
        // delivered the response; earlier (failed) attempts are walked
        // through their primary.
        let carrier = match &att.twin {
            Some(t) if last && t.outcome == HalfOutcome::Completed => t,
            _ => &att.primary,
        };
        if last {
            hedge_wait += carrier.launched_us.saturating_sub(att.primary.launched_us);
        }
        let wall = end.saturating_sub(carrier.launched_us);
        let (mut s, mut w) = dominant_segments(carrier);
        if w > wall {
            w = wall;
            s = 0;
        } else if s + w > wall {
            s = wall - w;
        }
        queue += wall - s - w;
        service += s;
        wan += w;
        if !last {
            let next = rec.attempts[i + 1].primary.launched_us;
            backoff += next.saturating_sub(end);
        }
    }
    // Exactness guard: fold any residue (from saturating edges on
    // malformed timestamps) into queue so the invariant always holds.
    let sum = queue + service + wan + backoff + hedge_wait;
    if response >= sum {
        queue += response - sum;
    } else {
        let mut over = sum - response;
        for slot in [
            &mut queue,
            &mut backoff,
            &mut hedge_wait,
            &mut wan,
            &mut service,
        ] {
            let cut = over.min(*slot);
            *slot -= cut;
            over -= cut;
            if over == 0 {
                break;
            }
        }
    }
    Some(OpComponents {
        queue_us: queue,
        service_us: service,
        wan_us: wan,
        backoff_us: backoff,
        hedge_wait_us: hedge_wait,
        response_us: response,
    })
}

/// Sums the dominant message's `(service, wan)` per cascade stage of
/// one half. The dominant message of a stage is the one finishing last
/// (the critical sibling — parallel siblings overlap it). A remote
/// message's uncovered residence (its envelope minus its segments,
/// i.e. mailbox-barrier time) counts as WAN.
fn dominant_segments(half: &HalfSpan) -> (u64, u64) {
    let mut service = 0u64;
    let mut wan = 0u64;
    let mut i = 0;
    while i < half.msgs.len() {
        let stage = half.msgs[i].stage;
        let mut dom: &MsgSpan = &half.msgs[i];
        let mut j = i + 1;
        while j < half.msgs.len() && half.msgs[j].stage == stage {
            if half.msgs[j].effective_done() > dom.effective_done() {
                dom = &half.msgs[j];
            }
            j += 1;
        }
        let mut covered = 0u64;
        for seg in &dom.segs {
            service += seg.service_us;
            wan += seg.wan_us;
            covered += seg.total_us();
        }
        if dom.remote {
            let span = dom.effective_done().saturating_sub(dom.enq_us);
            wan += span.saturating_sub(covered);
        }
        i = j;
    }
    (service, wan)
}

// ----- gdisim.optrace.v1 rendering -----------------------------------

fn opt_u64(v: Option<u64>) -> Value {
    v.map_or(Value::Null, Value::U64)
}

fn opt_str(v: Option<&'static str>) -> Value {
    v.map_or(Value::Null, |s| Value::Str(s.to_string()))
}

fn seg_to_value(seg: &HopSeg, agent_label: &dyn Fn(u32) -> String) -> Value {
    Value::Object(vec![
        ("agent".to_string(), Value::U64(u64::from(seg.agent))),
        ("label".to_string(), Value::Str(agent_label(seg.agent))),
        ("enq_us".to_string(), Value::U64(seg.enq_us)),
        ("done_us".to_string(), Value::U64(seg.done_us)),
        ("service_us".to_string(), Value::U64(seg.service_us)),
        ("wan_us".to_string(), Value::U64(seg.wan_us)),
        (
            "queue_us".to_string(),
            Value::U64(seg.total_us() - seg.service_us - seg.wan_us),
        ),
    ])
}

fn msg_to_value(msg: &MsgSpan, agent_label: &dyn Fn(u32) -> String) -> Value {
    Value::Object(vec![
        ("stage".to_string(), Value::U64(u64::from(msg.stage))),
        ("enq_us".to_string(), Value::U64(msg.enq_us)),
        ("done_us".to_string(), opt_u64(msg.done_us)),
        ("remote".to_string(), Value::Bool(msg.remote)),
        (
            "hops".to_string(),
            Value::Array(
                msg.segs
                    .iter()
                    .map(|s| seg_to_value(s, agent_label))
                    .collect(),
            ),
        ),
    ])
}

fn half_to_value(half: &HalfSpan, agent_label: &dyn Fn(u32) -> String) -> Value {
    Value::Object(vec![
        ("instance".to_string(), Value::U64(half.instance)),
        ("role".to_string(), Value::Str(half.role.to_string())),
        ("launched_us".to_string(), Value::U64(half.launched_us)),
        ("ended_us".to_string(), opt_u64(half.ended_us)),
        (
            "outcome".to_string(),
            Value::Str(half.outcome.label().to_string()),
        ),
        ("cause".to_string(), opt_str(half.cause)),
        (
            "msgs".to_string(),
            Value::Array(msg_to_value_list(&half.msgs, agent_label)),
        ),
    ])
}

fn msg_to_value_list(msgs: &[MsgSpan], agent_label: &dyn Fn(u32) -> String) -> Vec<Value> {
    msgs.iter().map(|m| msg_to_value(m, agent_label)).collect()
}

fn components_to_value(c: &OpComponents) -> Value {
    Value::Object(vec![
        ("queue_us".to_string(), Value::U64(c.queue_us)),
        ("service_us".to_string(), Value::U64(c.service_us)),
        ("wan_us".to_string(), Value::U64(c.wan_us)),
        ("backoff_us".to_string(), Value::U64(c.backoff_us)),
        ("hedge_wait_us".to_string(), Value::U64(c.hedge_wait_us)),
        ("response_us".to_string(), Value::U64(c.response_us)),
    ])
}

/// Renders one operation record as a `gdisim.optrace.v1` ops entry.
///
/// `shard` tags the owning shard in sharded runs (instance ids are
/// per-shard and may collide across shards); `key_labels` resolves the
/// reporting key to display names and `agent_label` resolves agent
/// indices.
pub fn op_to_value(
    shard: Option<u32>,
    rec: &OpRecord,
    key_labels: &dyn Fn(&ResponseKey) -> (String, String, String),
    agent_label: &dyn Fn(u32) -> String,
) -> Value {
    let (app, op, dc) = key_labels(&rec.key);
    let mut fields = vec![("root".to_string(), Value::U64(rec.root))];
    if let Some(s) = shard {
        fields.push(("shard".to_string(), Value::U64(u64::from(s))));
    }
    fields.extend([
        ("app".to_string(), Value::Str(app)),
        ("op".to_string(), Value::Str(op)),
        ("client_dc".to_string(), Value::Str(dc)),
        ("kind".to_string(), Value::Str(rec.kind.to_string())),
        (
            "status".to_string(),
            Value::Str(rec.status.label().to_string()),
        ),
        ("started_us".to_string(), Value::U64(rec.started_us)),
        ("settled_us".to_string(), opt_u64(rec.settled_us)),
    ]);
    if let Some(c) = attribute(rec) {
        fields.push(("components".to_string(), components_to_value(&c)));
    }
    fields.push((
        "attempts".to_string(),
        Value::Array(
            rec.attempts
                .iter()
                .map(|a| {
                    Value::Object(vec![
                        ("attempt".to_string(), Value::U64(u64::from(a.attempt))),
                        ("breaker".to_string(), Value::Str(a.breaker.to_string())),
                        (
                            "primary".to_string(),
                            half_to_value(&a.primary, agent_label),
                        ),
                        (
                            "twin".to_string(),
                            a.twin
                                .as_ref()
                                .map_or(Value::Null, |t| half_to_value(t, agent_label)),
                        ),
                    ])
                })
                .collect(),
        ),
    ));
    Value::Object(fields)
}

/// Summary counters for a `gdisim.optrace.v1` document.
#[derive(Debug, Clone, Copy, Default)]
pub struct OptraceCounters {
    /// Operations that passed the sampling decision.
    pub sampled: u64,
    /// Settled records retained for export.
    pub finished: u64,
    /// Settled records discarded once the retention cap filled.
    pub dropped: u64,
}

/// Assembles the full `gdisim.optrace.v1` document from pre-rendered
/// parts: the per-key attribution table (from
/// [`gdisim_metrics::AttributionAggregator::to_value`]) and the
/// individual op entries (from [`op_to_value`]).
pub fn render_optrace(
    seed: u64,
    rate: f64,
    counters: OptraceCounters,
    attribution: Value,
    ops: Vec<Value>,
) -> Value {
    Value::Object(vec![
        (
            "format".to_string(),
            Value::Str("gdisim.optrace.v1".to_string()),
        ),
        ("seed".to_string(), Value::U64(seed)),
        ("rate".to_string(), Value::F64(rate)),
        (
            "counters".to_string(),
            Value::Object(vec![
                ("sampled".to_string(), Value::U64(counters.sampled)),
                ("finished".to_string(), Value::U64(counters.finished)),
                ("dropped".to_string(), Value::U64(counters.dropped)),
            ]),
        ),
        ("attribution".to_string(), attribution),
        ("ops".to_string(), Value::Array(ops)),
    ])
}

// ----- Perfetto rendering ---------------------------------------------

/// Renders sampled operations as Perfetto async spans, one track group
/// per client data center.
///
/// Each operation becomes a `"b"`/`"e"` async pair (category `"op"`,
/// name `"app/op"`, id = root, qualified by shard when given) under a
/// per-DC pid supplied by `dc_pid`; one `"M"` `process_name` metadata
/// event is emitted per distinct pid, named by `dc_name`. In-flight
/// records render their begin event only — Perfetto shows them as
/// unterminated spans.
pub fn op_perfetto_events(
    entries: &[(Option<u32>, &OpRecord)],
    key_labels: &dyn Fn(&ResponseKey) -> (String, String, String),
    dc_pid: &dyn Fn(&ResponseKey) -> u64,
    dc_name: &dyn Fn(&ResponseKey) -> String,
) -> Vec<Value> {
    let mut events = Vec::new();
    let mut named_pids: Vec<u64> = Vec::new();
    for (shard, rec) in entries {
        let pid = dc_pid(&rec.key);
        if !named_pids.contains(&pid) {
            named_pids.push(pid);
            events.push(Value::Object(vec![
                ("name".to_string(), Value::Str("process_name".to_string())),
                ("ph".to_string(), Value::Str("M".to_string())),
                ("pid".to_string(), Value::U64(pid)),
                ("tid".to_string(), Value::U64(1)),
                (
                    "args".to_string(),
                    Value::Object(vec![("name".to_string(), Value::Str(dc_name(&rec.key)))]),
                ),
            ]));
        }
        let (app, op, _) = key_labels(&rec.key);
        let name = format!("{app}/{op}");
        let id = match shard {
            Some(s) => format!("{s}:{}", rec.root),
            None => format!("{}", rec.root),
        };
        let base = |ph: &str, ts: u64| {
            vec![
                ("name".to_string(), Value::Str(name.clone())),
                ("cat".to_string(), Value::Str("op".to_string())),
                ("ph".to_string(), Value::Str(ph.to_string())),
                ("id".to_string(), Value::Str(id.clone())),
                ("ts".to_string(), Value::U64(ts)),
                ("pid".to_string(), Value::U64(pid)),
                ("tid".to_string(), Value::U64(1)),
            ]
        };
        let mut begin = base("b", rec.started_us);
        begin.push((
            "args".to_string(),
            Value::Object(vec![
                (
                    "status".to_string(),
                    Value::Str(rec.status.label().to_string()),
                ),
                (
                    "attempts".to_string(),
                    Value::U64(rec.attempts.len() as u64),
                ),
                (
                    "hedged".to_string(),
                    Value::Bool(rec.attempts.iter().any(|a| a.twin.is_some())),
                ),
            ]),
        ));
        events.push(Value::Object(begin));
        if let Some(settled) = rec.settled_us {
            events.push(Value::Object(base("e", settled)));
        }
    }
    events
}

// Checkpoint support: `HopSeg` rides inside the sharded engine's
// mailbox payloads, which are part of checkpointed state.
gdisim_snap::snap_struct!(HopSeg {
    agent,
    enq_us,
    done_us,
    service_us,
    wan_us,
});

#[cfg(test)]
mod tests {
    use super::*;
    use gdisim_types::{AppId, DcId, OpTypeId};

    fn key() -> ResponseKey {
        ResponseKey {
            app: AppId(1),
            op: OpTypeId(2),
            dc: DcId::from_index(0),
        }
    }

    fn labels(_: &ResponseKey) -> (String, String, String) {
        ("CAD".to_string(), "open".to_string(), "NA".to_string())
    }

    fn agent_label(a: u32) -> String {
        format!("agent{a}")
    }

    fn msg(stage: u32, enq: u64, done: u64, segs: Vec<HopSeg>) -> MsgSpan {
        MsgSpan {
            stage,
            enq_us: enq,
            done_us: Some(done),
            remote: false,
            segs,
        }
    }

    fn seg(enq: u64, done: u64, service: u64, wan: u64) -> HopSeg {
        HopSeg {
            agent: 0,
            enq_us: enq,
            done_us: done,
            service_us: service,
            wan_us: wan,
        }
    }

    #[test]
    fn sampler_is_deterministic_monotone_and_edge_stable() {
        assert!(!sample(7, 42, 0.0));
        assert!(sample(7, 42, 1.0));
        let mut hits_low = 0u32;
        let mut hits_high = 0u32;
        for i in 0..10_000u64 {
            let low = sample(99, i, 0.1);
            let high = sample(99, i, 0.9);
            assert_eq!(low, sample(99, i, 0.1), "decision must be stable");
            if low {
                assert!(high, "sampling must be monotone in rate");
            }
            hits_low += u32::from(low);
            hits_high += u32::from(high);
        }
        // Loose concentration bounds: ~1000 and ~9000 expected.
        assert!((700..1300).contains(&hits_low), "got {hits_low}");
        assert!((8700..9300).contains(&hits_high), "got {hits_high}");
    }

    #[test]
    fn hop_seg_caps_nominal_at_residence() {
        let s = HopSeg::from_nominal(3, 100, 150, 40e-6, 30e-6);
        assert_eq!(s.wan_us, 30);
        assert_eq!(s.service_us, 20, "service yields to propagation");
        let s = HopSeg::from_nominal(3, 100, 110, 4e-6, 100e-6);
        assert_eq!(s.wan_us, 10);
        assert_eq!(s.service_us, 0);
    }

    #[test]
    fn attribute_simple_op_is_exact() {
        let rec = OpRecord {
            root: 1,
            key: key(),
            kind: "client",
            started_us: 1000,
            settled_us: Some(1500),
            status: OpStatus::Completed,
            attempts: vec![AttemptSpan {
                attempt: 0,
                breaker: "closed",
                primary: HalfSpan {
                    ended_us: Some(1500),
                    outcome: HalfOutcome::Completed,
                    msgs: vec![
                        msg(0, 1000, 1200, vec![seg(1000, 1200, 120, 50)]),
                        msg(1, 1200, 1500, vec![seg(1200, 1500, 200, 0)]),
                    ],
                    ..HalfSpan::new(1, "primary", 1000)
                },
                twin: None,
            }],
        };
        let c = attribute(&rec).expect("completed record attributes");
        assert!(c.is_exact());
        assert_eq!(c.response_us, 500);
        assert_eq!(c.service_us, 320);
        assert_eq!(c.wan_us, 50);
        assert_eq!(c.queue_us, 130);
        assert_eq!(c.backoff_us, 0);
        assert_eq!(c.hedge_wait_us, 0);
    }

    #[test]
    fn attribute_retry_and_hedge_components() {
        // Attempt 0 fails at 2000 (launched 1000); retry launches at
        // 2600 (600us backoff); its twin launches at 2800 and wins at
        // 3400.
        let rec = OpRecord {
            root: 5,
            key: key(),
            kind: "client",
            started_us: 1000,
            settled_us: Some(3400),
            status: OpStatus::Completed,
            attempts: vec![
                AttemptSpan {
                    attempt: 0,
                    breaker: "closed",
                    primary: HalfSpan {
                        ended_us: Some(2000),
                        outcome: HalfOutcome::Failed,
                        cause: Some("timeout"),
                        msgs: vec![msg(0, 1000, 2000, vec![seg(1000, 1400, 100, 0)])],
                        ..HalfSpan::new(5, "primary", 1000)
                    },
                    twin: None,
                },
                AttemptSpan {
                    attempt: 1,
                    breaker: "half-open",
                    primary: HalfSpan {
                        ended_us: Some(3400),
                        outcome: HalfOutcome::Cancelled,
                        msgs: vec![],
                        ..HalfSpan::new(6, "primary", 2600)
                    },
                    twin: Some(HalfSpan {
                        ended_us: Some(3400),
                        outcome: HalfOutcome::Completed,
                        msgs: vec![msg(0, 2800, 3400, vec![seg(2800, 3400, 500, 40)])],
                        ..HalfSpan::new(7, "twin", 2800)
                    }),
                },
            ],
        };
        let c = attribute(&rec).expect("completed record attributes");
        assert!(c.is_exact(), "{c:?}");
        assert_eq!(c.response_us, 2400);
        assert_eq!(c.backoff_us, 600);
        assert_eq!(c.hedge_wait_us, 200);
        // Attempt 0: wall 1000, service 100 → queue 900.
        // Attempt 1 (twin): wall 600, service 500, wan 40 → queue 60.
        assert_eq!(c.service_us, 600);
        assert_eq!(c.wan_us, 40);
        assert_eq!(c.queue_us, 960);
    }

    #[test]
    fn remote_migration_gap_counts_as_wan() {
        let mut m = msg(0, 1000, 2000, vec![seg(1200, 1500, 300, 0)]);
        m.remote = true;
        let rec = OpRecord {
            root: 9,
            key: key(),
            kind: "client",
            started_us: 1000,
            settled_us: Some(2000),
            status: OpStatus::Completed,
            attempts: vec![AttemptSpan {
                attempt: 0,
                breaker: "closed",
                primary: HalfSpan {
                    ended_us: Some(2000),
                    outcome: HalfOutcome::Completed,
                    msgs: vec![m],
                    ..HalfSpan::new(9, "primary", 1000)
                },
                twin: None,
            }],
        };
        let c = attribute(&rec).expect("completed record attributes");
        assert!(c.is_exact());
        // Envelope 1000, covered 300 → 700 migration gap to WAN.
        assert_eq!(c.wan_us, 700);
        assert_eq!(c.service_us, 300);
        assert_eq!(c.queue_us, 0);
    }

    #[test]
    fn in_flight_and_abandoned_records_do_not_attribute() {
        let mut rec = OpRecord {
            root: 2,
            key: key(),
            kind: "client",
            started_us: 0,
            settled_us: None,
            status: OpStatus::InFlight,
            attempts: vec![],
        };
        assert!(attribute(&rec).is_none());
        rec.status = OpStatus::Abandoned;
        rec.settled_us = Some(10);
        assert!(attribute(&rec).is_none());
    }

    #[test]
    fn optrace_document_shape() {
        let rec = OpRecord {
            root: 3,
            key: key(),
            kind: "client",
            started_us: 10,
            settled_us: Some(30),
            status: OpStatus::Completed,
            attempts: vec![AttemptSpan {
                attempt: 0,
                breaker: "closed",
                primary: HalfSpan {
                    ended_us: Some(30),
                    outcome: HalfOutcome::Completed,
                    msgs: vec![msg(0, 10, 30, vec![seg(10, 30, 20, 0)])],
                    ..HalfSpan::new(3, "primary", 10)
                },
                twin: None,
            }],
        };
        let ops = vec![op_to_value(Some(2), &rec, &labels, &agent_label)];
        let doc = render_optrace(
            7,
            0.5,
            OptraceCounters {
                sampled: 1,
                finished: 1,
                dropped: 0,
            },
            Value::Array(vec![]),
            ops,
        );
        let text = serde_json::to_string(&doc).unwrap();
        let back = serde_json::parse_value(&text).unwrap();
        assert_eq!(
            back.get("format").and_then(Value::as_str),
            Some("gdisim.optrace.v1")
        );
        let ops = back.get("ops").and_then(Value::as_array).unwrap();
        assert_eq!(ops.len(), 1);
        let op = &ops[0];
        assert_eq!(op.get("shard").and_then(Value::as_u64), Some(2));
        assert_eq!(op.get("status").and_then(Value::as_str), Some("completed"));
        assert!(
            op.get("components").is_some(),
            "completed op has components"
        );
        let attempts = op.get("attempts").and_then(Value::as_array).unwrap();
        let primary = attempts[0].get("primary").unwrap();
        let msgs = primary.get("msgs").and_then(Value::as_array).unwrap();
        let hops = msgs[0].get("hops").and_then(Value::as_array).unwrap();
        assert_eq!(hops[0].get("label").and_then(Value::as_str), Some("agent0"));
        assert_eq!(hops[0].get("queue_us").and_then(Value::as_u64), Some(0));
    }

    #[test]
    fn perfetto_op_events_pair_and_name_tracks() {
        let rec = OpRecord {
            root: 11,
            key: key(),
            kind: "client",
            started_us: 100,
            settled_us: Some(400),
            status: OpStatus::Completed,
            attempts: vec![AttemptSpan {
                attempt: 0,
                breaker: "closed",
                primary: HalfSpan {
                    ended_us: Some(400),
                    outcome: HalfOutcome::Completed,
                    ..HalfSpan::new(11, "primary", 100)
                },
                twin: None,
            }],
        };
        let live = OpRecord {
            settled_us: None,
            status: OpStatus::InFlight,
            root: 12,
            ..rec.clone()
        };
        let events = op_perfetto_events(&[(None, &rec), (None, &live)], &labels, &|_| 100, &|_| {
            "dc:NA".to_string()
        });
        // One metadata event, two begins, one end.
        let phases: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("ph").and_then(Value::as_str))
            .collect();
        assert_eq!(phases, ["M", "b", "e", "b"]);
        assert_eq!(
            events[1].get("name").and_then(Value::as_str),
            Some("CAD/open")
        );
        assert_eq!(events[1].get("pid").and_then(Value::as_u64), Some(100));
        assert_eq!(events[1].get("id").and_then(Value::as_str), Some("11"));
    }

    #[test]
    fn hop_seg_snap_roundtrip() {
        let s = seg(5, 25, 10, 3);
        let mut w = gdisim_snap::SnapWriter::new();
        gdisim_snap::Snap::save(&s, &mut w);
        let bytes = w.into_bytes();
        let mut r = gdisim_snap::SnapReader::new(&bytes);
        let back: HopSeg = gdisim_snap::Snap::load(&mut r).unwrap();
        assert_eq!(s, back);
    }
}
