//! Observability layer for the GDISim engine.
//!
//! The paper promises operators can "navigate down to the detail of
//! individual elements" while simulating at global scale; MonALISA
//! (Legrand et al., PAPERS.md) shows the enabling pattern is a
//! monitoring plane *decoupled* from the system under measurement.
//! This crate is that plane for the simulator itself:
//!
//! * [`StepProfiler`] — cheap monotonic-clock spans around the engine's
//!   step phases, aggregated into a [`StepProfile`]: per-phase wall
//!   totals, a log-bucketed histogram of step durations, wheel-gating
//!   statistics per event class, and active-set occupancy. The profiler
//!   only ever reads the wall clock and counters handed to it — it
//!   cannot influence simulation state, so enabling it never changes
//!   results.
//! * [`perfetto`] — renders recorded phase spans as Chrome trace-event
//!   JSON, viewable in Perfetto / `chrome://tracing`.
//! * [`export`] — renders a [`StepProfile`] (plus an optional
//!   [`gdisim_metrics::MetricsRegistry`] snapshot) as the
//!   `--profile-json` document.
//! * [`optrace`] — causal operation tracing (ISSUE 10): per-operation
//!   span trees (attempt → hedge half → message → hop segment) with
//!   deterministic `(seed, instance)` sampling, critical-path latency
//!   attribution into queue/service/WAN/backoff/hedge-wait components,
//!   and the `gdisim.optrace.v1` / Perfetto async-span renderers.
//!
//! The profiler is event-class-agnostic: drain slots are indexed
//! `0..NUM_CLASSES` and the engine supplies the class labels at export
//! time, keeping this crate free of engine types.

#![warn(missing_docs)]

pub mod export;
pub mod optrace;
pub mod perfetto;
pub mod profiler;

pub use optrace::{
    attribute, op_perfetto_events, op_to_value, render_optrace, sample, AttemptSpan, HalfOutcome,
    HalfSpan, HopSeg, MsgSpan, OpRecord, OpStatus, OptraceCounters,
};
pub use profiler::{
    DrainStats, Span, StepProfile, StepProfiler, NUM_CLASSES, NUM_PHASES, PHASE_ADVANCE,
    PHASE_COLLECT, PHASE_DRAIN, PHASE_NAMES, PHASE_ROUTE,
};
