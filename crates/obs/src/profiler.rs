//! The step-loop profiler.
//!
//! One [`StepProfiler`] instruments the engine's discrete loop: the
//! engine brackets each step with [`begin_step`](StepProfiler::begin_step)
//! / [`end_step`](StepProfiler::end_step) and drops a
//! [`mark_phase`](StepProfiler::mark_phase) at each phase boundary, so a
//! step's phase durations are contiguous and sum *exactly* to the step's
//! total — there is no unattributed gap by construction.
//!
//! Hot-path cost when enabled is five `Instant::now()` reads and a few
//! array increments per step; nothing allocates (the duration histogram
//! and the span buffer are sized at construction, and a full span buffer
//! counts drops instead of growing). When disabled the engine holds no
//! profiler at all and the loop is untouched.

use gdisim_metrics::LogHistogram;
use std::time::Instant;

/// Number of instrumented step phases.
pub const NUM_PHASES: usize = 4;
/// Phase slot: phase-1 event drains (wheel advance + arrivals + daemons).
pub const PHASE_DRAIN: usize = 0;
/// Phase slot: phase-2 time increment (executor + memory advance).
pub const PHASE_ADVANCE: usize = 1;
/// Phase slot: phase-3 interactions (completion routing + retire sweep).
pub const PHASE_ROUTE: usize = 2;
/// Phase slot: periodic measurement collection.
pub const PHASE_COLLECT: usize = 3;
/// Stable phase names for export artifacts, indexed by phase slot.
pub const PHASE_NAMES: [&str; NUM_PHASES] = ["drain", "advance", "route", "collect"];

/// Number of phase-1 drain classes the profiler tracks. Must equal the
/// engine's `EventClass::ALL.len()` (pinned by a test in `core`).
pub const NUM_CLASSES: usize = 9;

/// Per-event-class drain accounting over a run.
///
/// Every step, each class's drain is either skipped (gate closed) or run
/// (gate fired, or polling mode); a run that processed zero events is
/// additionally a no-op — on the gated path that means a *stale gate*:
/// the wheel said "due" but the canonical container had nothing (e.g. a
/// timeout that completed before expiring). `noop` is the measured
/// quantity behind the ROADMAP "stale gates" question; `cancelled`
/// counts the stale gates the wheel's generation counters retired
/// *before* they could wake a no-op drain.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DrainStats {
    /// Steps where the drain did not run (wheel gate closed).
    pub skipped: u64,
    /// Steps where the drain ran because its wheel gate fired.
    pub gated: u64,
    /// Steps where the drain ran unconditionally (polling mode).
    pub polled: u64,
    /// Runs that processed zero events (stale gate or empty poll).
    pub noop: u64,
    /// Total events processed by the drain.
    pub events: u64,
    /// Stale gates dropped by generation-counter cancellation instead
    /// of firing (would have been `noop` runs without cancellation).
    pub cancelled: u64,
}

impl DrainStats {
    /// Steps where the drain ran at all.
    pub fn runs(&self) -> u64 {
        self.gated + self.polled
    }
}

/// One recorded phase span: `phase` slot, wall-clock start (nanoseconds
/// since profiler creation), duration, and the simulation time of the
/// step it belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Phase slot (`0..NUM_PHASES`, see [`PHASE_NAMES`]).
    pub phase: usize,
    /// Start offset from profiler creation, nanoseconds.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
    /// Simulation time of the owning step, microseconds.
    pub sim_us: u64,
}

/// Aggregated profile of a run — the `--profile-json` payload.
#[derive(Debug, Clone)]
pub struct StepProfile {
    /// Steps executed while profiling.
    pub steps: u64,
    /// Total profiled wall time, nanoseconds (== sum of `phase_ns`).
    pub wall_ns: u64,
    /// Wall time per phase slot, nanoseconds.
    pub phase_ns: [u64; NUM_PHASES],
    /// Log-bucketed histogram of per-step durations, nanoseconds.
    pub step_hist: LogHistogram,
    /// Per-class drain stats, labeled by the engine.
    pub drains: Vec<(String, DrainStats)>,
    /// Mean active-set occupancy across steps (agents ticked per step).
    pub occupancy_mean: f64,
    /// Peak active-set occupancy.
    pub occupancy_max: u64,
    /// Occupancy samples taken at collection boundaries:
    /// `(sim time secs, active agents)`.
    pub occupancy_series: Vec<(f64, f64)>,
    /// Spans kept in the buffer.
    pub spans_recorded: u64,
    /// Spans dropped once the buffer filled.
    pub spans_dropped: u64,
}

/// Instruments the engine step loop. See the module docs for the
/// begin/mark/end protocol.
#[derive(Debug, Clone)]
pub struct StepProfiler {
    epoch: Instant,
    steps: u64,
    phase_ns: [u64; NUM_PHASES],
    step_hist: LogHistogram,
    drains: [DrainStats; NUM_CLASSES],
    occ_sum: u64,
    occ_max: u64,
    occ_series: Vec<(f64, f64)>,
    spans: Vec<Span>,
    span_cap: usize,
    spans_dropped: u64,
    // In-flight step state.
    step_start_ns: u64,
    mark_ns: u64,
    cur_sim_us: u64,
}

impl Default for StepProfiler {
    fn default() -> Self {
        Self::new()
    }
}

impl StepProfiler {
    /// A profiler that aggregates only (no span buffer).
    pub fn new() -> Self {
        Self::with_span_capacity(0)
    }

    /// A profiler that additionally keeps up to `span_cap` phase spans
    /// for Perfetto export. The buffer is allocated here, once; when it
    /// fills, further spans are counted as dropped, never reallocated.
    pub fn with_span_capacity(span_cap: usize) -> Self {
        StepProfiler {
            epoch: Instant::now(),
            steps: 0,
            phase_ns: [0; NUM_PHASES],
            step_hist: LogHistogram::new(),
            drains: [DrainStats::default(); NUM_CLASSES],
            occ_sum: 0,
            occ_max: 0,
            occ_series: Vec::new(),
            spans: Vec::with_capacity(span_cap),
            span_cap,
            spans_dropped: 0,
            step_start_ns: 0,
            mark_ns: 0,
            cur_sim_us: 0,
        }
    }

    #[inline]
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Opens a step at simulation time `sim_us`.
    #[inline]
    pub fn begin_step(&mut self, sim_us: u64) {
        self.cur_sim_us = sim_us;
        self.step_start_ns = self.now_ns();
        self.mark_ns = self.step_start_ns;
    }

    /// Closes the current phase: everything since the previous mark (or
    /// the step start) is attributed to `phase`.
    #[inline]
    pub fn mark_phase(&mut self, phase: usize) {
        let now = self.now_ns();
        let dur = now - self.mark_ns;
        self.phase_ns[phase] += dur;
        if self.span_cap > 0 {
            if self.spans.len() < self.span_cap {
                self.spans.push(Span {
                    phase,
                    start_ns: self.mark_ns,
                    dur_ns: dur,
                    sim_us: self.cur_sim_us,
                });
            } else {
                self.spans_dropped += 1;
            }
        }
        self.mark_ns = now;
    }

    /// Closes the step. `active` is the number of agents ticked this
    /// step (active-set occupancy). The step's total duration is the sum
    /// of its phase marks — exact by construction, no re-read of the
    /// clock.
    #[inline]
    pub fn end_step(&mut self, active: u64) {
        let total = self.mark_ns - self.step_start_ns;
        self.step_hist.record(total);
        self.steps += 1;
        self.occ_sum += active;
        self.occ_max = self.occ_max.max(active);
    }

    /// Accounts one phase-1 drain: `ran` says whether the drain executed
    /// at all, `gated` whether a wheel gate (as opposed to unconditional
    /// polling) let it through, `processed` how many events it handled.
    #[inline]
    pub fn note_drain(&mut self, class: usize, ran: bool, gated: bool, processed: u64) {
        let d = &mut self.drains[class];
        if !ran {
            d.skipped += 1;
            return;
        }
        if gated {
            d.gated += 1;
        } else {
            d.polled += 1;
        }
        if processed == 0 {
            d.noop += 1;
        }
        d.events += processed;
    }

    /// Accounts `n` cancelled (generation-retired) gates for a class.
    /// The engine reports deltas of the wheel's monotone per-class
    /// cancellation counters once per step.
    #[inline]
    pub fn note_cancelled(&mut self, class: usize, n: u64) {
        self.drains[class].cancelled += n;
    }

    /// Pushes an occupancy sample `(sim time secs, active agents)`.
    /// Called from the collection phase only, where allocation is
    /// already routine.
    pub fn sample_occupancy(&mut self, sim_secs: f64, active: f64) {
        self.occ_series.push((sim_secs, active));
    }

    /// The recorded phase spans, in order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Drain stats for one class slot.
    pub fn drain_stats(&self, class: usize) -> DrainStats {
        self.drains[class]
    }

    /// Steps profiled so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Total profiled wall time so far, nanoseconds.
    pub fn wall_ns(&self) -> u64 {
        self.phase_ns.iter().sum()
    }

    /// Mean active-set occupancy so far.
    pub fn occupancy_mean(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.occ_sum as f64 / self.steps as f64
        }
    }

    /// Snapshots the aggregate profile. `labels` names the drain class
    /// slots (the engine passes its `EventClass` labels).
    pub fn profile(&self, labels: &[&str; NUM_CLASSES]) -> StepProfile {
        StepProfile {
            steps: self.steps,
            wall_ns: self.wall_ns(),
            phase_ns: self.phase_ns,
            step_hist: self.step_hist.clone(),
            drains: labels
                .iter()
                .zip(self.drains.iter())
                .map(|(l, d)| (l.to_string(), *d))
                .collect(),
            occupancy_mean: self.occupancy_mean(),
            occupancy_max: self.occ_max,
            occupancy_series: self.occ_series.clone(),
            spans_recorded: self.spans.len() as u64,
            spans_dropped: self.spans_dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_steps(p: &mut StepProfiler, n: u64) {
        for i in 0..n {
            p.begin_step(i * 10_000);
            p.mark_phase(PHASE_DRAIN);
            p.mark_phase(PHASE_ADVANCE);
            p.mark_phase(PHASE_ROUTE);
            p.mark_phase(PHASE_COLLECT);
            p.end_step(3);
        }
    }

    #[test]
    fn phases_sum_exactly_to_step_total() {
        let mut p = StepProfiler::new();
        run_steps(&mut p, 50);
        let profile = p.profile(&["a", "b", "c", "d", "e", "f", "g", "h", "i"]);
        assert_eq!(profile.steps, 50);
        // The step histogram's exact sum equals the phase totals' sum:
        // marks are contiguous, so no wall time is unattributed.
        assert_eq!(profile.step_hist.sum(), profile.phase_ns.iter().sum());
        assert_eq!(profile.wall_ns, profile.phase_ns.iter().sum());
        assert_eq!(profile.step_hist.count(), 50);
        assert!((profile.occupancy_mean - 3.0).abs() < 1e-12);
        assert_eq!(profile.occupancy_max, 3);
    }

    #[test]
    fn span_buffer_caps_and_counts_drops() {
        let mut p = StepProfiler::with_span_capacity(6);
        run_steps(&mut p, 3); // 12 spans attempted
        assert_eq!(p.spans().len(), 6);
        let profile = p.profile(&["a", "b", "c", "d", "e", "f", "g", "h", "i"]);
        assert_eq!(profile.spans_recorded, 6);
        assert_eq!(profile.spans_dropped, 6);
        // Spans are ordered and contiguous within a step.
        let s = p.spans();
        assert_eq!(s[0].phase, PHASE_DRAIN);
        assert_eq!(s[1].phase, PHASE_ADVANCE);
        assert_eq!(s[1].start_ns, s[0].start_ns + s[0].dur_ns);
        assert_eq!(s[0].sim_us, 0);
        assert_eq!(s[4].sim_us, 10_000);
    }

    #[test]
    fn drain_accounting_classifies_runs() {
        let mut p = StepProfiler::new();
        p.note_drain(0, false, false, 0); // skipped
        p.note_drain(0, true, true, 5); // gated, productive
        p.note_drain(0, true, true, 0); // gated, stale (no-op)
        p.note_drain(0, true, false, 2); // polled, productive
        p.note_drain(0, true, false, 0); // polled no-op
        p.note_cancelled(0, 3); // stale gates retired before firing
        let d = p.drain_stats(0);
        assert_eq!(d.skipped, 1);
        assert_eq!(d.gated, 2);
        assert_eq!(d.polled, 2);
        assert_eq!(d.noop, 2);
        assert_eq!(d.events, 7);
        assert_eq!(d.cancelled, 3);
        assert_eq!(d.runs(), 4);
        // Other classes untouched.
        assert_eq!(p.drain_stats(1), DrainStats::default());
    }

    #[test]
    fn occupancy_series_records_samples() {
        let mut p = StepProfiler::new();
        p.sample_occupancy(1.0, 12.0);
        p.sample_occupancy(2.0, 15.0);
        let profile = p.profile(&["a", "b", "c", "d", "e", "f", "g", "h", "i"]);
        assert_eq!(profile.occupancy_series, vec![(1.0, 12.0), (2.0, 15.0)]);
    }
}
