//! Shared scenario fixtures for the robustness integration tests.
//! Compiled into each test binary separately, so not every binary uses
//! every item.
#![allow(dead_code)]

use gdisim_core::scenarios::{churned, consolidated, faulted, validation};
use gdisim_core::Simulation;

/// Every shipped scenario the checkpoint/audit guarantees cover.
pub const SCENARIOS: [&str; 4] = ["validation", "faulted", "churned", "consolidated"];

/// Builds a scenario by CLI name, with the same optional runtimes the
/// CLI installs (the churned scenario gets the demo churn model and
/// resilience bundle, so hedges/timeouts/churn state all ride along in
/// checkpoints). Tracing is NOT enabled — callers that want hop traces
/// enable them on whichever engine (serial or sharded) they build.
pub fn build(scenario: &str, seed: u64) -> Simulation {
    match scenario {
        "validation" => validation::build(validation::EXPERIMENTS[0], seed),
        "faulted" => faulted::build(seed),
        "churned" => {
            let mut sim = churned::build(seed);
            sim.set_churn_model(churned::demo_churn_model())
                .expect("demo churn model installs");
            sim.set_resilience(churned::demo_resilience())
                .expect("demo resilience installs");
            sim
        }
        "consolidated" => consolidated::build(seed),
        other => panic!("unknown scenario {other}"),
    }
}
