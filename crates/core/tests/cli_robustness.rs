//! End-to-end CLI robustness: crash reports, exit codes, and
//! checkpoint → resume output equality through the real binary.

use std::path::PathBuf;
use std::process::{Command, Output};

fn gdisim(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_gdisim"))
        .args(args)
        .output()
        .expect("gdisim binary launches")
}

/// Scratch directory unique to one test, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("gdisim-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir creates");
        Scratch(dir)
    }

    fn path(&self) -> &str {
        self.0.to_str().expect("utf-8 temp path")
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Strips the lines that legitimately differ between an uninterrupted
/// run and a resumed one: banners, checkpoint notices and wall-clock
/// timings. Everything left must match byte-for-byte.
fn comparable(stdout: &[u8]) -> String {
    String::from_utf8_lossy(stdout)
        .lines()
        .filter(|l| {
            !l.starts_with("run: ")
                && !l.starts_with("resume: ")
                && !l.starts_with("checkpoint: ")
                && !l.starts_with("simulated ")
                && !l.starts_with("trace: wrote ")
                && !l.contains("ms, waited")
                && !l.contains("ms at barriers")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn sharded_crash_emits_report_and_fails() {
    let out = gdisim(&[
        "run",
        "--scenario",
        "churned",
        "--minutes",
        "5",
        "--shards",
        "2",
        "--inject-panic",
        "1:120",
    ]);
    assert!(!out.status.success(), "a crashed run must exit non-zero");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stdout.contains("\"schema\": \"gdisim.crash.v1\""),
        "stdout must carry the typed crash report, got:\n{stdout}"
    );
    assert!(
        stdout.contains("\"shard\": 1"),
        "report must name the shard:\n{stdout}"
    );
    assert!(
        stdout.contains("injected panic"),
        "report must carry the panic message:\n{stdout}"
    );
    assert!(
        stderr.contains("simulation crashed"),
        "stderr must explain the failure:\n{stderr}"
    );
}

#[test]
fn serial_crash_links_the_last_checkpoint() {
    let scratch = Scratch::new("crash-ckpt");
    let out = gdisim(&[
        "run",
        "--scenario",
        "churned",
        "--minutes",
        "5",
        "--checkpoint-every",
        "60",
        "--checkpoint-dir",
        scratch.path(),
        "--inject-panic",
        "0:150",
    ]);
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("\"schema\": \"gdisim.crash.v1\""),
        "{stdout}"
    );
    assert!(stdout.contains("\"shard\": 0"), "{stdout}");
    assert!(
        stdout.contains("churned-t0000000120.ckpt"),
        "the report must point at the t=120s checkpoint for restart:\n{stdout}"
    );
}

#[test]
fn resume_reproduces_the_uninterrupted_run() {
    let scratch = Scratch::new("resume");
    let full = gdisim(&[
        "run",
        "--scenario",
        "churned",
        "--minutes",
        "4",
        "--checkpoint-every",
        "60",
        "--checkpoint-dir",
        scratch.path(),
    ]);
    assert!(
        full.status.success(),
        "{}",
        String::from_utf8_lossy(&full.stderr)
    );
    let ckpt = PathBuf::from(scratch.path()).join("churned-t0000000120.ckpt");
    assert!(
        ckpt.exists(),
        "mid-run checkpoint must exist at {}",
        ckpt.display()
    );

    let resumed = gdisim(&["run", "--resume", ckpt.to_str().unwrap(), "--minutes", "4"]);
    assert!(
        resumed.status.success(),
        "{}",
        String::from_utf8_lossy(&resumed.stderr)
    );

    let want = comparable(&full.stdout);
    let got = comparable(&resumed.stdout);
    assert!(!want.is_empty(), "the comparison must cover real output");
    assert_eq!(
        want, got,
        "resumed stdout diverged from the uninterrupted run"
    );
}

#[test]
fn resume_rejects_a_mismatched_scenario() {
    let scratch = Scratch::new("mismatch");
    let full = gdisim(&[
        "run",
        "--scenario",
        "faulted",
        "--minutes",
        "3",
        "--checkpoint-every",
        "60",
        "--checkpoint-dir",
        scratch.path(),
    ]);
    assert!(
        full.status.success(),
        "{}",
        String::from_utf8_lossy(&full.stderr)
    );
    let ckpt = PathBuf::from(scratch.path()).join("faulted-t0000000120.ckpt");
    let out = gdisim(&[
        "run",
        "--scenario",
        "churned",
        "--resume",
        ckpt.to_str().unwrap(),
    ]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("does not match"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn paranoid_cli_runs_clean_and_gates_on_violations() {
    let out = gdisim(&[
        "run",
        "--scenario",
        "churned",
        "--minutes",
        "5",
        "--paranoid",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("invariant checks, 0 violations"),
        "paranoid summary missing or dirty:\n{stdout}"
    );
}

#[test]
fn corrupt_checkpoint_is_a_typed_error() {
    let scratch = Scratch::new("corrupt");
    let path = PathBuf::from(scratch.path()).join("bogus.ckpt");
    std::fs::write(&path, b"definitely not a checkpoint").unwrap();
    let out = gdisim(&["run", "--resume", path.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("bad magic"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}
