//! Shard supervision: a panicking shard must surface as a typed
//! [`ShardCrash`] (not a poisoned pool or a torn-down process), the
//! surviving shards must have drained to the window barrier, and the
//! injected-panic test hook must never ride along in a checkpoint.

mod common;

use gdisim_core::{ShardedSimulation, Snapshot, SnapshotPayload};
use gdisim_ports::panic_message;
use gdisim_types::SimTime;

#[test]
fn shard_panic_surfaces_as_typed_crash() {
    let mut sharded =
        ShardedSimulation::new(common::build("churned", 3), 2, None, None).expect("2-way sharding");
    let window = sharded.dt() * sharded.window_ticks();
    let panic_at = SimTime::ZERO + window * (60_000_000u64.div_ceil(window.as_micros()));
    let horizon = SimTime::from_secs(240);
    sharded.inject_panic_at(1, panic_at);

    let crash = sharded
        .try_run_until(horizon)
        .expect_err("the injected panic must abort the run");

    assert_eq!(crash.shard, 1);
    assert!(
        crash.message.contains("injected panic"),
        "message should carry the panic payload, got: {}",
        crash.message
    );
    assert_eq!(
        panic_message(crash.payload.as_ref()),
        crash.message,
        "payload and pre-rendered message must agree"
    );
    // The broken window starts at or before the injection instant and
    // must contain it.
    assert!(crash.at <= panic_at && panic_at < crash.at + window);
    assert_eq!(
        crash.tick,
        crash.at.as_micros() / sharded.dt().as_micros(),
        "tick must be the barrier time in dt units"
    );
    // The supervisor drained every surviving shard to the last
    // completed barrier — the engine clock never runs past the crash.
    assert!(sharded.now() <= crash.at);
}

#[test]
fn serial_injected_panic_is_catchable() {
    let mut sim = common::build("validation", 1);
    sim.inject_panic_at(SimTime::from_secs(30));
    let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        sim.run_until(SimTime::from_secs(60))
    }))
    .expect_err("the injected panic must fire");
    assert!(panic_message(payload.as_ref()).contains("injected panic"));
}

#[test]
fn out_of_range_shard_injection_is_ignored() {
    let mut sharded =
        ShardedSimulation::new(common::build("faulted", 2), 2, None, None).expect("2-way sharding");
    sharded.inject_panic_at(99, SimTime::from_secs(10));
    sharded
        .try_run_until(SimTime::from_secs(30))
        .expect("an injection aimed at a shard that does not exist is inert");
}

#[test]
fn panic_hook_never_rides_in_a_checkpoint() {
    // A run armed to panic at t=120s is checkpointed at t=60s. The
    // restored run steps straight through t=120s: the hook is process
    // state, not simulation state, so resuming after a crash must not
    // re-crash at the same instant.
    let (scenario, seed) = ("faulted", 9);
    let horizon = SimTime::from_secs(240);

    let mut armed = common::build(scenario, seed);
    armed.enable_trace(100_000);
    armed.inject_panic_at(SimTime::from_secs(120));
    armed.run_until(SimTime::from_secs(60));
    let bytes = Snapshot::serial(scenario, seed, armed).to_bytes();
    let SnapshotPayload::Serial(mut resumed) = Snapshot::from_bytes(&bytes)
        .expect("checkpoint decodes")
        .payload
    else {
        panic!("serial payload expected");
    };
    resumed.run_until(horizon);

    let mut clean = common::build(scenario, seed);
    clean.enable_trace(100_000);
    clean.run_until(horizon);

    assert_eq!(
        Snapshot::serial(scenario, seed, *resumed).to_bytes(),
        Snapshot::serial(scenario, seed, clean).to_bytes(),
        "a resume across the armed instant must match a clean run"
    );
}
