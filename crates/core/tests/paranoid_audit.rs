//! The invariant auditor must run clean on every shipped scenario:
//! `--paranoid` is only useful as a tripwire if a healthy engine
//! reports exactly zero violations.

mod common;

use gdisim_core::ShardedSimulation;
use gdisim_types::SimTime;

#[test]
fn paranoid_serial_runs_clean_on_every_scenario() {
    for scenario in common::SCENARIOS {
        let mut sim = common::build(scenario, 7);
        sim.set_paranoid(true);
        sim.run_until(SimTime::from_secs(300));
        let audit = sim.audit_state().expect("set_paranoid arms the auditor");
        assert!(audit.checks > 0, "{scenario}: the auditor never ran");
        assert_eq!(
            audit.violations, 0,
            "{scenario}: paranoid run found violations: {:#?}",
            audit.recorded
        );
    }
}

#[test]
fn paranoid_sharded_runs_clean() {
    let mut sharded =
        ShardedSimulation::new(common::build("churned", 7), 2, None, None).expect("2-way sharding");
    sharded.set_paranoid(true);
    sharded.run_until(SimTime::from_secs(300));
    let audit = sharded
        .audit_state()
        .expect("set_paranoid arms every shard's auditor");
    assert!(audit.checks > 0, "no shard ever audited");
    assert_eq!(
        audit.violations, 0,
        "sharded paranoid run found violations: {:#?}",
        audit.recorded
    );
}

#[test]
fn paranoid_survives_a_resume() {
    // The audit tallies themselves are not checkpointed (they are
    // diagnostics, not simulation state) — but a resumed engine with
    // the auditor re-armed must still run clean.
    use gdisim_core::{Snapshot, SnapshotPayload};
    let (scenario, seed) = ("churned", 21);
    let mut sim = common::build(scenario, seed);
    sim.run_until(SimTime::from_secs(150));
    let bytes = Snapshot::serial(scenario, seed, sim).to_bytes();
    let SnapshotPayload::Serial(mut resumed) = Snapshot::from_bytes(&bytes)
        .expect("checkpoint decodes")
        .payload
    else {
        panic!("serial payload expected");
    };
    resumed.set_paranoid(true);
    resumed.run_until(SimTime::from_secs(450));
    let audit = resumed.audit_state().expect("auditor armed after resume");
    assert!(audit.checks > 0);
    assert_eq!(
        audit.violations, 0,
        "resumed paranoid run found violations: {:#?}",
        audit.recorded
    );
}
