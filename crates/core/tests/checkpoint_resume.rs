//! Resume equivalence: a run restored from a checkpoint must be
//! bit-identical to the uninterrupted run — same report, same hop
//! traces, same RNG positions. The comparison is done on the snap
//! encoding of the *final* state, which covers all of those at once:
//! two engines encode to the same bytes iff every serialized field
//! (flight table, counters, trace log, churn/fault/resilience
//! runtimes, mailboxes) is equal.

mod common;

use gdisim_core::{ShardedSimulation, Snapshot, SnapshotPayload};
use gdisim_ports::Executor;
use gdisim_snap::Snap;
use gdisim_types::SimTime;
use proptest::prelude::*;

/// Snap-encodes a report for comparison (`Report` carries float time
/// series and deliberately has no `PartialEq`; its canonical encoding
/// is the equality we actually guarantee).
fn report_bytes(report: &gdisim_core::Report) -> Vec<u8> {
    let mut w = gdisim_snap::SnapWriter::new();
    report.save(&mut w);
    w.into_bytes()
}

/// The first whole-window boundary at or past `secs` seconds. Sharded
/// checkpoints and barriers live on the window grid; deriving every
/// stop this way keeps the interrupted and uninterrupted grids equal.
fn aligned(window: gdisim_types::SimDuration, secs: u64) -> SimTime {
    SimTime::ZERO + window * (secs * 1_000_000).div_ceil(window.as_micros())
}

/// Snap-encodes a finished serial engine for byte comparison.
fn encode_serial(scenario: &str, seed: u64, sim: gdisim_core::Simulation) -> Vec<u8> {
    Snapshot::serial(scenario, seed, sim).to_bytes()
}

/// Runs `scenario` twice to `horizon_secs`: once uninterrupted, once
/// checkpointed at `ckpt_secs` through the full byte codec and resumed.
/// Both final states must encode identically.
fn assert_resume_equivalent(scenario: &str, seed: u64, ckpt_secs: u64, horizon_secs: u64) {
    assert!(ckpt_secs > 0 && ckpt_secs < horizon_secs);
    let horizon = SimTime::from_secs(horizon_secs);

    let mut uninterrupted = common::build(scenario, seed);
    uninterrupted.enable_trace(100_000);
    uninterrupted.run_until(horizon);
    let want = encode_serial(scenario, seed, uninterrupted);

    let mut first_leg = common::build(scenario, seed);
    first_leg.enable_trace(100_000);
    first_leg.run_until(SimTime::from_secs(ckpt_secs));
    let ckpt = encode_serial(scenario, seed, first_leg);

    let snap = Snapshot::from_bytes(&ckpt).expect("checkpoint decodes");
    assert_eq!(snap.meta.scenario, scenario);
    assert_eq!(snap.meta.seed, seed);
    assert_eq!(snap.meta.now, SimTime::from_secs(ckpt_secs));
    let SnapshotPayload::Serial(mut resumed) = snap.payload else {
        panic!("serial checkpoint must decode to a serial payload");
    };
    // Deliberately no enable_trace: the log rides in the checkpoint and
    // re-enabling would truncate it.
    resumed.run_until(horizon);
    let got = encode_serial(scenario, seed, *resumed);

    assert_eq!(
        want, got,
        "{scenario} seed {seed}: resume from t={ckpt_secs}s diverged from the uninterrupted run"
    );
}

#[test]
fn serial_resume_is_bit_identical_on_every_scenario() {
    for scenario in common::SCENARIOS {
        assert_resume_equivalent(scenario, 42, 120, 300);
    }
}

#[test]
fn resume_survives_back_to_back_checkpoints() {
    // Checkpoint, resume, checkpoint again, resume again — chained
    // restores must not drift either.
    let (scenario, seed) = ("churned", 7);
    let horizon = SimTime::from_secs(360);

    let mut uninterrupted = common::build(scenario, seed);
    uninterrupted.enable_trace(100_000);
    uninterrupted.run_until(horizon);
    let want = encode_serial(scenario, seed, uninterrupted);

    let mut sim = common::build(scenario, seed);
    sim.enable_trace(100_000);
    let mut boxed = Box::new(sim);
    for stop in [90u64, 180, 270] {
        boxed.run_until(SimTime::from_secs(stop));
        let bytes = encode_serial(scenario, seed, *boxed);
        let SnapshotPayload::Serial(restored) = Snapshot::from_bytes(&bytes)
            .expect("checkpoint decodes")
            .payload
        else {
            panic!("serial payload expected");
        };
        boxed = restored;
    }
    boxed.run_until(horizon);
    let got = encode_serial(scenario, seed, *boxed);
    assert_eq!(want, got, "three chained resumes diverged");
}

#[test]
fn resume_is_executor_independent() {
    // A checkpoint taken under one executor and resumed under another
    // must still match: the executor is pure mechanism and is
    // deliberately not serialized.
    let (scenario, seed) = ("churned", 11);
    let horizon = SimTime::from_secs(300);

    let mut sg = common::build(scenario, seed);
    sg.enable_trace(100_000);
    sg.set_executor(Executor::scatter_gather(2));
    sg.run_until(horizon);
    let want = encode_serial(scenario, seed, sg);

    let mut serial = common::build(scenario, seed);
    serial.enable_trace(100_000);
    serial.run_until(SimTime::from_secs(120));
    let bytes = encode_serial(scenario, seed, serial);
    let SnapshotPayload::Serial(mut resumed) = Snapshot::from_bytes(&bytes)
        .expect("checkpoint decodes")
        .payload
    else {
        panic!("serial payload expected");
    };
    resumed.set_executor(Executor::hdispatch(2, 8));
    resumed.run_until(horizon);
    let got = encode_serial(scenario, seed, *resumed);

    assert_eq!(
        want, got,
        "scatter-gather full run vs serial-then-h-dispatch resume diverged"
    );
}

#[test]
fn sharded_resume_is_bit_identical() {
    let (scenario, seed) = ("churned", 5);

    let mut uninterrupted = ShardedSimulation::new(common::build(scenario, seed), 2, None, None)
        .expect("2-way sharding");
    uninterrupted.enable_trace(100_000);
    // Sharded checkpoints only land on whole-window boundaries; derive
    // every stop from the window so the grids line up.
    let window = uninterrupted.dt() * uninterrupted.window_ticks();
    let horizon = aligned(window, 240);
    let ckpt_at = aligned(window, 90);
    uninterrupted.run_until(horizon);
    let want = Snapshot::sharded(scenario, seed, uninterrupted).to_bytes();

    let mut first_leg = ShardedSimulation::new(common::build(scenario, seed), 2, None, None)
        .expect("2-way sharding");
    first_leg.enable_trace(100_000);
    first_leg.run_until(ckpt_at);
    assert_eq!(
        first_leg.now(),
        ckpt_at,
        "run_until must stop on the window grid"
    );
    let bytes = Snapshot::sharded(scenario, seed, first_leg).to_bytes();

    let snap = Snapshot::from_bytes(&bytes).expect("checkpoint decodes");
    assert_eq!(snap.meta.shards, 2);
    assert_eq!(snap.meta.now, ckpt_at);
    let SnapshotPayload::Sharded(mut resumed) = snap.payload else {
        panic!("sharded checkpoint must decode to a sharded payload");
    };
    assert_eq!(resumed.shards(), 2);
    resumed.run_until(horizon);
    let got = Snapshot::sharded(scenario, seed, *resumed).to_bytes();

    assert_eq!(
        want, got,
        "sharded resume diverged from the uninterrupted run"
    );
}

#[test]
fn sharded_resume_preserves_the_merged_report() {
    // Same property as `sharded_resume_is_bit_identical`, but on the
    // faulted scenario and compared at the merged-report level — the
    // artifact users actually consume after a restart.
    let (scenario, seed) = ("faulted", 13);

    let mut uninterrupted = ShardedSimulation::new(common::build(scenario, seed), 2, None, None)
        .expect("2-way sharding");
    let window = uninterrupted.dt() * uninterrupted.window_ticks();
    let horizon = aligned(window, 180);
    uninterrupted.run_until(horizon);
    let want = report_bytes(&uninterrupted.report());

    let mut sharded = ShardedSimulation::new(common::build(scenario, seed), 2, None, None)
        .expect("2-way sharding");
    sharded.run_until(aligned(window, 60));
    let bytes = Snapshot::sharded(scenario, seed, sharded).to_bytes();
    let SnapshotPayload::Sharded(mut resumed) = Snapshot::from_bytes(&bytes)
        .expect("checkpoint decodes")
        .payload
    else {
        panic!("sharded payload expected");
    };
    resumed.run_until(horizon);

    assert_eq!(
        want,
        report_bytes(&resumed.report()),
        "resumed sharded merged report diverged from the uninterrupted run"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The pinning property: any scenario, any seed, any checkpoint
    /// instant — the resumed run is indistinguishable from the
    /// uninterrupted one.
    #[test]
    fn resume_equivalence_holds_everywhere(
        scenario_idx in 0usize..common::SCENARIOS.len(),
        seed in 1u64..10_000,
        ckpt_tenths in 1u64..10,
    ) {
        let horizon_secs = 300;
        let ckpt_secs = horizon_secs * ckpt_tenths / 10;
        assert_resume_equivalent(
            common::SCENARIOS[scenario_idx],
            seed,
            ckpt_secs,
            horizon_secs,
        );
    }
}
