//! Hierarchical timer wheel gating the phase-1 event sources.
//!
//! The discrete loop of §4.3 polls every phase-1 source every step:
//! fault schedules, retry backoffs, operation timeouts, health events,
//! session think-timers, periodic series and background daemons are all
//! asked "anything due?" each tick even when their next event is minutes
//! away. [`TimerWheel`] turns those polls into an *event index*: each
//! source class registers the tick of its next event through one
//! `schedule` API, and the engine only runs a class's drain when the
//! wheel says something is due (`take`). The legacy containers — the
//! retry vector, the timeout and session-wake min-heaps, the fault
//! cursor — remain the canonical stores and keep their exact drain
//! orders; the wheel is a pure *gate* in front of them. Because every
//! drain is a no-op (and draws no randomness) when nothing is due, and
//! because a gate is never late (an event at time `a` maps to the first
//! step boundary `t ≥ a`, exactly the step at which the polling loop's
//! `a <= now` check first passes), gated runs are bit-for-bit identical
//! to polled runs.
//!
//! Structure: a two-level wheel plus an overflow list, all keyed on
//! *tick indices* (step counts, `tick = ceil(at / dt)`). Slot counts
//! are derived from `dt` at construction so the levels cover the same
//! wall-clock spans at any step length; at the default 10 ms step they
//! come out to the historical geometry quoted below:
//!
//! * **L0** — 256 one-tick slots holding a due-class bitmask each;
//!   covers the next 256 ticks exactly. An occupancy bitmap (one bit per
//!   slot) lets forward jumps skip straight between occupied slots.
//! * **L1** — 64 slots of 256 ticks each; an entry keeps its exact
//!   target tick so no resolution is lost. When the current tick enters
//!   a new 256-tick window, that window's L1 slot *cascades*: its
//!   entries are re-inserted and land in L0 (or fire immediately).
//! * **Overflow** — events beyond the 16384-tick L1 frame (163 s at the
//!   10 ms case-study step). At each frame boundary the overflow list
//!   *rotates*: entries now inside the frame re-insert into L1/L0.
//!
//! Scheduling an event at or before the current tick sets its due bit
//! immediately; the bit then persists until taken, so an event armed
//! *after* its class's drain already ran this step is seen at the next
//! step — exactly when the polling loop would first see it too.
//!
//! # Cancellation (generation counters)
//!
//! A schedule cannot be deleted from the middle of L1 or the overflow
//! list cheaply, so cancellation is *generational*: every class carries
//! a generation counter, every stored entry (and every L0 slot bit) is
//! stamped with the generation it was inserted under, and
//! [`cancel_class`](TimerWheel::cancel_class) simply bumps the class's
//! counter. Stale entries are dropped lazily — at slot collection, at
//! window cascade and at frame rotation — and counted per class in
//! [`cancelled_counts`](TimerWheel::cancelled_counts). A bump also
//! clears the class's pending due bit, so a gate whose event the engine
//! just invalidated (a timeout whose operation completed, a retry that
//! already launched) no longer wakes a provably no-op drain. The engine
//! re-arms the class from its canonical container's new head after every
//! bump, which keeps the never-late invariant intact: a valid gate
//! always exists at or before the earliest live event's tick.

use gdisim_types::{SimDuration, SimTime};

/// One-tick slots in the innermost wheel level at the default 10 ms
/// step. Geometry is dt-aware (see [`TimerWheel::new`]): these
/// constants describe — and pin — the default-dt wheel only.
#[cfg(test)]
const L0_SLOTS: u64 = 256;
/// Slots in the second level at the default step (each spanning
/// `L0_SLOTS` ticks).
#[cfg(test)]
const L1_SLOTS: u64 = 64;
/// Ticks covered by L0 + L1 at the default step before events fall
/// into the overflow list.
#[cfg(test)]
const FRAME: u64 = L0_SLOTS * L1_SLOTS;
/// Number of event classes (mirrored by `gdisim_obs::NUM_CLASSES`).
const CLASSES: usize = EventClass::ALL.len();

/// Wall-clock span L0 should cover regardless of dt: 256 ticks at the
/// 10 ms case-study step.
const L0_TARGET_US: u64 = 2_560_000;
/// Wall-clock span the whole L0+L1 frame should cover: 16384 ticks at
/// the 10 ms step (~163 s).
const FRAME_TARGET_US: u64 = 163_840_000;

/// The phase-1 event classes the engine gates through the wheel.
///
/// Each class fronts one legacy drain in [`crate::Simulation::step`]'s
/// phase 1, in the order they run there.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventClass {
    /// Stochastic churn incidents (`apply_churn_events`).
    Churn,
    /// Fault-plan events (`apply_fault_events`).
    Faults,
    /// Client retry backoffs (`launch_due_retries`).
    Retries,
    /// Hedge-delay expiries (`launch_due_hedges`).
    Hedges,
    /// Per-attempt operation timeouts (`reap_timeouts`).
    Timeouts,
    /// Scheduled link/server health events (`apply_link_events`).
    Health,
    /// Session think-timer expiries (`wake_sessions`).
    SessionWakes,
    /// Periodic series launches (the `PeriodicSeries` traffic arm).
    Series,
    /// Background daemon schedules (`poll_background`).
    Background,
}

impl EventClass {
    /// All classes, in phase-1 drain order.
    pub const ALL: [EventClass; 9] = [
        EventClass::Churn,
        EventClass::Faults,
        EventClass::Retries,
        EventClass::Hedges,
        EventClass::Timeouts,
        EventClass::Health,
        EventClass::SessionWakes,
        EventClass::Series,
        EventClass::Background,
    ];

    /// Dense index (`0..ALL.len()`), usable as a profiler slot.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name for export artifacts.
    pub fn label(self) -> &'static str {
        match self {
            EventClass::Churn => "churn",
            EventClass::Faults => "faults",
            EventClass::Retries => "retries",
            EventClass::Hedges => "hedges",
            EventClass::Timeouts => "timeouts",
            EventClass::Health => "health",
            EventClass::SessionWakes => "session_wakes",
            EventClass::Series => "series",
            EventClass::Background => "background",
        }
    }

    fn bit(self) -> u16 {
        1 << (self as u16)
    }
}

/// An exact-tick entry in L1 or the overflow list: target tick, class
/// index, and the class generation it was scheduled under. An entry
/// whose generation no longer matches the class counter was cancelled
/// and is dropped (and counted) the next time it is touched.
#[derive(Clone, Copy)]
struct Entry {
    tick: u64,
    class: u8,
    gen: u64,
}

/// The gate wheel: per-class due bits indexed by tick boundary.
#[derive(Clone)]
pub struct TimerWheel {
    /// Tick length in microseconds (the engine's `dt`).
    dt_us: u64,
    /// One-tick slots in L0 (a multiple of 64, derived from dt).
    l0_slots: u64,
    /// L1 slots, each spanning `l0_slots` ticks (derived from dt).
    l1_slots: u64,
    /// `l0_slots * l1_slots` — ticks covered before overflow.
    frame: u64,
    /// The tick the wheel has advanced to (== `now / dt` in the engine).
    tick: u64,
    /// Classes due at or before `tick` and not yet taken.
    due: u16,
    /// Class bitmask per one-tick slot, indexed by `tick % l0_slots`.
    l0: Vec<u16>,
    /// Generation stamp per L0 slot per class: slot bit `c` is live iff
    /// `l0_gen[slot][c] == gen[c]`. Re-arming the same slot/class after
    /// a cancel overwrites the stamp (the bit is a gate, so the stale
    /// and fresh arming coalesce into one valid gate).
    l0_gen: Vec<[u64; CLASSES]>,
    /// Occupancy bitmap over the L0 slots (bit set ⇔ slot mask
    /// non-zero) — lets `advance_to` jump between occupied slots
    /// instead of walking every intermediate tick.
    l0_occ: Vec<u64>,
    /// Exact entries per `l0_slots`-tick window, indexed by
    /// `(tick / l0_slots) % l1_slots`.
    l1: Vec<Vec<Entry>>,
    /// Entries at least a full frame ahead, rotated in lazily.
    overflow: Vec<Entry>,
    /// Current generation per class; bumped by `cancel_class`.
    gen: [u64; CLASSES],
    /// Stale gates dropped per class (due-bit clears at cancel, stale
    /// slot bits at collection, stale entries at cascade/rotation).
    cancelled: [u64; CLASSES],
}

impl TimerWheel {
    /// Creates a wheel over step length `dt`, positioned at tick 0.
    ///
    /// The geometry is derived from `dt` so the wheel levels cover the
    /// same *wall-clock* spans regardless of step length: L0 spans
    /// ~2.56 s of one-tick slots (rounded up to a power of two, at
    /// least 64 so the occupancy bitmap stays word-aligned) and the
    /// L0+L1 frame spans ~163 s. At the default 10 ms step this
    /// reproduces exactly the historical 256 / 64 / 16384 geometry,
    /// which the wheel-equivalence proptests pin.
    ///
    /// # Panics
    /// Panics if `dt` is zero.
    pub fn new(dt: SimDuration) -> Self {
        assert!(!dt.is_zero(), "time step must be positive");
        let dt_us = dt.as_micros();
        let l0_slots = L0_TARGET_US
            .div_ceil(dt_us)
            .next_power_of_two()
            .clamp(64, 65536);
        let l1_slots = (FRAME_TARGET_US.div_ceil(dt_us) / l0_slots)
            .next_power_of_two()
            .clamp(16, 1024);
        TimerWheel {
            dt_us,
            l0_slots,
            l1_slots,
            frame: l0_slots * l1_slots,
            tick: 0,
            due: 0,
            l0: vec![0; l0_slots as usize],
            l0_gen: vec![[0; CLASSES]; l0_slots as usize],
            l0_occ: vec![0; (l0_slots / 64) as usize],
            l1: vec![Vec::new(); l1_slots as usize],
            overflow: Vec::new(),
            gen: [0; CLASSES],
            cancelled: [0; CLASSES],
        }
    }

    /// The derived `(l0_slots, l1_slots, frame)` geometry.
    pub fn geometry(&self) -> (u64, u64, u64) {
        (self.l0_slots, self.l1_slots, self.frame)
    }

    /// Registers an event of `class` at simulation time `at`: the due
    /// bit fires at the first step boundary `>= at` — the step at which
    /// the polling loop's `at <= now` check would first pass.
    pub fn schedule(&mut self, class: EventClass, at: SimTime) {
        self.schedule_at_micros(class, at.as_micros());
    }

    /// [`Self::schedule`] for a raw microsecond timestamp (the engine's
    /// heaps store `u64` micros).
    pub fn schedule_at_micros(&mut self, class: EventClass, at_us: u64) {
        self.insert(at_us.div_ceil(self.dt_us), class.index());
    }

    /// Invalidates every outstanding schedule of `class`: the class's
    /// generation is bumped (stale entries are dropped lazily where they
    /// sit) and a pending due bit is cleared. The caller must re-arm the
    /// class from its canonical container's earliest *live* event, or
    /// the gate for that event would be lost and its drain would run
    /// late — see the engine's cancellation sites.
    pub fn cancel_class(&mut self, class: EventClass) {
        let c = class.index();
        self.gen[c] += 1;
        let bit = class.bit();
        if self.due & bit != 0 {
            self.due &= !bit;
            self.cancelled[c] += 1;
        }
    }

    /// Stale gates dropped so far, per class index (monotone counters —
    /// the profiler diffs consecutive snapshots).
    pub fn cancelled_counts(&self) -> [u64; CLASSES] {
        self.cancelled
    }

    fn insert(&mut self, tick: u64, class: usize) {
        if tick <= self.tick {
            // Already due. The bit persists until taken, so a class that
            // drained earlier this same step sees it next step — matching
            // the polling loop, which also notices one step later.
            self.due |= 1 << class;
        } else if tick - self.tick < self.l0_slots {
            let slot = (tick % self.l0_slots) as usize;
            self.l0[slot] |= 1 << class;
            self.l0_gen[slot][class] = self.gen[class];
            self.l0_occ[slot / 64] |= 1 << (slot % 64);
        } else if tick - self.tick < self.frame {
            self.l1[((tick / self.l0_slots) % self.l1_slots) as usize].push(Entry {
                tick,
                class: class as u8,
                gen: self.gen[class],
            });
        } else {
            self.overflow.push(Entry {
                tick,
                class: class as u8,
                gen: self.gen[class],
            });
        }
    }

    /// Re-files an entry coming off L1 or the overflow list, dropping it
    /// (and counting the cancellation) when its generation went stale.
    fn reinsert(&mut self, e: Entry) {
        let class = e.class as usize;
        if e.gen == self.gen[class] {
            self.insert(e.tick, class);
        } else {
            self.cancelled[class] += 1;
        }
    }

    /// Folds one L0 slot into the due mask: live bits (generation still
    /// current) fire, stale bits count as cancelled. Clears the slot and
    /// its occupancy bit.
    fn collect_slot(&mut self, slot: usize) {
        let mut mask = self.l0[slot];
        if mask == 0 {
            return;
        }
        self.l0[slot] = 0;
        self.l0_occ[slot / 64] &= !(1 << (slot % 64));
        while mask != 0 {
            let class = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            if self.l0_gen[slot][class] == self.gen[class] {
                self.due |= 1 << class;
            } else {
                self.cancelled[class] += 1;
            }
        }
    }

    /// Folds the occupied L0 slots in `lo..=hi` (no window wrap — the
    /// caller guarantees the range lies inside one L0 window) into the
    /// due mask, touching only slots whose occupancy bit is set.
    fn collect_l0_range(&mut self, lo: usize, hi: usize) {
        let (w_lo, w_hi) = (lo / 64, hi / 64);
        for w in w_lo..=w_hi {
            let mut bits = self.l0_occ[w];
            if w == w_lo {
                bits &= !0u64 << (lo % 64);
            }
            if w == w_hi && hi % 64 < 63 {
                bits &= (1u64 << (hi % 64 + 1)) - 1;
            }
            while bits != 0 {
                let slot = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                self.collect_slot(slot);
            }
        }
    }

    /// Advances the wheel to `tick` (== `now / dt`), accumulating every
    /// slot passed over into the due mask and cascading L1/overflow at
    /// window and frame boundaries. The engine calls this once per step
    /// with consecutive ticks; arbitrary forward jumps are handled too —
    /// within an L0 window the jump visits only *occupied* L0 slots
    /// (via the occupancy bitmap), so an idle gap costs one bitmap scan
    /// per window rather than one iteration per tick.
    pub fn advance_to(&mut self, tick: u64) {
        while self.tick < tick {
            // Stretch to the end of the current window: no cascade or
            // rotation can happen strictly before the next multiple of
            // l0_slots, so every tick in between is a pure slot collect.
            let window_end = (self.tick / self.l0_slots + 1) * self.l0_slots;
            let target = tick.min(window_end - 1);
            if target > self.tick {
                let lo = ((self.tick + 1) % self.l0_slots) as usize;
                let hi = (target % self.l0_slots) as usize;
                self.collect_l0_range(lo, hi);
                self.tick = target;
            }
            if self.tick < tick {
                // The boundary tick itself, in the exact legacy order:
                // frame rotation, then window cascade, then its slot.
                self.tick += 1;
                let t = self.tick;
                if t.is_multiple_of(self.frame) {
                    // Frame rotation: overflow entries now inside the
                    // frame re-insert into L1 (or L0/due for near ones).
                    let overflow = std::mem::take(&mut self.overflow);
                    for e in overflow {
                        self.reinsert(e);
                    }
                }
                // Window cascade (t is a multiple of l0_slots by
                // construction): this window's L1 slot spills into L0.
                let slot = ((t / self.l0_slots) % self.l1_slots) as usize;
                let entries = std::mem::take(&mut self.l1[slot]);
                for e in entries {
                    self.reinsert(e);
                }
                self.collect_slot((t % self.l0_slots) as usize);
            }
        }
    }

    /// Consumes and returns the class's due bit: `true` means at least
    /// one event of the class reached its tick since the last take, and
    /// the corresponding drain must run this step.
    pub fn take(&mut self, class: EventClass) -> bool {
        let bit = class.bit();
        let due = self.due & bit != 0;
        self.due &= !bit;
        due
    }

    /// The tick the wheel is positioned at.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// The earliest tick at which a *live* gate of `class` will fire:
    /// the current tick when the class's due bit is pending, otherwise
    /// the minimum over L0 slots, L1 buckets and the overflow list of
    /// entries whose generation is still current. `None` means the
    /// class has no live gate anywhere in the wheel.
    ///
    /// This is a full scan of the wheel — O(slots + entries) — intended
    /// for the paranoid invariant auditor, not the step loop.
    pub fn earliest_live(&self, class: EventClass) -> Option<u64> {
        let c = class.index();
        if self.due & class.bit() != 0 {
            return Some(self.tick);
        }
        let mut best: Option<u64> = None;
        // L0: slot `s` holds tick `base + s`, or one window later when
        // that lands at or before the wheel's position.
        let base = self.tick - self.tick % self.l0_slots;
        for slot in 0..self.l0_slots as usize {
            if self.l0[slot] & (1 << c) == 0 || self.l0_gen[slot][c] != self.gen[c] {
                continue;
            }
            let mut t = base + slot as u64;
            if t <= self.tick {
                t += self.l0_slots;
            }
            best = Some(best.map_or(t, |b| b.min(t)));
        }
        let live = |e: &Entry| e.class as usize == c && e.gen == self.gen[c];
        for bucket in &self.l1 {
            for e in bucket.iter().filter(|e| live(e)) {
                best = Some(best.map_or(e.tick, |b| b.min(e.tick)));
            }
        }
        for e in self.overflow.iter().filter(|e| live(e)) {
            best = Some(best.map_or(e.tick, |b| b.min(e.tick)));
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DT: SimDuration = SimDuration::from_millis(10);

    fn at(ticks: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(10 * ticks)
    }

    #[test]
    fn default_dt_reproduces_historical_geometry() {
        // The dt-aware derivation must land exactly on the geometry the
        // equivalence proptests were written against at the 10 ms step.
        let w = TimerWheel::new(DT);
        assert_eq!(w.geometry(), (L0_SLOTS, L1_SLOTS, FRAME));
    }

    #[test]
    fn geometry_scales_with_dt() {
        // A finer step grows the slot counts so the levels still cover
        // the same wall-clock spans; a coarser step shrinks them down
        // to the word-aligned floor.
        let fine = TimerWheel::new(SimDuration::from_millis(1));
        let (l0, l1, frame) = fine.geometry();
        assert!(l0 >= 2560, "L0 must still cover ~2.56 s, got {l0} slots");
        assert!(l0.is_multiple_of(64), "occupancy bitmap needs whole words");
        assert_eq!(frame, l0 * l1);
        let coarse = TimerWheel::new(SimDuration::from_secs(1));
        assert_eq!(coarse.geometry().0, 64, "floor keeps the bitmap aligned");
    }

    #[test]
    fn non_default_geometry_fires_exactly_like_default() {
        // Same event pattern, 1 ms step (4096-slot L0): due sequence and
        // cancellation accounting must match tick-for-tick semantics.
        let dt = SimDuration::from_millis(1);
        let mut w = TimerWheel::new(dt);
        let (l0, _, frame) = w.geometry();
        let targets = [3, l0 + 5, frame + 9, 3 * frame + 1];
        for &t in &targets {
            w.schedule(
                EventClass::Series,
                SimTime::ZERO + SimDuration::from_millis(t),
            );
        }
        let mut fired = Vec::new();
        for t in 1..=3 * frame + 2 {
            w.advance_to(t);
            if w.take(EventClass::Series) {
                fired.push(t);
            }
        }
        assert_eq!(fired, targets);
    }

    #[test]
    fn class_count_matches_profiler_slots() {
        // The obs profiler is EventClass-agnostic; its drain-slot count
        // must track this enum.
        assert_eq!(EventClass::ALL.len(), gdisim_obs::NUM_CLASSES);
    }

    #[test]
    fn class_indices_are_dense_and_labels_unique() {
        for (i, c) in EventClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        let labels: std::collections::BTreeSet<_> =
            EventClass::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), EventClass::ALL.len());
    }

    #[test]
    fn event_fires_at_its_tick_and_only_once() {
        let mut w = TimerWheel::new(DT);
        w.schedule(EventClass::Series, at(3));
        for t in 1..=2 {
            w.advance_to(t);
            assert!(!w.take(EventClass::Series), "early at tick {t}");
        }
        w.advance_to(3);
        assert!(w.take(EventClass::Series));
        assert!(!w.take(EventClass::Series), "take consumes the bit");
        w.advance_to(4);
        assert!(!w.take(EventClass::Series), "no re-fire");
    }

    #[test]
    fn off_boundary_times_round_up_to_the_next_tick() {
        let mut w = TimerWheel::new(DT);
        // 25 ms with a 10 ms step: the polling loop first sees it at
        // now = 30 ms (tick 3).
        w.schedule(EventClass::Timeouts, SimTime::from_millis(25));
        w.advance_to(2);
        assert!(!w.take(EventClass::Timeouts));
        w.advance_to(3);
        assert!(w.take(EventClass::Timeouts));
    }

    #[test]
    fn past_and_present_events_are_due_immediately() {
        let mut w = TimerWheel::new(DT);
        w.schedule(EventClass::Faults, SimTime::ZERO);
        assert!(w.take(EventClass::Faults));
        w.advance_to(10);
        w.schedule(EventClass::Retries, at(4));
        assert!(w.take(EventClass::Retries), "past event due at once");
    }

    #[test]
    fn due_bit_persists_across_steps_until_taken() {
        let mut w = TimerWheel::new(DT);
        w.advance_to(5);
        // Armed after this step's drain already ran: the bit must
        // survive into the next step.
        w.schedule(EventClass::Retries, at(5));
        w.advance_to(6);
        assert!(w.take(EventClass::Retries));
    }

    #[test]
    fn classes_are_independent() {
        let mut w = TimerWheel::new(DT);
        w.schedule(EventClass::Health, at(2));
        w.schedule(EventClass::Background, at(2));
        w.advance_to(2);
        assert!(w.take(EventClass::Health));
        assert!(w.take(EventClass::Background));
        assert!(!w.take(EventClass::SessionWakes));
    }

    #[test]
    fn l1_window_cascade_keeps_exact_ticks() {
        let mut w = TimerWheel::new(DT);
        // Beyond L0 (256 ticks) but inside the frame: lands in L1, must
        // fire at exactly tick 300 after the cascade at tick 256.
        w.schedule(EventClass::Series, at(300));
        w.advance_to(299);
        assert!(!w.take(EventClass::Series));
        w.advance_to(300);
        assert!(w.take(EventClass::Series));
    }

    #[test]
    fn overflow_rotation_delivers_far_events() {
        let mut w = TimerWheel::new(DT);
        // Beyond the 16384-tick frame: overflow, rotated in at the frame
        // boundary, cascaded through L1 and L0, firing exactly on time.
        let far = FRAME + 1000;
        w.schedule(EventClass::Background, at(far));
        w.advance_to(far - 1);
        assert!(!w.take(EventClass::Background));
        w.advance_to(far);
        assert!(w.take(EventClass::Background));
    }

    #[test]
    fn far_event_survives_multiple_frame_rotations() {
        let mut w = TimerWheel::new(DT);
        let far = 3 * FRAME + 7;
        w.schedule(EventClass::Health, at(far));
        w.advance_to(far - 1);
        assert!(!w.take(EventClass::Health));
        w.advance_to(far);
        assert!(w.take(EventClass::Health));
    }

    #[test]
    fn dense_schedule_fires_every_tick() {
        let mut w = TimerWheel::new(DT);
        for t in 1..=600 {
            w.schedule(EventClass::SessionWakes, at(t));
        }
        for t in 1..=600 {
            w.advance_to(t);
            assert!(w.take(EventClass::SessionWakes), "missed tick {t}");
        }
    }

    #[test]
    fn forward_jump_collects_everything_in_between() {
        let mut w = TimerWheel::new(DT);
        w.schedule(EventClass::Series, at(10));
        w.schedule(EventClass::Health, at(500));
        w.advance_to(1000);
        assert!(w.take(EventClass::Series));
        assert!(w.take(EventClass::Health));
    }

    #[test]
    fn long_gap_jump_matches_per_tick_advance() {
        // The slot-skipping fast path and a one-tick-at-a-time walk must
        // observe the identical due sequence: sprinkle events across L0,
        // L1 and overflow distances (plus a cancelled class), run one
        // wheel with a single multi-frame jump and a clone tick by tick,
        // and compare every class's outcome.
        let build = || {
            let mut w = TimerWheel::new(DT);
            let mut x = 0x9E3779B97F4A7C15u64;
            for i in 0..400u64 {
                // xorshift-ish spread over ~2.5 frames, all classes.
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let tick = 1 + x % (2 * FRAME + 5000);
                let class = EventClass::ALL[(i as usize) % EventClass::ALL.len()];
                w.schedule(class, at(tick));
            }
            w.schedule(EventClass::Health, at(3)); // near event
            w.cancel_class(EventClass::SessionWakes); // stale a whole class
            w.schedule(EventClass::SessionWakes, at(7777)); // fresh again
            w
        };
        let far = 2 * FRAME + 5001;
        let mut jumped = build();
        jumped.advance_to(far);
        let mut stepped = build();
        for t in 1..=far {
            stepped.advance_to(t);
        }
        for class in EventClass::ALL {
            assert_eq!(
                jumped.take(class),
                stepped.take(class),
                "due bit diverged for {class:?}"
            );
        }
        assert_eq!(jumped.cancelled_counts(), stepped.cancelled_counts());
        assert_eq!(jumped.tick(), stepped.tick());
    }

    #[test]
    fn cancelled_gate_does_not_fire() {
        let mut w = TimerWheel::new(DT);
        w.schedule(EventClass::Timeouts, at(5));
        w.cancel_class(EventClass::Timeouts);
        w.advance_to(10);
        assert!(!w.take(EventClass::Timeouts), "cancelled gate fired");
        assert_eq!(w.cancelled_counts()[EventClass::Timeouts.index()], 1);
    }

    #[test]
    fn reschedule_after_cancel_fires_on_time() {
        let mut w = TimerWheel::new(DT);
        w.schedule(EventClass::Timeouts, at(5));
        w.cancel_class(EventClass::Timeouts);
        w.schedule(EventClass::Timeouts, at(8));
        w.advance_to(7);
        assert!(!w.take(EventClass::Timeouts));
        w.advance_to(8);
        assert!(w.take(EventClass::Timeouts), "re-armed gate lost");
    }

    #[test]
    fn rearming_the_same_slot_after_cancel_revalidates_it() {
        let mut w = TimerWheel::new(DT);
        w.schedule(EventClass::Retries, at(5));
        w.cancel_class(EventClass::Retries);
        // Same class, same slot, new generation: the stale bit coalesces
        // into one valid gate (and is not double-counted as cancelled).
        w.schedule(EventClass::Retries, at(5));
        w.advance_to(5);
        assert!(w.take(EventClass::Retries));
        assert_eq!(w.cancelled_counts()[EventClass::Retries.index()], 0);
    }

    #[test]
    fn cancel_clears_an_already_due_bit() {
        let mut w = TimerWheel::new(DT);
        w.schedule(EventClass::Faults, at(2));
        w.advance_to(2);
        w.cancel_class(EventClass::Faults);
        assert!(!w.take(EventClass::Faults), "cleared due bit fired");
        assert_eq!(w.cancelled_counts()[EventClass::Faults.index()], 1);
    }

    #[test]
    fn stale_l1_and_overflow_entries_are_dropped_in_place() {
        let mut w = TimerWheel::new(DT);
        w.schedule(EventClass::Background, at(300)); // L1
        w.schedule(EventClass::Background, at(FRAME + 50)); // overflow
        w.cancel_class(EventClass::Background);
        w.advance_to(FRAME + 100);
        assert!(!w.take(EventClass::Background));
        assert_eq!(w.cancelled_counts()[EventClass::Background.index()], 2);
    }

    #[test]
    fn cancellation_is_per_class() {
        let mut w = TimerWheel::new(DT);
        w.schedule(EventClass::Timeouts, at(4));
        w.schedule(EventClass::Retries, at(4));
        w.cancel_class(EventClass::Timeouts);
        w.advance_to(4);
        assert!(!w.take(EventClass::Timeouts));
        assert!(w.take(EventClass::Retries), "other class affected");
    }
}
