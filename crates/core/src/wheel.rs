//! Hierarchical timer wheel gating the phase-1 event sources.
//!
//! The discrete loop of §4.3 polls every phase-1 source every step:
//! fault schedules, retry backoffs, operation timeouts, health events,
//! session think-timers, periodic series and background daemons are all
//! asked "anything due?" each tick even when their next event is minutes
//! away. [`TimerWheel`] turns those polls into an *event index*: each
//! source class registers the tick of its next event through one
//! `schedule` API, and the engine only runs a class's drain when the
//! wheel says something is due (`take`). The legacy containers — the
//! retry vector, the timeout and session-wake min-heaps, the fault
//! cursor — remain the canonical stores and keep their exact drain
//! orders; the wheel is a pure *gate* in front of them. Because every
//! drain is a no-op (and draws no randomness) when nothing is due, and
//! because a gate is never late (an event at time `a` maps to the first
//! step boundary `t ≥ a`, exactly the step at which the polling loop's
//! `a <= now` check first passes), gated runs are bit-for-bit identical
//! to polled runs.
//!
//! Structure: a two-level wheel plus an overflow list, all keyed on
//! *tick indices* (step counts, `tick = ceil(at / dt)`):
//!
//! * **L0** — 256 one-tick slots holding a due-class bitmask each;
//!   covers the next 256 ticks exactly.
//! * **L1** — 64 slots of 256 ticks each; an entry keeps its exact
//!   target tick so no resolution is lost. When the current tick enters
//!   a new 256-tick window, that window's L1 slot *cascades*: its
//!   entries are re-inserted and land in L0 (or fire immediately).
//! * **Overflow** — events beyond the 16384-tick L1 frame (163 s at the
//!   10 ms case-study step). At each frame boundary the overflow list
//!   *rotates*: entries now inside the frame re-insert into L1/L0.
//!
//! Scheduling an event at or before the current tick sets its due bit
//! immediately; the bit then persists until taken, so an event armed
//! *after* its class's drain already ran this step is seen at the next
//! step — exactly when the polling loop would first see it too.

use gdisim_types::{SimDuration, SimTime};

/// One-tick slots in the innermost wheel level.
const L0_SLOTS: u64 = 256;
/// Slots in the second level (each spanning [`L0_SLOTS`] ticks).
const L1_SLOTS: u64 = 64;
/// Ticks covered by L0 + L1 before events fall into the overflow list.
const FRAME: u64 = L0_SLOTS * L1_SLOTS;

/// The phase-1 event classes the engine gates through the wheel.
///
/// Each class fronts one legacy drain in [`crate::Simulation::step`]'s
/// phase 1, in the order they run there.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventClass {
    /// Fault-plan events (`apply_fault_events`).
    Faults,
    /// Client retry backoffs (`launch_due_retries`).
    Retries,
    /// Per-attempt operation timeouts (`reap_timeouts`).
    Timeouts,
    /// Scheduled link/server health events (`apply_link_events`).
    Health,
    /// Session think-timer expiries (`wake_sessions`).
    SessionWakes,
    /// Periodic series launches (the `PeriodicSeries` traffic arm).
    Series,
    /// Background daemon schedules (`poll_background`).
    Background,
}

impl EventClass {
    /// All classes, in phase-1 drain order.
    pub const ALL: [EventClass; 7] = [
        EventClass::Faults,
        EventClass::Retries,
        EventClass::Timeouts,
        EventClass::Health,
        EventClass::SessionWakes,
        EventClass::Series,
        EventClass::Background,
    ];

    /// Dense index (`0..ALL.len()`), usable as a profiler slot.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name for export artifacts.
    pub fn label(self) -> &'static str {
        match self {
            EventClass::Faults => "faults",
            EventClass::Retries => "retries",
            EventClass::Timeouts => "timeouts",
            EventClass::Health => "health",
            EventClass::SessionWakes => "session_wakes",
            EventClass::Series => "series",
            EventClass::Background => "background",
        }
    }

    fn bit(self) -> u16 {
        1 << (self as u16)
    }
}

/// The gate wheel: per-class due bits indexed by tick boundary.
#[derive(Clone)]
pub struct TimerWheel {
    /// Tick length in microseconds (the engine's `dt`).
    dt_us: u64,
    /// The tick the wheel has advanced to (== `now / dt` in the engine).
    tick: u64,
    /// Classes due at or before `tick` and not yet taken.
    due: u16,
    /// Class bitmask per one-tick slot, indexed by `tick % 256`.
    l0: [u16; L0_SLOTS as usize],
    /// Exact `(tick, mask)` entries per 256-tick window, indexed by
    /// `(tick / 256) % 64`.
    l1: Vec<Vec<(u64, u16)>>,
    /// Entries at least a full frame ahead, rotated in lazily.
    overflow: Vec<(u64, u16)>,
}

impl TimerWheel {
    /// Creates a wheel over step length `dt`, positioned at tick 0.
    ///
    /// # Panics
    /// Panics if `dt` is zero.
    pub fn new(dt: SimDuration) -> Self {
        assert!(!dt.is_zero(), "time step must be positive");
        TimerWheel {
            dt_us: dt.as_micros(),
            tick: 0,
            due: 0,
            l0: [0; L0_SLOTS as usize],
            l1: vec![Vec::new(); L1_SLOTS as usize],
            overflow: Vec::new(),
        }
    }

    /// Registers an event of `class` at simulation time `at`: the due
    /// bit fires at the first step boundary `>= at` — the step at which
    /// the polling loop's `at <= now` check would first pass.
    pub fn schedule(&mut self, class: EventClass, at: SimTime) {
        self.schedule_at_micros(class, at.as_micros());
    }

    /// [`Self::schedule`] for a raw microsecond timestamp (the engine's
    /// heaps store `u64` micros).
    pub fn schedule_at_micros(&mut self, class: EventClass, at_us: u64) {
        self.insert(at_us.div_ceil(self.dt_us), class.bit());
    }

    fn insert(&mut self, tick: u64, mask: u16) {
        if tick <= self.tick {
            // Already due. The bit persists until taken, so a class that
            // drained earlier this same step sees it next step — matching
            // the polling loop, which also notices one step later.
            self.due |= mask;
        } else if tick - self.tick < L0_SLOTS {
            self.l0[(tick % L0_SLOTS) as usize] |= mask;
        } else if tick - self.tick < FRAME {
            self.l1[((tick / L0_SLOTS) % L1_SLOTS) as usize].push((tick, mask));
        } else {
            self.overflow.push((tick, mask));
        }
    }

    /// Advances the wheel to `tick` (== `now / dt`), accumulating every
    /// slot passed over into the due mask and cascading L1/overflow at
    /// window and frame boundaries. The engine calls this once per step
    /// with consecutive ticks; arbitrary forward jumps are handled too.
    pub fn advance_to(&mut self, tick: u64) {
        while self.tick < tick {
            self.tick += 1;
            let t = self.tick;
            if t.is_multiple_of(FRAME) {
                // Frame rotation: overflow entries now inside the frame
                // re-insert into L1 (or L0/due for near ones).
                let overflow = std::mem::take(&mut self.overflow);
                for (et, mask) in overflow {
                    self.insert(et, mask);
                }
            }
            if t.is_multiple_of(L0_SLOTS) {
                // Window cascade: this window's L1 slot spills into L0.
                let slot = ((t / L0_SLOTS) % L1_SLOTS) as usize;
                let entries = std::mem::take(&mut self.l1[slot]);
                for (et, mask) in entries {
                    self.insert(et, mask);
                }
            }
            let slot = (t % L0_SLOTS) as usize;
            self.due |= self.l0[slot];
            self.l0[slot] = 0;
        }
    }

    /// Consumes and returns the class's due bit: `true` means at least
    /// one event of the class reached its tick since the last take, and
    /// the corresponding drain must run this step.
    pub fn take(&mut self, class: EventClass) -> bool {
        let bit = class.bit();
        let due = self.due & bit != 0;
        self.due &= !bit;
        due
    }

    /// The tick the wheel is positioned at.
    pub fn tick(&self) -> u64 {
        self.tick
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DT: SimDuration = SimDuration::from_millis(10);

    fn at(ticks: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(10 * ticks)
    }

    #[test]
    fn class_count_matches_profiler_slots() {
        // The obs profiler is EventClass-agnostic; its drain-slot count
        // must track this enum.
        assert_eq!(EventClass::ALL.len(), gdisim_obs::NUM_CLASSES);
    }

    #[test]
    fn class_indices_are_dense_and_labels_unique() {
        for (i, c) in EventClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        let labels: std::collections::BTreeSet<_> =
            EventClass::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), EventClass::ALL.len());
    }

    #[test]
    fn event_fires_at_its_tick_and_only_once() {
        let mut w = TimerWheel::new(DT);
        w.schedule(EventClass::Series, at(3));
        for t in 1..=2 {
            w.advance_to(t);
            assert!(!w.take(EventClass::Series), "early at tick {t}");
        }
        w.advance_to(3);
        assert!(w.take(EventClass::Series));
        assert!(!w.take(EventClass::Series), "take consumes the bit");
        w.advance_to(4);
        assert!(!w.take(EventClass::Series), "no re-fire");
    }

    #[test]
    fn off_boundary_times_round_up_to_the_next_tick() {
        let mut w = TimerWheel::new(DT);
        // 25 ms with a 10 ms step: the polling loop first sees it at
        // now = 30 ms (tick 3).
        w.schedule(EventClass::Timeouts, SimTime::from_millis(25));
        w.advance_to(2);
        assert!(!w.take(EventClass::Timeouts));
        w.advance_to(3);
        assert!(w.take(EventClass::Timeouts));
    }

    #[test]
    fn past_and_present_events_are_due_immediately() {
        let mut w = TimerWheel::new(DT);
        w.schedule(EventClass::Faults, SimTime::ZERO);
        assert!(w.take(EventClass::Faults));
        w.advance_to(10);
        w.schedule(EventClass::Retries, at(4));
        assert!(w.take(EventClass::Retries), "past event due at once");
    }

    #[test]
    fn due_bit_persists_across_steps_until_taken() {
        let mut w = TimerWheel::new(DT);
        w.advance_to(5);
        // Armed after this step's drain already ran: the bit must
        // survive into the next step.
        w.schedule(EventClass::Retries, at(5));
        w.advance_to(6);
        assert!(w.take(EventClass::Retries));
    }

    #[test]
    fn classes_are_independent() {
        let mut w = TimerWheel::new(DT);
        w.schedule(EventClass::Health, at(2));
        w.schedule(EventClass::Background, at(2));
        w.advance_to(2);
        assert!(w.take(EventClass::Health));
        assert!(w.take(EventClass::Background));
        assert!(!w.take(EventClass::SessionWakes));
    }

    #[test]
    fn l1_window_cascade_keeps_exact_ticks() {
        let mut w = TimerWheel::new(DT);
        // Beyond L0 (256 ticks) but inside the frame: lands in L1, must
        // fire at exactly tick 300 after the cascade at tick 256.
        w.schedule(EventClass::Series, at(300));
        w.advance_to(299);
        assert!(!w.take(EventClass::Series));
        w.advance_to(300);
        assert!(w.take(EventClass::Series));
    }

    #[test]
    fn overflow_rotation_delivers_far_events() {
        let mut w = TimerWheel::new(DT);
        // Beyond the 16384-tick frame: overflow, rotated in at the frame
        // boundary, cascaded through L1 and L0, firing exactly on time.
        let far = FRAME + 1000;
        w.schedule(EventClass::Background, at(far));
        w.advance_to(far - 1);
        assert!(!w.take(EventClass::Background));
        w.advance_to(far);
        assert!(w.take(EventClass::Background));
    }

    #[test]
    fn far_event_survives_multiple_frame_rotations() {
        let mut w = TimerWheel::new(DT);
        let far = 3 * FRAME + 7;
        w.schedule(EventClass::Health, at(far));
        w.advance_to(far - 1);
        assert!(!w.take(EventClass::Health));
        w.advance_to(far);
        assert!(w.take(EventClass::Health));
    }

    #[test]
    fn dense_schedule_fires_every_tick() {
        let mut w = TimerWheel::new(DT);
        for t in 1..=600 {
            w.schedule(EventClass::SessionWakes, at(t));
        }
        for t in 1..=600 {
            w.advance_to(t);
            assert!(w.take(EventClass::SessionWakes), "missed tick {t}");
        }
    }

    #[test]
    fn forward_jump_collects_everything_in_between() {
        let mut w = TimerWheel::new(DT);
        w.schedule(EventClass::Series, at(10));
        w.schedule(EventClass::Health, at(500));
        w.advance_to(1000);
        assert!(w.take(EventClass::Series));
        assert!(w.take(EventClass::Health));
    }
}
