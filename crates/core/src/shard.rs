//! Sharded parallel engine: one shard per data center with
//! conservative WAN lookahead (§4.6 of DESIGN.md).
//!
//! The per-phase executors in `gdisim-ports` fork-join *inside* one
//! global step loop, so multi-DC runs are bounded by single-step
//! latency. [`ShardedSimulation`] partitions the run the other way:
//! every data center (round-robin when there are fewer shards than
//! DCs) gets a **shard** — a full [`Simulation`] clone that launches
//! only its own sites' traffic, owns its components' queues, its own
//! active set and its own timer wheel — and shards step *independently*
//! for a whole lookahead window between barriers.
//!
//! **Lookahead.** The window is `max(1, floor(min_wan_latency / dt))`
//! ticks. Every message that crosses a shard boundary rides a WAN hop
//! serviced in the source shard immediately before the crossing (WAN
//! link agents belong to their origin DC), so the barrier-quantized
//! delivery skew of at most one window is bounded by propagation
//! latency the flight has already paid — the classic conservative-PDES
//! argument, with the infra graph's constant link latencies as the
//! lookahead. Backup links count toward the minimum because they carry
//! traffic after a failover.
//!
//! **Mailboxes.** Cross-shard flights are exported into per-pair
//! FIFO mailboxes with per-pair sequence numbers and delivered at the
//! next window barrier, processed in canonical `(src_shard, seq)`
//! order before the window's first step. Which *thread* ran a window
//! is therefore invisible: results are byte-identical run-to-run for a
//! fixed seed and shard count, regardless of worker count or
//! scheduling. Receivers verify the sequence numbers; any gap counts
//! as an ordering violation (asserted zero by the bench `--check`).
//!
//! **Replicated control plane.** Every shard holds the full topology
//! and applies the *entire* fault / churn / health schedule (churn
//! draws from counter-based per-incident streams, so identical
//! transitions need no communication); only client traffic is
//! partitioned, and the background scheduler runs in shard 0. Merging
//! per-shard reports is then a disjoint union for owner-keyed series,
//! an element-wise sum for population series and counters, and a
//! shard-0 copy for the replicated singletons.
//!
//! A single-shard [`ShardedSimulation`] runs the identical machinery —
//! windows, barriers, (empty) mailboxes — and is bit-identical to the
//! serial [`Simulation`] down to hop traces, which the shard
//! equivalence proptests pin.

use crate::engine::Simulation;
use crate::report::Report;
use crate::router::Hop;
use gdisim_metrics::{MetricsRegistry, TimeSeries};
use gdisim_obs::StepProfile;
use gdisim_ports::{Executor, ShardedPool};
use gdisim_types::{SimDuration, SimTime};
use std::collections::{HashMap, VecDeque};

/// Sentinel instance id carried by tokens hosted on behalf of another
/// shard: they have no [`crate::flight::Instance`] here, and their
/// completion is mailed home instead of advancing a local cascade.
pub(crate) const FOREIGN_INSTANCE: u64 = u64::MAX;

/// One cross-shard message.
#[derive(Clone)]
pub(crate) enum ShardPayload {
    /// A message migrating to the shard that owns its next hop. The
    /// home shard keeps the token parked (empty hops) until a
    /// [`ShardPayload::Completion`] or [`ShardPayload::Failure`] comes
    /// back; forwards across a third shard keep the original identity.
    Flight {
        /// Shard owning the message's operation instance.
        home_shard: u32,
        /// Token id in the home shard's flight table.
        home_token: u64,
        /// Remaining hops, starting with the one that crossed.
        hops: VecDeque<Hop>,
        /// Transferred memory hold `(memory index, bytes)` — the owner
        /// shard mirrors the allocation so its occupancy metering stays
        /// faithful.
        mem: Option<(usize, f64)>,
        /// Span context for sampled operations (`--trace-ops`): `None`
        /// for untraced flights, `Some` with the hop segments recorded
        /// on previous shards otherwise (empty on first export). The
        /// receiving shard hosts the context and records its own hop
        /// segments into it.
        trace: Option<Vec<gdisim_obs::HopSeg>>,
    },
    /// The flight ran its remaining hops to completion.
    Completion {
        /// Token id in the home shard's flight table.
        home_token: u64,
        /// Hop segments recorded abroad for a sampled operation,
        /// stitched into the home message span (empty when untraced).
        segs: Vec<gdisim_obs::HopSeg>,
    },
    /// The flight was evicted by a fault/churn incident abroad.
    Failure {
        /// Token id in the home shard's flight table.
        home_token: u64,
        /// Hop segments recorded abroad for a sampled operation,
        /// stitched into the home message span (empty when untraced).
        segs: Vec<gdisim_obs::HopSeg>,
    },
}

/// A sequenced mailbox entry.
#[derive(Clone)]
pub(crate) struct ShardEnvelope {
    /// Per-(src, dst) sequence number, consecutive from 0.
    pub seq: u64,
    /// The message.
    pub payload: ShardPayload,
}

/// Per-destination outbox with its sequence counter.
#[derive(Clone, Default)]
struct Outbox {
    next_seq: u64,
    mail: Vec<ShardEnvelope>,
}

/// The engine-side shard context: identity, ownership table, outgoing
/// mailboxes and foreign-token bookkeeping. Installed by
/// [`ShardedSimulation`]; `None` on a serial engine.
#[derive(Clone)]
pub(crate) struct ShardCtx {
    /// This shard's id.
    pub me: u32,
    /// Owning shard per `DcId` index.
    pub dc_owner: Vec<u32>,
    /// One outbox per destination shard (own slot unused).
    outboxes: Vec<Outbox>,
    /// Tokens hosted for other shards: local token id → (home shard,
    /// home token id).
    pub foreign: HashMap<u64, (u32, u64)>,
    /// Next expected sequence number per source shard.
    expected_seq: Vec<u64>,
    /// Envelopes sent / received over this shard's lifetime.
    pub sent: u64,
    /// Envelopes received over this shard's lifetime.
    pub received: u64,
    /// Sequence gaps observed on receive (must stay 0).
    pub ordering_violations: u64,
}

impl ShardCtx {
    pub(crate) fn new(me: u32, dc_owner: Vec<u32>, shard_count: usize) -> Self {
        ShardCtx {
            me,
            dc_owner,
            outboxes: vec![Outbox::default(); shard_count],
            foreign: HashMap::new(),
            expected_seq: vec![0; shard_count],
            sent: 0,
            received: 0,
            ordering_violations: 0,
        }
    }

    /// Appends a payload to the `dst` outbox under the next sequence
    /// number.
    pub(crate) fn send(&mut self, dst: u32, payload: ShardPayload) {
        let ob = &mut self.outboxes[dst as usize];
        ob.mail.push(ShardEnvelope {
            seq: ob.next_seq,
            payload,
        });
        ob.next_seq += 1;
        self.sent += 1;
    }

    /// Drains every outbox, returning the mail per destination shard.
    pub(crate) fn take_outboxes(&mut self) -> Vec<Vec<ShardEnvelope>> {
        self.outboxes
            .iter_mut()
            .map(|ob| std::mem::take(&mut ob.mail))
            .collect()
    }

    /// Verifies an incoming envelope's sequence number against the
    /// per-source expectation, counting any gap.
    pub(crate) fn note_receive(&mut self, src: u32, seq: u64) {
        if seq != self.expected_seq[src as usize] {
            self.ordering_violations += 1;
        }
        self.expected_seq[src as usize] = seq + 1;
        self.received += 1;
    }
}

/// Invalid sharded-run parameters, reported instead of panicking so
/// the CLI can surface them as typed errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardConfigError {
    /// `--shards 0` — at least one shard is required.
    ZeroShards,
    /// `--lookahead-ticks 0` — the window must span at least one tick.
    ZeroLookahead,
    /// Zero worker threads requested.
    ZeroWorkers,
}

impl std::fmt::Display for ShardConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardConfigError::ZeroShards => write!(f, "shard count must be at least 1"),
            ShardConfigError::ZeroLookahead => {
                write!(f, "lookahead window must span at least 1 tick")
            }
            ShardConfigError::ZeroWorkers => write!(f, "worker count must be at least 1"),
        }
    }
}

impl std::error::Error for ShardConfigError {}

/// Per-shard window accounting, surfaced through
/// [`ShardedSimulation::metrics_snapshot`] and `--profile-json`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Windows stepped.
    pub windows: u64,
    /// Wall time this shard spent stepping its windows.
    pub window_wall_ns: u64,
    /// Wall time this shard waited at barriers for the slowest shard
    /// of each window.
    pub barrier_wait_ns: u64,
    /// Envelopes this shard sent.
    pub mail_sent: u64,
    /// Envelopes this shard received.
    pub mail_received: u64,
    /// Sequence gaps observed on receive (must stay 0).
    pub ordering_violations: u64,
}

/// A shard's escaped panic, surfaced by
/// [`ShardedSimulation::try_run_until`] after every surviving shard
/// reached the window barrier.
pub struct ShardCrash {
    /// Index of the shard whose window panicked.
    pub shard: u32,
    /// The window-start barrier time of the broken window.
    pub at: SimTime,
    /// The same barrier as a tick count (`at / dt`).
    pub tick: u64,
    /// Human-readable panic message (see [`gdisim_ports::panic_message`]).
    pub message: String,
    /// The original panic payload, for rethrow.
    pub payload: Box<dyn std::any::Any + Send + 'static>,
}

impl std::fmt::Debug for ShardCrash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardCrash")
            .field("shard", &self.shard)
            .field("at", &self.at)
            .field("tick", &self.tick)
            .field("message", &self.message)
            .finish_non_exhaustive()
    }
}

impl std::fmt::Display for ShardCrash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shard {} panicked in the window starting at t={}s: {}",
            self.shard,
            self.at.as_secs_f64(),
            self.message
        )
    }
}

/// One shard plus its last window's wall time (written inside the
/// pool closure, read at the barrier).
struct Slot {
    sim: Simulation,
    wall_ns: u64,
}

/// The sharded engine: one [`Simulation`] clone per shard, stepped in
/// whole lookahead windows on a [`ShardedPool`], exchanging
/// cross-shard flights through deterministic mailboxes at window
/// barriers.
pub struct ShardedSimulation {
    shards: Vec<Slot>,
    pool: ShardedPool,
    /// Window length in ticks.
    window_ticks: u64,
    dt: SimDuration,
    now: SimTime,
    /// Undelivered mail: `pending[src][dst]`, delivered at the next
    /// window barrier in canonical `(src, seq)` order.
    pending: Vec<Vec<Vec<ShardEnvelope>>>,
    stats: Vec<ShardStats>,
    /// Owning shard per DC name (for report merging).
    dc_shard: HashMap<String, usize>,
    /// Owning shard per WAN link label (its origin DC's shard).
    wan_shard: HashMap<String, usize>,
}

// Shards are moved across the pool's worker threads.
const _: fn() = || {
    fn is_send<T: Send>() {}
    is_send::<Simulation>();
};

impl ShardedSimulation {
    /// Partitions `base` (which must not have been stepped yet) into
    /// `shards` shards — clamped to the DC count — with the lookahead
    /// window derived from the topology's minimum WAN latency, or
    /// overridden by `lookahead_ticks`. `workers` bounds the pool's
    /// execution streams (default: one per shard); results do not
    /// depend on it.
    pub fn new(
        base: Simulation,
        shards: usize,
        lookahead_ticks: Option<u64>,
        workers: Option<usize>,
    ) -> Result<Self, ShardConfigError> {
        if shards == 0 {
            return Err(ShardConfigError::ZeroShards);
        }
        if lookahead_ticks == Some(0) {
            return Err(ShardConfigError::ZeroLookahead);
        }
        if workers == Some(0) {
            return Err(ShardConfigError::ZeroWorkers);
        }
        assert_eq!(
            base.now(),
            SimTime::ZERO,
            "sharding must happen before the run starts"
        );
        let dt = base.dt();
        let n_dcs = base.infra_ref().data_centers().len().max(1);
        let n = shards.min(n_dcs);
        let window_ticks = match lookahead_ticks {
            Some(w) => w,
            None => base
                .infra_ref()
                .min_wan_latency()
                .map(|lat| (lat.as_micros() / dt.as_micros()).max(1))
                .unwrap_or(1),
        };
        let dc_owner: Vec<u32> = (0..n_dcs).map(|i| (i % n) as u32).collect();
        let mut dc_shard = HashMap::new();
        for dc in base.infra_ref().data_centers() {
            dc_shard.insert(dc.name.clone(), dc_owner[dc.id.index()] as usize);
        }
        let mut wan_shard = HashMap::new();
        for (label, agent) in base.infra_ref().wan_links() {
            let dc = base.infra_ref().meta(*agent).dc;
            wan_shard.insert(label.clone(), dc_owner[dc.index()] as usize);
        }
        let site_dcs: Vec<usize> = base.site_dc_map().iter().map(|dc| dc.index()).collect();
        let mut sims: Vec<Simulation> = Vec::with_capacity(n);
        for _ in 1..n {
            sims.push(base.branch());
        }
        sims.insert(0, base);
        for (i, sim) in sims.iter_mut().enumerate() {
            sim.set_shard_ctx(i as u32, dc_owner.clone(), n);
            let owned: Vec<bool> = site_dcs
                .iter()
                .map(|&dc| dc_owner[dc] as usize == i)
                .collect();
            sim.retain_sites(&owned);
            if i != 0 {
                sim.clear_background();
            }
            // Parallelism comes from the shard pool; each shard steps
            // its window serially.
            sim.set_executor(Executor::serial());
        }
        let workers = workers.unwrap_or(n).min(n);
        Ok(ShardedSimulation {
            shards: sims
                .into_iter()
                .map(|sim| Slot { sim, wall_ns: 0 })
                .collect(),
            pool: ShardedPool::new(workers),
            window_ticks,
            dt,
            now: SimTime::ZERO,
            pending: vec![vec![Vec::new(); n]; n],
            stats: vec![ShardStats::default(); n],
            dc_shard,
            wan_shard,
        })
    }

    /// Number of shards (after clamping to the DC count).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The lookahead window in ticks.
    pub fn window_ticks(&self) -> u64 {
        self.window_ticks
    }

    /// The discrete time step shared by every shard.
    pub fn dt(&self) -> SimDuration {
        self.dt
    }

    /// Current simulation time (the last window barrier).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total sequence gaps observed across all shards (must stay 0).
    pub fn ordering_violations(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.sim.shard_ctx().map_or(0, |c| c.ordering_violations))
            .sum()
    }

    /// Per-shard window statistics.
    pub fn stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .zip(&self.stats)
            .map(|(slot, st)| {
                let ctx = slot.sim.shard_ctx();
                ShardStats {
                    mail_sent: ctx.map_or(0, |c| c.sent),
                    mail_received: ctx.map_or(0, |c| c.received),
                    ordering_violations: ctx.map_or(0, |c| c.ordering_violations),
                    ..*st
                }
            })
            .collect()
    }

    /// Enables message-level tracing on every shard.
    pub fn enable_trace(&mut self, capacity: usize) {
        for slot in &mut self.shards {
            slot.sim.enable_trace(capacity);
        }
    }

    /// Per-shard traces, if enabled.
    pub fn traces(&self) -> Vec<Option<&crate::trace::TraceLog>> {
        self.shards.iter().map(|s| s.sim.trace()).collect()
    }

    /// Enables the step-loop profiler on every shard.
    pub fn enable_profiler(&mut self, span_capacity: usize) {
        for slot in &mut self.shards {
            slot.sim.enable_profiler(span_capacity);
        }
    }

    /// Enables causal operation tracing on every shard (see
    /// [`Simulation::enable_optrace`]). Each shard samples its own
    /// launches with the same `(seed, instance)` hash; cross-shard
    /// flights carry span context through the mailboxes and stitch at
    /// the operation's home shard, so the merged export covers every
    /// sampled operation exactly once.
    pub fn enable_optrace(&mut self, rate: f64) {
        for slot in &mut self.shards {
            slot.sim.enable_optrace(rate);
        }
    }

    /// Per-shard operation-trace recorders, if enabled.
    pub fn optraces(&self) -> Vec<Option<&crate::optrace::OpTraceRecorder>> {
        self.shards.iter().map(|s| s.sim.optrace()).collect()
    }

    /// Read-only view of one shard's engine. Merged observability
    /// exports resolve labels against shard 0's registry (every shard
    /// replicates the full catalog and topology).
    pub fn shard_sim(&self, shard: usize) -> &Simulation {
        &self.shards[shard].sim
    }

    /// Per-shard aggregated step profiles, if profiling is enabled.
    pub fn step_profiles(&self) -> Vec<Option<StepProfile>> {
        self.shards.iter().map(|s| s.sim.step_profile()).collect()
    }

    /// Switches the invariant auditor on or off in every shard (see
    /// [`Simulation::set_paranoid`]). Each shard audits its own state
    /// at its own measurement collections; the per-shard tallies merge
    /// through [`Self::audit_state`].
    pub fn set_paranoid(&mut self, on: bool) {
        for slot in &mut self.shards {
            slot.sim.set_paranoid(on);
        }
    }

    /// Supervision test hook: shard `shard` panics at its first step at
    /// or past `at` (see [`Simulation::inject_panic_at`]). Out-of-range
    /// shard indices are ignored — the hook is best-effort by design.
    pub fn inject_panic_at(&mut self, shard: usize, at: SimTime) {
        if let Some(slot) = self.shards.get_mut(shard) {
            slot.sim.inject_panic_at(at);
        }
    }

    /// Merged auditor tallies across shards, when `--paranoid` is on.
    pub fn audit_state(&self) -> Option<crate::audit::AuditState> {
        let mut merged: Option<crate::audit::AuditState> = None;
        for slot in &self.shards {
            if let Some(a) = slot.sim.audit_state() {
                merged.get_or_insert_with(Default::default).merge_from(a);
            }
        }
        merged
    }

    /// Runs the simulation up to `until` (exclusive of any partial
    /// step, matching [`Simulation::run_until`]'s floor semantics) in
    /// lookahead windows: deliver mailboxes, step every shard one
    /// window in parallel, exchange mailboxes at the barrier, repeat.
    ///
    /// A panic inside a shard's window is rethrown on the calling
    /// thread after every surviving shard reached the barrier; use
    /// [`Self::try_run_until`] to supervise it instead.
    pub fn run_until(&mut self, until: SimTime) {
        if let Err(crash) = self.try_run_until(until) {
            std::panic::resume_unwind(crash.payload);
        }
    }

    /// [`Self::run_until`] under supervision: a shard's escaped panic
    /// stops the run at the window barrier it broke and is returned as
    /// a [`ShardCrash`] instead of unwinding the caller. Every
    /// *surviving* shard has completed the window (the pool catches
    /// the panic at the shard boundary, so the barrier wait cannot
    /// wedge), letting the supervisor report the crash and exit
    /// cleanly — typically pointing at the last checkpoint for a
    /// kill→resume cycle. The crashed shard's state is torn mid-step;
    /// the engine must not be stepped further.
    pub fn try_run_until(&mut self, until: SimTime) -> Result<(), ShardCrash> {
        let n = self.shards.len();
        let dt_us = self.dt.as_micros();
        loop {
            let remaining = if until > self.now {
                (until - self.now).as_micros() / dt_us
            } else {
                0
            };
            if remaining == 0 {
                break;
            }
            let ticks = remaining.min(self.window_ticks);
            let target = self.now + self.dt * ticks;
            // Window-start barrier: deliver last window's mail in
            // canonical (src, seq) order, at the barrier timestamp.
            for dst in 0..n {
                for src in 0..n {
                    let mail = std::mem::take(&mut self.pending[src][dst]);
                    if !mail.is_empty() {
                        self.shards[dst]
                            .sim
                            .deliver_shard_inbox(src as u32, mail, self.now);
                    }
                }
            }
            // Step every shard one whole window in parallel. A panic is
            // caught at the shard boundary: the others still finish.
            let crashed = self
                .pool
                .run_caught(&mut self.shards, |_, slot| {
                    let t0 = std::time::Instant::now();
                    slot.sim.run_until(target);
                    slot.wall_ns = t0.elapsed().as_nanos() as u64;
                })
                .err();
            if let Some(p) = crashed {
                return Err(ShardCrash {
                    shard: p.shard as u32,
                    at: self.now,
                    tick: self.now.as_micros() / dt_us,
                    message: gdisim_ports::panic_message(p.payload.as_ref()),
                    payload: p.payload,
                });
            }
            // Window-end barrier: collect outboxes and stats.
            let slowest = self.shards.iter().map(|s| s.wall_ns).max().unwrap_or(0);
            for src in 0..n {
                let st = &mut self.stats[src];
                st.windows += 1;
                st.window_wall_ns += self.shards[src].wall_ns;
                st.barrier_wait_ns += slowest - self.shards[src].wall_ns;
                let out = self.shards[src].sim.take_shard_outboxes();
                for (dst, mail) in out.into_iter().enumerate() {
                    debug_assert!(self.pending[src][dst].is_empty());
                    self.pending[src][dst] = mail;
                }
            }
            self.now = target;
        }
        Ok(())
    }

    /// Stitches the per-shard reports into one global [`Report`].
    pub fn report(&self) -> Report {
        let r0 = self.shards[0].sim.report();
        let mut out = Report::new();
        // Owner-keyed series: each (DC, tier) / link / client-link
        // series is taken from the shard that owns the queues behind
        // it — the only shard whose meters saw that work.
        for (i, slot) in self.shards.iter().enumerate() {
            let r = slot.sim.report();
            for (key, s) in &r.tier_cpu {
                if self.dc_shard.get(&key.0).copied() == Some(i) {
                    out.tier_cpu.insert(key.clone(), s.clone());
                }
            }
            for (key, s) in &r.tier_disk {
                if self.dc_shard.get(&key.0).copied() == Some(i) {
                    out.tier_disk.insert(key.clone(), s.clone());
                }
            }
            for (key, s) in &r.tier_memory {
                if self.dc_shard.get(&key.0).copied() == Some(i) {
                    out.tier_memory.insert(key.clone(), s.clone());
                }
            }
            for (label, s) in &r.wan_util {
                if self.wan_shard.get(label).copied() == Some(i) {
                    out.wan_util.insert(label.clone(), s.clone());
                }
            }
            for (dc, s) in &r.client_link_util {
                if self.dc_shard.get(dc).copied() == Some(i) {
                    out.client_link_util.insert(dc.clone(), s.clone());
                }
            }
            // Response keys carry the client DC, so shard key sets are
            // disjoint and this is a plain union.
            out.responses.merge_from(&r.responses);
        }
        // Population series sum element-wise over the shared
        // collection boundaries.
        out.concurrent_clients = sum_series(
            self.shards
                .iter()
                .map(|s| &s.sim.report().concurrent_clients),
        );
        out.logged_in_clients = sum_series(
            self.shards
                .iter()
                .map(|s| &s.sim.report().logged_in_clients),
        );
        out.active_operations = sum_series(
            self.shards
                .iter()
                .map(|s| &s.sim.report().active_operations),
        );
        // Availability: sum the per-interval counts, then recompute
        // the ratio (ratios cannot be averaged).
        let mut counts = r0.availability_counts.clone();
        for slot in &self.shards[1..] {
            let rc = &slot.sim.report().availability_counts;
            debug_assert_eq!(rc.len(), counts.len(), "collection boundaries diverged");
            for (dst, src) in counts.iter_mut().zip(rc) {
                dst.1 += src.1;
                dst.2 += src.2;
            }
        }
        for &(t, ok, failed) in &counts {
            let total = ok + failed;
            let avail = if total == 0 {
                1.0
            } else {
                ok as f64 / total as f64
            };
            out.availability.push(t, avail);
        }
        out.availability_counts = counts;
        // Failure counters accrue in the failed operation's home
        // shard, exactly once each: sum. The replicated control plane
        // (skipped events, degraded windows, churn accounting, health
        // errors) is identical in every shard: take shard 0's.
        for slot in &self.shards {
            let f = &slot.sim.report().faults;
            out.faults.failed_operations += f.failed_operations;
            out.faults.retried_operations += f.retried_operations;
            out.faults.abandoned_operations += f.abandoned_operations;
            out.faults.dropped_messages += f.dropped_messages;
            let r = &slot.sim.report().resilience;
            out.resilience.hedges_launched += r.hedges_launched;
            out.resilience.hedge_wins += r.hedge_wins;
            out.resilience.hedges_cancelled += r.hedges_cancelled;
            out.resilience.hedge_cancelled_messages += r.hedge_cancelled_messages;
            out.resilience.breaker_trips += r.breaker_trips;
            out.resilience.breaker_rejections += r.breaker_rejections;
            out.resilience.shed_operations += r.shed_operations;
        }
        out.faults.skipped_events = r0.faults.skipped_events;
        out.degraded_windows = r0.degraded_windows.clone();
        out.degraded_since = r0.degraded_since;
        out.churn = r0.churn.clone();
        out.slo_target = r0.slo_target;
        out.health_errors = r0.health_errors.clone();
        // Background runs in shard 0 only.
        out.background = r0.background.clone();
        out
    }

    /// Consumes the sharded engine, returning the merged report.
    pub fn into_report(self) -> Report {
        self.report()
    }

    /// Snapshots merged engine counters plus per-shard window /
    /// barrier / mailbox counters into a [`MetricsRegistry`].
    pub fn metrics_snapshot(&self) -> MetricsRegistry {
        let report = self.report();
        let mut r = MetricsRegistry::new();
        r.set_counter("responses.recorded", report.responses.total_recorded());
        r.set_counter("faults.failed_operations", report.faults.failed_operations);
        r.set_counter(
            "faults.retried_operations",
            report.faults.retried_operations,
        );
        r.set_counter(
            "faults.abandoned_operations",
            report.faults.abandoned_operations,
        );
        r.set_counter("faults.dropped_messages", report.faults.dropped_messages);
        r.set_counter("faults.skipped_events", report.faults.skipped_events);
        r.set_counter("churn.incidents", report.churn.incidents);
        r.set_counter("churn.repairs", report.churn.repairs);
        r.set_counter("churn.refused_incidents", report.churn.refused_incidents);
        r.set_counter(
            "resilience.hedges_launched",
            report.resilience.hedges_launched,
        );
        r.set_counter("resilience.hedge_wins", report.resilience.hedge_wins);
        r.set_counter(
            "resilience.hedges_cancelled",
            report.resilience.hedges_cancelled,
        );
        r.set_counter("resilience.breaker_trips", report.resilience.breaker_trips);
        r.set_counter(
            "resilience.breaker_rejections",
            report.resilience.breaker_rejections,
        );
        r.set_counter(
            "resilience.shed_operations",
            report.resilience.shed_operations,
        );
        if let Some(a) = self.audit_state() {
            r.set_counter("audit.checks", a.checks);
            r.set_counter("audit.violations", a.violations);
        }
        let optraced: Vec<_> = self.optraces().into_iter().flatten().collect();
        if !optraced.is_empty() {
            let mut sampled = 0u64;
            let mut finished = 0u64;
            let mut dropped = 0u64;
            for o in optraced {
                let c = o.counters();
                sampled += c.sampled;
                finished += c.finished;
                dropped += c.dropped;
            }
            r.set_counter("optrace.sampled", sampled);
            r.set_counter("optrace.finished", finished);
            r.set_counter("optrace.dropped", dropped);
        }
        r.set_gauge("sim.time_secs", self.now.as_secs_f64());
        r.set_counter("shards.count", self.shards.len() as u64);
        r.set_counter("shards.window_ticks", self.window_ticks);
        let stats = self.stats();
        r.set_counter(
            "shards.ordering_violations",
            stats.iter().map(|s| s.ordering_violations).sum(),
        );
        for (i, st) in stats.iter().enumerate() {
            r.set_counter(&format!("shard{i}.windows"), st.windows);
            r.set_counter(
                &format!("shard{i}.window_wall_us"),
                st.window_wall_ns / 1000,
            );
            r.set_counter(
                &format!("shard{i}.barrier_wait_us"),
                st.barrier_wait_ns / 1000,
            );
            r.set_counter(&format!("shard{i}.mailbox.sent"), st.mail_sent);
            r.set_counter(&format!("shard{i}.mailbox.received"), st.mail_received);
            r.set_counter(
                &format!("shard{i}.ordering_violations"),
                st.ordering_violations,
            );
        }
        r
    }

    /// The sharded `--profile-json` export: per-shard step profiles
    /// (phase spans included) under the shard's window / barrier
    /// counters, plus the merged registry.
    pub fn profile_value(&self) -> serde::Value {
        use serde::Value;
        let stats = self.stats();
        let shards: Vec<Value> = self
            .shards
            .iter()
            .zip(&stats)
            .enumerate()
            .map(|(i, (slot, st))| {
                let mut m = vec![
                    ("shard".to_string(), Value::U64(i as u64)),
                    ("windows".to_string(), Value::U64(st.windows)),
                    (
                        "window_wall_us".to_string(),
                        Value::U64(st.window_wall_ns / 1000),
                    ),
                    (
                        "barrier_wait_us".to_string(),
                        Value::U64(st.barrier_wait_ns / 1000),
                    ),
                    ("mail_sent".to_string(), Value::U64(st.mail_sent)),
                    ("mail_received".to_string(), Value::U64(st.mail_received)),
                    (
                        "ordering_violations".to_string(),
                        Value::U64(st.ordering_violations),
                    ),
                ];
                if let Some(p) = slot.sim.step_profile() {
                    m.push((
                        "profile".to_string(),
                        gdisim_obs::export::profile_to_value(&p, None),
                    ));
                }
                Value::Object(m)
            })
            .collect();
        Value::Object(vec![
            (
                "schema".to_string(),
                Value::Str("gdisim.profile.sharded.v1".to_string()),
            ),
            (
                "shard_count".to_string(),
                Value::U64(self.shards.len() as u64),
            ),
            ("window_ticks".to_string(), Value::U64(self.window_ticks)),
            ("shards".to_string(), Value::Array(shards)),
            ("registry".to_string(), self.metrics_snapshot().to_value()),
        ])
    }
}

/// Element-wise sum of per-shard series sharing collection boundaries.
fn sum_series<'a>(mut series: impl Iterator<Item = &'a TimeSeries>) -> TimeSeries {
    let Some(first) = series.next() else {
        return TimeSeries::new();
    };
    let times = first.times().to_vec();
    let mut values = first.values().to_vec();
    for s in series {
        debug_assert_eq!(
            s.times(),
            times.as_slice(),
            "collection boundaries diverged"
        );
        for (dst, v) in values.iter_mut().zip(s.values()) {
            *dst += v;
        }
    }
    times.into_iter().zip(values).collect()
}

// Checkpoint support.
gdisim_snap::snap_enum!(ShardPayload {
    0 => Flight { home_shard, home_token, hops, mem, trace },
    1 => Completion { home_token, segs },
    2 => Failure { home_token, segs },
});
gdisim_snap::snap_struct!(ShardEnvelope { seq, payload });
gdisim_snap::snap_struct!(Outbox { next_seq, mail });
gdisim_snap::snap_struct!(ShardCtx {
    me,
    dc_owner,
    outboxes,
    foreign,
    expected_seq,
    sent,
    received,
    ordering_violations,
});
// Wall-clock diagnostics (`window_wall_ns`, `barrier_wait_ns`,
// `Slot::wall_ns`) are deliberately not serialized: they measure the
// host, not the simulation, and skipping them keeps checkpoint bytes a
// deterministic function of simulation state — the same run always
// writes the same checkpoint, which the resume-equivalence tests
// compare byte-for-byte.
impl gdisim_snap::Snap for ShardStats {
    fn save(&self, w: &mut gdisim_snap::SnapWriter) {
        gdisim_snap::Snap::save(&self.windows, w);
        gdisim_snap::Snap::save(&self.mail_sent, w);
        gdisim_snap::Snap::save(&self.mail_received, w);
        gdisim_snap::Snap::save(&self.ordering_violations, w);
    }
    fn load(r: &mut gdisim_snap::SnapReader<'_>) -> Result<Self, gdisim_snap::SnapError> {
        Ok(ShardStats {
            windows: gdisim_snap::Snap::load(r)?,
            window_wall_ns: 0,
            barrier_wait_ns: 0,
            mail_sent: gdisim_snap::Snap::load(r)?,
            mail_received: gdisim_snap::Snap::load(r)?,
            ordering_violations: gdisim_snap::Snap::load(r)?,
        })
    }
}
impl gdisim_snap::Snap for Slot {
    fn save(&self, w: &mut gdisim_snap::SnapWriter) {
        gdisim_snap::Snap::save(&self.sim, w);
    }
    fn load(r: &mut gdisim_snap::SnapReader<'_>) -> Result<Self, gdisim_snap::SnapError> {
        Ok(Slot {
            sim: gdisim_snap::Snap::load(r)?,
            wall_ns: 0,
        })
    }
}

// The pool itself is threads, not state: only its width survives a
// checkpoint, and a restored engine spins up a fresh pool of the same
// width.
impl gdisim_snap::Snap for ShardedSimulation {
    fn save(&self, w: &mut gdisim_snap::SnapWriter) {
        gdisim_snap::Snap::save(&self.shards, w);
        gdisim_snap::Snap::save(&self.pool.threads(), w);
        gdisim_snap::Snap::save(&self.window_ticks, w);
        gdisim_snap::Snap::save(&self.dt, w);
        gdisim_snap::Snap::save(&self.now, w);
        gdisim_snap::Snap::save(&self.pending, w);
        gdisim_snap::Snap::save(&self.stats, w);
        gdisim_snap::Snap::save(&self.dc_shard, w);
        gdisim_snap::Snap::save(&self.wan_shard, w);
    }
    fn load(r: &mut gdisim_snap::SnapReader<'_>) -> Result<Self, gdisim_snap::SnapError> {
        let shards: Vec<Slot> = gdisim_snap::Snap::load(r)?;
        let threads: usize = gdisim_snap::Snap::load(r)?;
        if shards.is_empty() {
            return Err(gdisim_snap::SnapError::Invalid(
                "sharded snapshot holds no shards",
            ));
        }
        if threads == 0 || threads > shards.len() {
            return Err(gdisim_snap::SnapError::Invalid(
                "sharded snapshot worker count out of range",
            ));
        }
        Ok(ShardedSimulation {
            shards,
            pool: ShardedPool::new(threads),
            window_ticks: gdisim_snap::Snap::load(r)?,
            dt: gdisim_snap::Snap::load(r)?,
            now: gdisim_snap::Snap::load(r)?,
            pending: gdisim_snap::Snap::load(r)?,
            stats: gdisim_snap::Snap::load(r)?,
            dc_shard: gdisim_snap::Snap::load(r)?,
            wan_shard: gdisim_snap::Snap::load(r)?,
        })
    }
}
