//! The discrete time loop (§4.3).
//!
//! Each step runs three phases:
//!
//! 1. **Arrival & daemon phase** — client populations and background
//!    schedulers launch new operation instances;
//! 2. **Time-increment phase** — every hardware agent advances its
//!    queues by `dt`, leaving completed tokens in its outbox. This phase
//!    runs under the configured [`gdisim_ports::Executor`] (serial, Scatter-Gather or
//!    H-Dispatch);
//! 3. **Interaction phase** — completed tokens are routed to the next
//!    agent of their message, finished messages advance their cascade
//!    stage, and finished cascades record response times. Interactions
//!    are enqueued with the *next* tick's timestamp, enforcing the
//!    timestamp-consistency guard of §4.3.3 (an interaction created
//!    during the `t → t+dt` transition is never serviced before `t+dt`).
//!
//! Periodically the **measurement-collection phase** (§4.3.2) snapshots
//! every meter into the [`Report`].

use crate::churn::{incident_stream, ChurnModel, ChurnModelError, ChurnProcess};
use crate::config::{MasterPolicy, SimulationConfig};
use crate::fault::{FaultAction, FaultPlan, FaultPlanError, FaultTarget, InFlightPolicy};
use crate::flight::{Chain, FlightTable, Instance, InstanceKind};
use crate::report::{BackgroundRecord, ChurnComponentRecord, HealthEventError, Report};
use crate::router::compile_with;
use crate::wheel::{EventClass, TimerWheel};
use gdisim_background::{BackgroundKind, BackgroundLaunch, BackgroundScheduler};
use gdisim_infra::{ComponentKind, Infrastructure};
use gdisim_metrics::{MetricsRegistry, ResponseKey};
use gdisim_obs::{
    StepProfile, StepProfiler, PHASE_ADVANCE, PHASE_COLLECT, PHASE_DRAIN, PHASE_ROUTE,
};
use gdisim_queueing::{JobToken, SplitMix64, Station};
use gdisim_types::{AppId, DcId, OpTypeId, SimTime};
use gdisim_workload::{
    AppWorkload, Application, ArrivalSampler, OperationTemplate, ResiliencePolicies, RetryPolicy,
    SiteBinding,
};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// A scheduled infrastructure-health change.
#[derive(Clone)]
enum HealthEvent {
    Link {
        label: String,
        fail: bool,
    },
    Server {
        site: usize,
        tier: gdisim_types::TierKind,
        server: usize,
        fail: bool,
    },
}

/// Runtime state of an installed [`FaultPlan`].
///
/// Only present when a non-empty plan was installed — every fault-layer
/// hook checks `faults.is_some()` first, so a run without a plan (or
/// with an empty one) executes exactly the seed code path.
#[derive(Clone)]
struct FaultRuntime {
    /// Schedule sorted by `(time, declaration order)`, applied from
    /// `cursor` on. The `u32` is the event's index in the plan, stamped
    /// into [`crate::trace::TraceEvent::Fault`].
    events: Vec<(SimTime, u32, FaultTarget, FaultAction)>,
    cursor: usize,
    in_flight: InFlightPolicy,
    retry: Option<RetryPolicy>,
    /// Targets currently down — deduplicates double-fails and drives the
    /// degraded-window bookkeeping.
    down: Vec<FaultTarget>,
    /// Armed per-attempt timeouts `(deadline µs, instance id)`, lazily
    /// invalidated: entries whose instance already completed are skipped
    /// when popped.
    timeouts: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u64)>>,
    /// Failed operations waiting out their backoff before re-launch.
    pending_retries: Vec<PendingRetry>,
    /// Operations completed / failed in the current collection interval
    /// (the availability numerator and denominator).
    interval_ok: u64,
    interval_failed: u64,
}

/// A failed client operation scheduled for re-issue after its backoff.
#[derive(Clone)]
struct PendingRetry {
    at: SimTime,
    template: Arc<OperationTemplate>,
    key: ResponseKey,
    binding: SiteBinding,
    chain: Option<Chain>,
    session: Option<u64>,
    attempt: u32,
    first_launched_at: SimTime,
    /// Sampled operation this retry belongs to, carrying span identity
    /// across the backoff (`None` when the operation is untraced).
    trace_root: Option<u64>,
}

/// One churn-managed component: a WAN link, a single server, or a
/// correlated failure domain whose member servers fail and recover
/// atomically. The component's index in [`ChurnRuntime::components`]
/// keys its RNG stream, so the expansion order is part of the model's
/// deterministic contract.
#[derive(Clone)]
struct ChurnComponent {
    /// Human-readable label for the per-component report record.
    label: String,
    /// Fault targets flipped together when the component fails/repairs.
    targets: Vec<FaultTarget>,
    /// The component's failure/repair renewal process.
    process: ChurnProcess,
    /// Whether the component is currently down.
    down: bool,
    /// Incident counter — with the component index, keys the dedicated
    /// per-incident RNG stream.
    incidents: u64,
    /// Targets the current incident actually took down (the infra can
    /// refuse individual members, e.g. a tier's last healthy server).
    applied: Vec<FaultTarget>,
    /// The current incident's generator: re-seeded from
    /// [`incident_stream`] at each incident, so the number of draws one
    /// incident consumes can never shift another's.
    rng: SplitMix64,
    /// When the current up/down span started.
    span_start: SimTime,
    /// Closed up/down span totals, accumulated at each transition.
    up_us: u64,
    down_us: u64,
    failures: u64,
    repairs: u64,
}

impl ChurnComponent {
    fn new(label: String, targets: Vec<FaultTarget>, process: ChurnProcess) -> Self {
        ChurnComponent {
            label,
            targets,
            process,
            down: false,
            incidents: 0,
            applied: Vec::new(),
            rng: SplitMix64::new(0), // re-seeded per incident
            span_start: SimTime::ZERO,
            up_us: 0,
            down_us: 0,
            failures: 0,
            repairs: 0,
        }
    }
}

/// Runtime state of an installed [`ChurnModel`].
///
/// Only present when a non-empty model was installed — every churn hook
/// checks `churn.is_some()` first, so a run without a model (or with an
/// empty one) executes exactly the seed code path.
#[derive(Clone)]
struct ChurnRuntime {
    components: Vec<ChurnComponent>,
    /// Pending transitions `(time µs, component index)` — a failure when
    /// the component is up, a repair when it is down. Never drains dry:
    /// every transition schedules the component's next one.
    queue: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u32)>>,
    /// The model's dedicated churn seed.
    seed: u64,
}

/// Per-route circuit-breaker state (see
/// [`gdisim_workload::BreakerPolicy`] for the transition rules).
#[derive(Clone, Copy)]
enum BreakerState {
    /// Healthy: counts consecutive failures toward the trip threshold.
    Closed { consecutive: u32 },
    /// Tripped: every launch on the route fails fast until `until_us`.
    Open { until_us: u64 },
    /// Cooldown elapsed: up to the probe budget of launches is admitted;
    /// a success closes the breaker, a failure re-opens it.
    HalfOpen { probes_left: u32 },
}

/// Runtime state of the installed [`ResiliencePolicies`].
///
/// Only present when at least one policy is enabled — every resilience
/// hook checks `resilience.is_some()` (and the specific policy) first,
/// so a run with no policies (or all-disabled ones) executes exactly
/// the seed code path.
#[derive(Clone)]
struct ResilienceRuntime {
    policies: ResiliencePolicies,
    /// Breaker state per (client DC, master DC) route.
    breakers: HashMap<(DcId, DcId), BreakerState>,
    /// Armed hedge timers `(fire µs, primary instance id)`, lazily
    /// invalidated: entries whose instance already settled are skipped
    /// when popped.
    hedges: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u64)>>,
}

/// Why an operation instance failed — selects the counter the failure
/// lands in. All causes share the settle machinery (retry, session
/// wake, trace), only the accounting differs.
#[derive(Clone, Copy, PartialEq, Eq)]
enum FailCause {
    /// A fault, timeout, eviction or unroutable stage.
    Fault,
    /// Server-side load shedding bounced it at admission.
    Shed,
    /// A per-route circuit breaker rejected it at launch.
    Breaker,
}

/// Pseudo-application id under which background operations report.
pub const BG_APP: AppId = AppId(999);
/// SYNCHREP's operation id under [`BG_APP`].
pub const BG_OP_SYNCHREP: OpTypeId = OpTypeId(0);
/// INDEXBUILD's operation id under [`BG_APP`].
pub const BG_OP_INDEXBUILD: OpTypeId = OpTypeId(1);

#[derive(Clone)]
struct AppEntry {
    id: AppId,
    name: String,
    ops: Vec<Arc<OperationTemplate>>,
    mix: Vec<f64>,
}

/// A source of client operation launches.
#[derive(Clone)]
pub enum TrafficSource {
    /// Diurnal Poisson arrivals from per-site population curves.
    Diurnal {
        /// Index into the engine's application registry.
        app_idx: usize,
        /// The workload curves.
        workload: AppWorkload,
        /// Engine site index per workload site (resolved at add time).
        site_map: Vec<usize>,
    },
    /// Closed-loop *sessions* (Ch. 9.2.1's client-behavior extension):
    /// the curves give the **logged-in** population; each session
    /// alternates thinking and launching operations, so the offered load
    /// adapts to the system's own response times — the closed-workload
    /// counterpart of `Diurnal`'s open Poisson arrivals.
    Sessions {
        /// Index into the engine's application registry.
        app_idx: usize,
        /// Logged-in population curves.
        workload: AppWorkload,
        /// Engine site index per workload site.
        site_map: Vec<usize>,
        /// Mean think time between a completion and the next launch, in
        /// seconds (exponentially distributed).
        mean_think_secs: f64,
        /// Live session count per workload site.
        live: Vec<u32>,
        /// Sessions marked for retirement per workload site.
        retiring: Vec<u32>,
    },
    /// Deterministic periodic series launches (the validation driver of
    /// §5.2.4: "one light series is launched every 15 seconds…"). Each
    /// launch starts a chained run of the given templates.
    PeriodicSeries {
        /// Application id for response keys.
        app: AppId,
        /// The series' operation templates, in order.
        templates: Vec<Arc<OperationTemplate>>,
        /// Launch period.
        interval: gdisim_types::SimDuration,
        /// Engine site index clients launch from.
        site: usize,
        /// Next launch time.
        next: SimTime,
        /// Stop launching at this time (the experiment horizon), if set.
        stop_at: Option<SimTime>,
    },
}

/// The simulator.
#[derive(Clone)]
pub struct Simulation {
    infra: Infrastructure,
    sites: Vec<String>,
    site_dc: Vec<DcId>,
    config: SimulationConfig,
    apps: Vec<AppEntry>,
    traffic: Vec<TrafficSource>,
    master_policy: MasterPolicy,
    background: Option<BackgroundScheduler>,
    sampler: ArrivalSampler,
    cache_rng: SplitMix64,
    flight: FlightTable,
    report: Report,
    now: SimTime,
    next_collect: SimTime,
    /// Scheduled health events `(when, what)`.
    link_events: Vec<(SimTime, HealthEvent)>,
    /// Fault-injection runtime, when a non-empty plan is installed.
    faults: Option<FaultRuntime>,
    /// Session wake calendar: (wake time µs, session id).
    session_wakes: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u64)>>,
    /// Live sessions: id -> (traffic-source index, workload site index).
    sessions: HashMap<u64, (usize, usize)>,
    next_session: u64,
    /// Optional message-level trace (see [`crate::trace`]).
    trace: Option<crate::trace::TraceLog>,
    /// Last collection boundary — idle time before it is already in the
    /// report, so lazy idle crediting never reaches further back.
    meter_epoch: SimTime,
    /// When set, every agent is ticked every step (the always-tick loop);
    /// otherwise only the active set is ticked and idle agents' meters
    /// are credited lazily. Results are bit-for-bit identical either way.
    tick_all: bool,
    /// Reusable buffer for the per-step active-agent snapshot.
    active_scratch: Vec<u32>,
    /// Reusable buffer for the phase-3 completion drain.
    completed_scratch: Vec<(u32, u64)>,
    /// When set, every phase-1 source is polled every step (the seed
    /// loop); otherwise the timer wheel gates each source class and a
    /// drain only runs when an event actually reached its tick. Results
    /// are bit-for-bit identical either way.
    always_poll: bool,
    /// The phase-1 gate wheel; primed lazily at the first step (once
    /// `dt` is final) unless [`Self::set_always_poll`] disabled it.
    wheel: Option<TimerWheel>,
    /// Traffic sources that must be visited every step regardless of the
    /// wheel (diurnal Poisson draws, session population tracking). When
    /// zero, the traffic scan itself sits behind the series gate.
    polled_sources: usize,
    /// Optional step-loop profiler (see [`gdisim_obs`]). Strictly
    /// observational: it only reads the wall clock and counters, never
    /// simulation state or randomness, so enabling it cannot change
    /// results.
    profiler: Option<StepProfiler>,
    /// Last-seen snapshot of the wheel's monotone per-class cancellation
    /// counters; the profiler is fed the per-step deltas.
    cancelled_seen: [u64; EventClass::ALL.len()],
    /// Stochastic churn runtime; `None` (or an empty model) leaves every
    /// step bit-identical to a churn-free run.
    churn: Option<ChurnRuntime>,
    /// Resilience policy runtime (breakers / hedging / shedding); `None`
    /// (or all-disabled policies) leaves runs bit-identical to seed.
    resilience: Option<ResilienceRuntime>,
    /// Tokens whose parent instance was failed/evicted/hedge-cancelled;
    /// their completions are swallowed silently.
    orphans: HashSet<u64>,
    /// Shard identity, ownership table and mailboxes when this engine is
    /// one shard of a [`crate::shard::ShardedSimulation`]; `None` on a
    /// serial engine (no interception, zero overhead on the hot paths).
    shard: Option<crate::shard::ShardCtx>,
    /// Invariant auditor (`--paranoid`); `None` costs nothing. Strictly
    /// read-only over simulation state — see [`crate::audit`].
    audit: Option<crate::audit::AuditState>,
    /// Supervision test hook: the first step at or past this time
    /// panics. Never serialized — a resumed run must not re-crash.
    panic_at: Option<SimTime>,
    /// Operation-trace recorder (`--trace-ops`); `None` costs nothing.
    /// Strictly observational (no RNG draws, no state mutation), so
    /// results are bit-identical with it on or off at any sample rate.
    /// Never serialized: a resumed run restarts with an empty recorder
    /// (in-flight traced operations are deliberately dropped).
    optrace: Option<Box<crate::optrace::OpTraceRecorder>>,
}

/// Why a simulation (or one of its workloads) could not be built from
/// user-supplied names: the site/application strings come from topology
/// and workload files, so misspellings must surface as typed errors on
/// the `try_*` constructors rather than panics.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// A site name does not match any data center in the topology.
    UnknownSite(String),
    /// A workload references an application that was never registered.
    UnknownApplication(String),
    /// A workload references a site outside the engine's site list.
    UnknownWorkloadSite(String),
    /// A session workload's mean think time must be positive.
    NonPositiveThinkTime(f64),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::UnknownSite(s) => {
                write!(f, "site '{s}' is not a data center in the topology")
            }
            BuildError::UnknownApplication(a) => {
                write!(f, "no application named '{a}' registered")
            }
            BuildError::UnknownWorkloadSite(s) => write!(f, "workload site '{s}' unknown"),
            BuildError::NonPositiveThinkTime(t) => {
                write!(f, "mean think time must be positive (got {t})")
            }
        }
    }
}

impl std::error::Error for BuildError {}

impl Simulation {
    /// Creates a simulation over an infrastructure. `sites` fixes the
    /// canonical site order shared with workloads, growth curves and
    /// access-pattern matrices; every site must name a data center.
    /// # Panics
    /// Panics when a site does not name a data center; use
    /// [`Self::try_new`] to get a typed error instead.
    pub fn new(infra: Infrastructure, sites: Vec<String>, config: SimulationConfig) -> Self {
        Self::try_new(infra, sites, config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Self::new`] with user-supplied site names validated into a
    /// typed [`BuildError`] instead of a panic.
    pub fn try_new(
        infra: Infrastructure,
        sites: Vec<String>,
        config: SimulationConfig,
    ) -> Result<Self, BuildError> {
        let site_dc = sites
            .iter()
            .map(|s| {
                infra
                    .dc_by_name(s)
                    .ok_or_else(|| BuildError::UnknownSite(s.clone()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let next_collect = SimTime::ZERO + config.collect_interval;
        Ok(Simulation {
            infra,
            sites,
            site_dc,
            sampler: ArrivalSampler::new(config.seed),
            cache_rng: SplitMix64::new(config.seed ^ 0xC0FFEE),
            config,
            apps: Vec::new(),
            traffic: Vec::new(),
            master_policy: MasterPolicy::Local,
            background: None,
            flight: FlightTable::new(),
            report: Report::new(),
            now: SimTime::ZERO,
            next_collect,
            link_events: Vec::new(),
            faults: None,
            session_wakes: std::collections::BinaryHeap::new(),
            sessions: HashMap::new(),
            next_session: 0,
            trace: None,
            meter_epoch: SimTime::ZERO,
            tick_all: false,
            active_scratch: Vec::new(),
            completed_scratch: Vec::new(),
            always_poll: false,
            wheel: None,
            polled_sources: 0,
            profiler: None,
            cancelled_seen: [0; EventClass::ALL.len()],
            churn: None,
            resilience: None,
            orphans: HashSet::new(),
            shard: None,
            audit: None,
            panic_at: None,
            optrace: None,
        })
    }

    /// Registers a calibrated application and returns its registry index.
    pub fn add_application(&mut self, app: Application) -> usize {
        self.apps.push(AppEntry {
            id: app.id,
            name: app.name,
            ops: app.ops.into_iter().map(Arc::new).collect(),
            mix: app.mix,
        });
        self.apps.len() - 1
    }

    /// Resolves a workload's application name against the registry.
    fn app_index(&self, name: &str) -> Result<usize, BuildError> {
        self.apps
            .iter()
            .position(|a| a.name == name)
            .ok_or_else(|| BuildError::UnknownApplication(name.to_string()))
    }

    /// Resolves a workload's per-site names against the engine's site
    /// order.
    fn workload_site_map(&self, workload: &AppWorkload) -> Result<Vec<usize>, BuildError> {
        workload
            .sites
            .iter()
            .map(|s| {
                self.sites
                    .iter()
                    .position(|n| *n == s.site)
                    .ok_or_else(|| BuildError::UnknownWorkloadSite(s.site.clone()))
            })
            .collect()
    }

    /// Adds a diurnal workload for a previously registered application
    /// (matched by name).
    ///
    /// # Panics
    /// Panics on an unknown application or site name; use
    /// [`Self::try_add_diurnal`] for a typed error.
    pub fn add_diurnal(&mut self, workload: AppWorkload) {
        self.try_add_diurnal(workload)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Self::add_diurnal`] with name lookups validated into a typed
    /// [`BuildError`].
    pub fn try_add_diurnal(&mut self, workload: AppWorkload) -> Result<(), BuildError> {
        let app_idx = self.app_index(&workload.app)?;
        let site_map = self.workload_site_map(&workload)?;
        self.traffic.push(TrafficSource::Diurnal {
            app_idx,
            workload,
            site_map,
        });
        self.polled_sources += 1;
        Ok(())
    }

    /// Adds a closed-loop session workload for a registered application:
    /// the curves give the logged-in population, and each session thinks
    /// for `mean_think_secs` (exponential) between operations.
    ///
    /// # Panics
    /// Panics on an unknown application/site name or a non-positive
    /// think time; use [`Self::try_add_sessions`] for a typed error.
    pub fn add_sessions(&mut self, workload: AppWorkload, mean_think_secs: f64) {
        self.try_add_sessions(workload, mean_think_secs)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Self::add_sessions`] with name lookups and the think time
    /// validated into a typed [`BuildError`].
    pub fn try_add_sessions(
        &mut self,
        workload: AppWorkload,
        mean_think_secs: f64,
    ) -> Result<(), BuildError> {
        if mean_think_secs <= 0.0 {
            return Err(BuildError::NonPositiveThinkTime(mean_think_secs));
        }
        let app_idx = self.app_index(&workload.app)?;
        let site_map = self.workload_site_map(&workload)?;
        let n = site_map.len();
        self.traffic.push(TrafficSource::Sessions {
            app_idx,
            workload,
            site_map,
            mean_think_secs,
            live: vec![0; n],
            retiring: vec![0; n],
        });
        self.polled_sources += 1;
        Ok(())
    }

    /// Schedules a WAN link failure (by `L from->to` label) at `at`.
    /// Routing shifts to the surviving links and any backups; frames
    /// already in flight on the link complete their transfer.
    pub fn schedule_link_failure(&mut self, label: &str, at: SimTime) {
        self.link_events.push((
            at,
            HealthEvent::Link {
                label: label.to_string(),
                fail: true,
            },
        ));
        self.gate(EventClass::Health, at);
    }

    /// Schedules the restoration of a previously failed WAN link.
    pub fn schedule_link_restore(&mut self, label: &str, at: SimTime) {
        self.link_events.push((
            at,
            HealthEvent::Link {
                label: label.to_string(),
                fail: false,
            },
        ));
        self.gate(EventClass::Health, at);
    }

    /// Schedules a server failure: from `at` on, the server admits no new
    /// work (its queued jobs drain). The last healthy server of a tier
    /// cannot be failed.
    pub fn schedule_server_failure(
        &mut self,
        site: &str,
        tier: gdisim_types::TierKind,
        server: usize,
        at: SimTime,
    ) {
        let site = self.site_index(site);
        self.link_events.push((
            at,
            HealthEvent::Server {
                site,
                tier,
                server,
                fail: true,
            },
        ));
        self.gate(EventClass::Health, at);
    }

    /// Schedules the restoration of a failed server.
    pub fn schedule_server_restore(
        &mut self,
        site: &str,
        tier: gdisim_types::TierKind,
        server: usize,
        at: SimTime,
    ) {
        let site = self.site_index(site);
        self.link_events.push((
            at,
            HealthEvent::Server {
                site,
                tier,
                server,
                fail: false,
            },
        ));
        self.gate(EventClass::Health, at);
    }

    /// Installs a fault plan: a deterministic failure/recovery schedule
    /// plus the in-flight and client-retry policies (see
    /// [`crate::fault`]). Every target is validated against the topology
    /// up front, so a plan naming a link or site that does not exist is
    /// rejected with a readable error instead of failing mid-run.
    ///
    /// Installing an **empty** plan (no events, no retry policy) is a
    /// no-op: the run stays bit-identical to one with no plan at all.
    ///
    /// # Errors
    /// Returns a [`FaultPlanError`] when an event time is invalid, the
    /// retry policy is inconsistent, or a target is not in the topology.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) -> Result<(), FaultPlanError> {
        plan.validate()?;
        for (i, e) in plan.events.iter().enumerate() {
            let reason = match &e.target {
                FaultTarget::WanLink { label } => self
                    .infra
                    .wan_link_agent(label)
                    .is_none()
                    .then(|| format!("no WAN link labelled '{label}'")),
                FaultTarget::Server { site, tier, server } => match self.infra.dc_by_name(site) {
                    None => Some(format!("no data center named '{site}'")),
                    Some(dc) => match self.infra.dc(dc).tier_index(*tier) {
                        None => Some(format!("no {tier} tier at data center '{site}'")),
                        Some(ti) => {
                            let n = self.infra.dc(dc).tiers[ti].servers.len();
                            (*server >= n).then(|| {
                                format!("{tier} tier at '{site}' has {n} servers, no #{server}")
                            })
                        }
                    },
                },
                FaultTarget::DataCenter { site } => self
                    .infra
                    .dc_by_name(site)
                    .is_none()
                    .then(|| format!("no data center named '{site}'")),
            };
            if let Some(reason) = reason {
                return Err(FaultPlanError::UnknownTarget { event: i, reason });
            }
        }
        if plan.is_empty() {
            return Ok(());
        }
        let mut events: Vec<(SimTime, u32, FaultTarget, FaultAction)> = plan
            .events
            .iter()
            .enumerate()
            .map(|(i, e)| (e.at(), i as u32, e.target.clone(), e.action))
            .collect();
        events.sort_by_key(|(t, i, _, _)| (*t, *i));
        for &(t, ..) in &events {
            self.gate(EventClass::Faults, t);
        }
        self.faults = Some(FaultRuntime {
            events,
            cursor: 0,
            in_flight: plan.in_flight,
            retry: plan.retry,
            down: Vec::new(),
            timeouts: std::collections::BinaryHeap::new(),
            pending_retries: Vec::new(),
            interval_ok: 0,
            interval_failed: 0,
        });
        Ok(())
    }

    /// Installs a stochastic churn model (see [`crate::churn`]): expands
    /// the per-class failure/repair processes over the built topology —
    /// one renewal process per WAN link, per server and per declared
    /// failure domain — draws every component's first time-to-failure
    /// from its dedicated incident stream and arms the
    /// [`EventClass::Churn`] gates.
    ///
    /// Installing an **empty** model is a no-op: the run stays
    /// bit-identical to one with no model at all (churn draws come from
    /// their own counter-based streams, so they can never perturb
    /// traffic randomness). A non-empty model materializes the fault
    /// runtime (with an empty event schedule) so the eviction / retry /
    /// timeout / availability machinery is armed; the model's
    /// `in_flight` and `retry` override an installed fault plan's
    /// policies when present.
    ///
    /// # Errors
    /// Returns a [`ChurnModelError`] when a process parameter, the SLO
    /// target or the retry policy is invalid, or a domain member names
    /// a server the topology does not contain.
    pub fn set_churn_model(&mut self, model: ChurnModel) -> Result<(), ChurnModelError> {
        model.validate()?;
        for d in &model.domains {
            for m in &d.members {
                let reason = match self.infra.dc_by_name(&m.site) {
                    None => Some(format!("no data center named '{}'", m.site)),
                    Some(dc) => match self.infra.dc(dc).tier_index(m.tier) {
                        None => Some(format!("no {} tier at data center '{}'", m.tier, m.site)),
                        Some(ti) => {
                            let n = self.infra.dc(dc).tiers[ti].servers.len();
                            (m.server >= n).then(|| {
                                format!(
                                    "{} tier at '{}' has {n} servers, no #{}",
                                    m.tier, m.site, m.server
                                )
                            })
                        }
                    },
                };
                if let Some(reason) = reason {
                    return Err(ChurnModelError::UnknownMember {
                        domain: d.name.clone(),
                        reason,
                    });
                }
            }
        }
        if model.is_empty() {
            return Ok(());
        }
        // Expand the model over the topology in canonical order: WAN
        // links in build order, then servers by (data center, tier,
        // index), then domains in declaration order. The order fixes
        // each component's RNG stream key.
        let mut components: Vec<ChurnComponent> = Vec::new();
        if let Some(p) = model.wan_links {
            for (label, _) in self.infra.wan_links() {
                components.push(ChurnComponent::new(
                    format!("link {label}"),
                    vec![FaultTarget::WanLink {
                        label: label.clone(),
                    }],
                    p,
                ));
            }
        }
        if let Some(p) = model.servers {
            for dc in self.infra.data_centers() {
                for tier in &dc.tiers {
                    for server in 0..tier.servers.len() {
                        components.push(ChurnComponent::new(
                            format!("{} {} #{server}", dc.name, tier.kind.label()),
                            vec![FaultTarget::Server {
                                site: dc.name.clone(),
                                tier: tier.kind,
                                server,
                            }],
                            p,
                        ));
                    }
                }
            }
        }
        for d in &model.domains {
            components.push(ChurnComponent::new(
                format!("domain {}", d.name),
                d.members
                    .iter()
                    .map(|m| FaultTarget::Server {
                        site: m.site.clone(),
                        tier: m.tier,
                        server: m.server,
                    })
                    .collect(),
                d.process,
            ));
        }
        // Draw every component's incident-0 time-to-failure and arm its
        // gate.
        let mut queue = std::collections::BinaryHeap::new();
        let mut gates: Vec<SimTime> = Vec::new();
        for (idx, comp) in components.iter_mut().enumerate() {
            comp.rng = incident_stream(model.seed, idx as u32, 0);
            let ttf = comp.process.sample_ttf(&mut comp.rng);
            let at = self.now + gdisim_types::SimDuration::from_secs_f64(ttf);
            comp.span_start = self.now;
            queue.push(std::cmp::Reverse((at.as_micros(), idx as u32)));
            gates.push(at);
        }
        for at in gates {
            self.gate(EventClass::Churn, at);
        }
        // Arm the shared fault machinery (eviction, retries, timeouts,
        // availability) when no plan installed it.
        match &mut self.faults {
            Some(f) => {
                if let Some(p) = model.in_flight {
                    f.in_flight = p;
                }
                if model.retry.is_some() {
                    f.retry = model.retry;
                }
            }
            None => {
                self.faults = Some(FaultRuntime {
                    events: Vec::new(),
                    cursor: 0,
                    in_flight: model.in_flight.unwrap_or(InFlightPolicy::Drain),
                    retry: model.retry,
                    down: Vec::new(),
                    timeouts: std::collections::BinaryHeap::new(),
                    pending_retries: Vec::new(),
                    interval_ok: 0,
                    interval_failed: 0,
                });
            }
        }
        self.report.slo_target = model.slo_target;
        self.churn = Some(ChurnRuntime {
            components,
            queue,
            seed: model.seed,
        });
        Ok(())
    }

    /// Installs resilience policies — per-route circuit breakers, hedged
    /// requests and server-side load shedding (see
    /// [`gdisim_workload::ResiliencePolicies`]). Installing an **empty**
    /// bundle (every policy disabled) is a no-op: the run stays
    /// bit-identical to one with no policies at all.
    ///
    /// # Errors
    /// Returns a readable description of the first invalid parameter.
    pub fn set_resilience(&mut self, policies: ResiliencePolicies) -> Result<(), String> {
        policies.validate()?;
        if policies.is_empty() {
            return Ok(());
        }
        self.resilience = Some(ResilienceRuntime {
            policies,
            breakers: HashMap::new(),
            hedges: std::collections::BinaryHeap::new(),
        });
        Ok(())
    }

    fn site_index(&self, site: &str) -> usize {
        self.sites
            .iter()
            .position(|n| n == site)
            .unwrap_or_else(|| panic!("unknown site '{site}'"))
    }

    /// Sessions currently logged in (closed-workload sources only).
    pub fn logged_in_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Creates a *restoration point* (Ch. 9.3.2's "restoration points &
    /// branches"): a deep copy of the entire simulation state — every
    /// queue's backlog, every in-flight cascade, every meter and RNG
    /// stream. Run the original and the branch forward under different
    /// what-if inputs and compare; absent divergent inputs, both produce
    /// bit-identical futures.
    pub fn branch(&self) -> Simulation {
        self.clone()
    }

    /// Enables message-level tracing with the given event cap — the
    /// microscope the abstract promises ("navigate down to the detail of
    /// individual elements").
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(crate::trace::TraceLog::new(capacity));
    }

    /// The trace recorded so far, if tracing is enabled.
    pub fn trace(&self) -> Option<&crate::trace::TraceLog> {
        self.trace.as_ref()
    }

    /// Enables the step-loop profiler. `span_capacity` bounds the number
    /// of wall-clock phase spans retained for Perfetto export (0 keeps
    /// aggregates only). Purely observational — the profiler reads the
    /// monotonic clock and counters, never simulation state or
    /// randomness, so results are bit-identical with it on or off (the
    /// observability equivalence tests pin this).
    pub fn enable_profiler(&mut self, span_capacity: usize) {
        self.profiler = Some(StepProfiler::with_span_capacity(span_capacity));
    }

    /// The live profiler, if enabled (spans for Perfetto export).
    pub fn profiler(&self) -> Option<&StepProfiler> {
        self.profiler.as_ref()
    }

    /// Aggregated step profile so far, if the profiler is enabled, with
    /// drain slots labeled by [`EventClass::label`].
    pub fn step_profile(&self) -> Option<StepProfile> {
        let labels = EventClass::ALL.map(EventClass::label);
        self.profiler.as_ref().map(|p| p.profile(&labels))
    }

    /// Enables causal operation tracing (`--trace-ops`): a deterministic
    /// `(seed, instance)`-keyed fraction `rate` of client operations is
    /// recorded as span trees (attempt → hedge half → message → hop)
    /// and decomposed into queue/service/WAN/backoff/hedge-wait latency
    /// components. Strictly observational — the recorder draws no
    /// randomness and touches no simulation state, so results are
    /// bit-identical with tracing on or off at any rate (the optrace
    /// equivalence proptests pin this).
    pub fn enable_optrace(&mut self, rate: f64) {
        self.optrace = Some(Box::new(crate::optrace::OpTraceRecorder::new(
            rate,
            self.config.seed,
            crate::optrace::DEFAULT_FINISHED_CAP,
        )));
    }

    /// The operation-trace recorder, if enabled.
    pub fn optrace(&self) -> Option<&crate::optrace::OpTraceRecorder> {
        self.optrace.as_deref()
    }

    /// Resolves a response key into human-readable (application,
    /// operation, client-data-center) labels for observability exports.
    /// Unknown ids fall back to numeric placeholders so an export never
    /// panics on a key minted by another shard's registry.
    pub fn key_labels(&self, key: &gdisim_metrics::ResponseKey) -> (String, String, String) {
        let (app, op) = if key.app == BG_APP {
            let op = match key.op {
                BG_OP_SYNCHREP => "SYNCHREP".to_string(),
                BG_OP_INDEXBUILD => "INDEXBUILD".to_string(),
                other => format!("op{}", other.index()),
            };
            ("background".to_string(), op)
        } else if let Some(a) = self.apps.iter().find(|a| a.id == key.app) {
            let op = a
                .ops
                .get(key.op.index())
                .map_or_else(|| format!("op{}", key.op.index()), |o| o.name.clone());
            (a.name.clone(), op)
        } else {
            (
                format!("app{}", key.app.index()),
                format!("op{}", key.op.index()),
            )
        };
        let dc = if key.dc.index() < self.infra.data_centers().len() {
            self.infra.dc(key.dc).name.clone()
        } else {
            format!("dc{}", key.dc.index())
        };
        (app, op, dc)
    }

    /// Human-readable label of a hardware agent by registry index
    /// (`"cpu srv2 Tapp@NA"`, `"L NA->EU"`, …), with a numeric fallback
    /// for out-of-range indices.
    pub fn agent_label(&self, agent: u32) -> String {
        let idx = agent as usize;
        if idx < self.infra.agent_count() {
            self.infra
                .meta(gdisim_types::AgentId::from_index(idx))
                .label
                .clone()
        } else {
            format!("agent{idx}")
        }
    }

    /// Switches full-run response-time retention to log-bucketed
    /// histograms (fixed footprint for day-scale runs). Interval
    /// aggregates — and therefore the report — stay bit-identical; only
    /// the post-hoc exact history is traded for ~3%-error quantiles.
    pub fn enable_response_histograms(&mut self) {
        self.report.responses.enable_histograms();
    }

    /// Number of agents currently in the active set (holding work).
    pub fn active_agent_count(&self) -> usize {
        self.infra.active_count()
    }

    /// The discrete time step.
    pub fn dt(&self) -> gdisim_types::SimDuration {
        self.config.dt
    }

    /// Snapshots engine counters, gauges and (in histogram mode) per-key
    /// response histograms into a [`MetricsRegistry`] — the `"registry"`
    /// section of `--profile-json`. The registry is `BTreeMap`-backed,
    /// so keys render in stable sorted order and two snapshots of equal
    /// state export byte-identically.
    pub fn metrics_snapshot(&self) -> MetricsRegistry {
        let mut r = MetricsRegistry::new();
        r.set_counter("responses.recorded", self.report.responses.total_recorded());
        r.set_counter(
            "faults.failed_operations",
            self.report.faults.failed_operations,
        );
        r.set_counter(
            "faults.retried_operations",
            self.report.faults.retried_operations,
        );
        r.set_counter(
            "faults.abandoned_operations",
            self.report.faults.abandoned_operations,
        );
        r.set_counter(
            "faults.dropped_messages",
            self.report.faults.dropped_messages,
        );
        r.set_counter("faults.skipped_events", self.report.faults.skipped_events);
        r.set_counter("churn.incidents", self.report.churn.incidents);
        r.set_counter("churn.repairs", self.report.churn.repairs);
        r.set_counter(
            "churn.refused_incidents",
            self.report.churn.refused_incidents,
        );
        r.set_counter(
            "resilience.hedges_launched",
            self.report.resilience.hedges_launched,
        );
        r.set_counter("resilience.hedge_wins", self.report.resilience.hedge_wins);
        r.set_counter(
            "resilience.hedges_cancelled",
            self.report.resilience.hedges_cancelled,
        );
        r.set_counter(
            "resilience.breaker_trips",
            self.report.resilience.breaker_trips,
        );
        r.set_counter(
            "resilience.breaker_rejections",
            self.report.resilience.breaker_rejections,
        );
        r.set_counter(
            "resilience.shed_operations",
            self.report.resilience.shed_operations,
        );
        if let Some(t) = &self.trace {
            r.set_counter("trace.recorded", t.events().len() as u64);
            r.set_counter("trace.dropped", t.dropped());
        }
        if let Some(o) = &self.optrace {
            let c = o.counters();
            r.set_counter("optrace.sampled", c.sampled);
            r.set_counter("optrace.finished", c.finished);
            r.set_counter("optrace.dropped", c.dropped);
        }
        if let Some(a) = &self.audit {
            r.set_counter("audit.checks", a.checks);
            r.set_counter("audit.violations", a.violations);
        }
        if let Some(s) = self.config.executor.stats() {
            r.set_counter("executor.phases", s.phases);
            r.set_counter("executor.items", s.items);
        }
        r.set_gauge("sim.time_secs", self.now.as_secs_f64());
        r.set_gauge("sessions.logged_in", self.sessions.len() as f64);
        r.set_gauge("operations.active", self.flight.live_instances() as f64);
        r.set_gauge("agents.active", self.infra.active_count() as f64);
        for key in self.report.responses.histogram_keys() {
            if let Some(h) = self.report.responses.histogram(key) {
                r.insert_histogram(
                    &format!("response_us.app{}.op{}.dc{}", key.app.0, key.op.0, key.dc.0),
                    h.clone(),
                );
            }
        }
        r
    }

    /// Adds a periodic series source (validation driver).
    ///
    /// # Panics
    /// Panics on an unknown site name; use
    /// [`Self::try_add_series_source`] for a typed error.
    #[allow(clippy::too_many_arguments)]
    pub fn add_series_source(
        &mut self,
        app: AppId,
        templates: Vec<OperationTemplate>,
        interval: gdisim_types::SimDuration,
        site: &str,
        first_launch: SimTime,
        stop_at: Option<SimTime>,
    ) {
        self.try_add_series_source(app, templates, interval, site, first_launch, stop_at)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Self::add_series_source`] with the site lookup validated into
    /// a typed [`BuildError`].
    #[allow(clippy::too_many_arguments)]
    pub fn try_add_series_source(
        &mut self,
        app: AppId,
        templates: Vec<OperationTemplate>,
        interval: gdisim_types::SimDuration,
        site: &str,
        first_launch: SimTime,
        stop_at: Option<SimTime>,
    ) -> Result<(), BuildError> {
        let site = self
            .sites
            .iter()
            .position(|n| n == site)
            .ok_or_else(|| BuildError::UnknownWorkloadSite(site.to_string()))?;
        self.traffic.push(TrafficSource::PeriodicSeries {
            app,
            templates: templates.into_iter().map(Arc::new).collect(),
            interval,
            site,
            next: first_launch,
            stop_at,
        });
        self.gate(EventClass::Series, first_launch);
        Ok(())
    }

    /// Sets the master-binding policy.
    pub fn set_master_policy(&mut self, policy: MasterPolicy) {
        if let MasterPolicy::ByOwnership(apm) = &policy {
            assert_eq!(
                apm.sites(),
                self.sites.as_slice(),
                "access-pattern matrix must use the engine's site order"
            );
        }
        if let MasterPolicy::Fixed(site) = policy {
            assert!(site < self.sites.len(), "master site index out of range");
        }
        self.master_policy = policy;
    }

    /// Installs the background-process scheduler.
    pub fn set_background(&mut self, scheduler: BackgroundScheduler) {
        let next = scheduler.next_due();
        self.background = Some(scheduler);
        if let Some(next) = next {
            self.gate(EventClass::Background, next);
        }
    }

    /// Switches the phase-execution strategy (serial / Scatter-Gather /
    /// H-Dispatch). Results are identical across strategies; only wall
    /// time changes (Tables 4.1/4.2).
    pub fn set_executor(&mut self, executor: gdisim_ports::Executor) {
        self.config.executor = executor;
    }

    /// Short name of the current phase-execution strategy ("serial",
    /// "scatter-gather", "h-dispatch") for reports and bench output.
    pub fn executor_name(&self) -> &'static str {
        self.config.executor.name()
    }

    /// Switches the tier load-balancing policy (§3.5.2).
    pub fn set_load_balancing(&mut self, policy: gdisim_infra::LoadBalancing) {
        self.config.load_balancing = policy;
    }

    /// Changes the discrete time step (the dt-sensitivity ablation).
    /// Must be called before the simulation starts.
    pub fn set_dt(&mut self, dt: gdisim_types::SimDuration) {
        assert_eq!(self.now, SimTime::ZERO, "cannot change dt mid-run");
        assert!(!dt.is_zero(), "time step must be positive");
        self.config.dt = dt;
    }

    /// Forces the always-tick loop: every agent is ticked every step,
    /// idle or not, disabling the active-set fast path. Results are
    /// bit-for-bit identical either way (the equivalence tests rely on
    /// this switch); only wall time changes. Must be set before the run
    /// starts — switching mid-run would corrupt the lazy idle crediting.
    pub fn set_always_tick(&mut self, on: bool) {
        assert_eq!(self.now, SimTime::ZERO, "cannot switch tick policy mid-run");
        self.tick_all = on;
    }

    /// Forces per-step polling of every phase-1 source, disabling the
    /// timer-wheel event index (see [`crate::wheel`]). Results are
    /// bit-for-bit identical either way (the equivalence tests rely on
    /// this switch); only wall time changes. Must be set before the run
    /// starts — the wheel is primed from the pending schedules at the
    /// first step and cannot be reconstructed mid-run.
    pub fn set_always_poll(&mut self, on: bool) {
        assert_eq!(
            self.now,
            SimTime::ZERO,
            "cannot switch scheduling policy mid-run"
        );
        self.always_poll = on;
        if on {
            self.wheel = None;
        }
    }

    /// Switches the runtime invariant auditor (see [`crate::audit`]) on
    /// or off. The auditor re-derives the engine's conservation
    /// invariants at every measurement collection; it is strictly
    /// read-only, so results are bit-for-bit identical either way —
    /// only wall time changes (each pass is O(state)).
    pub fn set_paranoid(&mut self, on: bool) {
        if on {
            self.audit.get_or_insert_with(Default::default);
        } else {
            self.audit = None;
        }
    }

    /// The auditor's tallies, when `--paranoid` is on.
    pub fn audit_state(&self) -> Option<&crate::audit::AuditState> {
        self.audit.as_ref()
    }

    /// Runs one audit pass over the current state, recording breaches
    /// into `audit`. Read-only over simulation state by construction
    /// (`&self`); called at each measurement collection.
    fn run_audit(&self, at: SimTime, audit: &mut crate::audit::AuditState) {
        use crate::audit::InvariantViolation as V;
        audit.checks += 1;

        // Token linkage and per-memory hold sums, in one flight pass.
        let mut held: Vec<f64> = vec![0.0; self.infra.memories().len()];
        for (&token, state) in &self.flight.tokens {
            if let Some((mem_idx, bytes)) = state.plan.mem_hold {
                if let Some(h) = held.get_mut(mem_idx) {
                    *h += bytes;
                }
            }
            let linked = self.flight.instances.contains_key(&state.instance)
                || (state.instance == crate::shard::FOREIGN_INSTANCE
                    && self
                        .shard
                        .as_ref()
                        .is_some_and(|c| c.foreign.contains_key(&token)))
                || self.orphans.contains(&token);
            if !linked {
                audit.record(V::TokenWithoutInstance {
                    at,
                    token,
                    instance: state.instance,
                });
            }
        }
        for (memory, (model, &held_bytes)) in self.infra.memories().iter().zip(&held).enumerate() {
            let metered = model.occupied_bytes() - model.spec().pool_bytes;
            // The gauge accumulates f64 adds/subtracts in arrival order;
            // allow the same slack the release debug-assert does.
            if (held_bytes - metered).abs() > 1e-3 + held_bytes.abs() * 1e-9 {
                audit.record(V::MemHoldImbalance {
                    at,
                    memory,
                    held_bytes,
                    metered_bytes: metered,
                });
            }
        }

        // Active-set completeness: an agent with work in system that the
        // set dropped would never be ticked again. The always-tick loop
        // visits everyone, so the set (and the invariant) is moot there.
        if !self.tick_all {
            for i in 0..self.infra.agent_count() {
                let id = gdisim_types::AgentId::from_index(i);
                if self.infra.component(id).in_system() > 0 && !self.infra.active_contains(i) {
                    audit.record(V::InactiveAgentWithWork {
                        at,
                        agent: i as u32,
                    });
                }
            }
        }

        // Wheel gates: every class with a pending canonical event must
        // hold a live gate at or before that event's tick, or its drain
        // would run late. Mirrors `prime_wheel`'s head enumeration.
        if let Some(w) = &self.wheel {
            let dt_us = self.config.dt.as_micros();
            let check = |class: EventClass, head_us: u64, audit: &mut crate::audit::AuditState| {
                let head_tick = head_us.div_ceil(dt_us);
                if w.earliest_live(class).is_none_or(|g| g > head_tick) {
                    audit.record(V::MissingWheelGate {
                        at,
                        class: class.label().to_string(),
                        head_tick,
                    });
                }
            };
            if let Some(&std::cmp::Reverse((t_us, _))) =
                self.churn.as_ref().and_then(|c| c.queue.peek())
            {
                check(EventClass::Churn, t_us, audit);
            }
            if let Some(&std::cmp::Reverse((t_us, _))) =
                self.resilience.as_ref().and_then(|r| r.hedges.peek())
            {
                check(EventClass::Hedges, t_us, audit);
            }
            if let Some(f) = &self.faults {
                if let Some(&(t, ..)) = f.events.get(f.cursor) {
                    check(EventClass::Faults, t.as_micros(), audit);
                }
                if let Some(at_us) = f.pending_retries.iter().map(|r| r.at.as_micros()).min() {
                    check(EventClass::Retries, at_us, audit);
                }
                if let Some(&std::cmp::Reverse((t_us, _))) = f.timeouts.peek() {
                    check(EventClass::Timeouts, t_us, audit);
                }
            }
            if let Some(at_us) = self.link_events.iter().map(|(t, _)| t.as_micros()).min() {
                check(EventClass::Health, at_us, audit);
            }
            if let Some(&std::cmp::Reverse((t_us, _))) = self.session_wakes.peek() {
                check(EventClass::SessionWakes, t_us, audit);
            }
            if self.polled_sources == 0 {
                let head = self
                    .traffic
                    .iter()
                    .filter_map(|s| match s {
                        TrafficSource::PeriodicSeries { next, stop_at, .. }
                            if stop_at.is_none_or(|stop| *next < stop) =>
                        {
                            Some(next.as_micros())
                        }
                        _ => None,
                    })
                    .min();
                if let Some(at_us) = head {
                    check(EventClass::Series, at_us, audit);
                }
            }
            if let Some(next) = self.background.as_ref().and_then(|s| s.next_due()) {
                check(EventClass::Background, next.as_micros(), audit);
            }
        }

        // Mailbox continuity: sequence gaps already observed by this
        // shard's inbox bookkeeping.
        if let Some(ctx) = &self.shard {
            if ctx.ordering_violations > 0 {
                audit.record(V::MailboxSeqGap {
                    at,
                    shard: ctx.me,
                    gaps: ctx.ordering_violations,
                });
            }
        }
    }

    /// Registers a phase-1 event with the wheel, when one is active.
    fn gate(&mut self, class: EventClass, at: SimTime) {
        if let Some(w) = &mut self.wheel {
            w.schedule(class, at);
        }
    }

    /// Consumes the class's due gate. Without a wheel (polling mode, or
    /// the priming step itself) every drain runs, as in the seed loop.
    fn take_gate(&mut self, class: EventClass) -> bool {
        match &mut self.wheel {
            Some(w) => w.take(class),
            None => true,
        }
    }

    /// Invalidates every outstanding gate of `class` when its canonical
    /// container just went empty. No re-arm is needed: with nothing left
    /// to drain, every outstanding gate is provably stale (its drain
    /// would be a no-op), and future events register fresh gates through
    /// [`Self::gate`] at creation. A no-op in polling mode.
    fn cancel_empty_class(&mut self, class: EventClass) {
        if let Some(w) = &mut self.wheel {
            w.cancel_class(class);
        }
    }

    /// Retires stale [`EventClass::Timeouts`] gates after an instance
    /// left the flight table (completion or failure): pops the timeout
    /// heap's dead prefix — entries [`Self::reap_timeouts`] would skip —
    /// bumps the class generation so the dead entries' gates never fire,
    /// and re-arms at the surviving head.
    ///
    /// Bit-identity is preserved by an inductive invariant: *a valid
    /// Timeouts gate always exists at or before the earliest live
    /// deadline's tick.* Every launch arms its own deadline
    /// ([`Self::launch_attempt`]), and every call here — made from both
    /// [`Self::complete_instance`] and [`Self::fail_instance`], the only
    /// two ways a client instance leaves the table — re-arms at the
    /// post-removal heap head, which is at or before every live
    /// deadline. Gates therefore still fire early-or-on-time, never
    /// late; the cancelled ones would only have woken no-op reaps.
    fn cancel_stale_timeout_gates(&mut self) {
        let Some(w) = &mut self.wheel else { return };
        let Some(f) = &mut self.faults else { return };
        if f.retry.is_none() {
            return;
        }
        while let Some(&std::cmp::Reverse((_, id))) = f.timeouts.peek() {
            if self.flight.instances.contains_key(&id) {
                break;
            }
            f.timeouts.pop();
        }
        w.cancel_class(EventClass::Timeouts);
        if let Some(&std::cmp::Reverse((t_us, _))) = f.timeouts.peek() {
            w.schedule_at_micros(EventClass::Timeouts, t_us);
        }
    }

    /// Builds the wheel from everything already scheduled: fault plans,
    /// health events, series launch times, pending session wakes,
    /// retries and timeouts, and the background horizon. Runs at the
    /// first step so `dt` (and every pre-run `schedule_*`/`set_*` call)
    /// is final; later insertions go through [`Self::gate`] at the point
    /// each event is created.
    fn prime_wheel(&mut self) {
        let mut w = TimerWheel::new(self.config.dt);
        if let Some(c) = &self.churn {
            for &std::cmp::Reverse((t_us, _)) in c.queue.iter() {
                w.schedule_at_micros(EventClass::Churn, t_us);
            }
        }
        if let Some(r) = &self.resilience {
            for &std::cmp::Reverse((t_us, _)) in r.hedges.iter() {
                w.schedule_at_micros(EventClass::Hedges, t_us);
            }
        }
        if let Some(f) = &self.faults {
            for &(t, ..) in &f.events[f.cursor..] {
                w.schedule(EventClass::Faults, t);
            }
            for r in &f.pending_retries {
                w.schedule(EventClass::Retries, r.at);
            }
            for &std::cmp::Reverse((t_us, _)) in f.timeouts.iter() {
                w.schedule_at_micros(EventClass::Timeouts, t_us);
            }
        }
        for (t, _) in &self.link_events {
            w.schedule(EventClass::Health, *t);
        }
        for &std::cmp::Reverse((t_us, _)) in self.session_wakes.iter() {
            w.schedule_at_micros(EventClass::SessionWakes, t_us);
        }
        for source in &self.traffic {
            if let TrafficSource::PeriodicSeries { next, stop_at, .. } = source {
                if stop_at.is_none_or(|s| *next < s) {
                    w.schedule(EventClass::Series, *next);
                }
            }
        }
        if let Some(next) = self.background.as_ref().and_then(|s| s.next_due()) {
            w.schedule(EventClass::Background, next);
        }
        self.wheel = Some(w);
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Live operation instances (all kinds).
    pub fn active_operations(&self) -> usize {
        self.flight.live_instances()
    }

    /// The report accumulated so far.
    pub fn report(&self) -> &Report {
        &self.report
    }

    /// Consumes the simulation, returning the report.
    pub fn into_report(self) -> Report {
        self.report
    }

    /// Runs the discrete time loop until `until`.
    ///
    /// The loop advances in whole `dt` steps and never overshoots: it
    /// stops at the largest step boundary `<= until` (which is `until`
    /// itself whenever `until` is a multiple of `dt`). Keeping `now` on a
    /// step boundary is what the active-set idle accounting relies on.
    pub fn run_until(&mut self, until: SimTime) {
        while self.now + self.config.dt <= until {
            self.step();
        }
    }

    /// Accounts one phase-1 drain with the profiler, when one is active.
    /// `ran` says whether the drain executed, `gated` whether the wheel
    /// (as opposed to unconditional polling) let it through, `processed`
    /// how many events it handled. A no-op when profiling is off.
    #[inline]
    fn note_drain(&mut self, class: EventClass, ran: bool, gated: bool, processed: u64) {
        if let Some(p) = &mut self.profiler {
            p.note_drain(class.index(), ran, gated, processed);
        }
    }

    /// Supervision test hook: the first step at or past `at` panics
    /// with a recognizable message, standing in for a genuine engine
    /// bug so crash reporting and kill→resume can be exercised
    /// end-to-end. Deliberately not serialized into checkpoints — a
    /// resumed run must not re-crash.
    pub fn inject_panic_at(&mut self, at: SimTime) {
        self.panic_at = Some(at);
    }

    /// Advances one time step.
    pub fn step(&mut self) {
        let now = self.now;
        let dt = self.config.dt;
        if self.panic_at.is_some_and(|at| now >= at) {
            panic!("injected panic at {now} (supervision test hook)");
        }
        if let Some(p) = &mut self.profiler {
            p.begin_step(now.as_micros());
        }

        // Phase 1: scheduled events, arrivals and daemons. Fault events
        // apply first so retries and fresh launches compile against the
        // post-fault routing tables; retries launch before timeouts are
        // reaped so a zero-backoff retry still waits one full tick.
        //
        // On the event-indexed path each drain sits behind its wheel
        // gate and only runs when an event reached its tick; a skipped
        // drain is provably a no-op (and draws no randomness), so the
        // gated loop is bit-for-bit identical to polling every source.
        if !self.always_poll && self.wheel.is_none() {
            self.prime_wheel();
        }
        if let Some(w) = &mut self.wheel {
            w.advance_to(now.as_micros() / dt.as_micros());
        }
        // Report newly observed gate cancellations (generation-retired
        // stale bits, counted monotonically by the wheel) as per-class
        // deltas. Lags the cancellation itself by at most one step, and
        // cancellations after the final step's snapshot go unreported —
        // an observational counter, not simulation state.
        if let (Some(w), Some(p)) = (&self.wheel, &mut self.profiler) {
            for (class, &count) in w.cancelled_counts().iter().enumerate() {
                let seen = &mut self.cancelled_seen[class];
                if count > *seen {
                    p.note_cancelled(class, count - *seen);
                    *seen = count;
                }
            }
        }
        // Whether a drain that runs this step runs because its gate
        // fired (wheel active) or because every source is polled.
        let gated_mode = self.wheel.is_some();
        // Churn transitions drain first so fault-plan events, retries
        // and fresh launches all see the post-churn routing tables.
        if self.churn.is_some() {
            let ran = self.take_gate(EventClass::Churn);
            let n = if ran { self.apply_churn_events(now) } else { 0 };
            self.note_drain(EventClass::Churn, ran, gated_mode, n);
        }
        if self.faults.is_some() {
            let ran = self.take_gate(EventClass::Faults);
            let n = if ran { self.apply_fault_events(now) } else { 0 };
            self.note_drain(EventClass::Faults, ran, gated_mode, n);
            let ran = self.take_gate(EventClass::Retries);
            let n = if ran { self.launch_due_retries(now) } else { 0 };
            self.note_drain(EventClass::Retries, ran, gated_mode, n);
        }
        // Hedge twins launch after retries (a fresh retry's hedge timer
        // is never due the same tick it was armed) and before timeouts,
        // so a twin gets its chance before the reaper settles the pair.
        if self
            .resilience
            .as_ref()
            .is_some_and(|r| r.policies.hedge.is_some())
        {
            let ran = self.take_gate(EventClass::Hedges);
            let n = if ran { self.launch_due_hedges(now) } else { 0 };
            self.note_drain(EventClass::Hedges, ran, gated_mode, n);
        }
        if self.faults.is_some() {
            let ran = self.take_gate(EventClass::Timeouts);
            let n = if ran { self.reap_timeouts(now) } else { 0 };
            self.note_drain(EventClass::Timeouts, ran, gated_mode, n);
        }
        let ran = self.take_gate(EventClass::Health);
        let n = if ran { self.apply_link_events(now) } else { 0 };
        self.note_drain(EventClass::Health, ran, gated_mode, n);
        let ran = self.take_gate(EventClass::SessionWakes);
        let n = if ran { self.wake_sessions(now) } else { 0 };
        self.note_drain(EventClass::SessionWakes, ran, gated_mode, n);
        // Diurnal and session sources are inherently per-step (Poisson
        // draws and population-target checks share the arrival sampler's
        // stream), so the traffic scan runs whenever any exist; a pure
        // periodic-series workload is scanned only when a launch is due.
        let series_due = self.take_gate(EventClass::Series);
        let scan = self.polled_sources > 0 || series_due;
        let n = if scan {
            self.generate_arrivals(now, series_due)
        } else {
            0
        };
        self.note_drain(
            EventClass::Series,
            scan,
            gated_mode && self.polled_sources == 0,
            n,
        );
        let ran = self.take_gate(EventClass::Background);
        let n = if ran { self.poll_background(now) } else { 0 };
        self.note_drain(EventClass::Background, ran, gated_mode, n);
        if let Some(p) = &mut self.profiler {
            p.mark_phase(PHASE_DRAIN);
        }

        // Phase 2: time increment (§4.3.4/4.3.5). The fast path ticks only
        // the agents currently holding work (in ascending index order);
        // everyone else is provably idle and gets its meter time credited
        // lazily on re-activation or at the next collection.
        let executor = self.config.executor.clone();
        let mut active = std::mem::take(&mut self.active_scratch);
        if self.tick_all {
            executor.run_phase(self.infra.components_mut(), move |slot| {
                slot.tick_into_outbox(now, dt);
            });
        } else {
            self.infra.active_snapshot_into(&mut active);
            executor.run_phase_indexed(self.infra.components_mut(), &active, move |slot| {
                slot.tick_into_outbox(now, dt);
            });
        }
        for m in self.infra.memories_mut() {
            m.advance(dt);
        }
        if let Some(p) = &mut self.profiler {
            p.mark_phase(PHASE_ADVANCE);
        }

        // Phase 3: interactions — route completions, stamped at the next
        // tick boundary (the §4.3.3 consistency guard). Only ticked agents
        // can hold completions (inactive outboxes are always empty), and
        // the snapshot is ascending, so the drain order matches the
        // always-tick loop's full sweep exactly.
        let t_next = now + dt;
        let mut completed = std::mem::take(&mut self.completed_scratch);
        completed.clear();
        if self.tick_all {
            for (agent, slot) in self.infra.components_mut().iter_mut().enumerate() {
                completed.extend(slot.outbox.drain(..).map(|t| (agent as u32, t.0)));
            }
        } else {
            let slots = self.infra.components_mut();
            for &agent in &active {
                completed.extend(slots[agent as usize].outbox.drain(..).map(|t| (agent, t.0)));
            }
        }
        self.active_scratch = active;
        for (agent, token) in completed.drain(..) {
            if self.trace.is_some() {
                let at = t_next;
                if let Some(t) = &mut self.trace {
                    t.record(
                        at,
                        crate::trace::TraceEvent::Hop {
                            token,
                            agent: gdisim_types::AgentId(agent),
                        },
                    );
                }
            }
            self.on_token_complete(token, t_next);
        }
        self.completed_scratch = completed;

        // Retire sweep: agents that went (and stayed) empty leave the
        // active set with their idle clock starting at the upcoming tick
        // boundary. Runs after routing so re-fed agents stay members.
        if !self.tick_all {
            self.infra.retire_idle(t_next);
        }
        // Agents ticked this step — the active-set occupancy.
        let ticked = if self.tick_all {
            self.infra.agent_count() as u64
        } else {
            self.active_scratch.len() as u64
        };
        if let Some(p) = &mut self.profiler {
            p.mark_phase(PHASE_ROUTE);
        }

        // Phase 4: periodic measurement collection. Skipped agents get
        // their idle span credited first so every meter covers the full
        // interval before it resets.
        if t_next >= self.next_collect {
            if !self.tick_all {
                self.infra
                    .account_idle_inactive(self.meter_epoch, t_next, dt);
            }
            self.collect(t_next);
            self.meter_epoch = t_next;
            self.next_collect += self.config.collect_interval;
            if let Some(p) = &mut self.profiler {
                p.sample_occupancy(t_next.as_secs_f64(), ticked as f64);
            }
        }
        if let Some(p) = &mut self.profiler {
            p.mark_phase(PHASE_COLLECT);
            p.end_step(ticked);
        }

        self.now = t_next;
    }

    // ----- launches ------------------------------------------------------

    /// Scans the traffic sources. Returns the number of work units the
    /// scan performed: operation launches (diurnal, periodic-series,
    /// sessions logged in) *plus one unit per polled site visit* — a
    /// diurnal site's Poisson draw and a session site's population check
    /// consume sampler state and do real work even when they produce no
    /// arrival. Counting the visits keeps a polled scan from ever
    /// registering as a no-op drain, so the profiler's `noop` column
    /// isolates what it is meant to measure: *stale gates*, drains woken
    /// by the wheel for events that no longer exist.
    fn generate_arrivals(&mut self, now: SimTime, series_due: bool) -> u64 {
        let dt_secs = self.config.dt.as_secs_f64();
        let mut produced = 0u64;
        let mut traffic = std::mem::take(&mut self.traffic);
        for (source_idx, source) in traffic.iter_mut().enumerate() {
            match source {
                TrafficSource::Diurnal {
                    app_idx,
                    workload,
                    site_map,
                } => {
                    for (w_site, &site) in site_map.iter().enumerate() {
                        let lambda = workload.arrival_rate(w_site, now) * dt_secs;
                        let n = self.sampler.poisson(lambda);
                        produced += 1 + u64::from(n);
                        for _ in 0..n {
                            let (op_idx, key, template) = {
                                let app = &self.apps[*app_idx];
                                let op_idx = self.sampler.pick(&app.mix);
                                let key = ResponseKey {
                                    app: app.id,
                                    op: OpTypeId::from_index(op_idx),
                                    dc: self.site_dc[site],
                                };
                                (op_idx, key, Arc::clone(&app.ops[op_idx]))
                            };
                            let _ = op_idx;
                            let binding = self.client_binding(site);
                            self.launch(
                                template,
                                key,
                                InstanceKind::Client,
                                binding,
                                None,
                                None,
                                0.0,
                                now,
                            );
                        }
                    }
                }
                TrafficSource::Sessions {
                    app_idx: _,
                    workload,
                    site_map,
                    mean_think_secs,
                    live,
                    retiring,
                } => {
                    for w_site in 0..site_map.len() {
                        produced += 1; // the population-target check itself
                        let target = workload.sites[w_site].curve.population(now).round() as i64;
                        let current = live[w_site] as i64 - retiring[w_site] as i64;
                        if current < target {
                            // Log new sessions in; their first operation
                            // fires after a staggered initial think.
                            for _ in 0..(target - current) {
                                produced += 1;
                                let id = self.next_session;
                                self.next_session += 1;
                                self.sessions.insert(id, (source_idx, w_site));
                                live[w_site] += 1;
                                let delay = self.sampler.exponential(*mean_think_secs).min(3600.0);
                                let wake = now + gdisim_types::SimDuration::from_secs_f64(delay);
                                self.session_wakes
                                    .push(std::cmp::Reverse((wake.as_micros(), id)));
                                self.gate(EventClass::SessionWakes, wake);
                            }
                        } else if current > target {
                            retiring[w_site] += (current - target) as u32;
                        }
                    }
                }
                TrafficSource::PeriodicSeries {
                    app,
                    templates,
                    interval,
                    site,
                    next,
                    stop_at,
                } => {
                    if !series_due {
                        // No series reached its tick (wheel-gated); the
                        // polling loop's `next <= now` would fail too.
                        continue;
                    }
                    let armed_at = *next;
                    while *next <= now && stop_at.is_none_or(|s| *next < s) {
                        let binding = self.client_binding(*site);
                        let dc = self.site_dc[*site];
                        let keys: Vec<ResponseKey> = (0..templates.len())
                            .map(|i| ResponseKey {
                                app: *app,
                                op: OpTypeId::from_index(i),
                                dc,
                            })
                            .collect();
                        let chain = Chain {
                            remaining: templates[1..].to_vec(),
                            keys: keys[1..].to_vec(),
                        };
                        self.launch(
                            Arc::clone(&templates[0]),
                            keys[0],
                            InstanceKind::Client,
                            binding,
                            Some(chain),
                            None,
                            0.0,
                            now,
                        );
                        produced += 1;
                        *next += *interval;
                    }
                    // Re-arm the gate for this source's next launch —
                    // but only when `next` advanced: a source that did
                    // not fire still has its earlier gate registered,
                    // and re-inserting it every due step would flood the
                    // wheel with duplicates.
                    if *next != armed_at && stop_at.is_none_or(|s| *next < s) {
                        let at = *next;
                        self.gate(EventClass::Series, at);
                    }
                }
            }
        }
        self.traffic = traffic;
        produced
    }

    fn client_binding(&mut self, site: usize) -> SiteBinding {
        let client = self.site_dc[site];
        let master = match &self.master_policy {
            MasterPolicy::Local => client,
            MasterPolicy::Fixed(m) => self.site_dc[*m],
            MasterPolicy::ByOwnership(apm) => {
                let owner = apm.sample_owner(site, self.sampler.uniform());
                self.site_dc[owner]
            }
        };
        // Files are always served from the client's local file tier: the
        // SR process keeps replicas everywhere (§6.2's low-latency goal).
        SiteBinding {
            client,
            master,
            file_host: client,
            extras: Vec::new(),
        }
    }

    /// Returns the number of background operations launched.
    fn poll_background(&mut self, now: SimTime) -> u64 {
        let Some(scheduler) = &mut self.background else {
            return 0;
        };
        let launches = scheduler.poll(now);
        // Re-arm the gate for the post-poll horizon (the poll may have
        // advanced sync schedules and accrued index backlog).
        let next = scheduler.next_due();
        if let Some(next) = next {
            self.gate(EventClass::Background, next);
        }
        let n = launches.len() as u64;
        for launch in launches {
            self.launch_background(launch, now);
        }
        n
    }

    /// Applies scheduled WAN failures/restores due at or before `now`.
    /// Returns the number applied.
    fn apply_link_events(&mut self, now: SimTime) -> u64 {
        if self.link_events.is_empty() {
            // Queue already empty: this drain ran on a stale gate (or a
            // poll); retire whatever gates remain outstanding.
            self.cancel_empty_class(EventClass::Health);
            return 0;
        }
        let due: Vec<(SimTime, HealthEvent)> = {
            let (due, rest): (Vec<_>, Vec<_>) = std::mem::take(&mut self.link_events)
                .into_iter()
                .partition(|(t, _)| *t <= now);
            self.link_events = rest;
            due
        };
        let n = due.len() as u64;
        for (_, event) in due {
            let result = match event {
                HealthEvent::Link { label, fail: true } => self.infra.fail_wan_link(&label),
                HealthEvent::Link { label, fail: false } => self.infra.restore_wan_link(&label),
                HealthEvent::Server {
                    site,
                    tier,
                    server,
                    fail: true,
                } => self.infra.fail_server(self.site_dc[site], tier, server),
                HealthEvent::Server {
                    site,
                    tier,
                    server,
                    fail: false,
                } => self.infra.restore_server(self.site_dc[site], tier, server),
            };
            // A refused event (e.g. failing a tier's last healthy
            // server, or a target already in the requested state) is
            // surfaced through the report instead of panicking — the
            // run keeps going and the caller can inspect what was
            // skipped.
            if let Err(reason) = result {
                self.report
                    .health_errors
                    .push(HealthEventError { at: now, reason });
            }
        }
        if self.link_events.is_empty() {
            // The drain consumed the last scheduled health event; any
            // outstanding gates of the class are stale.
            self.cancel_empty_class(EventClass::Health);
        }
        n
    }

    // ----- fault injection ------------------------------------------------

    /// Applies fault-plan events due at or before `now`, in `(time,
    /// declaration order)` order.
    /// Returns the number of fault events applied (including skipped
    /// ones — the cursor advanced either way).
    fn apply_fault_events(&mut self, now: SimTime) -> u64 {
        let due: Vec<(u32, FaultTarget, FaultAction)> = {
            let f = self.faults.as_mut().expect("fault runtime installed");
            let mut due = Vec::new();
            while f.cursor < f.events.len() && f.events[f.cursor].0 <= now {
                let (_, idx, target, action) = f.events[f.cursor].clone();
                due.push((idx, target, action));
                f.cursor += 1;
            }
            due
        };
        let n = due.len() as u64;
        for (idx, target, action) in due {
            self.apply_fault(idx, target, action, now);
        }
        if self
            .faults
            .as_ref()
            .is_some_and(|f| f.cursor == f.events.len())
        {
            // Plan exhausted: no fault event will ever be due again, so
            // any outstanding gate of the class is stale.
            self.cancel_empty_class(EventClass::Faults);
        }
        n
    }

    /// Applies one fault event: flips the target's health, re-routes
    /// around it, maintains the degraded-window bookkeeping and (for
    /// failures under [`InFlightPolicy::Drop`]/[`InFlightPolicy::Bounce`])
    /// evicts the target's queued messages. Events that cannot be
    /// applied — double-fails, recoveries of healthy targets, or
    /// failures the infrastructure refuses (the last healthy server of a
    /// tier) — are counted as skipped, never panicked on.
    fn apply_fault(
        &mut self,
        event_idx: u32,
        target: FaultTarget,
        action: FaultAction,
        now: SimTime,
    ) {
        let fail = action == FaultAction::Fail;
        let already_down = self
            .faults
            .as_ref()
            .is_some_and(|f| f.down.contains(&target));
        if fail == already_down {
            self.report.faults.skipped_events += 1;
            return;
        }
        let result = match (&target, fail) {
            (FaultTarget::WanLink { label }, true) => self.infra.fail_wan_link(label),
            (FaultTarget::WanLink { label }, false) => self.infra.restore_wan_link(label),
            (FaultTarget::Server { site, tier, server }, fail) => {
                match self.infra.dc_by_name(site) {
                    Some(dc) if fail => self.infra.fail_server(dc, *tier, *server),
                    Some(dc) => self.infra.restore_server(dc, *tier, *server),
                    None => Err(format!("no data center named '{site}'")),
                }
            }
            (FaultTarget::DataCenter { site }, true) => self.infra.fail_data_center(site),
            (FaultTarget::DataCenter { site }, false) => self.infra.restore_data_center(site),
        };
        if result.is_err() {
            self.report.faults.skipped_events += 1;
            return;
        }
        if let Some(t) = &mut self.trace {
            t.record(
                now,
                crate::trace::TraceEvent::Fault {
                    event: event_idx,
                    fail,
                },
            );
        }
        if fail {
            // Degraded windows track the union of fault-plan and churn
            // outages: a window opens at the first thing down and
            // closes when everything is back.
            if self.total_down() == 0 {
                self.report.degraded_since = Some(now);
            }
            let f = self.faults.as_mut().expect("fault runtime installed");
            f.down.push(target.clone());
            let policy = f.in_flight;
            if policy != InFlightPolicy::Drain {
                self.evict_target(&target, policy, "fault", now);
            }
        } else {
            let f = self.faults.as_mut().expect("fault runtime installed");
            f.down.retain(|d| *d != target);
            if self.total_down() == 0 {
                if let Some(from) = self.report.degraded_since.take() {
                    self.report.degraded_windows.push((from, now));
                }
            }
        }
    }

    /// Everything currently down across the fault plan and the churn
    /// model — drives the degraded-window bookkeeping. Equals the fault
    /// plan's own count when no churn model is installed.
    fn total_down(&self) -> usize {
        self.faults.as_ref().map_or(0, |f| f.down.len())
            + self
                .churn
                .as_ref()
                .map_or(0, |c| c.components.iter().filter(|x| x.down).count())
    }

    // ----- stochastic churn ----------------------------------------------

    /// Applies churn transitions due at or before `now`. Returns the
    /// number applied. The queue never drains dry — every transition
    /// schedules the component's next one — so no empty-class gate
    /// retirement is needed here.
    fn apply_churn_events(&mut self, now: SimTime) -> u64 {
        let now_us = now.as_micros();
        let mut due: Vec<u32> = Vec::new();
        {
            let c = self.churn.as_mut().expect("churn runtime installed");
            while let Some(&std::cmp::Reverse((t, idx))) = c.queue.peek() {
                if t > now_us {
                    break;
                }
                c.queue.pop();
                due.push(idx);
            }
        }
        let n = due.len() as u64;
        for idx in due {
            self.apply_churn_transition(idx, now);
        }
        n
    }

    /// Applies one churn transition for component `idx`: a failure
    /// incident when the component is up, a repair when it is down.
    /// Every draw comes from the component's per-incident stream, so
    /// churn randomness can never shift any other stream.
    fn apply_churn_transition(&mut self, idx: u32, now: SimTime) {
        let (down, targets, incident, seed) = {
            let c = self.churn.as_ref().expect("churn runtime installed");
            let comp = &c.components[idx as usize];
            (comp.down, comp.targets.clone(), comp.incidents, c.seed)
        };
        if !down {
            // Failure incident: take every member target down. The
            // infrastructure can refuse individual members (a tier's
            // last healthy server, a target a fault plan already took);
            // refused members simply stay up.
            let mut applied: Vec<FaultTarget> = Vec::new();
            for target in targets {
                let ok = match &target {
                    FaultTarget::WanLink { label } => self.infra.fail_wan_link(label).is_ok(),
                    FaultTarget::Server { site, tier, server } => self
                        .infra
                        .dc_by_name(site)
                        .is_some_and(|dc| self.infra.fail_server(dc, *tier, *server).is_ok()),
                    FaultTarget::DataCenter { site } => self.infra.fail_data_center(site).is_ok(),
                };
                if ok {
                    applied.push(target);
                }
            }
            if applied.is_empty() {
                // The whole incident was refused: stay up and move on
                // to the next incident's failure draw (the refused
                // incident's unused repair draw vanishes with its
                // stream — nothing shifts).
                self.report.churn.refused_incidents += 1;
                let at = {
                    let c = self.churn.as_mut().expect("churn runtime installed");
                    let comp = &mut c.components[idx as usize];
                    comp.incidents += 1;
                    comp.rng = incident_stream(seed, idx, comp.incidents);
                    let ttf = comp.process.sample_ttf(&mut comp.rng);
                    let at = now + gdisim_types::SimDuration::from_secs_f64(ttf);
                    c.queue.push(std::cmp::Reverse((at.as_micros(), idx)));
                    at
                };
                self.gate(EventClass::Churn, at);
                return;
            }
            if let Some(t) = &mut self.trace {
                t.record(
                    now,
                    crate::trace::TraceEvent::Churn {
                        component: idx,
                        incident,
                        fail: true,
                    },
                );
            }
            self.report.churn.incidents += 1;
            if self.total_down() == 0 {
                self.report.degraded_since = Some(now);
            }
            let policy = self
                .faults
                .as_ref()
                .expect("churn materializes the fault runtime")
                .in_flight;
            if policy != InFlightPolicy::Drain {
                for target in &applied {
                    self.evict_target(target, policy, "churn", now);
                }
            }
            let at = {
                let c = self.churn.as_mut().expect("churn runtime installed");
                let comp = &mut c.components[idx as usize];
                comp.up_us += (now - comp.span_start).as_micros();
                comp.span_start = now;
                comp.down = true;
                comp.failures += 1;
                comp.applied = applied;
                // Time-to-repair continues the incident's own stream.
                let ttr = comp.process.sample_ttr(&mut comp.rng);
                let at = now + gdisim_types::SimDuration::from_secs_f64(ttr);
                c.queue.push(std::cmp::Reverse((at.as_micros(), idx)));
                at
            };
            self.gate(EventClass::Churn, at);
        } else {
            // Repair: restore exactly what the incident took down. A
            // restore the infrastructure refuses (a cross-layer overlap,
            // e.g. a fault plan downed the whole site meanwhile) is
            // skipped — the plan's own recovery owns that target.
            let applied = {
                let c = self.churn.as_mut().expect("churn runtime installed");
                std::mem::take(&mut c.components[idx as usize].applied)
            };
            for target in &applied {
                let _ = match target {
                    FaultTarget::WanLink { label } => self.infra.restore_wan_link(label),
                    FaultTarget::Server { site, tier, server } => {
                        match self.infra.dc_by_name(site) {
                            Some(dc) => self.infra.restore_server(dc, *tier, *server),
                            None => Err(String::new()),
                        }
                    }
                    FaultTarget::DataCenter { site } => self.infra.restore_data_center(site),
                };
            }
            if let Some(t) = &mut self.trace {
                t.record(
                    now,
                    crate::trace::TraceEvent::Churn {
                        component: idx,
                        incident,
                        fail: false,
                    },
                );
            }
            self.report.churn.repairs += 1;
            let at = {
                let c = self.churn.as_mut().expect("churn runtime installed");
                let comp = &mut c.components[idx as usize];
                comp.down_us += (now - comp.span_start).as_micros();
                comp.span_start = now;
                comp.down = false;
                comp.repairs += 1;
                comp.incidents += 1;
                comp.rng = incident_stream(seed, idx, comp.incidents);
                let ttf = comp.process.sample_ttf(&mut comp.rng);
                let at = now + gdisim_types::SimDuration::from_secs_f64(ttf);
                c.queue.push(std::cmp::Reverse((at.as_micros(), idx)));
                at
            };
            self.gate(EventClass::Churn, at);
            if self.total_down() == 0 {
                if let Some(from) = self.report.degraded_since.take() {
                    self.report.degraded_windows.push((from, now));
                }
            }
        }
    }

    /// Drains every queued message out of the failed target's agents and
    /// settles the owning operations per the in-flight policy: `Bounce`
    /// fails them immediately (a failure response made it back), `Drop`
    /// leaves client operations hanging until their timeout when a retry
    /// policy is armed, and fails them on the spot otherwise. `why`
    /// labels the eviction's cause ("fault" / "churn") on traced spans.
    fn evict_target(
        &mut self,
        target: &FaultTarget,
        policy: InFlightPolicy,
        why: &'static str,
        now: SimTime,
    ) {
        let mut evicted: Vec<JobToken> = Vec::new();
        match target {
            FaultTarget::WanLink { label } => {
                if let Some(agent) = self.infra.wan_link_agent(label) {
                    self.infra.evict_agent(agent, &mut evicted);
                }
            }
            FaultTarget::Server { site, tier, server } => {
                let agents = self.infra.dc_by_name(site).and_then(|dc| {
                    let dc = self.infra.dc(dc);
                    let ti = dc.tier_index(*tier)?;
                    let s = dc.tiers[ti].servers.get(*server)?;
                    Some([Some(s.cpu), Some(s.nic), Some(s.lan), s.storage])
                });
                for agent in agents.into_iter().flatten().flatten() {
                    self.infra.evict_agent(agent, &mut evicted);
                }
            }
            FaultTarget::DataCenter { site } => {
                if let Some(dc) = self.infra.dc_by_name(site) {
                    for i in 0..self.infra.agent_count() {
                        let id = gdisim_types::AgentId::from_index(i);
                        if self.infra.meta(id).dc == dc {
                            self.infra.evict_agent(id, &mut evicted);
                        }
                    }
                }
            }
        }
        if evicted.is_empty() {
            return;
        }
        // Map evicted messages back to their owning operations. The
        // eviction order is canonical per agent and agents are visited in
        // a fixed order, so this whole path is deterministic.
        let mut affected: Vec<u64> = Vec::new();
        let now_us = now.as_micros();
        for JobToken(token) in evicted {
            if let Some(state) = self.flight.tokens.remove(&token) {
                if let Some((mem_idx, bytes)) = state.plan.mem_hold {
                    self.infra.memories_mut()[mem_idx].release(bytes);
                }
                if let Some(ctx) = self.shard.as_mut() {
                    if let Some((home_shard, home_token)) = ctx.foreign.remove(&token) {
                        // Hosted for another shard: the home shard does
                        // the fault accounting and policy handling. Any
                        // trace context hosted for it rides home with
                        // the failure mail (the severed hop folds into
                        // queue wait — its service never finished).
                        let segs = self
                            .optrace
                            .as_mut()
                            .and_then(|o| o.take_foreign_segs(token, Some(now_us)))
                            .unwrap_or_default();
                        ctx.send(
                            home_shard,
                            crate::shard::ShardPayload::Failure { home_token, segs },
                        );
                        continue;
                    }
                }
                self.report.faults.dropped_messages += 1;
                if let Some(o) = self.optrace.as_mut() {
                    o.abort_token(token, now_us);
                }
                affected.push(state.instance);
            } else {
                // A job of an operation that already failed: the eviction
                // itself settles its orphan entry.
                self.orphans.remove(&token);
            }
        }
        affected.sort_unstable();
        affected.dedup();
        let retry_armed = self.faults.as_ref().is_some_and(|f| f.retry.is_some());
        for inst_id in affected {
            let Some(inst) = self.flight.instances.get(&inst_id) else {
                continue;
            };
            if policy == InFlightPolicy::Drop && retry_armed && inst.kind == InstanceKind::Client {
                // Silently lost: the client notices at its timeout.
                continue;
            }
            self.fail_instance(inst_id, why, now);
        }
    }

    /// Launches pending retries whose backoff has elapsed. Returns the
    /// number launched.
    fn launch_due_retries(&mut self, now: SimTime) -> u64 {
        if self
            .faults
            .as_ref()
            .expect("fault runtime installed")
            .pending_retries
            .is_empty()
        {
            // Nothing pending: this drain ran on a stale gate (or a
            // poll); retire whatever retry gates remain outstanding.
            self.cancel_empty_class(EventClass::Retries);
            return 0;
        }
        let due: Vec<PendingRetry> = {
            let f = self.faults.as_mut().expect("fault runtime installed");
            let (due, rest): (Vec<_>, Vec<_>) = std::mem::take(&mut f.pending_retries)
                .into_iter()
                .partition(|r| r.at <= now);
            f.pending_retries = rest;
            due
        };
        let n = due.len() as u64;
        for r in due {
            self.launch_attempt(
                r.template,
                r.key,
                InstanceKind::Client,
                r.binding,
                r.chain,
                r.session,
                0.0,
                now,
                r.attempt,
                r.first_launched_at,
                r.trace_root,
            );
        }
        if self
            .faults
            .as_ref()
            .is_some_and(|f| f.pending_retries.is_empty())
        {
            // Every pending retry launched (and launching queued no new
            // ones), so the gates of the launched batch are now stale.
            self.cancel_empty_class(EventClass::Retries);
        }
        n
    }

    /// Fails operations whose per-attempt timeout has expired. Entries
    /// for operations that already completed (or already failed) are
    /// stale and skipped — instance ids are never reused, so liveness in
    /// the flight table is a sufficient check. Returns the number of
    /// operations actually reaped: a gate that fired only for stale
    /// entries counts as a no-op drain in the profiler, which is exactly
    /// the "stale gates" quantity the ROADMAP asks for.
    fn reap_timeouts(&mut self, now: SimTime) -> u64 {
        let now_us = now.as_micros();
        let mut due: Vec<u64> = Vec::new();
        {
            let f = self.faults.as_mut().expect("fault runtime installed");
            while let Some(&std::cmp::Reverse((t, id))) = f.timeouts.peek() {
                if t > now_us {
                    break;
                }
                f.timeouts.pop();
                if self.flight.instances.contains_key(&id) {
                    due.push(id);
                }
            }
        }
        let n = due.len() as u64;
        for id in due {
            self.fail_instance(id, "timeout", now);
        }
        // Re-arm at the surviving head. The popped batch may have been
        // entirely dead entries (no `fail_instance` call re-arms then),
        // and the survivors' insert-time gates may have been retired by
        // an earlier generation cancel — without this, the head would
        // only fire once some unrelated retirement re-armed the class
        // (the invariant auditor's wheel-gate check pins this).
        if let (Some(w), Some(f)) = (&mut self.wheel, &self.faults) {
            if let Some(&std::cmp::Reverse((t_us, _))) = f.timeouts.peek() {
                w.schedule_at_micros(EventClass::Timeouts, t_us);
            }
        }
        n
    }

    /// Fails a live operation: severs its in-flight messages (their jobs
    /// become orphans, swallowed when their stations finish them),
    /// counts the failure, and either schedules a backed-off retry or
    /// abandons the operation. An abandoned session operation releases
    /// its client back to thinking; a chained series aborts; background
    /// operations never retry (their schedulers own the re-issue cycle).
    /// `why` labels the failure's cause on traced spans ("timeout",
    /// "fault", "churn", "unroutable", ...).
    fn fail_instance(&mut self, inst_id: u64, why: &'static str, now: SimTime) {
        self.fail_instance_with(inst_id, FailCause::Fault, why, now);
    }

    /// [`Self::fail_instance`] with an explicit cause, which selects the
    /// counter the failure lands in (faults vs. shed vs. breaker).
    fn fail_instance_with(
        &mut self,
        inst_id: u64,
        cause: FailCause,
        why: &'static str,
        now: SimTime,
    ) {
        let now_us = now.as_micros();
        // A failing half of a live hedged pair is cancelled quietly —
        // nothing is counted and no retry is scheduled; the surviving
        // half owns the operation's outcome (and inherits the chain and
        // session when the failing half was the primary).
        let partner = self
            .flight
            .instances
            .get(&inst_id)
            .and_then(|i| i.hedge_partner);
        if let Some(p) = partner {
            // Annotate the failing half's cause first — the loser
            // cancel's own hook then no-ops on the already-closed half.
            if let Some(o) = self.optrace.as_mut() {
                o.on_half_cancelled(inst_id, Some(why), now_us);
            }
            self.cancel_hedge_loser(inst_id, p, now);
            self.cancel_stale_timeout_gates();
            self.cancel_stale_hedge_gates();
            return;
        }
        let Some(inst) = self.flight.instances.remove(&inst_id) else {
            return;
        };
        let trace_root = self.optrace.as_ref().and_then(|o| o.root_of(inst_id));
        for token in self.flight.tokens_of(inst_id) {
            let state = self.flight.tokens.remove(&token).expect("token listed");
            if let Some((mem_idx, bytes)) = state.plan.mem_hold {
                self.infra.memories_mut()[mem_idx].release(bytes);
            }
            self.report.faults.dropped_messages += 1;
            self.orphans.insert(token);
            if let Some(o) = self.optrace.as_mut() {
                o.abort_token(token, now_us);
            }
        }
        match cause {
            FailCause::Fault => self.report.faults.failed_operations += 1,
            FailCause::Shed => self.report.resilience.shed_operations += 1,
            FailCause::Breaker => self.report.resilience.breaker_rejections += 1,
        }
        // Real verdicts feed the route's breaker; its own rejections do
        // not (that would hold it open forever).
        if cause != FailCause::Breaker && inst.kind == InstanceKind::Client {
            self.breaker_on_failure(inst.binding.client, inst.binding.master, now);
        }
        let mut will_retry = false;
        let mut retry_at = None;
        if let Some(f) = &mut self.faults {
            f.interval_failed += 1;
            if inst.kind == InstanceKind::Client {
                if let Some(policy) = f.retry {
                    if inst.attempt < policy.max_retries {
                        let delay = policy.backoff_secs(inst.attempt + 1);
                        let at = now + gdisim_types::SimDuration::from_secs_f64(delay);
                        f.pending_retries.push(PendingRetry {
                            at,
                            template: Arc::clone(&inst.template),
                            key: inst.key,
                            binding: inst.binding.clone(),
                            chain: inst.chain.clone(),
                            session: inst.session,
                            attempt: inst.attempt + 1,
                            first_launched_at: inst.first_launched_at,
                            trace_root,
                        });
                        will_retry = true;
                        retry_at = Some(at);
                    }
                }
            }
        }
        if let Some(at) = retry_at {
            self.gate(EventClass::Retries, at);
        }
        if inst.kind == InstanceKind::Client {
            // The failed attempt's timeout entry is dead (whether it
            // expired or the instance was evicted before its deadline);
            // retire stale gates and re-arm at the surviving head. Same
            // for its hedge timer, when hedging is on.
            self.cancel_stale_timeout_gates();
            self.cancel_stale_hedge_gates();
        }
        if will_retry {
            self.report.faults.retried_operations += 1;
        } else {
            self.report.faults.abandoned_operations += 1;
            if let Some(sid) = inst.session {
                self.schedule_session_think(sid, now);
            }
        }
        if let Some(o) = self.optrace.as_mut() {
            o.on_instance_failed(inst_id, why, will_retry, now_us);
        }
        if let Some(t) = &mut self.trace {
            t.record(
                now,
                crate::trace::TraceEvent::OperationFailed {
                    instance: inst_id,
                    will_retry,
                },
            );
        }
    }

    // ----- resilience policies -------------------------------------------

    /// Issues hedge twins for client attempts whose hedge delay elapsed
    /// without a settle. Returns the number of twins launched.
    fn launch_due_hedges(&mut self, now: SimTime) -> u64 {
        if self
            .resilience
            .as_ref()
            .expect("resilience runtime installed")
            .hedges
            .is_empty()
        {
            // Nothing armed: this drain ran on a stale gate (or a
            // poll); retire whatever hedge gates remain outstanding.
            self.cancel_empty_class(EventClass::Hedges);
            return 0;
        }
        let now_us = now.as_micros();
        let mut due: Vec<u64> = Vec::new();
        {
            let r = self
                .resilience
                .as_mut()
                .expect("resilience runtime installed");
            while let Some(&std::cmp::Reverse((t, id))) = r.hedges.peek() {
                if t > now_us {
                    break;
                }
                r.hedges.pop();
                if self.flight.instances.contains_key(&id) {
                    due.push(id);
                }
            }
        }
        let n = due.len() as u64;
        for id in due {
            self.launch_hedge_twin(id, now);
        }
        if self
            .resilience
            .as_ref()
            .is_some_and(|r| r.hedges.is_empty())
        {
            // Every armed hedge fired (and twins arm no timers of their
            // own), so the gates of the fired batch are now stale.
            self.cancel_empty_class(EventClass::Hedges);
        } else if let (Some(w), Some(r)) = (&mut self.wheel, &self.resilience) {
            // Survivors remain: re-arm at the head. Its insert-time gate
            // may have been retired by an earlier generation cancel, and
            // waiting for the next instance retirement to re-arm would
            // leave the head uncovered (the invariant auditor's
            // wheel-gate check pins this).
            if let Some(&std::cmp::Reverse((t_us, _))) = r.hedges.peek() {
                w.schedule_at_micros(EventClass::Hedges, t_us);
            }
        }
        n
    }

    /// Launches the hedge twin of a still-live attempt: a duplicate
    /// along the same binding sharing the primary's reporting key and
    /// first-launch timestamp. The twin carries no chain or session —
    /// whichever half settles first owns those — but does arm its own
    /// per-attempt timeout, so a twin whose messages are silently
    /// dropped cannot hang forever.
    fn launch_hedge_twin(&mut self, primary: u64, now: SimTime) {
        let (key, template, binding, stages, attempt, first_launched_at) = {
            let Some(inst) = self.flight.instances.get(&primary) else {
                return;
            };
            if inst.hedge_partner.is_some() || inst.is_hedge_twin {
                return;
            }
            (
                inst.key,
                Arc::clone(&inst.template),
                inst.binding.clone(),
                inst.stages.clone(),
                inst.attempt,
                inst.first_launched_at,
            )
        };
        if let Some(t) = &mut self.trace {
            t.record(
                now,
                crate::trace::TraceEvent::Launch {
                    instance: self.flight.peek_next_instance(),
                    key,
                },
            );
        }
        let twin = self.flight.add_instance(Instance {
            key,
            kind: InstanceKind::Client,
            template,
            binding,
            stages,
            stage_idx: 0,
            outstanding: 0,
            launched_at: now,
            first_launched_at,
            attempt,
            chain: None,
            session: None,
            volume_bytes: 0.0,
            hedge_partner: Some(primary),
            is_hedge_twin: true,
        });
        self.flight
            .instances
            .get_mut(&primary)
            .expect("primary checked live")
            .hedge_partner = Some(twin);
        if let Some(o) = self.optrace.as_mut() {
            o.on_hedge_twin(primary, twin, now.as_micros());
        }
        self.report.resilience.hedges_launched += 1;
        let deadline = self.faults.as_mut().and_then(|f| {
            let policy = f.retry?;
            let deadline = now + gdisim_types::SimDuration::from_secs_f64(policy.timeout_secs);
            f.timeouts
                .push(std::cmp::Reverse((deadline.as_micros(), twin)));
            Some(deadline)
        });
        if let Some(deadline) = deadline {
            self.gate(EventClass::Timeouts, deadline);
        }
        self.start_stage(twin, now);
    }

    /// Quietly cancels hedge-pair member `loser` in favour of
    /// `survivor`: the loser leaves the flight table, its in-flight
    /// messages become orphans, and nothing is counted against faults
    /// or retries. A losing primary's chain and session migrate to the
    /// survivor so follow-ups and session bookkeeping stay with the
    /// operation.
    fn cancel_hedge_loser(&mut self, loser_id: u64, survivor_id: u64, now: SimTime) {
        let Some(loser) = self.flight.instances.remove(&loser_id) else {
            return;
        };
        let now_us = now.as_micros();
        let mut dropped = 0u64;
        for token in self.flight.tokens_of(loser_id) {
            let state = self.flight.tokens.remove(&token).expect("token listed");
            if let Some((mem_idx, bytes)) = state.plan.mem_hold {
                self.infra.memories_mut()[mem_idx].release(bytes);
            }
            self.orphans.insert(token);
            if let Some(o) = self.optrace.as_mut() {
                o.abort_token(token, now_us);
            }
            dropped += 1;
        }
        // No-ops when the failing-half path already closed this half
        // with its cause.
        if let Some(o) = self.optrace.as_mut() {
            o.on_half_cancelled(loser_id, None, now_us);
        }
        self.report.resilience.hedges_cancelled += 1;
        self.report.resilience.hedge_cancelled_messages += dropped;
        if let Some(survivor) = self.flight.instances.get_mut(&survivor_id) {
            survivor.hedge_partner = None;
            if !loser.is_hedge_twin {
                survivor.chain = loser.chain;
                survivor.session = loser.session;
            }
        }
    }

    /// Retires stale [`EventClass::Hedges`] gates after an instance left
    /// the flight table: pops the hedge heap's dead prefix, bumps the
    /// class generation and re-arms at the surviving head — the exact
    /// mirror of [`Self::cancel_stale_timeout_gates`], with the same
    /// inductive invariant (every primary launch arms its own hedge
    /// timer, so re-arming at the post-removal head keeps every live
    /// timer covered by a gate at or before its tick).
    fn cancel_stale_hedge_gates(&mut self) {
        let Some(w) = &mut self.wheel else { return };
        let Some(r) = &mut self.resilience else {
            return;
        };
        if r.policies.hedge.is_none() {
            return;
        }
        while let Some(&std::cmp::Reverse((_, id))) = r.hedges.peek() {
            if self.flight.instances.contains_key(&id) {
                break;
            }
            r.hedges.pop();
        }
        w.cancel_class(EventClass::Hedges);
        if let Some(&std::cmp::Reverse((t_us, _))) = r.hedges.peek() {
            w.schedule_at_micros(EventClass::Hedges, t_us);
        }
    }

    /// Whether the route's breaker admits a launch right now. Consults
    /// and advances the breaker state machine: an elapsed open window
    /// moves to half-open and spends the first probe; half-open spends
    /// probes until the budget is gone. Always true when no breaker
    /// policy is installed.
    fn breaker_admits(&mut self, client: DcId, master: DcId, now: SimTime) -> bool {
        let Some(r) = &mut self.resilience else {
            return true;
        };
        let Some(policy) = r.policies.breaker else {
            return true;
        };
        let now_us = now.as_micros();
        let state = r
            .breakers
            .entry((client, master))
            .or_insert(BreakerState::Closed { consecutive: 0 });
        match *state {
            BreakerState::Closed { .. } => true,
            BreakerState::Open { until_us } if now_us < until_us => false,
            BreakerState::Open { .. } => {
                // Open window elapsed: this launch is the first probe.
                *state = BreakerState::HalfOpen {
                    probes_left: policy.probe_ops - 1,
                };
                true
            }
            BreakerState::HalfOpen { probes_left } if probes_left > 0 => {
                *state = BreakerState::HalfOpen {
                    probes_left: probes_left - 1,
                };
                true
            }
            BreakerState::HalfOpen { .. } => false,
        }
    }

    /// Read-only label of the route's breaker state at `now`, for span
    /// annotation. Unlike [`Self::breaker_admits`] this never advances
    /// the state machine: an elapsed open window reads as "half-open"
    /// (that is what the subsequent admit check will make it), but the
    /// probe budget is untouched.
    fn breaker_state_label(&self, client: DcId, master: DcId, now: SimTime) -> &'static str {
        let Some(r) = &self.resilience else {
            return "closed";
        };
        if r.policies.breaker.is_none() {
            return "closed";
        }
        match r.breakers.get(&(client, master)) {
            None | Some(BreakerState::Closed { .. }) => "closed",
            Some(BreakerState::Open { until_us }) if now.as_micros() < *until_us => "open",
            Some(BreakerState::Open { .. }) | Some(BreakerState::HalfOpen { .. }) => "half-open",
        }
    }

    /// Feeds a client-operation failure to the route's breaker: closed
    /// counts toward the trip threshold, half-open re-opens immediately.
    fn breaker_on_failure(&mut self, client: DcId, master: DcId, now: SimTime) {
        let Some(r) = &mut self.resilience else {
            return;
        };
        let Some(policy) = r.policies.breaker else {
            return;
        };
        let state = r
            .breakers
            .entry((client, master))
            .or_insert(BreakerState::Closed { consecutive: 0 });
        let until_us =
            (now + gdisim_types::SimDuration::from_secs_f64(policy.open_secs)).as_micros();
        match *state {
            BreakerState::Closed { consecutive } => {
                let consecutive = consecutive + 1;
                if consecutive >= policy.failure_threshold {
                    *state = BreakerState::Open { until_us };
                    self.report.resilience.breaker_trips += 1;
                } else {
                    *state = BreakerState::Closed { consecutive };
                }
            }
            BreakerState::HalfOpen { .. } => {
                *state = BreakerState::Open { until_us };
                self.report.resilience.breaker_trips += 1;
            }
            BreakerState::Open { .. } => {}
        }
    }

    /// Feeds a client-operation success to the route's breaker: any
    /// success closes it and clears the consecutive-failure count.
    fn breaker_on_success(&mut self, client: DcId, master: DcId) {
        let Some(r) = &mut self.resilience else {
            return;
        };
        if r.policies.breaker.is_none() {
            return;
        }
        if let Some(state) = r.breakers.get_mut(&(client, master)) {
            *state = BreakerState::Closed { consecutive: 0 };
        }
    }

    /// Wakes sessions whose think time has elapsed: retiring sessions log
    /// out, the rest launch their next operation. Returns the number of
    /// sessions woken (retired or relaunched).
    fn wake_sessions(&mut self, now: SimTime) -> u64 {
        let now_us = now.as_micros();
        let mut woken = 0u64;
        let mut launches: Vec<(u64, usize, usize)> = Vec::new(); // (session, source, w_site)
        while let Some(std::cmp::Reverse((t, id))) = self.session_wakes.peek().copied() {
            if t > now_us {
                break;
            }
            self.session_wakes.pop();
            let Some(&(source, w_site)) = self.sessions.get(&id) else {
                continue;
            };
            woken += 1;
            // Retire if the population curve shrank.
            let retired = match &mut self.traffic[source] {
                TrafficSource::Sessions { live, retiring, .. } => {
                    if retiring[w_site] > 0 {
                        retiring[w_site] -= 1;
                        live[w_site] -= 1;
                        true
                    } else {
                        false
                    }
                }
                _ => unreachable!("session bound to a non-session source"),
            };
            if retired {
                self.sessions.remove(&id);
            } else {
                launches.push((id, source, w_site));
            }
        }
        for (id, source, w_site) in launches {
            let (app_idx, site) = match &self.traffic[source] {
                TrafficSource::Sessions {
                    app_idx, site_map, ..
                } => (*app_idx, site_map[w_site]),
                _ => unreachable!(),
            };
            let (key, template) = {
                let app = &self.apps[app_idx];
                let op_idx = self.sampler.pick(&app.mix);
                (
                    ResponseKey {
                        app: app.id,
                        op: OpTypeId::from_index(op_idx),
                        dc: self.site_dc[site],
                    },
                    Arc::clone(&app.ops[op_idx]),
                )
            };
            let binding = self.client_binding(site);
            self.launch(
                template,
                key,
                InstanceKind::Client,
                binding,
                None,
                Some(id),
                0.0,
                now,
            );
        }
        woken
    }

    /// Puts a session back to sleep after its operation completed.
    fn schedule_session_think(&mut self, session: u64, now: SimTime) {
        let Some(&(source, _)) = self.sessions.get(&session) else {
            return;
        };
        let mean = match &self.traffic[source] {
            TrafficSource::Sessions {
                mean_think_secs, ..
            } => *mean_think_secs,
            _ => unreachable!("session bound to a non-session source"),
        };
        let delay = self.sampler.exponential(mean).min(3600.0);
        let wake = now + gdisim_types::SimDuration::from_secs_f64(delay);
        self.session_wakes
            .push(std::cmp::Reverse((wake.as_micros(), session)));
        self.gate(EventClass::SessionWakes, wake);
    }

    fn launch_background(&mut self, launch: BackgroundLaunch, now: SimTime) {
        let master_dc = self.site_dc[launch.master_site];
        let binding = SiteBinding {
            client: master_dc,
            master: master_dc,
            file_host: master_dc,
            extras: launch
                .extra_sites
                .iter()
                .map(|s| self.site_dc[*s])
                .collect(),
        };
        let op = match launch.kind {
            BackgroundKind::SyncRep => BG_OP_SYNCHREP,
            BackgroundKind::IndexBuild => BG_OP_INDEXBUILD,
        };
        let key = ResponseKey {
            app: BG_APP,
            op,
            dc: master_dc,
        };
        self.launch(
            Arc::new(launch.template),
            key,
            InstanceKind::Background(launch.kind, launch.master_site),
            binding,
            None,
            None,
            launch.volume_bytes,
            now,
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn launch(
        &mut self,
        template: Arc<OperationTemplate>,
        key: ResponseKey,
        kind: InstanceKind,
        binding: SiteBinding,
        chain: Option<Chain>,
        session: Option<u64>,
        volume_bytes: f64,
        now: SimTime,
    ) {
        self.launch_attempt(
            template,
            key,
            kind,
            binding,
            chain,
            session,
            volume_bytes,
            now,
            0,
            now,
            None,
        );
    }

    /// Launches one attempt of an operation. `attempt` is 0 for a fresh
    /// launch; fault-layer retries pass the attempt counter and the
    /// original launch time so response times cover the full client
    /// wait, plus the sampled span root (`trace_root`) that keeps the
    /// retry's spans under the original operation.
    #[allow(clippy::too_many_arguments)]
    fn launch_attempt(
        &mut self,
        template: Arc<OperationTemplate>,
        key: ResponseKey,
        kind: InstanceKind,
        binding: SiteBinding,
        chain: Option<Chain>,
        session: Option<u64>,
        volume_bytes: f64,
        now: SimTime,
        attempt: u32,
        first_launched_at: SimTime,
        trace_root: Option<u64>,
    ) {
        let stages = template.stages();
        if let Some(t) = &mut self.trace {
            t.record(
                now,
                crate::trace::TraceEvent::Launch {
                    instance: self.flight.peek_next_instance(),
                    key,
                },
            );
        }
        let (route_client, route_master) = (binding.client, binding.master);
        let id = self.flight.add_instance(Instance {
            key,
            kind,
            template,
            binding,
            stages,
            stage_idx: 0,
            outstanding: 0,
            launched_at: now,
            first_launched_at,
            attempt,
            chain,
            session,
            volume_bytes,
            hedge_partner: None,
            is_hedge_twin: false,
        });
        if self.optrace.is_some() {
            // Annotate with the breaker state as the client saw it at
            // launch — read before `breaker_admits` advances the state
            // machine below.
            let breaker = if kind == InstanceKind::Client {
                self.breaker_state_label(route_client, route_master, now)
            } else {
                "closed"
            };
            let kind_label = match kind {
                InstanceKind::Client => "client",
                InstanceKind::Background(..) => "background",
            };
            if let Some(o) = self.optrace.as_mut() {
                o.on_launch(
                    id,
                    key,
                    kind_label,
                    attempt,
                    breaker,
                    trace_root,
                    now.as_micros(),
                );
            }
        }
        // Per-route circuit breaker: an open breaker fails the launch
        // fast (a local error response) before any message is compiled
        // or any timer armed. The rejection settles through the normal
        // fail path, so the retry policy still applies.
        if kind == InstanceKind::Client && !self.breaker_admits(route_client, route_master, now) {
            self.fail_instance_with(id, FailCause::Breaker, "breaker", now);
            return;
        }
        // Arm the per-attempt client timeout when a retry policy is set.
        if kind == InstanceKind::Client {
            let deadline = self.faults.as_mut().and_then(|f| {
                let policy = f.retry?;
                let deadline = now + gdisim_types::SimDuration::from_secs_f64(policy.timeout_secs);
                f.timeouts
                    .push(std::cmp::Reverse((deadline.as_micros(), id)));
                Some(deadline)
            });
            if let Some(deadline) = deadline {
                self.gate(EventClass::Timeouts, deadline);
            }
            // Arm the hedge timer when hedging is on: the twin launches
            // if this attempt has not settled by then.
            let fire = self.resilience.as_mut().and_then(|r| {
                let h = r.policies.hedge?;
                let fire = now + gdisim_types::SimDuration::from_secs_f64(h.delay_secs);
                r.hedges.push(std::cmp::Reverse((fire.as_micros(), id)));
                Some(fire)
            });
            if let Some(fire) = fire {
                self.gate(EventClass::Hedges, fire);
            }
        }
        self.start_stage(id, now);
    }

    /// Launches every message of the instance's current stage. Messages
    /// whose compiled plan is empty (all-zero demands) complete
    /// immediately, which may cascade into further stages.
    fn start_stage(&mut self, inst_id: u64, now: SimTime) {
        let (range, template, binding, shed_depth, stage_idx) = {
            let inst = &self.flight.instances[&inst_id];
            // Server-side load shedding guards admission: the check
            // applies to a client operation's first stage only (later
            // stages are work the system already accepted).
            let shed_depth = if inst.kind == InstanceKind::Client && inst.stage_idx == 0 {
                self.resilience
                    .as_ref()
                    .and_then(|r| r.policies.shed.map(|s| s.queue_depth))
            } else {
                None
            };
            (
                inst.stages[inst.stage_idx].clone(),
                Arc::clone(&inst.template),
                inst.binding.clone(),
                shed_depth,
                inst.stage_idx as u32,
            )
        };
        let now_us = now.as_micros();
        let mut instant: Vec<u64> = Vec::new();
        let mut launched = 0u32;
        for si in range {
            let step = template.steps[si];
            let mut plan = compile_with(
                &mut self.infra,
                &step,
                &binding,
                &mut self.cache_rng,
                self.config.load_balancing,
            );
            if let Some(depth) = shed_depth {
                let over = plan
                    .hops
                    .front()
                    .is_some_and(|hop| self.infra.component(hop.agent).in_system() > depth);
                if over {
                    // Bounced at admission: the first server is already
                    // over the shed threshold. The compiled plan never
                    // reaches a station, so release its memory hold and
                    // settle like a broken stage — under the Shed
                    // counter, not the fault counters.
                    if let Some((mem_idx, bytes)) = plan.mem_hold {
                        self.infra.memories_mut()[mem_idx].release(bytes);
                    }
                    for token in instant.drain(..) {
                        if let Some(state) = self.flight.tokens.remove(&token) {
                            if let Some((mem_idx, bytes)) = state.plan.mem_hold {
                                self.infra.memories_mut()[mem_idx].release(bytes);
                            }
                            self.report.faults.dropped_messages += 1;
                            if let Some(o) = self.optrace.as_mut() {
                                o.abort_token(token, now_us);
                            }
                        }
                    }
                    self.fail_instance_with(inst_id, FailCause::Shed, "shed", now);
                    return;
                }
            }
            if plan.broken.is_some() {
                // Undeliverable stage (no route or no reachable server):
                // the operation fails. Instant siblings never reached a
                // station, so settle them here; enqueued siblings become
                // orphans via `fail_instance`.
                for token in instant.drain(..) {
                    if let Some(state) = self.flight.tokens.remove(&token) {
                        if let Some((mem_idx, bytes)) = state.plan.mem_hold {
                            self.infra.memories_mut()[mem_idx].release(bytes);
                        }
                        self.report.faults.dropped_messages += 1;
                        if let Some(o) = self.optrace.as_mut() {
                            o.abort_token(token, now_us);
                        }
                    }
                }
                self.fail_instance(inst_id, "unroutable", now);
                return;
            }
            let first = plan.hops.pop_front();
            let token = self.flight.add_token(inst_id, plan);
            if let Some(o) = self.optrace.as_mut() {
                o.on_token_start(token, inst_id, stage_idx, now_us);
            }
            match first {
                Some(hop) => self.enqueue_agent(hop.agent, JobToken(token), hop.demand, now),
                None => instant.push(token),
            }
            launched += 1;
        }
        self.flight
            .instances
            .get_mut(&inst_id)
            .expect("instance live")
            .outstanding = launched;
        for token in instant {
            self.on_token_complete(token, now);
        }
    }

    // ----- completions ---------------------------------------------------

    /// Hands a job to an agent. On the fast path this also pulls the
    /// agent into the active set, crediting the idle span it was skipped
    /// for; on the always-tick path the meters are already current.
    fn enqueue_agent(
        &mut self,
        agent: gdisim_types::AgentId,
        token: JobToken,
        demand: f64,
        now: SimTime,
    ) {
        // Sharded runs intercept hops bound for queues another shard
        // owns: the flight migrates through a mailbox instead of
        // enqueueing locally. Serial engines skip this entirely.
        if let Some(ctx) = &self.shard {
            let owner = ctx.dc_owner[self.infra.meta(agent).dc.index()];
            if owner != ctx.me {
                self.export_flight(owner, agent, token, demand);
                return;
            }
        }
        if let Some(o) = self.optrace.as_mut() {
            o.on_hop_enqueue(token.0, agent.index() as u32, demand, now.as_micros());
        }
        if self.tick_all {
            self.infra.component_mut(agent).enqueue(token, demand, now);
        } else {
            self.infra
                .enqueue_job(agent, token, demand, now, self.meter_epoch, self.config.dt);
        }
    }

    /// Exports a hop bound for a queue `dst` owns: the remaining hops
    /// (with the intercepted one restored at the front) and any memory
    /// hold migrate into the mailbox. A native token stays parked here
    /// (empty plan) awaiting the completion/failure mail; a hosted
    /// foreign token being forwarded onward keeps its original home
    /// identity and its local copy is dropped.
    fn export_flight(
        &mut self,
        dst: u32,
        agent: gdisim_types::AgentId,
        JobToken(token): JobToken,
        demand: f64,
    ) {
        let state = self
            .flight
            .tokens
            .get_mut(&token)
            .expect("exported token live");
        let mut hops = std::mem::take(&mut state.plan.hops);
        hops.push_front(crate::router::Hop { agent, demand });
        let mem = state.plan.mem_hold.take();
        if let Some((mem_idx, bytes)) = mem {
            // The hold travels with the flight; release the local mirror.
            self.infra.memories_mut()[mem_idx].release(bytes);
        }
        let forwarded = self
            .shard
            .as_mut()
            .expect("shard ctx")
            .foreign
            .remove(&token);
        // Span context travels with the flight: a hosted token being
        // forwarded ships the segments accrued here; a native sampled
        // token ships an empty context so the next host records for it.
        let trace = if forwarded.is_some() {
            self.optrace
                .as_mut()
                .and_then(|o| o.take_foreign_segs(token, None))
        } else if self.optrace.as_mut().is_some_and(|o| o.mark_remote(token)) {
            Some(Vec::new())
        } else {
            None
        };
        let (home_shard, home_token) = match forwarded {
            Some(pair) => {
                self.flight.tokens.remove(&token);
                pair
            }
            None => (self.shard.as_ref().expect("shard ctx").me, token),
        };
        self.shard.as_mut().expect("shard ctx").send(
            dst,
            crate::shard::ShardPayload::Flight {
                home_shard,
                home_token,
                hops,
                mem,
                trace,
            },
        );
    }

    /// Home-side handling of a [`crate::shard::ShardPayload::Failure`]:
    /// the flight was evicted abroad. Mirrors the local eviction path —
    /// fault accounting here, then the installed in-flight policy
    /// decides between a silent drop (client notices at its timeout)
    /// and failing the operation now.
    fn foreign_flight_failed(&mut self, token: u64, segs: Vec<gdisim_obs::HopSeg>, now: SimTime) {
        // Stitch whatever the hosting shard recorded before the
        // eviction, then close the message span — the hop in service
        // abroad was already folded into the mailed segments.
        if let Some(o) = self.optrace.as_mut() {
            if !segs.is_empty() {
                o.attach_remote_segs(token, segs);
            }
            o.abort_token(token, now.as_micros());
        }
        if self.orphans.remove(&token) {
            // The operation already failed for another reason while the
            // flight was abroad; the eviction settles the orphan.
            return;
        }
        let Some(state) = self.flight.tokens.remove(&token) else {
            debug_assert!(false, "failure mail for unknown token {token}");
            return;
        };
        if let Some((mem_idx, bytes)) = state.plan.mem_hold {
            self.infra.memories_mut()[mem_idx].release(bytes);
        }
        self.report.faults.dropped_messages += 1;
        let inst_id = state.instance;
        let Some(inst) = self.flight.instances.get(&inst_id) else {
            return;
        };
        let policy = self
            .faults
            .as_ref()
            .map(|f| f.in_flight)
            .unwrap_or(InFlightPolicy::Bounce);
        let retry_armed = self.faults.as_ref().is_some_and(|f| f.retry.is_some());
        if policy == InFlightPolicy::Drop && retry_armed && inst.kind == InstanceKind::Client {
            // Silently lost: the client notices at its timeout.
            return;
        }
        self.fail_instance(inst_id, "fault", now);
    }

    /// Delivers one source shard's window mail, in sequence order, at
    /// the window barrier. Flights returning to their home shard resume
    /// the parked native token in place; flights arriving abroad get a
    /// hosted token under the [`crate::shard::FOREIGN_INSTANCE`]
    /// sentinel.
    pub(crate) fn deliver_shard_inbox(
        &mut self,
        src: u32,
        mail: Vec<crate::shard::ShardEnvelope>,
        now: SimTime,
    ) {
        for env in mail {
            self.shard
                .as_mut()
                .expect("shard ctx")
                .note_receive(src, env.seq);
            match env.payload {
                crate::shard::ShardPayload::Flight {
                    home_shard,
                    home_token,
                    mut hops,
                    mem,
                    trace,
                } => {
                    let first = hops.pop_front().expect("flight has at least one hop");
                    if let Some((mem_idx, bytes)) = mem {
                        // Mirror the hold: the bytes occupy whichever
                        // shard currently hosts the flight.
                        let _ = self.infra.memories_mut()[mem_idx].allocate(bytes);
                    }
                    let me = self.shard.as_ref().expect("shard ctx").me;
                    let token = if home_shard == me {
                        // Back home: resume the parked native token and
                        // stitch the segments recorded abroad into its
                        // message span.
                        if let Some(state) = self.flight.tokens.get_mut(&home_token) {
                            state.plan.hops = hops;
                            state.plan.mem_hold = mem;
                            if let Some(segs) = trace {
                                if let Some(o) = self.optrace.as_mut() {
                                    o.attach_remote_segs(home_token, segs);
                                }
                            }
                            home_token
                        } else {
                            // Severed while abroad (the operation already
                            // failed): undo the mirrored hold and settle
                            // the orphan.
                            if let Some((mem_idx, bytes)) = mem {
                                self.infra.memories_mut()[mem_idx].release(bytes);
                            }
                            self.orphans.remove(&home_token);
                            continue;
                        }
                    } else {
                        let token = self.flight.add_token(
                            crate::shard::FOREIGN_INSTANCE,
                            crate::router::MessagePlan {
                                hops,
                                mem_hold: mem,
                                broken: None,
                            },
                        );
                        self.shard
                            .as_mut()
                            .expect("shard ctx")
                            .foreign
                            .insert(token, (home_shard, home_token));
                        // A trace context hosts the flight's span here:
                        // hop segments recorded on this shard ride home
                        // with the completion/failure mail.
                        if let Some(segs) = trace {
                            if let Some(o) = self.optrace.as_mut() {
                                o.host_foreign(token, segs);
                            }
                        }
                        token
                    };
                    self.enqueue_agent(first.agent, JobToken(token), first.demand, now);
                }
                crate::shard::ShardPayload::Completion { home_token, segs } => {
                    if !segs.is_empty() {
                        if let Some(o) = self.optrace.as_mut() {
                            o.attach_remote_segs(home_token, segs);
                        }
                    }
                    self.on_token_complete(home_token, now);
                }
                crate::shard::ShardPayload::Failure { home_token, segs } => {
                    self.foreign_flight_failed(home_token, segs, now);
                }
            }
        }
    }

    /// Installs the shard context. Must run before the first step.
    pub(crate) fn set_shard_ctx(&mut self, me: u32, dc_owner: Vec<u32>, shards: usize) {
        debug_assert_eq!(self.now, SimTime::ZERO, "shard ctx installed mid-run");
        self.shard = Some(crate::shard::ShardCtx::new(me, dc_owner, shards));
    }

    /// The shard context, when this engine is a shard.
    pub(crate) fn shard_ctx(&self) -> Option<&crate::shard::ShardCtx> {
        self.shard.as_ref()
    }

    /// Drains this shard's outgoing mailboxes (one `Vec` per
    /// destination shard), called at each window barrier.
    pub(crate) fn take_shard_outboxes(&mut self) -> Vec<Vec<crate::shard::ShardEnvelope>> {
        self.shard.as_mut().expect("shard ctx").take_outboxes()
    }

    /// The infrastructure (read-only, for shard partitioning and report
    /// merging).
    pub(crate) fn infra_ref(&self) -> &Infrastructure {
        &self.infra
    }

    /// The canonical site → data-center mapping.
    pub(crate) fn site_dc_map(&self) -> &[DcId] {
        &self.site_dc
    }

    /// Restricts traffic generation to the sites whose engine index is
    /// flagged in `owned`, dropping sources left with no sites. Must run
    /// before the first step (no sessions yet, wheel unprimed).
    pub(crate) fn retain_sites(&mut self, owned: &[bool]) {
        debug_assert!(
            self.sessions.is_empty(),
            "retain_sites after sessions spawned"
        );
        self.traffic.retain_mut(|src| match src {
            TrafficSource::Diurnal {
                workload, site_map, ..
            } => {
                let keep: Vec<bool> = site_map.iter().map(|&s| owned[s]).collect();
                let mut it = keep.iter();
                workload.sites.retain(|_| *it.next().unwrap());
                let mut it = keep.iter();
                site_map.retain(|_| *it.next().unwrap());
                !site_map.is_empty()
            }
            TrafficSource::Sessions {
                workload,
                site_map,
                live,
                retiring,
                ..
            } => {
                let keep: Vec<bool> = site_map.iter().map(|&s| owned[s]).collect();
                let mut it = keep.iter();
                workload.sites.retain(|_| *it.next().unwrap());
                let mut it = keep.iter();
                live.retain(|_| *it.next().unwrap());
                let mut it = keep.iter();
                retiring.retain(|_| *it.next().unwrap());
                let mut it = keep.iter();
                site_map.retain(|_| *it.next().unwrap());
                !site_map.is_empty()
            }
            TrafficSource::PeriodicSeries { site, .. } => owned[*site],
        });
        self.polled_sources = self
            .traffic
            .iter()
            .filter(|s| !matches!(s, TrafficSource::PeriodicSeries { .. }))
            .count();
    }

    /// Removes the background scheduler (shards other than 0 in a
    /// sharded run; the replicated scheduler would double-launch).
    pub(crate) fn clear_background(&mut self) {
        self.background = None;
    }

    fn on_token_complete(&mut self, token: u64, now: SimTime) {
        // Close the finished hop's span segment first (tracked tokens
        // only): the residence is split into queue wait, service and WAN
        // transit against the serving component's nominal rates.
        if let Some(o) = self.optrace.as_mut() {
            if let Some((agent, demand, enq_us)) = o.take_cur_hop(token) {
                let (service, wan) = self
                    .infra
                    .component(gdisim_types::AgentId::from_index(agent as usize))
                    .nominal_segments_secs(demand);
                o.push_seg(
                    token,
                    gdisim_obs::HopSeg::from_nominal(agent, enq_us, now.as_micros(), service, wan),
                );
            }
        }
        // Advance the message along its remaining hops.
        if let Some(state) = self.flight.tokens.get_mut(&token) {
            if let Some(hop) = state.plan.hops.pop_front() {
                let (agent, demand) = (hop.agent, hop.demand);
                self.enqueue_agent(agent, JobToken(token), demand, now);
                return;
            }
        } else {
            // A job of a failed operation finishing service: its result
            // is discarded (the work was wasted, which is the point).
            if self.orphans.remove(&token) {
                return;
            }
            debug_assert!(false, "completion for unknown token {token}");
            return;
        }
        // Message finished: release memory, advance the cascade.
        let state = self
            .flight
            .tokens
            .remove(&token)
            .expect("token checked above");
        if let Some((mem_idx, bytes)) = state.plan.mem_hold {
            self.infra.memories_mut()[mem_idx].release(bytes);
        }
        let inst_id = state.instance;
        if let Some(t) = &mut self.trace {
            t.record(
                now,
                crate::trace::TraceEvent::MessageDone {
                    token,
                    instance: inst_id,
                },
            );
        }
        // A flight hosted for another shard has no instance here: mail
        // the completion home instead of advancing a local cascade.
        if let Some(ctx) = self.shard.as_mut() {
            if let Some((home_shard, home_token)) = ctx.foreign.remove(&token) {
                debug_assert_eq!(inst_id, crate::shard::FOREIGN_INSTANCE);
                let segs = self
                    .optrace
                    .as_mut()
                    .and_then(|o| o.take_foreign_segs(token, None))
                    .unwrap_or_default();
                ctx.send(
                    home_shard,
                    crate::shard::ShardPayload::Completion { home_token, segs },
                );
                return;
            }
        }
        if let Some(o) = self.optrace.as_mut() {
            o.on_message_done(token, now.as_micros());
        }
        let advance = {
            let inst = self
                .flight
                .instances
                .get_mut(&inst_id)
                .expect("instance live");
            inst.outstanding -= 1;
            if inst.outstanding == 0 {
                inst.stage_idx += 1;
                if inst.stage_idx < inst.stages.len() {
                    Some(true)
                } else {
                    Some(false)
                }
            } else {
                None
            }
        };
        match advance {
            Some(true) => self.start_stage(inst_id, now),
            Some(false) => self.complete_instance(inst_id, now),
            None => {}
        }
    }

    fn complete_instance(&mut self, inst_id: u64, now: SimTime) {
        // Settle the hedged pair first: the completing half wins and
        // the partner is cancelled quietly. A losing primary's chain
        // and session migrate onto the winner before it settles.
        let partner = self
            .flight
            .instances
            .get(&inst_id)
            .and_then(|i| i.hedge_partner);
        if let Some(p) = partner {
            self.cancel_hedge_loser(p, inst_id, now);
        }
        let inst = self
            .flight
            .instances
            .remove(&inst_id)
            .expect("instance live");
        if inst.is_hedge_twin {
            self.report.resilience.hedge_wins += 1;
        }
        if let Some(o) = self.optrace.as_mut() {
            o.on_instance_completed(inst_id, now.as_micros());
        }
        // Response times are measured from the *first* attempt, so a
        // retried operation reports the full wait the client experienced
        // (identical to `launched_at` when no retry happened).
        let duration = now - inst.first_launched_at;
        if let Some(t) = &mut self.trace {
            t.record(
                now,
                crate::trace::TraceEvent::OperationDone {
                    instance: inst_id,
                    response_secs: duration.as_secs_f64(),
                },
            );
        }
        self.report.responses.record(inst.key, now, duration);
        if let Some(f) = &mut self.faults {
            f.interval_ok += 1;
        }
        match inst.kind {
            InstanceKind::Client => {
                self.breaker_on_success(inst.binding.client, inst.binding.master);
                // The completed attempt's timeout and hedge entries are
                // now dead; retire their gates (and any other stale
                // ones) before the chain's next operation arms fresh
                // ones.
                self.cancel_stale_timeout_gates();
                self.cancel_stale_hedge_gates();
                let mut continued = false;
                if let Some(mut chain) = inst.chain {
                    if !chain.remaining.is_empty() {
                        let template = chain.remaining.remove(0);
                        let key = chain.keys.remove(0);
                        self.launch(
                            template,
                            key,
                            InstanceKind::Client,
                            inst.binding,
                            Some(chain),
                            inst.session,
                            0.0,
                            now,
                        );
                        continued = true;
                    }
                }
                if !continued {
                    if let Some(sid) = inst.session {
                        self.schedule_session_think(sid, now);
                    }
                }
            }
            InstanceKind::Background(kind, master_site) => {
                self.report.background.push(BackgroundRecord {
                    kind,
                    master_site,
                    launched_at: inst.launched_at,
                    finished_at: now,
                    volume_bytes: inst.volume_bytes,
                });
                if kind == BackgroundKind::IndexBuild {
                    let next = self.background.as_mut().and_then(|s| {
                        s.on_indexbuild_complete(master_site, now);
                        s.next_due()
                    });
                    // A completion opens the next build's gap gate, which
                    // can pull the background horizon closer — re-arm.
                    if let Some(next) = next {
                        self.gate(EventClass::Background, next);
                    }
                }
            }
        }
    }

    // ----- collection ------------------------------------------------------

    fn collect(&mut self, t: SimTime) {
        // Paranoid invariant audit first, against the pre-collection
        // state (collection resets the utilization meters; the audited
        // quantities — flight table, holds, active set, gates — are
        // untouched either way).
        if let Some(mut audit) = self.audit.take() {
            self.run_audit(t, &mut audit);
            self.audit = Some(audit);
        }
        // Group utilizations by (dc, tier, kind). Every agent is collected
        // exactly once so the meters reset cleanly.
        let mut cpu: HashMap<(String, &'static str), (f64, u32)> = HashMap::new();
        let mut disk: HashMap<(String, &'static str), (f64, u32)> = HashMap::new();
        let mut wan: Vec<(String, f64)> = Vec::new();
        let mut client_links: Vec<(String, f64)> = Vec::new();

        let n = self.infra.agent_count();
        for i in 0..n {
            let id = gdisim_types::AgentId::from_index(i);
            let u = self.infra.component_mut(id).collect_utilization();
            let meta = self.infra.meta(id);
            let dc_name = self.infra.dc(meta.dc).name.clone();
            match meta.kind {
                ComponentKind::Cpu => {
                    if let Some(tier) = meta.tier {
                        let e = cpu.entry((dc_name, tier.label())).or_insert((0.0, 0));
                        e.0 += u;
                        e.1 += 1;
                    }
                }
                ComponentKind::Raid | ComponentKind::San => {
                    if let Some(tier) = meta.tier {
                        let e = disk.entry((dc_name, tier.label())).or_insert((0.0, 0));
                        e.0 += u;
                        e.1 += 1;
                    }
                }
                ComponentKind::Link => {
                    if meta.label.starts_with("L ") {
                        wan.push((meta.label.clone(), u));
                    } else if meta.label.starts_with("client-link") {
                        client_links.push((dc_name, u));
                    }
                }
                _ => {} // NIC/switch/client pools: collected (reset) but unreported
            }
        }
        for (key, (sum, count)) in cpu {
            self.report
                .tier_cpu
                .entry(key)
                .or_default()
                .push(t, sum / count as f64);
        }
        for (key, (sum, count)) in disk {
            self.report
                .tier_disk
                .entry(key)
                .or_default()
                .push(t, sum / count as f64);
        }
        for (label, u) in wan {
            self.report.wan_util.entry(label).or_default().push(t, u);
        }
        for (dc, u) in client_links {
            self.report
                .client_link_util
                .entry(dc)
                .or_default()
                .push(t, u);
        }

        // Memory occupancy per tier (average bytes per server).
        let holarchy: Vec<(String, &'static str, Vec<usize>)> = self
            .infra
            .data_centers()
            .iter()
            .flat_map(|dc| {
                dc.tiers.iter().map(|tier| {
                    (
                        dc.name.clone(),
                        tier.kind.label(),
                        tier.servers.iter().map(|s| s.memory).collect(),
                    )
                })
            })
            .collect();
        for (dc, tier, mems) in holarchy {
            let n = mems.len().max(1) as f64;
            let total: f64 = mems
                .iter()
                .map(|&m| self.infra.memories_mut()[m].collect_avg_occupancy())
                .sum();
            self.report
                .tier_memory
                .entry((dc, tier))
                .or_default()
                .push(t, total / n);
        }

        self.report
            .concurrent_clients
            .push(t, self.flight.live_client_instances() as f64);
        self.report
            .logged_in_clients
            .push(t, self.sessions.len() as f64);
        self.report
            .active_operations
            .push(t, self.flight.live_instances() as f64);
        // Availability over the elapsed interval: completed / (completed
        // + failed) operations, 1.0 when nothing finished either way.
        if let Some(f) = &mut self.faults {
            let total = f.interval_ok + f.interval_failed;
            let avail = if total == 0 {
                1.0
            } else {
                f.interval_ok as f64 / total as f64
            };
            self.report.availability.push(t, avail);
            self.report
                .availability_counts
                .push((t, f.interval_ok, f.interval_failed));
            f.interval_ok = 0;
            f.interval_failed = 0;
        }
        // Per-component churn records (closed up/down spans only; the
        // span in progress is credited at its next transition).
        if let Some(c) = &self.churn {
            self.report.churn.components = c
                .components
                .iter()
                .map(|x| ChurnComponentRecord {
                    label: x.label.clone(),
                    failures: x.failures,
                    repairs: x.repairs,
                    up_us: x.up_us,
                    down_us: x.down_us,
                })
                .collect();
        }
        // Interval aggregates are derivable from history; drain to keep
        // the current-interval map empty.
        let _ = self.report.responses.collect();
    }
}

// Checkpoint support. Impls live here because every runtime struct has
// private fields. Three members are deliberately not serialized:
//
// * `wheel` — the timer wheel is a pure scheduling index over the
//   canonical containers (fault schedule, retry/timeout/hedge/churn
//   heaps, session wakes, series cursors, background horizon); a
//   restored engine starts with `wheel = None` and re-primes it lazily
//   at its next step, which drains exactly what a polled run would.
// * `profiler` — wall-clock observation, never simulation state.
// * `config.executor` — thread pools cannot cross a process boundary;
//   the CLI re-applies its executor flags after restore.
//
// `panic_at` (the supervision test hook) is also skipped: a checkpoint
// taken before an injected crash must resume past it, exactly like a
// run whose real bug was fixed between kill and resume.
gdisim_snap::snap_enum!(HealthEvent {
    0 => Link { label, fail },
    1 => Server { site, tier, server, fail },
});
gdisim_snap::snap_struct!(PendingRetry {
    at,
    template,
    key,
    binding,
    chain,
    session,
    attempt,
    first_launched_at,
    trace_root,
});
gdisim_snap::snap_struct!(FaultRuntime {
    events,
    cursor,
    in_flight,
    retry,
    down,
    timeouts,
    pending_retries,
    interval_ok,
    interval_failed,
});
gdisim_snap::snap_struct!(ChurnComponent {
    label,
    targets,
    process,
    down,
    incidents,
    applied,
    rng,
    span_start,
    up_us,
    down_us,
    failures,
    repairs,
});
gdisim_snap::snap_struct!(ChurnRuntime {
    components,
    queue,
    seed,
});
gdisim_snap::snap_enum!(BreakerState {
    0 => Closed { consecutive },
    1 => Open { until_us },
    2 => HalfOpen { probes_left },
});
gdisim_snap::snap_struct!(ResilienceRuntime {
    policies,
    breakers,
    hedges,
});
gdisim_snap::snap_struct!(AppEntry { id, name, ops, mix });
gdisim_snap::snap_enum!(TrafficSource {
    0 => Diurnal { app_idx, workload, site_map },
    1 => Sessions { app_idx, workload, site_map, mean_think_secs, live, retiring },
    2 => PeriodicSeries { app, templates, interval, site, next, stop_at },
});

impl gdisim_snap::Snap for Simulation {
    fn save(&self, w: &mut gdisim_snap::SnapWriter) {
        gdisim_snap::Snap::save(&self.infra, w);
        gdisim_snap::Snap::save(&self.sites, w);
        gdisim_snap::Snap::save(&self.site_dc, w);
        gdisim_snap::Snap::save(&self.config, w);
        gdisim_snap::Snap::save(&self.apps, w);
        gdisim_snap::Snap::save(&self.traffic, w);
        gdisim_snap::Snap::save(&self.master_policy, w);
        gdisim_snap::Snap::save(&self.background, w);
        gdisim_snap::Snap::save(&self.sampler, w);
        gdisim_snap::Snap::save(&self.cache_rng, w);
        gdisim_snap::Snap::save(&self.flight, w);
        gdisim_snap::Snap::save(&self.report, w);
        gdisim_snap::Snap::save(&self.now, w);
        gdisim_snap::Snap::save(&self.next_collect, w);
        gdisim_snap::Snap::save(&self.link_events, w);
        gdisim_snap::Snap::save(&self.faults, w);
        gdisim_snap::Snap::save(&self.session_wakes, w);
        gdisim_snap::Snap::save(&self.sessions, w);
        gdisim_snap::Snap::save(&self.next_session, w);
        gdisim_snap::Snap::save(&self.trace, w);
        gdisim_snap::Snap::save(&self.meter_epoch, w);
        gdisim_snap::Snap::save(&self.tick_all, w);
        gdisim_snap::Snap::save(&self.always_poll, w);
        gdisim_snap::Snap::save(&self.polled_sources, w);
        gdisim_snap::Snap::save(&self.churn, w);
        gdisim_snap::Snap::save(&self.resilience, w);
        gdisim_snap::Snap::save(&self.orphans, w);
        gdisim_snap::Snap::save(&self.shard, w);
        gdisim_snap::Snap::save(&self.audit, w);
    }
    fn load(r: &mut gdisim_snap::SnapReader<'_>) -> Result<Self, gdisim_snap::SnapError> {
        Ok(Simulation {
            infra: gdisim_snap::Snap::load(r)?,
            sites: gdisim_snap::Snap::load(r)?,
            site_dc: gdisim_snap::Snap::load(r)?,
            config: gdisim_snap::Snap::load(r)?,
            apps: gdisim_snap::Snap::load(r)?,
            traffic: gdisim_snap::Snap::load(r)?,
            master_policy: gdisim_snap::Snap::load(r)?,
            background: gdisim_snap::Snap::load(r)?,
            sampler: gdisim_snap::Snap::load(r)?,
            cache_rng: gdisim_snap::Snap::load(r)?,
            flight: gdisim_snap::Snap::load(r)?,
            report: gdisim_snap::Snap::load(r)?,
            now: gdisim_snap::Snap::load(r)?,
            next_collect: gdisim_snap::Snap::load(r)?,
            link_events: gdisim_snap::Snap::load(r)?,
            faults: gdisim_snap::Snap::load(r)?,
            session_wakes: gdisim_snap::Snap::load(r)?,
            sessions: gdisim_snap::Snap::load(r)?,
            next_session: gdisim_snap::Snap::load(r)?,
            trace: gdisim_snap::Snap::load(r)?,
            meter_epoch: gdisim_snap::Snap::load(r)?,
            tick_all: gdisim_snap::Snap::load(r)?,
            active_scratch: Vec::new(),
            completed_scratch: Vec::new(),
            always_poll: gdisim_snap::Snap::load(r)?,
            wheel: None,
            polled_sources: gdisim_snap::Snap::load(r)?,
            profiler: None,
            cancelled_seen: [0; EventClass::ALL.len()],
            churn: gdisim_snap::Snap::load(r)?,
            resilience: gdisim_snap::Snap::load(r)?,
            orphans: gdisim_snap::Snap::load(r)?,
            shard: gdisim_snap::Snap::load(r)?,
            audit: gdisim_snap::Snap::load(r)?,
            panic_at: None,
            optrace: None,
        })
    }
}
