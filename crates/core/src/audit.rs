//! Runtime invariant auditor — the `--paranoid` mode.
//!
//! Long simulations can silently corrupt state long before the damage
//! shows up in a report. The auditor re-derives the engine's conservation
//! invariants from first principles at every measurement collection (and
//! at every window barrier under sharding) and records a typed
//! [`InvariantViolation`] for each breach:
//!
//! * **Token linkage** — every in-flight token belongs to a live
//!   operation instance, a hosted foreign flight, or a settled orphan.
//! * **Memory-hold balance** — per memory model, the sum of live tokens'
//!   holds equals the metered occupancy above the OS pool floor.
//! * **Active-set completeness** — every agent with queued or in-service
//!   work is an active-set member (skipped under the always-tick loop,
//!   which has no active set).
//! * **Wheel-gate existence** — for every event class with a pending
//!   canonical event, the timer wheel holds a live gate at or before that
//!   event's tick (skipped under always-poll, which has no wheel).
//! * **Mailbox continuity** — no shard observed an out-of-order window
//!   envelope.
//!
//! The checks are strictly read-only: enabling the auditor never changes
//! simulation results, only adds `audit.*` counters to the metrics
//! snapshot. Each check is O(state), which is why it is opt-in.

use gdisim_types::SimTime;
use std::fmt;

/// One failed conservation invariant, with enough context to debug it.
#[derive(Debug, Clone, PartialEq)]
pub enum InvariantViolation {
    /// A flight-table token references an instance that is neither live,
    /// foreign-hosted, nor an orphan.
    TokenWithoutInstance {
        /// Simulation time of the audit.
        at: SimTime,
        /// The dangling token id.
        token: u64,
        /// The instance id it references.
        instance: u64,
    },
    /// A memory model's metered occupancy disagrees with the sum of
    /// live token holds pointing at it.
    MemHoldImbalance {
        /// Simulation time of the audit.
        at: SimTime,
        /// Memory model index.
        memory: usize,
        /// Sum of live tokens' holds (bytes).
        held_bytes: f64,
        /// Metered occupancy above the pool floor (bytes).
        metered_bytes: f64,
    },
    /// An agent holds queued or in-service work but is not a member of
    /// the active set, so the step loop would never tick it again.
    InactiveAgentWithWork {
        /// Simulation time of the audit.
        at: SimTime,
        /// Agent index.
        agent: u32,
    },
    /// An event class has a pending canonical event but no live wheel
    /// gate at or before its tick — the drain would run late.
    MissingWheelGate {
        /// Simulation time of the audit.
        at: SimTime,
        /// Event-class label (see [`crate::wheel::EventClass`]).
        class: String,
        /// Tick the earliest canonical event fires at.
        head_tick: u64,
    },
    /// A shard observed out-of-sequence window mail.
    MailboxSeqGap {
        /// Simulation time of the audit.
        at: SimTime,
        /// The observing shard.
        shard: u32,
        /// Cumulative ordering violations seen by that shard.
        gaps: u64,
    },
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantViolation::TokenWithoutInstance {
                at,
                token,
                instance,
            } => write!(
                f,
                "t={}s: token {token} references instance {instance} which is \
                 neither live, foreign-hosted, nor orphaned",
                at.as_secs_f64()
            ),
            InvariantViolation::MemHoldImbalance {
                at,
                memory,
                held_bytes,
                metered_bytes,
            } => write!(
                f,
                "t={}s: memory {memory} holds {held_bytes:.3} bytes of live \
                 tokens but meters {metered_bytes:.3}",
                at.as_secs_f64()
            ),
            InvariantViolation::InactiveAgentWithWork { at, agent } => write!(
                f,
                "t={}s: agent {agent} has work in system but is not in the \
                 active set",
                at.as_secs_f64()
            ),
            InvariantViolation::MissingWheelGate {
                at,
                class,
                head_tick,
            } => write!(
                f,
                "t={}s: class {class} has a canonical event at tick \
                 {head_tick} but no live wheel gate at or before it",
                at.as_secs_f64()
            ),
            InvariantViolation::MailboxSeqGap { at, shard, gaps } => write!(
                f,
                "t={}s: shard {shard} observed {gaps} out-of-order window \
                 envelope(s)",
                at.as_secs_f64()
            ),
        }
    }
}

/// How many violations are retained verbatim; beyond this only the
/// counter grows (a corrupt run can breach thousands of invariants per
/// audit, and each retained entry costs checkpoint bytes).
pub const MAX_RECORDED: usize = 64;

/// Auditor bookkeeping hung off the engine when `--paranoid` is on.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AuditState {
    /// Audit passes run so far.
    pub checks: u64,
    /// Total violations found (including ones past the retention cap).
    pub violations: u64,
    /// The first [`MAX_RECORDED`] violations, verbatim.
    pub recorded: Vec<InvariantViolation>,
}

impl AuditState {
    /// Records one violation, keeping the first [`MAX_RECORDED`].
    pub fn record(&mut self, v: InvariantViolation) {
        self.violations += 1;
        if self.recorded.len() < MAX_RECORDED {
            self.recorded.push(v);
        }
    }

    /// Folds another auditor's tallies into this one (shard merge).
    pub fn merge_from(&mut self, other: &AuditState) {
        self.checks += other.checks;
        self.violations += other.violations;
        for v in &other.recorded {
            if self.recorded.len() >= MAX_RECORDED {
                break;
            }
            self.recorded.push(v.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retention_caps_but_counter_does_not() {
        let mut a = AuditState::default();
        for i in 0..(MAX_RECORDED as u64 + 10) {
            a.record(InvariantViolation::InactiveAgentWithWork {
                at: SimTime::ZERO,
                agent: i as u32,
            });
        }
        assert_eq!(a.violations, MAX_RECORDED as u64 + 10);
        assert_eq!(a.recorded.len(), MAX_RECORDED);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = AuditState {
            checks: 2,
            ..Default::default()
        };
        let mut b = AuditState {
            checks: 3,
            ..Default::default()
        };
        b.record(InvariantViolation::MailboxSeqGap {
            at: SimTime::from_secs(1),
            shard: 1,
            gaps: 4,
        });
        a.merge_from(&b);
        assert_eq!(a.checks, 5);
        assert_eq!(a.violations, 1);
        assert_eq!(a.recorded.len(), 1);
    }

    #[test]
    fn display_is_informative() {
        let v = InvariantViolation::MemHoldImbalance {
            at: SimTime::from_secs(10),
            memory: 3,
            held_bytes: 100.0,
            metered_bytes: 50.0,
        };
        let s = v.to_string();
        assert!(s.contains("memory 3"), "{s}");
        assert!(s.contains("100.000"), "{s}");
    }
}

// Checkpoint support.
gdisim_snap::snap_enum!(InvariantViolation {
    0 => TokenWithoutInstance { at, token, instance },
    1 => MemHoldImbalance { at, memory, held_bytes, metered_bytes },
    2 => InactiveAgentWithWork { at, agent },
    3 => MissingWheelGate { at, class, head_tick },
    4 => MailboxSeqGap { at, shard, gaps },
});
gdisim_snap::snap_struct!(AuditState {
    checks,
    violations,
    recorded,
});
