//! Message-level tracing.
//!
//! The abstract promises a simulator that "not only reproduces the
//! behavior of data centers at a macroscopic scale, but allows operators
//! to navigate down to the detail of individual elements, such as
//! processors or network links". The aggregate report covers the
//! macroscopic scale; the trace log covers the microscope: when enabled,
//! every operation launch, agent-hop completion, message completion and
//! operation completion is recorded with its timestamp.
//!
//! Tracing a day-long six-continent run would produce hundreds of
//! millions of events, so the log is capacity-bounded: recording stops
//! (and is counted) once the cap is reached — point the microscope at a
//! short window.

use gdisim_metrics::ResponseKey;
use gdisim_types::{AgentId, SimTime};

/// One traced event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// An operation instance was launched.
    Launch {
        /// Instance id.
        instance: u64,
        /// Reporting key (app, op, client DC).
        key: ResponseKey,
    },
    /// A message finished service at one agent and moved on.
    Hop {
        /// Message token.
        token: u64,
        /// The agent that completed the work.
        agent: AgentId,
    },
    /// A message completed its final hop.
    MessageDone {
        /// Message token.
        token: u64,
        /// Owning instance.
        instance: u64,
    },
    /// An operation instance completed.
    OperationDone {
        /// Instance id.
        instance: u64,
        /// End-to-end response time in seconds.
        response_secs: f64,
    },
    /// A scheduled fault event was applied to the infrastructure.
    Fault {
        /// Index of the event in the fault plan, in declaration order.
        event: u32,
        /// True for a failure, false for a recovery.
        fail: bool,
    },
    /// An operation instance failed (timed out, was severed by a fault,
    /// or compiled to an undeliverable message).
    OperationFailed {
        /// Instance id.
        instance: u64,
        /// True when the fault layer scheduled a backed-off retry; false
        /// when the operation was abandoned.
        will_retry: bool,
    },
}

impl TraceEvent {
    /// Index into the per-kind drop counters.
    fn kind_index(&self) -> usize {
        match self {
            TraceEvent::Launch { .. } => 0,
            TraceEvent::Hop { .. } => 1,
            TraceEvent::MessageDone { .. } => 2,
            TraceEvent::OperationDone { .. } => 3,
            TraceEvent::Fault { .. } => 4,
            TraceEvent::OperationFailed { .. } => 5,
        }
    }
}

/// Events dropped after the capacity was reached, broken down by kind —
/// hops dominate real traces by orders of magnitude, so an aggregate
/// count alone can hide that every launch/completion also got lost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DroppedCounts {
    /// Dropped [`TraceEvent::Launch`] events.
    pub launches: u64,
    /// Dropped [`TraceEvent::Hop`] events.
    pub hops: u64,
    /// Dropped [`TraceEvent::MessageDone`] events.
    pub messages_done: u64,
    /// Dropped [`TraceEvent::OperationDone`] events.
    pub operations_done: u64,
    /// Dropped [`TraceEvent::Fault`] events.
    pub faults: u64,
    /// Dropped [`TraceEvent::OperationFailed`] events.
    pub operations_failed: u64,
}

impl DroppedCounts {
    /// Total events dropped across all kinds.
    pub fn total(&self) -> u64 {
        self.launches
            + self.hops
            + self.messages_done
            + self.operations_done
            + self.faults
            + self.operations_failed
    }

    /// `(label, count)` pairs for every kind, in declaration order —
    /// what the CLI summary prints.
    pub fn by_kind(&self) -> [(&'static str, u64); 6] {
        [
            ("launches", self.launches),
            ("hops", self.hops),
            ("messages done", self.messages_done),
            ("operations done", self.operations_done),
            ("faults", self.faults),
            ("operations failed", self.operations_failed),
        ]
    }
}

/// A capacity-bounded event log.
#[derive(Debug, Clone)]
pub struct TraceLog {
    events: Vec<(SimTime, TraceEvent)>,
    capacity: usize,
    /// Drop counters indexed by [`TraceEvent::kind_index`].
    dropped: [u64; 6],
}

impl TraceLog {
    /// Creates a log holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        TraceLog {
            events: Vec::with_capacity(capacity.min(1 << 20)),
            capacity,
            dropped: [0; 6],
        }
    }

    /// Records an event (drops and counts once full).
    pub fn record(&mut self, at: SimTime, event: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push((at, event));
        } else {
            self.dropped[event.kind_index()] += 1;
        }
    }

    /// The recorded events, in order.
    pub fn events(&self) -> &[(SimTime, TraceEvent)] {
        &self.events
    }

    /// Total events dropped after the cap was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped.iter().sum()
    }

    /// Dropped events broken down by event kind.
    pub fn dropped_by_kind(&self) -> DroppedCounts {
        DroppedCounts {
            launches: self.dropped[0],
            hops: self.dropped[1],
            messages_done: self.dropped[2],
            operations_done: self.dropped[3],
            faults: self.dropped[4],
            operations_failed: self.dropped[5],
        }
    }

    /// All events of one instance, in order (launch → hops via its
    /// messages → completion).
    pub fn instance_events(&self, instance: u64) -> Vec<(SimTime, TraceEvent)> {
        self.events
            .iter()
            .filter(|(_, e)| match e {
                TraceEvent::Launch { instance: i, .. }
                | TraceEvent::MessageDone { instance: i, .. }
                | TraceEvent::OperationDone { instance: i, .. }
                | TraceEvent::OperationFailed { instance: i, .. } => *i == instance,
                TraceEvent::Hop { .. } | TraceEvent::Fault { .. } => false,
            })
            .copied()
            .collect()
    }

    /// Number of hop events served by one agent — per-element drill-down.
    pub fn hops_at(&self, agent: AgentId) -> usize {
        self.events
            .iter()
            .filter(|(_, e)| matches!(e, TraceEvent::Hop { agent: a, .. } if *a == agent))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdisim_types::{AppId, DcId, OpTypeId};

    fn key() -> ResponseKey {
        ResponseKey {
            app: AppId(0),
            op: OpTypeId(0),
            dc: DcId(0),
        }
    }

    #[test]
    fn capacity_bound_is_enforced() {
        let mut log = TraceLog::new(2);
        for i in 0..5 {
            log.record(
                SimTime::from_secs(i),
                TraceEvent::Launch {
                    instance: i,
                    key: key(),
                },
            );
        }
        assert_eq!(log.events().len(), 2);
        assert_eq!(log.dropped(), 3);
    }

    #[test]
    fn dropped_events_are_counted_per_kind() {
        let mut log = TraceLog::new(1);
        log.record(
            SimTime::ZERO,
            TraceEvent::Launch {
                instance: 0,
                key: key(),
            },
        );
        // Everything below overflows the cap.
        log.record(
            SimTime::from_secs(1),
            TraceEvent::Launch {
                instance: 1,
                key: key(),
            },
        );
        for t in 0..3 {
            log.record(
                SimTime::from_secs(2),
                TraceEvent::Hop {
                    token: t,
                    agent: AgentId(0),
                },
            );
        }
        log.record(
            SimTime::from_secs(3),
            TraceEvent::MessageDone {
                token: 0,
                instance: 0,
            },
        );
        log.record(
            SimTime::from_secs(3),
            TraceEvent::OperationDone {
                instance: 0,
                response_secs: 3.0,
            },
        );
        log.record(
            SimTime::from_secs(4),
            TraceEvent::Fault {
                event: 0,
                fail: true,
            },
        );
        log.record(
            SimTime::from_secs(4),
            TraceEvent::OperationFailed {
                instance: 1,
                will_retry: true,
            },
        );

        let by_kind = log.dropped_by_kind();
        assert_eq!(by_kind.launches, 1);
        assert_eq!(by_kind.hops, 3);
        assert_eq!(by_kind.messages_done, 1);
        assert_eq!(by_kind.operations_done, 1);
        assert_eq!(by_kind.faults, 1);
        assert_eq!(by_kind.operations_failed, 1);
        assert_eq!(by_kind.total(), 8);
        assert_eq!(log.dropped(), by_kind.total());
        let printed: u64 = by_kind.by_kind().iter().map(|(_, n)| n).sum();
        assert_eq!(printed, by_kind.total());
    }

    #[test]
    fn instance_filter_and_agent_drilldown() {
        let mut log = TraceLog::new(100);
        log.record(
            SimTime::ZERO,
            TraceEvent::Launch {
                instance: 7,
                key: key(),
            },
        );
        log.record(
            SimTime::from_secs(1),
            TraceEvent::Hop {
                token: 1,
                agent: AgentId(3),
            },
        );
        log.record(
            SimTime::from_secs(1),
            TraceEvent::Hop {
                token: 1,
                agent: AgentId(4),
            },
        );
        log.record(
            SimTime::from_secs(2),
            TraceEvent::MessageDone {
                token: 1,
                instance: 7,
            },
        );
        log.record(
            SimTime::from_secs(2),
            TraceEvent::OperationDone {
                instance: 7,
                response_secs: 2.0,
            },
        );
        log.record(
            SimTime::from_secs(3),
            TraceEvent::Launch {
                instance: 8,
                key: key(),
            },
        );

        let seven = log.instance_events(7);
        assert_eq!(seven.len(), 3, "launch, message done, operation done");
        assert_eq!(log.hops_at(AgentId(3)), 1);
        assert_eq!(log.hops_at(AgentId(9)), 0);
    }
}
